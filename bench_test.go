// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark times one full regeneration of its experiment at
// CI-friendly parameter scales (the -full paper scales are available via
// cmd/tplbench). The Fig5 benchmarks are the paper's own subject matter:
// BenchmarkFig5_Algorithm1_* vs BenchmarkFig5_Simplex_* is the runtime
// comparison of Fig. 5, with the dense simplex standing in for
// Gurobi/lp_solve.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/markov"
	"repro/internal/mechanism"
	"repro/internal/release"
	"repro/internal/stream"
)

// BenchmarkFig3 regenerates the BPL/FPL/TPL series of Fig. 3
// (eps = 0.1, T = 10, three correlation levels).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig3(0.1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the four max-BPL-over-time panels of Fig. 4
// with their Theorem-5 suprema (T = 100).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := expt.Fig4(100)
		if err != nil {
			b.Fatal(err)
		}
		if v := expt.Fig4Verify(panels); v > 1e-6 {
			b.Fatalf("supremum violation %v", v)
		}
	}
}

// fig5Sizes are the per-solver problem sizes for the Fig. 5 benchmarks.
// Algorithm 1 runs at the paper's n = 50; the simplex baseline runs at
// n = 8 because — as the paper reports for lp_solve and Gurobi — it is
// orders of magnitude slower and would not finish at n = 50 in a
// benchmark loop. Compare ns/op per pair-program solved.
const (
	fig5Alg1N    = 50
	fig5SimplexN = 8
)

// BenchmarkFig5_Algorithm1_N times one full-matrix quantification
// (all ordered row pairs) with Algorithm 1 at alpha = 10, Fig. 5(a) —
// the naive per-evaluation scan, the paper's original route.
func BenchmarkFig5_Algorithm1_N(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.UniformRandom(rng, fig5Alg1N)
	if err != nil {
		b.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qt.LossNaive(10)
	}
}

// BenchmarkFig5_Compiled_N times the same quantification through the
// compiled leakage engine (compilation amortized outside the loop) —
// the route every production path now takes. Compare against
// BenchmarkFig5_Algorithm1_N; see also BenchmarkEngineLoss and
// BenchmarkEngineCompile in internal/core.
func BenchmarkFig5_Compiled_N(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.UniformRandom(rng, fig5Alg1N)
	if err != nil {
		b.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	qt.Engine() // compile once outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qt.LossValue(10)
	}
}

// BenchmarkFig5_Simplex_N times the same quantification through the
// Charnes-Cooper LP + simplex route (the external-solver stand-in),
// Fig. 5(a). Note the much smaller n.
func BenchmarkFig5_Simplex_N(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts, err := expt.Fig5N(rng, nil, []int{fig5SimplexN}, 10)
	if err != nil {
		b.Fatal(err)
	}
	_ = pts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5N(rng, nil, []int{fig5SimplexN}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Algorithm1_Alpha sweeps the prior leakage alpha at fixed
// n, Fig. 5(b): runtime grows with alpha and then flattens.
func BenchmarkFig5_Algorithm1_Alpha(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.UniformRandom(rng, fig5Alg1N)
	if err != nil {
		b.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	alphas := []float64{0.001, 0.01, 0.1, 1, 10, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range alphas {
			_ = qt.LossNaive(a)
		}
	}
}

// BenchmarkFig6 regenerates one eps = 1 panel of Fig. 6 at reduced
// scale (n = 30, T = 15, three correlation strengths).
func BenchmarkFig6(b *testing.B) {
	configs := []expt.Fig6Config{
		{S: 0, N: 30, Eps: 1},
		{S: 0.005, N: 30, Eps: 1},
		{S: 0.05, N: 30, Eps: 1},
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := expt.Fig6(rng, configs, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the budget-allocation comparison of Fig. 7
// (alpha = 1, T = 30): both planners plus the realized TPL series.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig7(1, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8a regenerates the utility-vs-T comparison of Fig. 8(a)
// (alpha = 2, s = 0.001, n = 30, T in {5, 10, 50}).
func BenchmarkFig8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := expt.Fig8T(rng, 2, 0.001, 30, []int{5, 10, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8b regenerates the utility-vs-s comparison of Fig. 8(b)
// (alpha = 2, T = 10, n = 30, s in {0.01, 0.1, 1}).
func BenchmarkFig8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, _, err := expt.Fig8S(rng, 2, 10, 30, []float64{0.01, 0.1, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the privacy-guarantee comparison of
// Table II (eps = 0.1, T = 10, w = 3).
func BenchmarkTableII(b *testing.B) {
	chain := markov.Fig7Backward()
	for i := 0; i < b.N; i++ {
		if _, err := expt.TableII(chain, 0.1, 10, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLossParallel compares the naive sequential and parallel
// full-matrix quantification at n = 100 against the compiled engine
// (the Fig. 5(a) regime). The naive fan-out used to be the fast path;
// the engine makes both reference scans look stationary.
func BenchmarkLossParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.UniformRandom(rng, 100)
	if err != nil {
		b.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = qt.LossNaive(10)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = qt.LossParallelNaive(10, 0)
		}
	})
	b.Run("engine", func(b *testing.B) {
		qt.Engine() // compile outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = qt.LossValue(10)
		}
	})
}

// BenchmarkPairLoss micro-benchmarks the inner kernel of Algorithm 1 on
// one row pair at n = 200 (supporting the Fig. 5 discussion: the
// per-pair cost is O(n^2) worst case, near-linear typically).
func BenchmarkPairLoss(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.UniformRandom(rng, 200)
	if err != nil {
		b.Fatal(err)
	}
	q, d := c.Row(0), c.Row(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.PairLoss(q, d, 10)
	}
}

// serverBenchDomain is the value-domain size of the Collect benchmarks
// (a small location grid; the accounting cost per update is O(domain^2)
// pairs, the ingestion cost O(users)).
const serverBenchDomain = 5

// serverBenchModels builds a population of `users` adversary models
// drawn from `distinct` correlation classes (chain pointers shared
// within a class, contents distinct across classes).
func serverBenchModels(b *testing.B, users, distinct int) []stream.AdversaryModel {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	chains := make([]*markov.Chain, distinct)
	for k := range chains {
		c, err := markov.Smoothed(rng, serverBenchDomain, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		chains[k] = c
	}
	models := make([]stream.AdversaryModel, users)
	for i := range models {
		c := chains[i%distinct]
		models[i] = stream.AdversaryModel{Backward: c, Forward: c}
	}
	return models
}

// serverBenchValues is one time step's database.
func serverBenchValues(users int) []int {
	values := make([]int, users)
	for i := range values {
		values[i] = i % serverBenchDomain
	}
	return values
}

// BenchmarkServerCollect measures one full collection step (snapshot,
// Laplace release, leakage accounting) at population scale: N users
// declaring K distinct adversary models. With cohort-sharded
// accounting a step costs K accountant updates instead of N, so the
// K=10 rows are nearly flat in N; the numbers are recorded in
// DESIGN.md §4.
func BenchmarkServerCollect(b *testing.B) {
	for _, bc := range []struct{ users, models int }{
		{1000, 10},
		{100000, 10},
		{100000, 1000},
		{1000000, 10},
	} {
		b.Run(fmt.Sprintf("users=%d/models=%d", bc.users, bc.models), func(b *testing.B) {
			models := serverBenchModels(b, bc.users, bc.models)
			s, err := stream.NewServer(serverBenchDomain, bc.users, models, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			values := serverBenchValues(bc.users)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Collect(values, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerCollectPerUserLoop reproduces the seed's pre-cohort
// accounting path at 100k users / 10 distinct models — snapshot, noise,
// then one Observe per *user* — as the baseline BenchmarkServerCollect
// is compared against (TestCohortDedup proves the leakage numbers are
// identical).
func BenchmarkServerCollectPerUserLoop(b *testing.B) {
	const users, distinct = 100000, 10
	models := serverBenchModels(b, users, distinct)
	accs := make([]*core.Accountant, users)
	for i, m := range models {
		accs[i] = core.NewAccountant(m.Backward, m.Forward)
	}
	values := serverBenchValues(users)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := mechanism.NewSnapshot(serverBenchDomain, values)
		if err != nil {
			b.Fatal(err)
		}
		lap, err := mechanism.NewLaplace(0.1, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		_ = lap.ReleaseCounts(snap.Histogram())
		for _, acc := range accs {
			if _, err := acc.Observe(0.1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAccountantObserve micro-benchmarks the online accountant's
// per-release cost (n = 20 chain, amortized BPL update).
func BenchmarkAccountantObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, err := markov.Smoothed(rng, 20, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	acc := core.NewAccountant(c, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanners micro-benchmarks the two release planners at
// alpha = 1, T = 20 on the Fig. 7 correlations.
func BenchmarkPlanners(b *testing.B) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	b.Run("UpperBound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := release.UpperBound(pb, pf, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Quantified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := release.Quantified(pb, pf, 1, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlanners regenerates the planner ablation (group-DP
// bundle vs Algorithm 2 vs Algorithm 3 across correlation strengths;
// the Section I comparison made quantitative).
func BenchmarkAblationPlanners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := expt.AblationPlanners(rng, 2, 30, 10, []float64{0, 0.01, 0.1, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSolvers regenerates the per-pair LFP solver ablation
// (Algorithm 1's Theorem-4 filter vs Dinkelbach's parametric iteration
// vs the Charnes-Cooper simplex — the paper's Appendix machinery as
// runnable code).
func BenchmarkAblationSolvers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := expt.AblationSolvers(rng, []int{5, 10, 20}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupremum times the Theorem-5 supremum search (closed-form
// accelerated fixed-point iteration) on the Fig. 4(a) configuration.
func BenchmarkSupremum(b *testing.B) {
	qt := core.NewQuantifier(markov.Fig4aExample())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.Supremum(qt, 0.23); !ok {
			b.Fatal("supremum should exist")
		}
	}
}

// BenchmarkWEventPlanner times the w-event budget planner (bisection
// with two supremum searches per probe) at w = 5.
func BenchmarkWEventPlanner(b *testing.B) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	for i := 0; i < b.N; i++ {
		if _, err := release.WEvent(pb, pf, 1, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeNoise times the mean-noise local search at T = 8 on
// the Fig. 7 correlations (one sweep).
func BenchmarkOptimizeNoise(b *testing.B) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	for i := 0; i < b.N; i++ {
		if _, err := release.OptimizeNoise(pb, pf, 1, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactAdversary times the exhaustive output-enumeration
// leakage computation at 2 outputs x 10 steps (1024 sequences).
func BenchmarkExactAdversary(b *testing.B) {
	mech, err := adversary.RandomizedResponse(0.3, 2)
	if err != nil {
		b.Fatal(err)
	}
	mechs := make([]*adversary.DiscreteMechanism, 10)
	for i := range mechs {
		mechs[i] = mech
	}
	chain := markov.ModerateExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.ExactBPL(chain, mechs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaumWelch times one EM fit of the unsupervised correlation
// learner (Section III-A's Baum-Welch route) on 5 sequences of 200
// observations over a 3-state, 4-symbol model.
func BenchmarkBaumWelch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	truth, err := markov.RandomHMM(rng, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	var seqs [][]int
	for i := 0; i < 5; i++ {
		_, obs, err := truth.Sample(rng, 200)
		if err != nil {
			b.Fatal(err)
		}
		seqs = append(seqs, obs)
	}
	start, err := markov.RandomHMM(rng, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := start.BaumWelch(seqs, 20, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// snapshotBenchServer builds a stepped server at population scale for
// the durability benchmarks: N users over 10 correlation classes, T=32
// published steps of history.
func snapshotBenchServer(b *testing.B, users int) *stream.Server {
	b.Helper()
	models := serverBenchModels(b, users, 10)
	s, err := stream.NewServer(serverBenchDomain, users, models, nil)
	if err != nil {
		b.Fatal(err)
	}
	values := serverBenchValues(users)
	for t := 0; t < 32; t++ {
		if _, err := s.Collect(values, 0.1); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSnapshot measures capturing a server's full state — the
// coalesced cost the service pays every -snapshot-every steps. The
// dominant term at scale is copying the per-user cohort map, so ns/op
// grows linearly in users while journal appends (per step) stay O(domain).
func BenchmarkSnapshot(b *testing.B) {
	for _, users := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			s := snapshotBenchServer(b, users)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Snapshot()
			}
		})
	}
}

// BenchmarkRestore measures rebuilding a live server from a snapshot —
// the boot-time cost per session. The compiled-model cache is shared
// across iterations, as the registry shares it across sessions, so
// this times restore proper, not engine compilation.
func BenchmarkRestore(b *testing.B) {
	for _, users := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			st := snapshotBenchServer(b, users).Snapshot()
			cache := stream.NewModelCache()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stream.RestoreServer(st, stream.RestoreOptions{Cache: cache}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
