// Adaptive budget: compare the paper's two release planners (Algorithm 2
// vs Algorithm 3) across horizons and correlation strengths, reproducing
// the trade-off behind Figs. 7 and 8.
//
// Algorithm 2 bounds the *supremum* of the leakage, so its single
// constant budget is safe for any horizon but over-perturbs short
// releases. Algorithm 3 exploits a known horizon to hold the leakage
// exactly at the target and recover utility.
//
// Run with: go run ./examples/adaptivebudget
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/tpl"
)

func main() {
	const alpha = 2.0
	rng := rand.New(rand.NewSource(7))

	pb, err := tpl.SmoothedChain(rng, 20, 0.01) // strong correlation
	if err != nil {
		log.Fatal(err)
	}
	pf, err := tpl.SmoothedChain(rng, 20, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	ub, err := tpl.PlanUpperBound(pb, pf, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 2 (any horizon): eps=%.4f per step, noise %.2f per count\n",
		ub.Eps, 1/ub.Eps)
	fmt.Printf("  BPL supremum %.4f, FPL supremum %.4f, alpha=%.1f\n\n", ub.AlphaB, ub.AlphaF, alpha)

	fmt.Println("Algorithm 3 (known horizon): mean noise per count")
	fmt.Println("T    alg2    alg3    saving")
	for _, T := range []int{2, 5, 10, 25, 50} {
		qp, err := tpl.PlanQuantified(pb, pf, alpha, T)
		if err != nil {
			log.Fatal(err)
		}
		budgets, err := qp.Budgets(T)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, e := range budgets {
			mean += 1 / e
		}
		mean /= float64(T)
		noise2 := 1 / ub.Eps
		fmt.Printf("%-4d %-7.2f %-7.2f %.0f%%\n", T, noise2, mean, 100*(noise2-mean)/noise2)
	}

	fmt.Println("\nEffect of correlation strength (T=10):")
	fmt.Println("s       alg2-noise  alg3-noise  (uncorrelated floor: 0.50)")
	for _, s := range []float64{0.01, 0.1, 1} {
		rngS := rand.New(rand.NewSource(7))
		pbS, err := tpl.SmoothedChain(rngS, 20, s)
		if err != nil {
			log.Fatal(err)
		}
		pfS, err := tpl.SmoothedChain(rngS, 20, s)
		if err != nil {
			log.Fatal(err)
		}
		ubS, err := tpl.PlanUpperBound(pbS, pfS, alpha)
		if err != nil {
			log.Fatal(err)
		}
		qpS, err := tpl.PlanQuantified(pbS, pfS, alpha, 10)
		if err != nil {
			log.Fatal(err)
		}
		budgets, err := qpS.Budgets(10)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, e := range budgets {
			mean += 1 / e
		}
		mean /= 10
		fmt.Printf("%-7g %-11.2f %-11.2f\n", s, 1/ubS.Eps, mean)
	}
	fmt.Println("\nStronger correlation (smaller s) costs more noise; as s grows the")
	fmt.Println("plans approach the uncorrelated Laplace noise 1/alpha.")

	// Multi-user planning: the released budgets must satisfy every
	// user's adversary simultaneously (the paper's min over users), and
	// personalized targets (Section III-D) tighten only their own user.
	rngM := rand.New(rand.NewSource(11))
	strongB, err := tpl.SmoothedChain(rngM, 20, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	strongF, err := tpl.SmoothedChain(rngM, 20, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	weak, err := tpl.SmoothedChain(rngM, 20, 2)
	if err != nil {
		log.Fatal(err)
	}
	users := []tpl.UserModel{
		{Backward: strongB, Forward: strongF},             // strongly correlated
		{Backward: weak, Forward: weak},                   // weakly correlated
		{Backward: weak, Forward: weak, Alpha: alpha / 4}, // strict personal target
	}
	mp, err := tpl.PlanQuantifiedMulti(users, alpha, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMulti-user plan (alpha=%g global, user 3 personal alpha=%g):\n", alpha, alpha/4)
	fmt.Printf("combined budgets: ")
	for _, e := range mp.Combined {
		fmt.Printf("%.3f ", e)
	}
	fmt.Println()
	for i, u := range users {
		worst, err := tpl.MaxTPL(u.Backward, u.Forward, mp.Combined)
		if err != nil {
			log.Fatal(err)
		}
		target := u.Alpha
		if target <= 0 {
			target = alpha
		}
		fmt.Printf("user %d: realized TPL %.4f (target %.1f)\n", i+1, worst, target)
	}
}
