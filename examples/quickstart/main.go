// Quickstart: quantify how much extra privacy a continuous release leaks
// when the adversary knows temporal correlations, then bound it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/tpl"
)

func main() {
	// The adversary models a user's value evolution as a Markov chain.
	// Backward correlation: Pr(previous value | current value).
	pb, err := tpl.NewChain([][]float64{
		{0.8, 0.2},
		{0.0, 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Forward correlation: Pr(next value | current value).
	pf, err := tpl.NewChain([][]float64{
		{0.8, 0.2},
		{0.1, 0.9},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A naive deployment: release with a 0.1-DP Laplace mechanism at
	// each of 10 time points and hope event-level privacy stays at 0.1.
	eps := tpl.UniformBudgets(0.1, 10)
	series, err := tpl.TPLSeries(pb, pf, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Temporal privacy leakage of 0.1-DP at each time point:")
	for t, v := range series {
		fmt.Printf("  t=%2d  TPL=%.4f\n", t+1, v)
	}
	worst, err := tpl.MaxTPL(pb, pf, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThe release actually satisfies %.4f-DP_T, not 0.1-DP.\n\n", worst)

	// Does the leakage stay bounded if we keep releasing forever?
	if sup, ok := tpl.Supremum(pb, 0.1); ok {
		fmt.Printf("BPL supremum over infinite time: %.4f\n", sup)
	} else {
		fmt.Println("BPL grows without bound under this correlation.")
	}

	// Fix it: plan budgets so the leakage never exceeds alpha = 0.5.
	const alpha = 0.5
	plan, err := tpl.PlanQuantified(pb, pf, alpha, 10)
	if err != nil {
		log.Fatal(err)
	}
	budgets, err := plan.Budgets(10)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := tpl.TPLSeries(pb, pf, budgets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 3 budgets holding TPL at exactly %.1f:\n", alpha)
	for t := range budgets {
		fmt.Printf("  t=%2d  eps=%.4f  TPL=%.4f\n", t+1, budgets[t], fixed[t])
	}
}
