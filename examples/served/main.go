// Served: drive the continuous-release service over its v2 wire API,
// end to end, through the typed tpl/client SDK.
//
// This walkthrough boots the tplserved service in-process on a free
// port, then acts as a remote tenant: it creates a session whose
// 10,000-user population is declared as three cohorts (users sharing an
// adversary model share one accountant — the cohort-sharded accounting
// that makes large sessions cheap), streams twenty time steps in two
// idempotent batches (ten exploratory steps with an explicit budget,
// ten drawn from the attached quantified plan), watches the per-step
// TPL frames arrive over the SSE stream, and reads the guarantee back
// in the report JSON-lines wire format, re-rendering it locally as
// text. No hand-rolled HTTP anywhere: every call goes through
// tpl/client.
//
// Run with: go run ./examples/served
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"

	"repro/internal/markov"
	"repro/internal/report"
	"repro/internal/service"
	"repro/tpl/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// chainRows converts an internal markov.Chain to the SDK's wire form.
func chainRows(c *markov.Chain) *client.Chain {
	return &client.Chain{Rows: c.Rows()}
}

func run() error {
	// 1. Boot the service as tplserved would, on a free port.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- service.New("127.0.0.1:0", nil).Run(ctx, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		return err
	}
	fmt.Printf("service up at %s\n\n", base)

	c, err := client.New(base)
	if err != nil {
		return err
	}

	// 2. Create a session: 10,000 users in three cohorts. The strongly
	// correlated minority dominates the leakage; the uncorrelated
	// majority is the traditional DP population.
	strong := chainRows(markov.Fig7Backward())
	forward := chainRows(markov.Fig7Forward())
	weakChain, err := markov.Fig7Backward().Mix(0.5)
	if err != nil {
		return err
	}
	weak := chainRows(weakChain)
	created, err := c.CreateSession(ctx, client.SessionConfig{
		Name:   "city",
		Domain: len(strong.Rows),
		Cohorts: []client.Cohort{
			{Users: 500, Model: client.Model{Backward: strong, Forward: forward}},
			{Users: 1500, Model: client.Model{Backward: weak}},
			{Users: 8000, Model: client.Model{}},
		},
		Plan: &client.PlanSpec{
			Kind: "quantified", Alpha: 1, Horizon: 20,
			Model: &client.Model{Backward: strong, Forward: forward},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("created session %q: %d users deduplicated into %d cohorts\n\n",
		created.Name, created.Users, created.Cohorts)

	// 3. Watch the leakage live: the SSE stream pushes one TPL/BPL/FPL
	// frame per published step.
	w, err := c.Watch(ctx, "city", -1)
	if err != nil {
		return err
	}
	defer w.Close()

	// 4. Stream 20 time steps in two atomic, idempotency-keyed batches:
	// ten exploratory steps with an explicit small budget, then ten
	// drawn from the attached quantified plan. (A retry of either batch
	// — after a timeout, a dropped connection — would be replayed, not
	// double-charged; the SDK keys every batch by default.)
	rng := rand.New(rand.NewSource(42))
	step := func(explicit bool) client.Step {
		values := make([]int, created.Users)
		for i := range values {
			values[i] = rng.Intn(created.Domain)
		}
		st := client.Step{Values: values}
		if explicit {
			st.Eps = client.Eps(0.05)
		}
		return st
	}
	for _, phase := range []string{"explicit", "planned"} {
		batch := make([]client.Step, 10)
		for i := range batch {
			batch[i] = step(phase == "explicit")
		}
		res, err := c.StepsNDJSON(ctx, "city", batch)
		if err != nil {
			return err
		}
		fmt.Printf("batch of %d %s steps landed at t=%d..%d (eps of first: %.4f)\n",
			res.Count, phase, res.FirstT, res.LastT, res.Results[0].Eps)
	}
	fmt.Println()

	// Drain a few live frames to show the push side.
	seen := 0
	for ev := range w.Events() {
		fmt.Printf("watch: t=%2d eps=%.4f TPL=%.4f (BPL %.4f + FPL %.4f - eps, worst user %d)\n",
			ev.T, ev.Eps, ev.TPL, ev.BPL, ev.FPL, ev.WorstUser)
		if seen++; seen == 3 {
			break
		}
	}
	w.Close()
	fmt.Println()

	// 5. Read the guarantee back in the report JSON-lines wire format
	// and re-render it locally — the same bytes the CLIs and docs use.
	raw, err := c.ReportJSONLines(ctx, "city")
	if err != nil {
		return err
	}
	tables, err := report.ParseJSONLines(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	for _, tb := range tables {
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
	}

	// 6. Shut the service down gracefully.
	cancel()
	return <-errc
}
