// Served: drive the continuous-release service over HTTP, end to end.
//
// This walkthrough boots the tplserved service in-process on a free
// port, then acts as a remote tenant: it creates a session whose
// 10,000-user population is declared as three cohorts (users sharing an
// adversary model share one accountant — the cohort-sharded accounting
// that makes large sessions cheap), streams twenty time steps of counts
// with explicit and planned budgets, and reads the leakage back in the
// report JSON-lines wire format, re-rendering it locally as text.
//
// Run with: go run ./examples/served
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"

	"repro/internal/markov"
	"repro/internal/report"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Boot the service as tplserved would, on a free port.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- service.New("127.0.0.1:0", nil).Run(ctx, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		return err
	}
	fmt.Printf("service up at %s\n\n", base)

	// 2. Create a session: 10,000 users in three cohorts. The strongly
	// correlated minority dominates the leakage; the uncorrelated
	// majority is the traditional DP population.
	strong := markov.Fig7Backward()
	forward := markov.Fig7Forward()
	weak, err := strong.Mix(0.5)
	if err != nil {
		return err
	}
	cfg := service.SessionConfig{
		Name:   "city",
		Domain: strong.N(),
		Cohorts: []service.CohortConfig{
			{Users: 500, Model: service.ModelConfig{Backward: strong, Forward: forward}},
			{Users: 1500, Model: service.ModelConfig{Backward: weak}},
			{Users: 8000, Model: service.ModelConfig{}},
		},
		Plan: &service.PlanConfig{
			Kind: "quantified", Alpha: 1, Horizon: 20,
			Model: &service.ModelConfig{Backward: strong, Forward: forward},
		},
	}
	var created service.Summary
	if err := call(http.MethodPost, base+"/v1/sessions", cfg, &created); err != nil {
		return err
	}
	fmt.Printf("created session %q: %d users deduplicated into %d cohorts\n\n",
		created.Name, created.Users, created.Cohorts)

	// 3. Stream 20 time steps: ten exploratory steps with an explicit
	// small budget, then ten drawn from the attached quantified plan.
	rng := rand.New(rand.NewSource(42))
	values := make([]int, created.Users)
	for t := 1; t <= 20; t++ {
		for i := range values {
			values[i] = rng.Intn(created.Domain)
		}
		req := map[string]any{"values": values}
		if t <= 10 {
			req["eps"] = 0.05
		}
		var step struct {
			T       int     `json:"t"`
			Eps     float64 `json:"eps"`
			Planned bool    `json:"planned"`
		}
		if err := call(http.MethodPost, base+"/v1/sessions/city/steps", req, &step); err != nil {
			return err
		}
		if t == 1 || t == 11 {
			kind := "explicit"
			if step.Planned {
				kind = "planned"
			}
			fmt.Printf("step %2d: eps=%.4f (%s)\n", step.T, step.Eps, kind)
		}
	}
	fmt.Println()

	// 4. Read the guarantee back in the report JSON-lines wire format
	// and re-render it locally — the same bytes the CLIs and docs use.
	resp, err := http.Get(base + "/v1/sessions/city/report?format=jsonl")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("report: %s: %s", resp.Status, body)
	}
	tables, err := report.ParseJSONLines(resp.Body)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
	}

	// 5. Shut the service down gracefully.
	cancel()
	return <-errc
}

// call posts (or sends) one JSON request and decodes the 2xx response.
func call(method, url string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, body)
	}
	return json.Unmarshal(body, out)
}
