// Location release: the end-to-end scenario of the paper's Fig. 1.
//
// A trusted server collects users' locations on a road network at every
// time step and publishes noisy per-location counts. An adversary who
// knows the road network can model each user's mobility as a Markov
// chain; this example derives that chain from the network, simulates the
// population, publishes with the Laplace mechanism, and reports how the
// event-level guarantee degrades over time — then re-plans the budgets
// to hold the target.
//
// Run with: go run ./examples/locationrelease
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/tpl"
)

// softenChain applies Laplacian smoothing (Eq. 25) to a chain, modeling
// an adversary whose knowledge of the mobility model is imperfect.
func softenChain(c *tpl.Chain, s float64) (*tpl.Chain, error) {
	sm, err := matrix.LaplacianSmooth(c.P(), s)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, sm.Rows())
	for i := range rows {
		rows[i] = sm.Row(i)
	}
	return tpl.NewChain(rows)
}

func main() {
	const (
		users = 200
		T     = 12
		eps   = 0.2 // per-step budget of the naive deployment
	)
	rng := rand.New(rand.NewSource(42))

	// Fig. 1(b): the road network. loc4 feeds loc5 deterministically.
	net := trace.Fig1Network()
	forward, err := net.UniformChain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adversary's forward correlation P^F from the road network:")
	fmt.Println(forward.P())

	// The backward correlation follows from Bayes' rule at the
	// stationary distribution (Section III-A).
	pi, err := forward.Stationary(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	backward, err := tpl.ReverseChain(forward, pi)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the population of Fig. 1(a) and release noisy counts.
	pop, err := trace.NewPopulation(forward, users, matrix.Uniform(net.N()), rng)
	if err != nil {
		log.Fatal(err)
	}
	models := make([]tpl.AdversaryModel, users)
	for i := range models {
		models[i] = tpl.AdversaryModel{Backward: backward, Forward: forward}
	}
	srv, err := tpl.NewServer(net.N(), users, models, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNaive release with %g-DP per step:\n", eps)
	fmt.Println("t   true counts           published counts (simplex-projected)")
	for t := 0; t < T; t++ {
		if t > 0 {
			pop.Advance()
		}
		counts := pop.Counts()
		noisy, err := srv.Collect(pop.Locations(), eps)
		if err != nil {
			log.Fatal(err)
		}
		// DP-safe post-processing: the population size is public, so
		// project the noisy histogram onto {x >= 0, sum = users}.
		projected, err := tpl.ProjectToSimplex(noisy, float64(users))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %v  %v\n", t+1, counts, tpl.RoundCounts(projected))
	}

	// The leakage summary renders through the same report path as the
	// experiment harness (internal/report); -format style output for
	// free if this were a CLI.
	repTable, err := srv.ReportTable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := repTable.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Re-plan: hold the event-level leakage at the nominal target by
	// spending less per step. The deterministic road loc4 -> loc5 makes
	// this the *strongest* correlation, under which no positive budget
	// bounds the infinite-horizon supremum (Theorem 5), so the fine
	// planners refuse — exactly the failure the paper warns about.
	var budgets []float64
	plan, err := tpl.PlanQuantified(backward, forward, eps, T)
	switch {
	case err == nil:
		if budgets, err = plan.Budgets(T); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nAlgorithm 3 budgets holding TPL at %.1f at every step:\n", eps)
	case errors.Is(err, tpl.ErrStrongestCorrelation):
		fmt.Printf("\nPlanner refused: %v\n", err)
		fmt.Printf("Falling back to the group-privacy composition bound eps/T per step:\n")
		budgets = tpl.UniformBudgets(eps/float64(T), T)
	default:
		log.Fatal(err)
	}
	fixed, err := tpl.TPLSeries(backward, forward, budgets)
	if err != nil {
		log.Fatal(err)
	}
	for t := range budgets {
		fmt.Printf("  t=%2d  eps=%.4f  TPL=%.4f\n", t+1, budgets[t], fixed[t])
	}
	fmt.Printf("\nCost of correctness: noise scale grows from %.2f to %.2f per count (middle steps).\n",
		1/eps, 1/budgets[T/2])

	// If the adversary's knowledge is imperfect (smoothed chain), the
	// fine-grained planner works and recovers substantial utility.
	softF, err := softenChain(forward, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	softB, err := softenChain(backward, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	softPlan, err := tpl.PlanQuantified(softB, softF, eps, T)
	if err != nil {
		log.Fatal(err)
	}
	softBudgets, err := softPlan.Budgets(T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith an imperfect adversary (smoothed road network, s=0.05),\n")
	fmt.Printf("Algorithm 3 spends eps=%.4f mid-stream instead of %.4f.\n",
		softBudgets[T/2], budgets[T/2])
}
