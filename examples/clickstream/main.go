// Clickstream: publish page-visit counts from a web clickstream with
// differential privacy while accounting for the temporal correlation an
// adversary can learn from historical sessions.
//
// This is the "web page click streams" workload from the paper's
// introduction. Unlike the location example, the adversary here does
// not get a hand-written chain: it estimates one from past sessions by
// maximum likelihood (Section III-A), exactly as a real attacker would.
//
// Run with: go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/tpl"
)

// The site has 4 page categories: home, search, product, checkout.
var pages = []string{"home", "search", "product", "checkout"}

// browsing is the true (hidden) user behavior used to synthesize
// sessions: mostly home -> search -> product -> checkout funnels.
var browsing = [][]float64{
	{0.30, 0.50, 0.15, 0.05}, // from home
	{0.10, 0.20, 0.60, 0.10}, // from search
	{0.05, 0.25, 0.30, 0.40}, // from product
	{0.70, 0.10, 0.10, 0.10}, // from checkout
}

func main() {
	rng := rand.New(rand.NewSource(2024))
	truth, err := tpl.NewChain(browsing)
	if err != nil {
		log.Fatal(err)
	}

	// The adversary observed 500 historical sessions of ~30 clicks and
	// fits a Markov chain by MLE with light smoothing.
	var history [][]int
	for s := 0; s < 500; s++ {
		session := make([]int, 30)
		session[0] = 0 // sessions start at home
		for k := 1; k < len(session); k++ {
			session[k] = truth.Step(rng, session[k-1])
		}
		history = append(history, session)
	}
	learned, err := tpl.EstimateChain(len(pages), history, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adversary's learned forward correlation (MLE over 500 sessions):")
	fmt.Println(learned.P())

	// Backward correlation via Bayes at the stationary distribution.
	pi, err := learned.Stationary(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	backward, err := tpl.ReverseChain(learned, pi)
	if err != nil {
		log.Fatal(err)
	}

	// The analytics pipeline publishes per-page visit counts every
	// minute with a 0.5-DP Laplace mechanism, for 20 minutes.
	const (
		eps = 0.5
		T   = 20
	)
	acc := tpl.NewAccountant(backward, learned)
	for t := 0; t < T; t++ {
		if _, err := acc.Observe(eps); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nLeakage of %g-DP per minute over %d minutes:\n", eps, T)
	for _, t := range []int{1, 5, 10, 15, 20} {
		v, err := acc.TPL(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  minute %2d: TPL = %.4f\n", t, v)
	}
	worst, err := acc.MaxTPL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  worst case: the release satisfies %.4f-DP_T, not %.1f-DP\n", worst, eps)

	// Replan to honor the advertised 0.5 guarantee against this
	// adversary.
	plan, err := tpl.PlanQuantified(backward, learned, eps, T)
	if err != nil {
		log.Fatal(err)
	}
	budgets, err := plan.Budgets(T)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := tpl.MaxTPL(backward, learned, budgets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 3 replan: eps1=%.4f, middle=%.4f, epsT=%.4f -> max TPL %.4f\n",
		budgets[0], budgets[1], budgets[T-1], fixed)

	// Publish one minute of counts under the replanned budget.
	releaser, err := tpl.NewReleaser(plan, 1, rng)
	if err != nil {
		log.Fatal(err)
	}
	visits := []int{41, 23, 17, 6} // current true counts per page
	snapValues := make([]int, 0, 87)
	for page, c := range visits {
		for i := 0; i < c; i++ {
			snapValues = append(snapValues, page)
		}
	}
	snap, err := tpl.NewSnapshot(len(pages), snapValues)
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := releaser.Release(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFirst-minute release under the plan:")
	for i, p := range pages {
		fmt.Printf("  %-9s true %2d  noisy %6.1f\n", p, visits[i], noisy[i])
	}
}
