// Inference attack: run the paper's adversary for real. A victim's
// value is released repeatedly through an eps-DP randomized-response
// mechanism; an adversary who knows the victim's temporal correlation
// performs exact Bayesian inference over the output sequence. The demo
// shows (1) the posterior sharpening that a correlation-unaware analysis
// says cannot happen, and (2) that the exact leakage matches this
// library's analytical quantification.
//
// Run with: go run ./examples/inferenceattack
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/tpl"
)

func main() {
	const (
		eps   = 0.5 // per-release budget: "0.5-DP, every time"
		steps = 8
	)
	rng := rand.New(rand.NewSource(4))

	// The victim's value barely changes between releases and the
	// adversary knows it (e.g. home location across nights).
	sticky, err := tpl.NewChain([][]float64{{0.95, 0.05}, {0.05, 0.95}})
	if err != nil {
		log.Fatal(err)
	}
	mech, err := tpl.RandomizedResponse(eps, 2)
	if err != nil {
		log.Fatal(err)
	}
	mechs := make([]*tpl.DiscreteMechanism, steps)
	for i := range mechs {
		mechs[i] = mech
	}

	// Simulate: the victim's true value is 0 throughout; each release
	// reports it through randomized response.
	outputs := make([]int, steps)
	reportTrue := func() int {
		// Pr(report = value) = e^eps / (e^eps + 1).
		if rng.Float64() < 0.6225 {
			return 0
		}
		return 1
	}
	fmt.Printf("Victim's true value: 0 at every step. Releases (eps=%g each):\n  ", eps)
	for i := range outputs {
		outputs[i] = reportTrue()
		fmt.Printf("%d ", outputs[i])
	}
	fmt.Println()

	// The adversary's posterior after each prefix of observations.
	fmt.Println("\nAdversary's posterior Pr(value = 0 | outputs so far):")
	fmt.Println("t   correlation-aware  correlation-blind")
	for t := 1; t <= steps; t++ {
		aware, err := tpl.AdversaryPosterior(sticky, mechs[:t], outputs[:t])
		if err != nil {
			log.Fatal(err)
		}
		blind, err := tpl.AdversaryPosterior(nil, mechs[:t], outputs[:t])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %-18.4f %-18.4f\n", t, aware[0], blind[0])
	}
	fmt.Println("\nThe correlation-blind adversary never gets past the single-release")
	fmt.Println("posterior; the correlation-aware one converges on the victim.")

	// Quantify: exact leakage of this concrete release vs the
	// analytical bound from the paper's Algorithm 1.
	exact, err := tpl.ExactBPL(sticky, mechs)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := tpl.BPLSeries(sticky, tpl.UniformBudgets(eps, steps))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExact leakage of this release after %d steps: %.4f\n", steps, exact)
	fmt.Printf("Algorithm-1 analytical bound:                 %.4f\n", bound[steps-1])
	fmt.Printf("Nominal per-release guarantee:                %.4f\n", eps)
	fmt.Println("\nThe release was sold as 0.5-DP; against this adversary it leaks")
	fmt.Printf("%.1fx more. The analytical bound correctly dominates the exact value.\n",
		exact/eps)

	// Full trajectory reconstruction: the adversary models the release
	// as an HMM (states = values evolving by the sticky chain, emissions
	// = randomized-response outputs) and Viterbi-decodes the whole path.
	hmm, err := tpl.AttackHMM(sticky, mech, nil)
	if err != nil {
		log.Fatal(err)
	}
	path, _, err := hmm.Viterbi(outputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nViterbi trajectory reconstruction: %v\n", path)
	correct := 0
	for _, s := range path {
		if s == 0 {
			correct++
		}
	}
	fmt.Printf("%d/%d positions recovered (true trajectory is all zeros).\n",
		correct, len(path))
}
