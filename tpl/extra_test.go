package tpl_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/tpl"
)

func TestGroupPrivacyFacade(t *testing.T) {
	plan, err := tpl.PlanGroupPrivacy(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := plan.Budgets(5)
	if err != nil {
		t.Fatal(err)
	}
	// Sound even under the strongest correlation.
	id, err := tpl.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := tpl.MaxTPL(id, id, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1+1e-9 {
		t.Errorf("group plan leaks %v > alpha", worst)
	}
}

func TestMultiUserFacade(t *testing.T) {
	pb, pf := chains(t)
	weak, err := tpl.UniformChain(2)
	if err != nil {
		t.Fatal(err)
	}
	users := []tpl.UserModel{
		{Backward: pb, Forward: pf},
		{Backward: weak, Forward: weak, Alpha: 3},
	}
	mp, err := tpl.PlanQuantifiedMulti(users, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := tpl.MaxTPL(pb, pf, mp.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1+1e-9 {
		t.Errorf("combined plan leaks %v for the strict user", worst)
	}
	if _, err := tpl.PlanUpperBoundMulti(users, 1, 6); err != nil {
		t.Fatal(err)
	}
}

func TestHMMFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth, err := tpl.RandomHMM(rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, obs, err := truth.Sample(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := truth.BaumWelch([][]int{obs}, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := res.Model.Chain()
	if err != nil {
		t.Fatal(err)
	}
	// The learned chain plugs into the quantification directly.
	if _, err := tpl.BPLSeries(chain, tpl.UniformBudgets(0.1, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestWEventFacade(t *testing.T) {
	pb, pf := chains(t)
	plan, err := tpl.PlanWEvent(pb, pf, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eps <= 0 || plan.Eps > 1 {
		t.Errorf("eps = %v", plan.Eps)
	}
	budgets, err := plan.Budgets(40)
	if err != nil {
		t.Fatal(err)
	}
	// Event-level leakage per window never exceeds alpha (checked here
	// via the weaker full-series event max; the per-window invariant is
	// covered in internal/release).
	worst, err := tpl.MaxTPL(pb, pf, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1+1e-9 {
		t.Errorf("event-level leakage %v exceeds w-event target", worst)
	}
}

func TestGeometricFacade(t *testing.T) {
	g, err := tpl.NewGeometric(1, 1, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	out := g.ReleaseCounts([]int{3, 4})
	if len(out) != 2 {
		t.Fatalf("len %d", len(out))
	}
	if g.ExpectedAbsNoise() <= 0 {
		t.Error("noise figure should be positive")
	}
}

func TestAttackHMMFacade(t *testing.T) {
	sticky, err := tpl.NewChain([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	mech, err := tpl.RandomizedResponse(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hmm, err := tpl.AttackHMM(sticky, mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	path, _, err := hmm.Viterbi([]int{0, 0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Fatalf("path length %d", len(path))
	}
	// The sticky prior should absorb the single outlier.
	for i, s := range path {
		if s != 0 {
			t.Errorf("position %d: reconstructed %d, want 0", i, s)
		}
	}
	if _, err := tpl.AttackHMM(sticky, mech, []float64{0.7, 0.3}); err != nil {
		t.Errorf("explicit prior rejected: %v", err)
	}
}

func TestOptimizeNoiseFacade(t *testing.T) {
	pb, pf := chains(t)
	opt, err := tpl.PlanOptimizeNoise(pb, pf, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := opt.Budgets(4)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := tpl.MaxTPL(pb, pf, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1+1e-6 {
		t.Errorf("optimized plan leaks %v > alpha", worst)
	}
}

func TestPostProcessingFacade(t *testing.T) {
	noisy := []float64{-1, 4.2, 2.1}
	proj, err := tpl.ProjectToSimplex(append([]float64(nil), noisy...), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, v := range proj {
		if v < 0 {
			t.Errorf("negative cell %v", v)
		}
		s += v
	}
	if math.Abs(s-5) > 1e-9 {
		t.Errorf("sum = %v", s)
	}
	clamped := tpl.ClampNonNegative(append([]float64(nil), noisy...))
	if clamped[0] != 0 {
		t.Error("clamp failed")
	}
	ints := tpl.RoundCounts(noisy)
	if ints[0] != 0 || ints[1] != 4 || ints[2] != 2 {
		t.Errorf("rounded = %v", ints)
	}
}

func TestTPLSeriesVaryingFacade(t *testing.T) {
	pb, pf := chains(t)
	eps := tpl.UniformBudgets(0.1, 4)
	homo, err := tpl.TPLSeries(pb, pf, eps)
	if err != nil {
		t.Fatal(err)
	}
	vary, err := tpl.TPLSeriesVarying(
		[]*tpl.Chain{pb, pb, pb},
		[]*tpl.Chain{pf, pf, pf},
		eps,
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range homo {
		if math.Abs(homo[i]-vary[i]) > 1e-15 {
			t.Errorf("t=%d: varying %v vs homogeneous %v", i+1, vary[i], homo[i])
		}
	}
	// Mixed: no correlation on the last transition lowers late leakage.
	mixed, err := tpl.TPLSeriesVarying(
		[]*tpl.Chain{pb, pb, nil},
		[]*tpl.Chain{pf, pf, nil},
		eps,
	)
	if err != nil {
		t.Fatal(err)
	}
	if mixed[3] >= vary[3] {
		t.Errorf("uncorrelated final transition should lower TPL(4): %v vs %v", mixed[3], vary[3])
	}
}

func TestExactAdversaryFacade(t *testing.T) {
	pb, _ := chains(t)
	mech, err := tpl.RandomizedResponse(0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mechs := []*tpl.DiscreteMechanism{mech, mech, mech}
	exact, err := tpl.ExactBPL(pb, mechs)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := tpl.BPLSeries(pb, tpl.UniformBudgets(0.4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if exact > bound[2]+1e-9 {
		t.Errorf("exact %v exceeds bound %v", exact, bound[2])
	}
	post, err := tpl.AdversaryPosterior(pb, mechs, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post[0]+post[1]-1) > 1e-12 {
		t.Errorf("posterior not normalized: %v", post)
	}
	if post[0] <= 0.5 {
		t.Errorf("consistent zeros should favor value 0, got %v", post)
	}
}
