package tpl

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/release"
)

// This file exposes the extended surface beyond the paper's core
// algorithms: the group-DP bundle baseline, multi-user/personalized
// planning, unsupervised correlation learning (Baum-Welch), and the
// exact Bayesian adversary used to ground the leakage semantics.

// GroupPrivacyPlan is the bundle baseline of the paper's Section I:
// alpha/T per step, sound against any correlation (including the
// strongest), at the cost of over-perturbing weakly correlated data.
type GroupPrivacyPlan = release.GroupPrivacyPlan

// UserModel couples one user's adversary correlations with an optional
// personalized leakage target (Alpha <= 0 means "use the global one").
type UserModel = release.UserModel

// MultiPlan is a per-user plan set combined into one budget sequence
// satisfying every user (element-wise minimum).
type MultiPlan = release.MultiPlan

// HMM is a hidden Markov model; its Baum-Welch fit is the unsupervised
// route by which adversaries learn temporal correlations from
// observation sequences (Section III-A).
type HMM = markov.HMM

// BaumWelchResult reports an EM fit.
type BaumWelchResult = markov.BaumWelchResult

// DiscreteMechanism is a concrete finite-output randomized mechanism
// for the exact-adversary validation tools.
type DiscreteMechanism = adversary.DiscreteMechanism

// WEventPlan bounds the leakage of every w-length sliding window by
// alpha for releases of unbounded length (w-event privacy under
// temporal correlations).
type WEventPlan = release.WEventPlan

// Geometric is the eps-DP geometric mechanism: integral two-sided
// geometric noise, the discrete analogue of Laplace.
type Geometric = mechanism.Geometric

// PlanGroupPrivacy builds the alpha/T bundle baseline for T steps.
func PlanGroupPrivacy(alpha float64, T int) (*GroupPrivacyPlan, error) {
	return release.GroupPrivacy(alpha, T)
}

// PlanWEvent builds a constant-budget plan bounding every w-window's
// temporal privacy leakage by alpha, for any release length.
func PlanWEvent(pb, pf *Chain, alpha float64, w int) (*WEventPlan, error) {
	return release.WEvent(pb, pf, alpha, w)
}

// OptimizedPlan is a budget vector found by local search that minimizes
// the mean expected absolute noise subject to the alpha-DP_T constraint
// — an extension beyond the paper showing Algorithm 3's exact pinning
// leaves some utility on the table at short horizons.
type OptimizedPlan = release.OptimizedPlan

// PlanOptimizeNoise runs the mean-noise local search over a horizon of
// T steps (sweeps 0 = default).
func PlanOptimizeNoise(pb, pf *Chain, alpha float64, T, sweeps int) (*OptimizedPlan, error) {
	return release.OptimizeNoise(pb, pf, alpha, T, sweeps)
}

// NewGeometric builds an eps-DP geometric mechanism for integer counts
// with integer L1 sensitivity; rng may be nil for a deterministic
// source.
func NewGeometric(eps float64, sensitivity int, rng *rand.Rand) (*Geometric, error) {
	return mechanism.NewGeometric(eps, sensitivity, rng)
}

// PlanUpperBoundMulti runs Algorithm 2 per user and combines the plans
// (the paper's min over users), materialized for T steps.
func PlanUpperBoundMulti(users []UserModel, globalAlpha float64, T int) (*MultiPlan, error) {
	return release.UpperBoundMulti(users, globalAlpha, T)
}

// PlanQuantifiedMulti runs Algorithm 3 per user over a common horizon
// and combines the plans.
func PlanQuantifiedMulti(users []UserModel, globalAlpha float64, T int) (*MultiPlan, error) {
	return release.QuantifiedMulti(users, globalAlpha, T)
}

// RandomHMM returns a randomly initialized HMM for EM restarts.
func RandomHMM(rng *rand.Rand, states, symbols int) (*HMM, error) {
	return markov.RandomHMM(rng, states, symbols)
}

// RandomizedResponse builds the n-ary eps-DP randomized-response
// mechanism (PL0 exactly eps) for the exact-adversary tools.
func RandomizedResponse(eps float64, n int) (*DiscreteMechanism, error) {
	return adversary.RandomizedResponse(eps, n)
}

// ExactBPL computes, by exhaustive output-sequence enumeration, the true
// backward privacy leakage of the concrete mechanism sequence against an
// adversary with backward correlation pb. It is exponential in
// len(mechs) and intended for validation on small instances; the
// analytical BPLSeries bound must always dominate it.
func ExactBPL(pb *Chain, mechs []*DiscreteMechanism) (float64, error) {
	return adversary.ExactBPL(pb, mechs)
}

// ClampNonNegative zeroes negative noisy counts in place (DP-safe
// post-processing).
func ClampNonNegative(noisy []float64) []float64 { return mechanism.ClampNonNegative(noisy) }

// ProjectToSimplex projects a noisy histogram onto {x >= 0, sum = total}
// in L2 — the optimal DP-safe repair when the population size is public.
func ProjectToSimplex(noisy []float64, total float64) ([]float64, error) {
	return mechanism.ProjectToSimplex(noisy, total)
}

// RoundCounts rounds noisy counts to non-negative integers for
// presentation (DP-safe post-processing).
func RoundCounts(noisy []float64) []int { return mechanism.RoundCounts(noisy) }

// TPLSeriesVarying extends TPLSeries to time-inhomogeneous
// correlations: pbs[t-1] and pfs[t-1] describe the transition between
// steps t and t+1 (both slices have length len(eps)-1; nil entries mean
// no correlation for that transition). The paper assumes one
// time-homogeneous chain; the recurrences generalize directly because
// each step only consults the loss function of its own transition.
func TPLSeriesVarying(pbs, pfs []*Chain, eps []float64) ([]float64, error) {
	qbs := make([]*Quantifier, len(pbs))
	for i, c := range pbs {
		qbs[i] = core.NewQuantifier(c)
	}
	qfs := make([]*Quantifier, len(pfs))
	for i, c := range pfs {
		qfs[i] = core.NewQuantifier(c)
	}
	return core.TPLSeriesVarying(qbs, qfs, eps)
}

// AdversaryPosterior runs the Bayesian inference attack of Example 1:
// the adversary's posterior over the victim's current value after
// observing the given outputs, propagated through pb from a uniform
// prior.
func AdversaryPosterior(pb *Chain, mechs []*DiscreteMechanism, outputs []int) ([]float64, error) {
	v, err := adversary.Posterior(pb, mechs, outputs)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// AttackHMM assembles the adversary's generative model of a noisy
// release (hidden states = the victim's values under the forward chain,
// emissions = the mechanism's outputs). Viterbi decoding on it is the
// MAP trajectory-reconstruction attack. initial may be nil for a
// uniform prior.
func AttackHMM(forward *Chain, mech *DiscreteMechanism, initial []float64) (*HMM, error) {
	var init matrix.Vector
	if initial != nil {
		init = matrix.Vector(initial)
	}
	return adversary.AttackHMM(forward, mech, init)
}
