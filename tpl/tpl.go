// Package tpl is the public API of this reproduction of "Quantifying
// Differential Privacy under Temporal Correlations" (Cao, Yoshikawa,
// Xiao, Xiong - ICDE 2017).
//
// It quantifies and bounds the temporal privacy leakage (TPL) of
// differentially private mechanisms that release statistics continuously
// over data whose evolution an adversary can model as a Markov chain.
//
// # Quick orientation
//
// Model the adversary's knowledge as transition matrices:
//
//	pb, _ := tpl.NewChain([][]float64{{0.8, 0.2}, {0, 1}})   // Pr(l_{t-1} | l_t)
//	pf, _ := tpl.NewChain([][]float64{{0.8, 0.2}, {0.1, 0.9}}) // Pr(l_t | l_{t-1})
//
// Quantify the leakage of releasing with budget eps at each time point:
//
//	series, _ := tpl.TPLSeries(pb, pf, tpl.UniformBudgets(0.1, 10))
//
// Or track it online with an Accountant:
//
//	acc := tpl.NewAccountant(pb, pf)
//	acc.Observe(0.1)
//	alpha, _ := acc.MaxTPL() // the achieved alpha-DP_T level
//
// Bound it with a release plan (the paper's Algorithms 2 and 3):
//
//	plan, _ := tpl.PlanUpperBound(pb, pf, 1.0)      // any horizon
//	plan, _ := tpl.PlanQuantified(pb, pf, 1.0, 20)  // known horizon, exact
//
// and publish noisy counts under the plan with a Releaser, or run the
// whole pipeline with a stream.Server (see package repro/internal/stream
// through the facade's NewServer).
//
// All leakage values are natural-log epsilons, directly comparable to
// standard differential-privacy budgets.
package tpl

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/release"
	"repro/internal/stream"
)

// Chain is a time-homogeneous Markov chain describing a temporal
// correlation (Definition 3 of the paper). Row i holds the distribution
// of the next (forward chain) or previous (backward chain) value given
// value i.
type Chain = markov.Chain

// Quantifier evaluates the paper's temporal privacy loss functions for a
// fixed transition matrix (Algorithm 1). A nil Quantifier means "no
// correlation known to the adversary".
type Quantifier = core.Quantifier

// Accountant tracks backward, forward and total temporal privacy
// leakage of an ongoing continuous release.
type Accountant = core.Accountant

// LossResult reports a loss-function evaluation together with the
// maximizing transition-matrix row pair.
type LossResult = core.LossResult

// Plan allocates per-time-step privacy budgets guaranteeing alpha-DP_T.
type Plan = release.Plan

// UpperBoundPlan is Algorithm 2's output: one constant budget bounding
// the leakage supremum for any release length.
type UpperBoundPlan = release.UpperBoundPlan

// QuantifiedPlan is Algorithm 3's output for a known finite horizon:
// leakage pinned exactly at alpha at every time point.
type QuantifiedPlan = release.QuantifiedPlan

// Releaser publishes noisy histograms step by step under a Plan.
type Releaser = release.Releaser

// Laplace is the eps-DP Laplace mechanism (Theorem 1).
type Laplace = mechanism.Laplace

// Snapshot is one time step's database: each user's current value.
type Snapshot = mechanism.Snapshot

// Server is the continuous-release trusted aggregator with built-in
// leakage accounting per user.
type Server = stream.Server

// AdversaryModel declares which correlations an adversary knows about a
// user; either chain may be nil.
type AdversaryModel = stream.AdversaryModel

// Report summarizes the privacy guarantee of a Server's releases.
type Report = stream.Report

// ErrStrongestCorrelation is returned by the planners when the
// correlation is so strong that no positive budget bounds the leakage.
var ErrStrongestCorrelation = release.ErrStrongestCorrelation

// NewChain validates a row-stochastic matrix given as row slices and
// wraps it as a Chain.
func NewChain(rows [][]float64) (*Chain, error) { return markov.FromRows(rows) }

// NewQuantifier prepares Algorithm-1 evaluation for a chain. A nil chain
// yields a nil Quantifier (no correlation; zero loss function).
func NewQuantifier(c *Chain) *Quantifier { return core.NewQuantifier(c) }

// NewAccountant builds an online leakage tracker for an adversary with
// the given backward and forward correlations (either may be nil).
func NewAccountant(pb, pf *Chain) *Accountant { return core.NewAccountant(pb, pf) }

// UniformBudgets returns T copies of eps, the common "same mechanism at
// every time point" workload.
func UniformBudgets(eps float64, T int) []float64 { return core.UniformBudgets(eps, T) }

// BPLSeries computes backward privacy leakage at every time point for
// the per-step budgets eps against backward correlation pb (Eq. 13).
func BPLSeries(pb *Chain, eps []float64) ([]float64, error) {
	return core.BPLSeries(core.NewQuantifier(pb), eps)
}

// FPLSeries computes forward privacy leakage at every time point against
// forward correlation pf (Eq. 15).
func FPLSeries(pf *Chain, eps []float64) ([]float64, error) {
	return core.FPLSeries(core.NewQuantifier(pf), eps)
}

// TPLSeries computes total temporal privacy leakage at every time point
// (Eq. 10/11): the alpha of alpha-DP_T at each t.
func TPLSeries(pb, pf *Chain, eps []float64) ([]float64, error) {
	return core.TPLSeries(core.NewQuantifier(pb), core.NewQuantifier(pf), eps)
}

// MaxTPL returns the worst-case TPL across all time points: the overall
// alpha-DP_T level of the release.
func MaxTPL(pb, pf *Chain, eps []float64) (float64, error) {
	return core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf), eps)
}

// Supremum returns the limit of BPL (or FPL) over infinite time for an
// eps-DP mechanism at every step under the given correlation, and
// whether that limit exists (Theorem 5).
func Supremum(c *Chain, eps float64) (float64, bool) {
	return core.Supremum(core.NewQuantifier(c), eps)
}

// UserLevelTPL is Corollary 1: user-level leakage equals the plain sum
// of per-step budgets regardless of temporal correlations.
func UserLevelTPL(eps []float64) float64 { return core.UserLevelTPL(eps) }

// PlanUpperBound runs Algorithm 2: one constant per-step budget bounding
// TPL by alpha for any (even unknown) release length.
func PlanUpperBound(pb, pf *Chain, alpha float64) (*UpperBoundPlan, error) {
	return release.UpperBound(pb, pf, alpha)
}

// PlanQuantified runs Algorithm 3: budgets for a known horizon T that
// hold TPL exactly at alpha at every time point.
func PlanQuantified(pb, pf *Chain, alpha float64, T int) (*QuantifiedPlan, error) {
	return release.Quantified(pb, pf, alpha, T)
}

// NewReleaser publishes noisy histograms under a plan with the given
// query sensitivity; rng may be nil for a deterministic source.
func NewReleaser(plan Plan, sensitivity float64, rng *rand.Rand) (*Releaser, error) {
	return release.NewReleaser(plan, sensitivity, rng)
}

// NewLaplace builds an eps-DP Laplace mechanism with the given L1
// sensitivity; rng may be nil for a deterministic source.
func NewLaplace(eps, sensitivity float64, rng *rand.Rand) (*Laplace, error) {
	return mechanism.NewLaplace(eps, sensitivity, rng)
}

// NewSnapshot validates one time step's user values over the domain
// {0, ..., domain-1}.
func NewSnapshot(domain int, values []int) (*Snapshot, error) {
	return mechanism.NewSnapshot(domain, values)
}

// NewServer creates the continuous-release aggregator of the paper's
// problem setting, with one adversary model per user.
func NewServer(domain, users int, models []AdversaryModel, rng *rand.Rand) (*Server, error) {
	return stream.NewServer(domain, users, models, rng)
}

// IdentityChain returns the strongest temporal correlation over n
// values: each value deterministically repeats.
func IdentityChain(n int) (*Chain, error) { return markov.IdentityChain(n) }

// UniformChain returns the no-correlation chain over n values.
func UniformChain(n int) (*Chain, error) { return markov.UniformChain(n) }

// SmoothedChain generates the paper's graded-correlation workload: a
// random strongest-correlation matrix smoothed by Eq. (25) with
// parameter s (smaller s = stronger correlation).
func SmoothedChain(rng *rand.Rand, n int, s float64) (*Chain, error) {
	return markov.Smoothed(rng, n, s)
}

// EstimateChain fits a forward transition matrix to observed trajectories
// by maximum likelihood with optional Laplace smoothing — the route the
// paper names for adversaries learning correlations from historical data.
func EstimateChain(n int, traces [][]int, pseudocount float64) (*Chain, error) {
	return markov.EstimateMLE(n, traces, pseudocount)
}

// ReverseChain derives the backward correlation from a forward chain and
// the marginal distribution of the earlier time step via Bayes' rule
// (Section III-A).
func ReverseChain(forward *Chain, prior []float64) (*Chain, error) {
	return forward.Reverse(matrix.Vector(prior))
}
