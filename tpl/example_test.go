package tpl_test

import (
	"fmt"
	"log"

	"repro/tpl"
)

// ExampleTPLSeries quantifies the event-level leakage of a 0.1-DP
// mechanism released at 10 consecutive time points against an adversary
// who knows the paper's moderate temporal correlation — reproducing the
// printed values of the paper's Fig. 3.
func ExampleTPLSeries() {
	chain, err := tpl.NewChain([][]float64{
		{0.8, 0.2},
		{0.0, 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	series, err := tpl.TPLSeries(chain, chain, tpl.UniformBudgets(0.1, 10))
	if err != nil {
		log.Fatal(err)
	}
	for t, v := range series {
		fmt.Printf("t=%d TPL=%.2f\n", t+1, v)
	}
	// Output:
	// t=1 TPL=0.50
	// t=2 TPL=0.56
	// t=3 TPL=0.60
	// t=4 TPL=0.62
	// t=5 TPL=0.64
	// t=6 TPL=0.64
	// t=7 TPL=0.62
	// t=8 TPL=0.60
	// t=9 TPL=0.56
	// t=10 TPL=0.50
}

// ExampleSupremum asks whether the leakage of a repeated 0.15-DP release
// stays bounded forever under the paper's moderate correlation
// (Fig. 4(c): it saturates near 1.19) and under a budget just past the
// threshold (Fig. 4(b): it does not).
func ExampleSupremum() {
	chain, err := tpl.NewChain([][]float64{
		{0.8, 0.2},
		{0.0, 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	if sup, ok := tpl.Supremum(chain, 0.15); ok {
		fmt.Printf("eps=0.15: bounded at %.2f\n", sup)
	}
	if _, ok := tpl.Supremum(chain, 0.23); !ok {
		fmt.Println("eps=0.23: grows without bound")
	}
	// Output:
	// eps=0.15: bounded at 1.19
	// eps=0.23: grows without bound
}

// ExamplePlanQuantified converts a 1-DP_T target over a known 6-step
// horizon into per-step budgets that hold the temporal privacy leakage
// at exactly 1 at every time point (the paper's Algorithm 3).
func ExamplePlanQuantified() {
	pb, err := tpl.NewChain([][]float64{{0.8, 0.2}, {0.2, 0.8}})
	if err != nil {
		log.Fatal(err)
	}
	pf, err := tpl.NewChain([][]float64{{0.8, 0.2}, {0.1, 0.9}})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tpl.PlanQuantified(pb, pf, 1.0, 6)
	if err != nil {
		log.Fatal(err)
	}
	budgets, err := plan.Budgets(6)
	if err != nil {
		log.Fatal(err)
	}
	tplSeries, err := tpl.TPLSeries(pb, pf, budgets)
	if err != nil {
		log.Fatal(err)
	}
	for t := range budgets {
		fmt.Printf("t=%d eps=%.3f TPL=%.3f\n", t+1, budgets[t], tplSeries[t])
	}
	// Output:
	// t=1 eps=0.500 TPL=1.000
	// t=2 eps=0.204 TPL=1.000
	// t=3 eps=0.204 TPL=1.000
	// t=4 eps=0.204 TPL=1.000
	// t=5 eps=0.204 TPL=1.000
	// t=6 eps=0.704 TPL=1.000
}

// ExampleAccountant tracks the achieved alpha-DP_T level of an ongoing
// release online, showing how past leakage accumulates and future
// releases retroactively increase the leakage of earlier time points.
func ExampleAccountant() {
	chain, err := tpl.NewChain([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if err != nil {
		log.Fatal(err)
	}
	acc := tpl.NewAccountant(chain, chain)
	for i := 0; i < 3; i++ {
		if _, err := acc.Observe(0.2); err != nil {
			log.Fatal(err)
		}
	}
	alpha, err := acc.MaxTPL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 3 releases of 0.2-DP: %.4f-DP_T\n", alpha)
	fmt.Printf("user-level so far: %.1f\n", acc.UserLevel())
	// Output:
	// after 3 releases of 0.2-DP: 0.4823-DP_T
	// user-level so far: 0.6
}
