package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// StepsOption configures one Steps/StepsNDJSON call.
type StepsOption func(*stepsConfig)

type stepsConfig struct {
	key   string
	noKey bool
}

// WithIdempotencyKey pins the batch's idempotency key (default: a
// fresh generated key per call). Reuse a pinned key only to retry the
// exact same batch.
func WithIdempotencyKey(key string) StepsOption {
	return func(sc *stepsConfig) { sc.key = key }
}

// WithoutIdempotency sends the batch with no key. The call is then not
// retried — an ambiguous failure could otherwise double-charge the
// batch.
func WithoutIdempotency() StepsOption {
	return func(sc *stepsConfig) { sc.noKey = true }
}

// stepsPath is the batch ingestion endpoint for one session.
func stepsPath(session string) string {
	return "/v2/sessions/" + url.PathEscape(session) + "/steps"
}

// postBatch sends one encoded batch body with the configured
// idempotency behavior.
func (c *Client) postBatch(ctx context.Context, session, contentType string, body []byte, opts []StepsOption) (BatchResult, error) {
	var sc stepsConfig
	for _, opt := range opts {
		opt(&sc)
	}
	header := http.Header{}
	idempotent := false
	if !sc.noKey {
		key := sc.key
		if key == "" {
			key = newIdempotencyKey()
		}
		header.Set("Idempotency-Key", key)
		idempotent = true
	}
	var res BatchResult
	_, err := c.doSession(ctx, session, http.MethodPost, stepsPath(session), header, contentType, body, idempotent, &res)
	return res, err
}

// Steps ingests a batch of time steps atomically: the server applies
// the whole batch or none of it. A generated Idempotency-Key makes the
// call retry-safe (see WithoutIdempotency to opt out).
func (c *Client) Steps(ctx context.Context, session string, steps []Step, opts ...StepsOption) (BatchResult, error) {
	if len(steps) == 0 {
		return BatchResult{}, fmt.Errorf("client: empty batch")
	}
	body, err := json.Marshal(steps)
	if err != nil {
		return BatchResult{}, fmt.Errorf("client: encoding batch: %w", err)
	}
	return c.postBatch(ctx, session, "application/json", body, opts)
}

// StepsNDJSON ingests a batch as an NDJSON stream (one step per line)
// — the same atomic semantics as Steps with a body the server can
// decode incrementally; the high-throughput shape the load generator
// and benchmarks use.
func (c *Client) StepsNDJSON(ctx context.Context, session string, steps []Step, opts ...StepsOption) (BatchResult, error) {
	if len(steps) == 0 {
		return BatchResult{}, fmt.Errorf("client: empty batch")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range steps {
		if err := enc.Encode(&steps[i]); err != nil {
			return BatchResult{}, fmt.Errorf("client: encoding batch: %w", err)
		}
	}
	return c.postBatch(ctx, session, "application/x-ndjson", buf.Bytes(), opts)
}

// BatchWriter buffers steps and flushes them as idempotent batches by
// size or by interval — the streaming front door for telemetry
// pipelines. Not safe for concurrent Add from multiple goroutines
// unless stated: it is, via an internal mutex.
type BatchWriter struct {
	c       *Client
	session string
	ctx     context.Context

	flushSize int
	interval  time.Duration
	onResult  func(BatchResult)

	mu     sync.Mutex
	buf    []Step
	err    error
	closed bool

	stop chan struct{}
	done chan struct{}
}

// WriterOption configures a BatchWriter.
type WriterOption func(*BatchWriter)

// WithFlushSize sets how many buffered steps trigger a flush
// (default 64).
func WithFlushSize(n int) WriterOption {
	return func(w *BatchWriter) {
		if n > 0 {
			w.flushSize = n
		}
	}
}

// WithFlushInterval sets the background flush cadence (default 500ms;
// 0 disables time-based flushing).
func WithFlushInterval(d time.Duration) WriterOption {
	return func(w *BatchWriter) { w.interval = d }
}

// WithResultHandler registers a callback invoked (on the flushing
// goroutine) with each flushed batch's result.
func WithResultHandler(fn func(BatchResult)) WriterOption {
	return func(w *BatchWriter) { w.onResult = fn }
}

// NewBatchWriter builds a streaming writer for one session. ctx bounds
// every flush the writer performs (including background ones); Close
// flushes the remainder.
func (c *Client) NewBatchWriter(ctx context.Context, session string, opts ...WriterOption) *BatchWriter {
	w := &BatchWriter{
		c:         c,
		session:   session,
		ctx:       ctx,
		flushSize: 64,
		interval:  500 * time.Millisecond,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(w)
	}
	go w.loop()
	return w
}

// loop drives interval flushes until Close.
func (w *BatchWriter) loop() {
	defer close(w.done)
	if w.interval <= 0 {
		<-w.stop
		return
	}
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			w.flushLocked()
			w.mu.Unlock()
		}
	}
}

// Add buffers one step, flushing when the buffer reaches the flush
// size. It reports the first flush error the writer has hit (the
// writer latches it and drops later steps — continuous pipelines check
// Add's error or Close's).
func (w *BatchWriter) Add(step Step) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("client: BatchWriter is closed")
	}
	if w.err != nil {
		return w.err
	}
	w.buf = append(w.buf, step)
	if len(w.buf) >= w.flushSize {
		w.flushLocked()
	}
	return w.err
}

// flushLocked sends the buffered steps as one NDJSON batch. Caller
// holds w.mu.
func (w *BatchWriter) flushLocked() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	steps := w.buf
	w.buf = nil
	res, err := w.c.StepsNDJSON(w.ctx, w.session, steps)
	if err != nil {
		w.err = err
		return
	}
	if w.onResult != nil {
		w.onResult(res)
	}
}

// Flush sends whatever is buffered now.
func (w *BatchWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	return w.err
}

// Close stops the background flusher, flushes the remainder, and
// returns the writer's first error.
func (w *BatchWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return w.err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	return w.err
}
