package client

import "time"

// Wire types. The SDK owns its DTOs (rather than exposing internal
// packages) so the client API is importable from anywhere; the JSON
// shapes are the service's wire contract, conformance-tested against
// it in this package's tests.

// Chain is a row-stochastic transition matrix in the service's JSON
// encoding.
type Chain struct {
	Rows [][]float64 `json:"rows"`
}

// Model declares one adversary's temporal correlations; either chain
// may be absent (both absent = the traditional DP adversary).
// Alternatively Ref names a model from the server's active bundle
// (management plane) instead of inlining chains; a ref is resolved
// once, at session creation, against the bundle revision active at
// that moment — later bundle activations never rebind the session.
type Model struct {
	Backward *Chain `json:"backward,omitempty"`
	Forward  *Chain `json:"forward,omitempty"`
	Ref      string `json:"ref,omitempty"`
}

// Cohort declares a block of users sharing one adversary model.
type Cohort struct {
	Users int   `json:"users"`
	Model Model `json:"model"`
}

// PlanSpec attaches a release plan at session creation. Kind is
// "upper-bound", "quantified" (needs Horizon) or "w-event" (needs W).
type PlanSpec struct {
	Kind    string  `json:"kind"`
	Alpha   float64 `json:"alpha"`
	Horizon int     `json:"horizon,omitempty"`
	W       int     `json:"w,omitempty"`
	Model   *Model  `json:"model,omitempty"`
}

// SessionConfig is the create-session request body. Declare the
// population exactly one way: Cohorts (recommended at scale), Models
// (one per user), or bare Users (everyone a traditional DP adversary).
type SessionConfig struct {
	Name        string    `json:"name"`
	Domain      int       `json:"domain"`
	Users       int       `json:"users,omitempty"`
	Models      []Model   `json:"models,omitempty"`
	Cohorts     []Cohort  `json:"cohorts,omitempty"`
	Noise       string    `json:"noise,omitempty"`
	Sensitivity float64   `json:"sensitivity,omitempty"`
	Seed        int64     `json:"seed,omitempty"`
	Plan        *PlanSpec `json:"plan,omitempty"`
}

// PersistInfo is the session summary's durability digest (absent in
// ephemeral mode).
type PersistInfo struct {
	LastSnapshotT   int       `json:"last_snapshot_t"`
	LastSnapshotAt  time.Time `json:"last_snapshot_at"`
	JournalRecords  int       `json:"journal_records"`
	NoiseProvenance string    `json:"noise_provenance"`
	Error           string    `json:"error,omitempty"`
}

// Summary is the service's session digest.
type Summary struct {
	Name        string  `json:"name"`
	Domain      int     `json:"domain"`
	Users       int     `json:"users"`
	Cohorts     int     `json:"cohorts"`
	T           int     `json:"t"`
	Noise       string  `json:"noise"`
	Sensitivity float64 `json:"sensitivity"`
	HasPlan     bool    `json:"has_plan"`
	PlanStep    int     `json:"plan_step,omitempty"`
	PlanHorizon int     `json:"plan_horizon,omitempty"`
	// ModelRevision is the bundle revision the session's model refs
	// resolved against at creation ("" when every model was inline).
	ModelRevision string       `json:"model_revision,omitempty"`
	Created       time.Time    `json:"created"`
	Persistence   *PersistInfo `json:"persistence,omitempty"`
}

// Step is one time step of a batch: per-user Values or a pre-
// aggregated Counts histogram (the compact shape at scale), with an
// optional explicit budget (nil = draw from the session's plan).
type Step struct {
	Values []int    `json:"values,omitempty"`
	Counts []int    `json:"counts,omitempty"`
	Eps    *float64 `json:"eps,omitempty"`
}

// Eps is a convenience for Step literals: Eps(0.1) returns &0.1.
func Eps(v float64) *float64 { return &v }

// StepResult reports one landed step.
type StepResult struct {
	T         int       `json:"t"`
	Eps       float64   `json:"eps"`
	Planned   bool      `json:"planned"`
	Published []float64 `json:"published"`
}

// BatchResult is the batch-ingestion response. Replayed means the
// server answered from its idempotency memory — the batch had already
// been applied by an earlier attempt.
type BatchResult struct {
	Results  []StepResult `json:"results"`
	Count    int          `json:"count"`
	FirstT   int          `json:"first_t"`
	LastT    int          `json:"last_t"`
	Replayed bool         `json:"replayed,omitempty"`
}

// Report is the Definition-8 guarantee summary.
type Report struct {
	T                 int     `json:"t"`
	EventLevelAlpha   float64 `json:"event_level_alpha"`
	WorstUser         int     `json:"worst_user"`
	UserLevel         float64 `json:"user_level"`
	NominalEventLevel float64 `json:"nominal_event_level"`
}

// PersistenceHealth is the healthz durability block.
type PersistenceHealth struct {
	Mode                   string   `json:"mode"`
	StateDir               string   `json:"state_dir,omitempty"`
	SnapshotEvery          int      `json:"snapshot_every,omitempty"`
	LastSnapshotAgeSeconds *float64 `json:"last_snapshot_age_seconds,omitempty"`
	SessionsWithErrors     int      `json:"sessions_with_errors,omitempty"`
}

// EngineCacheHealth is the healthz engine_cache block: the on-disk
// compiled-engine cache's counters. Present only when the server runs
// with -engine-cache-dir.
type EngineCacheHealth struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Loads     int64 `json:"loads"`
	LoadNs    int64 `json:"load_ns"`
	Stores    int64 `json:"stores"`
	WriteNs   int64 `json:"write_ns"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// PluginStatus is one management-plane plugin's healthz block.
type PluginStatus struct {
	State   string         `json:"state"`
	Message string         `json:"message,omitempty"`
	Detail  map[string]any `json:"detail,omitempty"`
}

// Health is the GET /healthz response. Plugins is present only when
// the server runs with a management-plane config.
type Health struct {
	Status        string                  `json:"status"`
	Version       string                  `json:"version"`
	Sessions      int                     `json:"sessions"`
	Users         int                     `json:"users"`
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Persistence   PersistenceHealth       `json:"persistence"`
	EngineCache   *EngineCacheHealth      `json:"engine_cache,omitempty"`
	Plugins       map[string]PluginStatus `json:"plugins,omitempty"`
}

// PublishedItem is one step of the paginated release history.
type PublishedItem struct {
	T         int       `json:"t"`
	Eps       float64   `json:"eps"`
	Published []float64 `json:"published"`
}

// PublishedPage is one page of GET /v2/.../published. NextCursor is
// empty on the last page.
type PublishedPage struct {
	T          int             `json:"t"`
	Items      []PublishedItem `json:"items"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// TPLItem is one point of the paginated TPL series.
type TPLItem struct {
	T   int     `json:"t"`
	TPL float64 `json:"tpl"`
}

// TPLPage is one page of GET /v2/.../tpl.
type TPLPage struct {
	User       int       `json:"user"`
	T          int       `json:"t"`
	Items      []TPLItem `json:"items"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// WEventResult is the w-window leakage answer.
type WEventResult struct {
	W       int     `json:"w"`
	User    int     `json:"user"`
	Leakage float64 `json:"leakage"`
}

// SnapshotInfo is the force-snapshot response.
type SnapshotInfo struct {
	Name        string      `json:"name"`
	T           int         `json:"t"`
	Persistence PersistInfo `json:"persistence"`
}

// TopologyShard is one shard of the cluster topology document.
type TopologyShard struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Topology is the GET /v2/topology response: the versioned placement
// document mapping sessions to shards (consistent hashing over
// RingSize slots, plus explicit per-session overrides from
// migrations). Version increases on every observable change.
type Topology struct {
	Version   int               `json:"version"`
	RingSize  int               `json:"ring_size"`
	Shards    []TopologyShard   `json:"shards"`
	Overrides map[string]string `json:"overrides,omitempty"`
}

// WatchEvent is one SSE "step" frame: the population-worst leakage at
// a just-published step. Planned is advisory and live-only — frames
// replayed from history (Watch from >= 0, or a reconnect) report it
// false because history does not retain which budgets the plan
// charged.
type WatchEvent struct {
	T         int     `json:"t"`
	Eps       float64 `json:"eps"`
	Planned   bool    `json:"planned"`
	TPL       float64 `json:"tpl"`
	BPL       float64 `json:"bpl"`
	FPL       float64 `json:"fpl"`
	WorstUser int     `json:"worst_user"`
}
