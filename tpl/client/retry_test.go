package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/tpl/client"
)

// failMode scripts what the flaky proxy does to one steps request.
type failMode int

const (
	passThrough failMode = iota
	// failBefore rejects with a 500 before the service sees the request
	// — the batch is never applied.
	failBefore
	// failAfter lets the service apply the batch, then replaces the
	// response with a 500 — the classic ambiguous failure.
	failAfter
	// dropAfter lets the service apply the batch, then kills the
	// connection mid-response (the client sees a transport error).
	dropAfter
	// stallAfter lets the service apply the batch, then stalls past the
	// client's timeout.
	stallAfter
)

// flakyHandler wraps the service handler and misbehaves, per script,
// on POST .../steps requests. All other traffic passes through.
type flakyHandler struct {
	h http.Handler

	mu     sync.Mutex
	script []failMode
	hits   int
}

func (f *flakyHandler) next(r *http.Request) failMode {
	if r.Method != http.MethodPost || !strings.HasSuffix(r.URL.Path, "/steps") {
		return passThrough
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits++
	if len(f.script) == 0 {
		return passThrough
	}
	mode := f.script[0]
	f.script = f.script[1:]
	return mode
}

func (f *flakyHandler) push(modes ...failMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = append(f.script, modes...)
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch f.next(r) {
	case failBefore:
		http.Error(w, `{"code":"internal","title":"injected","status":500}`, http.StatusInternalServerError)
	case failAfter:
		rec := httptest.NewRecorder()
		f.h.ServeHTTP(rec, r) // the service really applies the batch
		http.Error(w, `{"code":"internal","title":"injected after apply","status":500}`, http.StatusInternalServerError)
	case dropAfter:
		rec := httptest.NewRecorder()
		f.h.ServeHTTP(rec, r)
		panic(http.ErrAbortHandler) // net/http closes the connection, no response
	case stallAfter:
		rec := httptest.NewRecorder()
		f.h.ServeHTTP(rec, r)
		time.Sleep(2 * time.Second) // past the client's timeout
	default:
		f.h.ServeHTTP(w, r)
	}
}

// TestRetryExactlyOnce injects 500s, connection drops, and timeouts
// around batches that the server did or did not apply, and asserts the
// client's idempotent retries land every batch exactly once: the final
// step count, budgets and TPL series match an unfailed control run
// bit for bit.
func TestRetryExactlyOnce(t *testing.T) {
	ctx := context.Background()
	flaky := &flakyHandler{h: service.NewAPI().Handler()}
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	c, err := client.New(srv.URL,
		client.WithRetries(4),
		client.WithBackoff(5*time.Millisecond, 40*time.Millisecond),
		client.WithHTTPClient(&http.Client{Timeout: 500 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	mkSession(t, c, "flaky")

	batches := [][]client.Step{
		{{Values: []int{0, 1, 0, 1, 1}, Eps: client.Eps(0.1)}, {Values: []int{1, 0, 1, 0, 0}, Eps: client.Eps(0.2)}},
		{{Values: []int{0, 0, 1, 1, 1}, Eps: client.Eps(0.1)}},
		{{Counts: []int{3, 2}, Eps: client.Eps(0.3)}, {Counts: []int{1, 4}, Eps: client.Eps(0.1)}},
		{{Values: []int{1, 1, 1, 0, 0}, Eps: client.Eps(0.2)}},
	}
	scripts := [][]failMode{
		{failBefore, failAfter},             // never applied, then applied-but-lost, then replay
		{dropAfter},                         // applied, connection died
		{stallAfter, failBefore},            // applied, timed out; retry 500s before; then replay
		{failBefore, failBefore, dropAfter}, // two clean rejections, then applied-and-dropped
	}
	wantReplayed := []bool{true, true, true, true}
	totalSteps := 0
	for i, batch := range batches {
		flaky.push(scripts[i]...)
		res, err := c.Steps(ctx, "flaky", batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.Count != len(batch) || res.FirstT != totalSteps+1 {
			t.Fatalf("batch %d: %+v, want first_t %d", i, res, totalSteps+1)
		}
		if res.Replayed != wantReplayed[i] {
			t.Fatalf("batch %d: replayed = %v, want %v", i, res.Replayed, wantReplayed[i])
		}
		totalSteps += len(batch)
	}

	// Exactly-once: the step count is the number of steps sent, no more.
	sum, err := c.GetSession(ctx, "flaky")
	if err != nil || sum.T != totalSteps {
		t.Fatalf("final t = %d, want %d (%v)", sum.T, totalSteps, err)
	}

	// And the accounting matches an unfailed control run exactly.
	ctl := httptest.NewServer(service.NewAPI().Handler())
	defer ctl.Close()
	cc, err := client.New(ctl.URL)
	if err != nil {
		t.Fatal(err)
	}
	mkSession(t, cc, "flaky")
	for _, batch := range batches {
		if _, err := cc.Steps(ctx, "flaky", batch); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 5; u++ {
		got, err := c.TPLSeries(ctx, "flaky", u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cc.TPLSeries(ctx, "flaky", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != totalSteps {
			t.Fatalf("user %d: %d points, want %d", u, len(got), totalSteps)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d TPL[%d]: flaky %v != control %v", u, i, got[i], want[i])
			}
		}
	}
	rep, err := c.Report(ctx, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := cc.Report(ctx, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	if rep != wantRep {
		t.Fatalf("report diverges: %+v vs %+v", rep, wantRep)
	}
}

// TestNoRetryWithoutKey pins the unsafe path: with WithoutIdempotency
// the client must not retry a failed batch at all.
func TestNoRetryWithoutKey(t *testing.T) {
	ctx := context.Background()
	flaky := &flakyHandler{h: service.NewAPI().Handler()}
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithRetries(5), client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	mkSession(t, c, "unsafe")
	flaky.push(failAfter)
	before := flaky.hits
	_, err = c.Steps(ctx, "unsafe", []client.Step{{Values: []int{0, 1, 0, 1, 1}, Eps: client.Eps(0.1)}},
		client.WithoutIdempotency())
	if err == nil {
		t.Fatal("injected failure did not surface")
	}
	if flaky.hits != before+1 {
		t.Fatalf("unkeyed batch was retried (%d requests)", flaky.hits-before)
	}
	// The ambiguity is real: the server applied it, and without a key a
	// blind retry would double it — which is exactly why the SDK keys
	// batches by default.
	sum, err := c.GetSession(ctx, "unsafe")
	if err != nil || sum.T != 1 {
		t.Fatalf("t = %d (%v)", sum.T, err)
	}
}
