// Package client is the typed Go SDK for the tplserved continuous-
// release service (the repository's internal/service API). It wraps
// the v2 wire contract — batched step ingestion, idempotency keys,
// cursor pagination, problem+json errors, SSE watch streams — in a
// context-aware Go API so callers never hand-roll HTTP requests.
//
// # Quick start
//
//	c, err := client.New("http://localhost:8344")
//	...
//	sum, err := c.CreateSession(ctx, client.SessionConfig{
//		Name: "city", Domain: 4,
//		Cohorts: []client.Cohort{{Users: 100000, Model: client.Model{Backward: chain}}},
//	})
//	res, err := c.Steps(ctx, "city", []client.Step{
//		{Values: values, Eps: client.Eps(0.1)},
//		{Counts: counts}, // pre-aggregated histogram, planned budget
//	})
//	rep, err := c.Report(ctx, "city")
//
// # Retries and idempotency
//
// Every request is retried with exponential backoff on transport
// errors and 5xx responses — including Steps, because the SDK attaches
// a generated Idempotency-Key to every batch by default: a retry of a
// batch the server already applied is replayed from its history, never
// double-charged. This is the property that makes retrying a POST safe
// at all; the deprecated V1 facade has no such key, so its Step is
// retried only when the request demonstrably never reached the server.
//
// # Streaming ingestion
//
// NewBatchWriter returns a buffered writer that flushes steps to the
// batch endpoint by size or interval — the shape for continuous
// telemetry pipelines. Watch subscribes to the SSE stream of per-step
// TPL/BPL/FPL frames for live dashboards.
//
// # Errors
//
// Every non-2xx response surfaces as an *APIError carrying the
// machine-readable problem code. Branch with errors.As and the Code
// constants (CodeBudgetExhausted, CodeSessionNotFound, ...), or the
// convenience predicates (IsNotFound, IsBudgetExhausted, ...).
package client
