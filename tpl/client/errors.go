package client

import (
	"errors"
	"fmt"
)

// Problem codes of the service's RFC 7807 error model, mirrored here
// so callers branch without importing server packages. Stable wire
// contract.
const (
	CodeInvalidRequest      = "invalid_request"
	CodeSessionNotFound     = "session_not_found"
	CodeSessionExists       = "session_exists"
	CodeCapacityExhausted   = "capacity_exhausted"
	CodeBudgetExhausted     = "budget_exhausted"
	CodeInvalidState        = "invalid_state"
	CodeSnapshotUnavailable = "snapshot_unavailable"
	CodeUnsupportedFormat   = "unsupported_format"
	CodePayloadTooLarge     = "payload_too_large"
	CodeIdempotencyConflict = "idempotency_conflict"
	CodeWrongShard          = "wrong_shard"
	CodeShardUnavailable    = "shard_unavailable"
	CodeMigrateFailed       = "migrate_failed"
	CodeInternal            = "internal"
)

// APIError is a non-2xx response decoded from its problem+json body.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable problem code.
	Code string
	// Title and Detail are the human-readable halves.
	Title  string
	Detail string
	// Supported lists acceptable values for unsupported_format errors.
	Supported []string
	// Location is the owning shard's base URL on wrong_shard errors —
	// the address to retry against. Empty when the refusing shard does
	// not know the new home.
	Location string
}

func (e *APIError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s (%d %s): %s", e.Code, e.Status, e.Title, e.Detail)
	}
	return fmt.Sprintf("%s (%d %s)", e.Code, e.Status, e.Title)
}

// codeIs reports whether err is an *APIError with the given code.
func codeIs(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// IsNotFound reports a session_not_found error.
func IsNotFound(err error) bool { return codeIs(err, CodeSessionNotFound) }

// IsExists reports a session_exists error.
func IsExists(err error) bool { return codeIs(err, CodeSessionExists) }

// IsBudgetExhausted reports a budget_exhausted error (the attached
// plan's finite horizon is spent).
func IsBudgetExhausted(err error) bool { return codeIs(err, CodeBudgetExhausted) }

// IsInvalidState reports an invalid_state error (e.g. planned steps
// without an attached plan).
func IsInvalidState(err error) bool { return codeIs(err, CodeInvalidState) }

// IsIdempotencyConflict reports an idempotency key reused with a
// different batch body.
func IsIdempotencyConflict(err error) bool { return codeIs(err, CodeIdempotencyConflict) }

// IsCapacityExhausted reports the process-wide population ceiling.
func IsCapacityExhausted(err error) bool { return codeIs(err, CodeCapacityExhausted) }

// IsWrongShard reports a wrong_shard refusal: the addressed shard does
// not own the session (moved by migration or a topology change). The
// refusing shard applied nothing, so retrying at APIError.Location —
// or after a topology refetch — is always safe, even for batch posts.
// Clients built WithShardRouting handle this transparently.
func IsWrongShard(err error) bool { return codeIs(err, CodeWrongShard) }

// IsShardUnavailable reports a shard_unavailable error: a router could
// not reach the session's owning shard. Other shards keep serving;
// retry later or after the shard recovers.
func IsShardUnavailable(err error) bool { return codeIs(err, CodeShardUnavailable) }

// IsMigrateFailed reports a failed migration push; the session stayed
// on its original shard and remains fully usable there.
func IsMigrateFailed(err error) bool { return codeIs(err, CodeMigrateFailed) }
