package client

import (
	"errors"
	"fmt"
)

// Problem codes of the service's RFC 7807 error model, mirrored here
// so callers branch without importing server packages. Stable wire
// contract.
const (
	CodeInvalidRequest      = "invalid_request"
	CodeSessionNotFound     = "session_not_found"
	CodeSessionExists       = "session_exists"
	CodeCapacityExhausted   = "capacity_exhausted"
	CodeBudgetExhausted     = "budget_exhausted"
	CodeInvalidState        = "invalid_state"
	CodeSnapshotUnavailable = "snapshot_unavailable"
	CodeUnsupportedFormat   = "unsupported_format"
	CodePayloadTooLarge     = "payload_too_large"
	CodeIdempotencyConflict = "idempotency_conflict"
	CodeInternal            = "internal"
)

// APIError is a non-2xx response decoded from its problem+json body.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable problem code.
	Code string
	// Title and Detail are the human-readable halves.
	Title  string
	Detail string
	// Supported lists acceptable values for unsupported_format errors.
	Supported []string
}

func (e *APIError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s (%d %s): %s", e.Code, e.Status, e.Title, e.Detail)
	}
	return fmt.Sprintf("%s (%d %s)", e.Code, e.Status, e.Title)
}

// codeIs reports whether err is an *APIError with the given code.
func codeIs(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// IsNotFound reports a session_not_found error.
func IsNotFound(err error) bool { return codeIs(err, CodeSessionNotFound) }

// IsExists reports a session_exists error.
func IsExists(err error) bool { return codeIs(err, CodeSessionExists) }

// IsBudgetExhausted reports a budget_exhausted error (the attached
// plan's finite horizon is spent).
func IsBudgetExhausted(err error) bool { return codeIs(err, CodeBudgetExhausted) }

// IsInvalidState reports an invalid_state error (e.g. planned steps
// without an attached plan).
func IsInvalidState(err error) bool { return codeIs(err, CodeInvalidState) }

// IsIdempotencyConflict reports an idempotency key reused with a
// different batch body.
func IsIdempotencyConflict(err error) bool { return codeIs(err, CodeIdempotencyConflict) }

// IsCapacityExhausted reports the process-wide population ceiling.
func IsCapacityExhausted(err error) bool { return codeIs(err, CodeCapacityExhausted) }
