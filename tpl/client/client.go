package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Client talks to one tplserved base URL. It is safe for concurrent
// use; construct with New.
//
// With WithShardRouting the base URL is treated as a cluster entry
// point (a router, or any shard): the client fetches GET /v2/topology
// once, dials each session's owning shard directly — skipping the
// router hop on the hot path — and on a wrong_shard refusal learns the
// session's new home and retries transparently (safe even for
// non-idempotent calls: a 421 means the refusing shard applied
// nothing).
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	backoffCap time.Duration
	userAgent  string
	routing    bool

	// Shard-routing state (topoMu): the fetched topology document, a
	// failure timestamp bounding refetch churn, and per-session homes
	// learned from 421 locations and migrations.
	topoMu      sync.Mutex
	topo        *cluster.Topology
	topoErrAt   time.Time
	sessionAddr map[string]string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default: a dedicated
// http.Client with no global timeout — per-call deadlines come from
// the context).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable request is re-sent after
// the first attempt (default 3; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the exponential-backoff base delay and its cap
// (defaults 100ms and 2s). The actual delay is jittered.
func WithBackoff(base, cap time.Duration) Option {
	return func(c *Client) { c.backoff, c.backoffCap = base, cap }
}

// WithUserAgent overrides the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// WithShardRouting makes the client cluster-aware: session-scoped
// calls resolve the owning shard from the cluster topology (fetched
// lazily from GET /v2/topology on the base URL) and dial it directly,
// and wrong_shard refusals trigger a transparent re-route and retry.
// Non-session calls (create, list, health) keep using the base URL.
func WithShardRouting() Option { return func(c *Client) { c.routing = true } }

// New validates the base URL ("http://host:port") and builds a client.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q needs an http(s) scheme", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{},
		retries:    3,
		backoff:    100 * time.Millisecond,
		backoffCap: 2 * time.Second,
		userAgent:  "tpl-client/2",
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// newIdempotencyKey draws a fresh 128-bit key.
func newIdempotencyKey() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is not a reason to drop retry safety;
		// fall back to a time-derived key.
		return "k-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(buf[:])
}

// retryDelay is the jittered exponential backoff for attempt n >= 1.
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.backoff << (attempt - 1)
	if d > c.backoffCap || d <= 0 {
		d = c.backoffCap
	}
	// Half fixed, half jitter: avoids thundering-herd retries without
	// ever collapsing to zero delay.
	return d/2 + time.Duration(mathrand.Int63n(int64(d/2)+1))
}

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeProblem turns a non-2xx response into an *APIError. Bodies
// that are not problem+json (proxies, panics) degrade to a status-only
// error.
func decodeProblem(status int, body []byte) *APIError {
	var p struct {
		Title     string   `json:"title"`
		Code      string   `json:"code"`
		Detail    string   `json:"detail"`
		Supported []string `json:"supported"`
		Location  string   `json:"location"`
	}
	ae := &APIError{Status: status}
	if err := json.Unmarshal(body, &p); err == nil && p.Code != "" {
		ae.Code, ae.Title, ae.Detail, ae.Supported = p.Code, p.Title, p.Detail, p.Supported
		ae.Location = p.Location
		return ae
	}
	if status >= 500 {
		ae.Code = CodeInternal
	} else {
		ae.Code = CodeInvalidRequest
	}
	ae.Detail = strings.TrimSpace(string(body))
	return ae
}

// do runs one JSON request against the base URL.
func (c *Client) do(ctx context.Context, method, path string, header http.Header, contentType string, body []byte, idempotent bool, out any) (http.Header, error) {
	return c.doBase(ctx, c.base, method, path, header, contentType, body, idempotent, out)
}

// doBase runs one JSON request against an explicit base URL (the
// client's own, or a shard's when routing). idempotent requests are
// retried on transport errors and 5xx responses; non-idempotent ones
// are sent exactly once (an ambiguous failure must surface, not be
// re-applied). header entries are added to the request; the response
// header is returned on success and on decoded API errors.
func (c *Client) doBase(ctx context.Context, base, method, path string, header http.Header, contentType string, body []byte, idempotent bool, out any) (http.Header, error) {
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retryDelay(attempt)); err != nil {
				return nil, fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, err, lastErr)
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: building %s %s: %w", method, path, err)
		}
		req.Header.Set("User-Agent", c.userAgent)
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Set(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if idempotent && ctx.Err() == nil {
				continue
			}
			return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		respBody, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			if idempotent && ctx.Err() == nil {
				continue
			}
			return nil, fmt.Errorf("client: reading %s %s response: %w", method, path, rerr)
		}
		if resp.StatusCode/100 == 2 {
			if out != nil && len(respBody) > 0 {
				// *[]byte receives the raw body (non-JSON responses like
				// the JSON-lines report); anything else decodes as JSON.
				if bp, ok := out.(*[]byte); ok {
					*bp = respBody
				} else if err := json.Unmarshal(respBody, out); err != nil {
					return nil, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
				}
			}
			return resp.Header, nil
		}
		apiErr := decodeProblem(resp.StatusCode, respBody)
		if idempotent && resp.StatusCode >= 500 {
			lastErr = apiErr
			continue
		}
		return resp.Header, apiErr
	}
	return nil, fmt.Errorf("client: %s %s: retries exhausted: %w", method, path, lastErr)
}

// get runs one idempotent GET.
func (c *Client) get(ctx context.Context, path string, out any) error {
	_, err := c.do(ctx, http.MethodGet, path, nil, "", nil, true, out)
	return err
}

// topoRefetchBackoff bounds how often a failing topology fetch is
// retried; in between, session calls fall back to the base URL (a
// router there still reaches the right shard).
const topoRefetchBackoff = time.Second

// wrongShardRetries bounds transparent re-routes per call: an initial
// stale guess plus a migration landing mid-flight both resolve within
// two hops; more means the cluster is flapping and the caller should
// see it.
const wrongShardRetries = 3

// fetchTopology pulls and validates the topology document from the
// base URL.
func (c *Client) fetchTopology(ctx context.Context) (*cluster.Topology, error) {
	var t cluster.Topology
	if _, err := c.doBase(ctx, c.base, http.MethodGet, "/v2/topology", nil, "", nil, true, &t); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("client: invalid topology from %s: %w", c.base, err)
	}
	return &t, nil
}

// sessionBase resolves the base URL to dial for one session: a home
// learned from wrong_shard/migration, else the topology owner, else
// the client's base URL (single node, routing off, or topology
// temporarily unfetchable).
func (c *Client) sessionBase(ctx context.Context, session string) string {
	if !c.routing {
		return c.base
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if addr, ok := c.sessionAddr[session]; ok {
		return addr
	}
	if c.topo == nil {
		if time.Since(c.topoErrAt) < topoRefetchBackoff {
			return c.base
		}
		t, err := c.fetchTopology(ctx)
		if err != nil {
			c.topoErrAt = time.Now()
			return c.base
		}
		c.topo = t
	}
	if addr := c.topo.OwnerAddr(session); addr != "" {
		return addr
	}
	return c.base
}

// noteWrongShard records what a wrong_shard refusal taught us: the
// session's new home when the refuser named one, otherwise that the
// cached topology document is stale and must be refetched.
func (c *Client) noteWrongShard(session, location string) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if location != "" {
		if c.sessionAddr == nil {
			c.sessionAddr = make(map[string]string)
		}
		c.sessionAddr[session] = strings.TrimRight(location, "/")
		return
	}
	c.topo = nil
}

// forgetSession drops a learned per-session home (the session is gone
// or its record proved wrong).
func (c *Client) forgetSession(session string) {
	c.topoMu.Lock()
	delete(c.sessionAddr, session)
	c.topoMu.Unlock()
}

// doSession runs one session-scoped request with shard routing: dial
// the resolved owner, and on a wrong_shard refusal learn the new home
// and retry. The retry is safe even for non-idempotent calls — a 421
// means the refusing shard applied nothing. Without WithShardRouting
// this is doBase against the base URL.
func (c *Client) doSession(ctx context.Context, session, method, path string, header http.Header, contentType string, body []byte, idempotent bool, out any) (http.Header, error) {
	var lastHdr http.Header
	var lastErr error
	for attempt := 0; attempt <= wrongShardRetries; attempt++ {
		hdr, err := c.doBase(ctx, c.sessionBase(ctx, session), method, path, header, contentType, body, idempotent, out)
		if err == nil || !c.routing || !IsWrongShard(err) {
			return hdr, err
		}
		var ae *APIError
		errors.As(err, &ae)
		// A learned home that itself refuses is stale; start over from
		// whatever the refusal teaches.
		c.forgetSession(session)
		c.noteWrongShard(session, ae.Location)
		lastHdr, lastErr = hdr, err
	}
	return lastHdr, lastErr
}

// getSession runs one idempotent session-scoped GET.
func (c *Client) getSession(ctx context.Context, session, path string, out any) error {
	_, err := c.doSession(ctx, session, http.MethodGet, path, nil, "", nil, true, out)
	return err
}

// Topology fetches the cluster topology document (shards, hash-ring
// size, per-session overrides). Single-node servers without cluster
// support answer 404.
func (c *Client) Topology(ctx context.Context) (Topology, error) {
	var t Topology
	err := c.get(ctx, "/v2/topology", &t)
	return t, err
}

// Migrate asks the session's current owner to hand the session to the
// shard at target (a base URL from the topology). On success the
// session serves from target and the old owner answers wrong_shard;
// the client records the new home for its own subsequent calls. Not
// retried: an ambiguous failure should be observed via GetSession, not
// re-pushed.
func (c *Client) Migrate(ctx context.Context, session, target string) (string, error) {
	body, err := json.Marshal(map[string]string{"target": target})
	if err != nil {
		return "", fmt.Errorf("client: encoding migrate request: %w", err)
	}
	var resp struct {
		Name     string `json:"name"`
		Location string `json:"location"`
	}
	base := c.sessionBase(ctx, session)
	if _, err := c.doBase(ctx, base, http.MethodPost, "/v2/sessions/"+url.PathEscape(session)+"/migrate", nil, "application/json", body, false, &resp); err != nil {
		return "", err
	}
	if c.routing && resp.Location != "" {
		c.noteWrongShard(session, resp.Location)
	}
	return resp.Location, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// CreateSession registers a new session. Not retried: an ambiguous
// transport failure must not risk colliding with its own first attempt
// — check with GetSession and retry explicitly.
func (c *Client) CreateSession(ctx context.Context, cfg SessionConfig) (Summary, error) {
	var sum Summary
	body, err := json.Marshal(cfg)
	if err != nil {
		return sum, fmt.Errorf("client: encoding session config: %w", err)
	}
	_, err = c.do(ctx, http.MethodPost, "/v2/sessions", nil, "application/json", body, false, &sum)
	return sum, err
}

// GetSession fetches one session summary.
func (c *Client) GetSession(ctx context.Context, name string) (Summary, error) {
	var sum Summary
	err := c.getSession(ctx, name, "/v2/sessions/"+url.PathEscape(name), &sum)
	return sum, err
}

// ListSessions fetches all session summaries.
func (c *Client) ListSessions(ctx context.Context) ([]Summary, error) {
	var resp struct {
		Sessions []Summary `json:"sessions"`
	}
	err := c.get(ctx, "/v2/sessions", &resp)
	return resp.Sessions, err
}

// DeleteSession drops a session and its persisted state. Retried (the
// operation is idempotent); note a retry of a delete that already
// succeeded reports session_not_found.
func (c *Client) DeleteSession(ctx context.Context, name string) error {
	_, err := c.doSession(ctx, name, http.MethodDelete, "/v2/sessions/"+url.PathEscape(name), nil, "", nil, true, nil)
	if err == nil {
		c.forgetSession(name)
	}
	return err
}

// Report fetches the current guarantee summary.
func (c *Client) Report(ctx context.Context, session string) (Report, error) {
	var rep Report
	err := c.getSession(ctx, session, "/v2/sessions/"+url.PathEscape(session)+"/report", &rep)
	return rep, err
}

// ReportJSONLines fetches the report in the repository's JSON-lines
// table wire format (parseable by internal/report.ParseJSONLines).
func (c *Client) ReportJSONLines(ctx context.Context, session string) ([]byte, error) {
	var body []byte
	err := c.getSession(ctx, session, "/v2/sessions/"+url.PathEscape(session)+"/report?format=jsonl", &body)
	return body, err
}

// WEvent fetches the worst w-window leakage over the population.
func (c *Client) WEvent(ctx context.Context, session string, w int) (WEventResult, error) {
	var res WEventResult
	err := c.getSession(ctx, session, "/v2/sessions/"+url.PathEscape(session)+"/wevent?w="+strconv.Itoa(w), &res)
	return res, err
}

// UserWEvent fetches one user's worst w-window leakage.
func (c *Client) UserWEvent(ctx context.Context, session string, user, w int) (WEventResult, error) {
	var res WEventResult
	err := c.getSession(ctx, session, "/v2/sessions/"+url.PathEscape(session)+"/wevent?w="+strconv.Itoa(w)+"&user="+strconv.Itoa(user), &res)
	return res, err
}

// Published fetches one page of the release history. cursor "" starts
// at step 1; limit <= 0 uses the server default.
func (c *Client) Published(ctx context.Context, session, cursor string, limit int) (PublishedPage, error) {
	var page PublishedPage
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v2/sessions/" + url.PathEscape(session) + "/published"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	err := c.getSession(ctx, session, path, &page)
	return page, err
}

// PublishedAll pages through the whole release history.
func (c *Client) PublishedAll(ctx context.Context, session string) ([]PublishedItem, error) {
	var all []PublishedItem
	cursor := ""
	for {
		page, err := c.Published(ctx, session, cursor, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.NextCursor == "" {
			return all, nil
		}
		cursor = page.NextCursor
	}
}

// TPL fetches one page of a user's TPL series.
func (c *Client) TPL(ctx context.Context, session string, user int, cursor string, limit int) (TPLPage, error) {
	var page TPLPage
	q := url.Values{}
	q.Set("user", strconv.Itoa(user))
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	err := c.getSession(ctx, session, "/v2/sessions/"+url.PathEscape(session)+"/tpl?"+q.Encode(), &page)
	return page, err
}

// TPLSeries pages through a user's whole TPL series.
func (c *Client) TPLSeries(ctx context.Context, session string, user int) ([]float64, error) {
	var series []float64
	cursor := ""
	for {
		page, err := c.TPL(ctx, session, user, cursor, 0)
		if err != nil {
			return nil, err
		}
		for _, it := range page.Items {
			series = append(series, it.TPL)
		}
		if page.NextCursor == "" {
			return series, nil
		}
		cursor = page.NextCursor
	}
}

// Snapshot forces an immediate durable snapshot of one session.
func (c *Client) Snapshot(ctx context.Context, session string) (SnapshotInfo, error) {
	var info SnapshotInfo
	_, err := c.doSession(ctx, session, http.MethodPost, "/v2/sessions/"+url.PathEscape(session)+"/snapshot", nil, "", nil, true, &info)
	return info, err
}
