package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/tpl/client"
)

// fakeShard is a minimal shard double: it accepts batches for one
// session until moved, then refuses with 421 wrong_shard pointing at
// the new home.
type fakeShard struct {
	session  string
	moved    atomic.Bool
	location atomic.Value // string: where the session went
	batches  atomic.Int64
	steps    atomic.Int64
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/sessions/{name}/steps", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("name") != f.session {
			http.NotFound(w, r)
			return
		}
		if f.moved.Load() {
			loc, _ := f.location.Load().(string)
			w.Header().Set("Content-Type", "application/problem+json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			fmt.Fprintf(w, `{"status":421,"code":"wrong_shard","title":"session owned by another shard","location":%q}`, loc)
			return
		}
		// JSON-array bodies decode directly; NDJSON bodies (one step
		// per line, the BatchWriter shape) decode as a stream.
		body, _ := io.ReadAll(r.Body)
		var n int64
		if len(body) > 0 && body[0] == '[' {
			var steps []client.Step
			if json.Unmarshal(body, &steps) == nil {
				n = int64(len(steps))
			}
		} else {
			dec := json.NewDecoder(bytes.NewReader(body))
			for {
				var st client.Step
				if dec.Decode(&st) != nil {
					break
				}
				n++
			}
		}
		f.batches.Add(1)
		f.steps.Add(n)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"results":[],"count":%d,"first_t":1,"last_t":%d}`, n, n)
	})
	mux.HandleFunc("GET /v2/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if f.moved.Load() {
			loc, _ := f.location.Load().(string)
			w.Header().Set("Content-Type", "application/problem+json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			fmt.Fprintf(w, `{"status":421,"code":"wrong_shard","title":"session owned by another shard","location":%q}`, loc)
			return
		}
		fmt.Fprintf(w, `{"name":%q,"domain":2,"users":1,"t":0}`, f.session)
	})
	return mux
}

// fakeCluster wires two shard doubles and a topology endpoint pinning
// the session to shard A.
func fakeCluster(t *testing.T, session string) (entry string, a, b *fakeShard, flip func()) {
	t.Helper()
	a = &fakeShard{session: session}
	b = &fakeShard{session: session}
	srvA := httptest.NewServer(a.handler())
	t.Cleanup(srvA.Close)
	srvB := httptest.NewServer(b.handler())
	t.Cleanup(srvB.Close)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/topology", func(w http.ResponseWriter, r *http.Request) {
		topo := map[string]any{
			"version":   1,
			"ring_size": 8,
			"shards": []map[string]string{
				{"id": "a", "addr": srvA.URL},
				{"id": "b", "addr": srvB.URL},
			},
			"overrides": map[string]string{session: "a"},
		}
		json.NewEncoder(w).Encode(topo)
	})
	front := httptest.NewServer(mux)
	t.Cleanup(front.Close)

	flip = func() {
		a.location.Store(srvB.URL)
		a.moved.Store(true)
	}
	return front.URL, a, b, flip
}

// TestShardRoutingFollowsWrongShard: a routed client dials the owner
// from the topology document and transparently follows a mid-session
// move.
func TestShardRoutingFollowsWrongShard(t *testing.T) {
	entry, a, b, flip := fakeCluster(t, "web")
	c, err := client.New(entry, client.WithShardRouting())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := c.Steps(ctx, "web", []client.Step{{Values: []int{1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatal(err)
	}
	if a.batches.Load() != 1 || b.batches.Load() != 0 {
		t.Fatalf("first batch went to a=%d b=%d", a.batches.Load(), b.batches.Load())
	}

	flip()
	if _, err := c.Steps(ctx, "web", []client.Step{{Values: []int{1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatalf("batch across the flip: %v", err)
	}
	if b.batches.Load() != 1 {
		t.Fatalf("flipped batch did not reach the new owner (b=%d)", b.batches.Load())
	}

	// The learned home sticks: the next call goes straight to B.
	if _, err := c.Steps(ctx, "web", []client.Step{{Values: []int{1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatal(err)
	}
	if b.batches.Load() != 2 {
		t.Fatalf("learned home not reused (b=%d)", b.batches.Load())
	}
}

// TestWrongShardSurfacesWithoutRouting: a plain client reports the
// typed refusal (with the new location) instead of silently following.
func TestWrongShardSurfacesWithoutRouting(t *testing.T) {
	a := &fakeShard{session: "web"}
	srvA := httptest.NewServer(a.handler())
	defer srvA.Close()
	a.location.Store("http://elsewhere:1")
	a.moved.Store(true)

	c, err := client.New(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetSession(context.Background(), "web")
	if !client.IsWrongShard(err) {
		t.Fatalf("err %v, want wrong_shard", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Location != "http://elsewhere:1" || ae.Status != http.StatusMisdirectedRequest {
		t.Fatalf("APIError %+v", ae)
	}
}

// TestShardUnavailablePredicate: the router's 503 problem decodes to
// the typed predicate.
func TestShardUnavailablePredicate(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/problem+json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"status":503,"code":"shard_unavailable","title":"shard unavailable"}`)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetSession(context.Background(), "web")
	if !client.IsShardUnavailable(err) {
		t.Fatalf("err %v, want shard_unavailable", err)
	}
}

// TestBatchWriterSurvivesTopologyFlip: a topology change mid-stream
// must not latch the writer into an error — the flush re-routes and
// every step lands exactly once.
func TestBatchWriterSurvivesTopologyFlip(t *testing.T) {
	entry, a, b, flip := fakeCluster(t, "web")
	c, err := client.New(entry, client.WithShardRouting())
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewBatchWriter(context.Background(), "web",
		client.WithFlushSize(4), client.WithFlushInterval(0))
	const total = 24
	for i := 0; i < total; i++ {
		if i == total/2 {
			flip()
		}
		if err := w.Add(client.Step{Values: []int{1}, Eps: client.Eps(0.1)}); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := a.steps.Load() + b.steps.Load(); got != total {
		t.Fatalf("steps landed %d (a=%d b=%d), want %d", got, a.steps.Load(), b.steps.Load(), total)
	}
	if b.steps.Load() == 0 {
		t.Fatal("no steps reached the new owner after the flip")
	}
}
