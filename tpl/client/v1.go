package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// V1 is the deprecated per-step wire contract, kept for parity testing
// and for migrating callers still pinned to /v1. It has no idempotency
// keys, so Step is sent exactly once — an ambiguous failure may or may
// not have charged the step, which is precisely the problem v2 fixes.
//
// Deprecated: use the Client's v2 methods (Steps, Published, TPL, ...).
type V1 struct {
	c *Client
}

// V1 returns the deprecated v1 facade.
//
// Deprecated: use the Client's v2 methods.
func (c *Client) V1() V1 { return V1{c: c} }

// v1Session is the /v1 path prefix for one session.
func v1Session(session string) string {
	return "/v1/sessions/" + url.PathEscape(session)
}

// CreateSession registers a session over /v1 (same config schema as
// v2).
func (v V1) CreateSession(ctx context.Context, cfg SessionConfig) (Summary, error) {
	var sum Summary
	body, err := json.Marshal(cfg)
	if err != nil {
		return sum, fmt.Errorf("client: encoding session config: %w", err)
	}
	_, err = v.c.do(ctx, http.MethodPost, "/v1/sessions", nil, "application/json", body, false, &sum)
	return sum, err
}

// DeleteSession drops a session over /v1.
func (v V1) DeleteSession(ctx context.Context, name string) error {
	_, err := v.c.do(ctx, http.MethodDelete, v1Session(name), nil, "", nil, true, nil)
	return err
}

// Step collects one time step. eps nil draws from the session's plan.
// Not retried (no idempotency on v1).
func (v V1) Step(ctx context.Context, session string, values []int, eps *float64) (StepResult, error) {
	var res StepResult
	body, err := json.Marshal(struct {
		Values []int    `json:"values"`
		Eps    *float64 `json:"eps,omitempty"`
	}{values, eps})
	if err != nil {
		return res, fmt.Errorf("client: encoding step: %w", err)
	}
	_, err = v.c.do(ctx, http.MethodPost, v1Session(session)+"/steps", nil, "application/json", body, false, &res)
	return res, err
}

// Report fetches the guarantee summary over /v1.
func (v V1) Report(ctx context.Context, session string) (Report, error) {
	var rep Report
	err := v.c.get(ctx, v1Session(session)+"/report", &rep)
	return rep, err
}

// TPLSeries fetches one user's whole TPL series over /v1 (one
// unpaginated response).
func (v V1) TPLSeries(ctx context.Context, session string, user int) ([]float64, error) {
	var resp struct {
		TPL []float64 `json:"tpl"`
	}
	err := v.c.get(ctx, v1Session(session)+"/tpl?user="+strconv.Itoa(user), &resp)
	return resp.TPL, err
}

// WEvent fetches the population-worst w-window leakage over /v1.
func (v V1) WEvent(ctx context.Context, session string, w int) (WEventResult, error) {
	var res WEventResult
	err := v.c.get(ctx, v1Session(session)+"/wevent?w="+strconv.Itoa(w), &res)
	return res, err
}

// PublishedHistory is the unpaginated v1 history response.
type PublishedHistory struct {
	T         int         `json:"t"`
	Budgets   []float64   `json:"budgets"`
	Published [][]float64 `json:"published"`
}

// Published fetches the whole release history over /v1.
func (v V1) Published(ctx context.Context, session string) (PublishedHistory, error) {
	var h PublishedHistory
	err := v.c.get(ctx, v1Session(session)+"/published", &h)
	return h, err
}
