package client_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
	"repro/internal/service"
	"repro/tpl/client"
)

// bytesReader adapts a byte slice for parsers taking io.Reader.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// groundTruthTPL computes the expected TPL series straight from the
// core quantifiers.
func groundTruthTPL(t *testing.T, pb *markov.Chain, budgets []float64) []float64 {
	t.Helper()
	series, err := core.TPLSeries(core.NewQuantifier(pb), core.NewQuantifier(nil), budgets)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

// testChain is a small 2-state correlation model.
func testChain() *client.Chain {
	return &client.Chain{Rows: [][]float64{{0.8, 0.2}, {0.3, 0.7}}}
}

// newServerAndClient boots the service handler on a real TCP listener
// (SSE and connection-level failures need one) and a client for it.
func newServerAndClient(t *testing.T, opts ...client.Option) (*httptest.Server, *client.Client) {
	t.Helper()
	srv := httptest.NewServer(service.NewAPI().Handler())
	t.Cleanup(srv.Close)
	c, err := client.New(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// mkSession creates a 5-user seeded session with a mixed population.
func mkSession(t *testing.T, c *client.Client, name string) client.Summary {
	t.Helper()
	sum, err := c.CreateSession(context.Background(), client.SessionConfig{
		Name:   name,
		Domain: 2,
		Seed:   77,
		Cohorts: []client.Cohort{
			{Users: 2, Model: client.Model{Backward: testChain(), Forward: testChain()}},
			{Users: 3, Model: client.Model{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestClientRoundTrip(t *testing.T) {
	_, c := newServerAndClient(t)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Version == "" {
		t.Fatalf("health %+v (%v)", h, err)
	}

	sum := mkSession(t, c, "rt")
	if sum.Users != 5 || sum.Cohorts != 2 || sum.Domain != 2 {
		t.Fatalf("summary %+v", sum)
	}

	// Batch: array form, then NDJSON form with a counts step.
	res, err := c.Steps(ctx, "rt", []client.Step{
		{Values: []int{0, 1, 0, 1, 1}, Eps: client.Eps(0.1)},
		{Values: []int{1, 1, 0, 0, 1}, Eps: client.Eps(0.2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || res.FirstT != 1 || res.LastT != 2 || res.Replayed {
		t.Fatalf("batch %+v", res)
	}
	res, err = c.StepsNDJSON(ctx, "rt", []client.Step{
		{Counts: []int{2, 3}, Eps: client.Eps(0.3)},
	})
	if err != nil || res.FirstT != 3 {
		t.Fatalf("ndjson batch %+v (%v)", res, err)
	}

	// Reads.
	items, err := c.PublishedAll(ctx, "rt")
	if err != nil || len(items) != 3 {
		t.Fatalf("published %d items (%v)", len(items), err)
	}
	if items[2].Eps != 0.3 || len(items[2].Published) != 2 {
		t.Fatalf("item %+v", items[2])
	}
	series, err := c.TPLSeries(ctx, "rt", 0)
	if err != nil || len(series) != 3 {
		t.Fatalf("tpl series %v (%v)", series, err)
	}
	rep, err := c.Report(ctx, "rt")
	if err != nil || rep.T != 3 || rep.EventLevelAlpha <= 0 {
		t.Fatalf("report %+v (%v)", rep, err)
	}
	we, err := c.WEvent(ctx, "rt", 2)
	if err != nil || we.W != 2 || we.Leakage <= 0 {
		t.Fatalf("wevent %+v (%v)", we, err)
	}
	raw, err := c.ReportJSONLines(ctx, "rt")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := report.ParseJSONLines(bytesReader(raw))
	if err != nil || len(tables) == 0 {
		t.Fatalf("jsonl parse: %v (%d tables)", err, len(tables))
	}

	// Listing and deletion.
	list, err := c.ListSessions(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("list %v (%v)", list, err)
	}
	if err := c.DeleteSession(ctx, "rt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSession(ctx, "rt"); !client.IsNotFound(err) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestClientAPIErrors(t *testing.T) {
	_, c := newServerAndClient(t)
	ctx := context.Background()
	mkSession(t, c, "err")

	if _, err := c.GetSession(ctx, "nope"); !client.IsNotFound(err) {
		t.Fatalf("not found: %v", err)
	}
	if _, err := c.CreateSession(ctx, client.SessionConfig{Name: "err", Domain: 2, Users: 5}); !client.IsExists(err) {
		t.Fatalf("exists: %v", err)
	}
	// Planned steps without a plan: invalid_state.
	_, err := c.Steps(ctx, "err", []client.Step{{Values: []int{0, 0, 0, 0, 0}}})
	if !client.IsInvalidState(err) {
		t.Fatalf("invalid state: %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 409 || ae.Detail == "" {
		t.Fatalf("api error %+v", ae)
	}
	// Exhausting a finite plan: budget_exhausted.
	if _, err := c.CreateSession(ctx, client.SessionConfig{
		Name: "plan", Domain: 2, Users: 2, Seed: 5,
		Models: []client.Model{{Backward: testChain()}, {}},
		Plan:   &client.PlanSpec{Kind: "quantified", Alpha: 1, Horizon: 2, Model: &client.Model{Backward: testChain()}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Steps(ctx, "plan", []client.Step{
		{Values: []int{0, 1}}, {Values: []int{0, 1}}, {Values: []int{0, 1}},
	}); !client.IsBudgetExhausted(err) {
		t.Fatalf("budget exhausted: %v", err)
	}
	// The failed batch applied nothing.
	if sum, err := c.GetSession(ctx, "plan"); err != nil || sum.T != 0 {
		t.Fatalf("atomicity: %+v (%v)", sum, err)
	}
	// Idempotency conflict.
	if _, err := c.Steps(ctx, "err", []client.Step{{Values: []int{0, 0, 0, 0, 0}, Eps: client.Eps(0.1)}},
		client.WithIdempotencyKey("pin")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Steps(ctx, "err", []client.Step{{Values: []int{1, 1, 1, 1, 1}, Eps: client.Eps(0.1)}},
		client.WithIdempotencyKey("pin")); !client.IsIdempotencyConflict(err) {
		t.Fatalf("conflict: %v", err)
	}
}

func TestClientWatch(t *testing.T) {
	_, c := newServerAndClient(t)
	ctx := context.Background()
	mkSession(t, c, "watch")
	if _, err := c.Steps(ctx, "watch", []client.Step{{Values: []int{0, 1, 0, 1, 1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatal(err)
	}

	w, err := c.Watch(ctx, "watch", 0) // replay from the start
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	read := func() client.WatchEvent {
		t.Helper()
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("stream closed: %v", w.Err())
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("no frame within 5s")
		}
		panic("unreachable")
	}
	if ev := read(); ev.T != 1 || ev.Eps != 0.1 {
		t.Fatalf("catch-up frame %+v", ev)
	}
	if _, err := c.Steps(ctx, "watch", []client.Step{{Values: []int{1, 0, 1, 0, 0}, Eps: client.Eps(0.2)}}); err != nil {
		t.Fatal(err)
	}
	ev := read()
	if ev.T != 2 || ev.Eps != 0.2 || ev.TPL <= 0 {
		t.Fatalf("live frame %+v", ev)
	}
	w.Close()
	if err := w.Err(); err != nil {
		t.Fatalf("close err: %v", err)
	}
}

func TestBatchWriter(t *testing.T) {
	_, c := newServerAndClient(t)
	ctx := context.Background()
	mkSession(t, c, "bw")

	var flushed []client.BatchResult
	w := c.NewBatchWriter(ctx, "bw",
		client.WithFlushSize(4),
		client.WithFlushInterval(50*time.Millisecond),
		client.WithResultHandler(func(r client.BatchResult) { flushed = append(flushed, r) }))
	for i := 0; i < 9; i++ {
		if err := w.Add(client.Step{Values: []int{0, 1, 0, 1, 1}, Eps: client.Eps(0.1)}); err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			// Let the interval flusher pick up a partial buffer at least
			// once.
			time.Sleep(120 * time.Millisecond)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := c.GetSession(ctx, "bw")
	if err != nil || sum.T != 9 {
		t.Fatalf("after writer: t=%d (%v)", sum.T, err)
	}
	total := 0
	for _, r := range flushed {
		total += r.Count
	}
	if total != 9 {
		t.Fatalf("result handler saw %d steps, want 9", total)
	}
	if err := w.Add(client.Step{}); err == nil {
		t.Fatal("Add after Close accepted")
	}
}

// TestV1V2Parity is the conformance test: an identical workload driven
// through the deprecated v1 per-step API and through v2 batched
// ingestion (mixed array/NDJSON/counts shapes) must produce
// bit-identical Reports, TPL series for every user, MaxWEvent answers,
// and published histograms.
func TestV1V2Parity(t *testing.T) {
	ctx := context.Background()
	cfg := func(name string) client.SessionConfig {
		return client.SessionConfig{
			Name:   name,
			Domain: 2,
			Seed:   424242,
			Cohorts: []client.Cohort{
				{Users: 3, Model: client.Model{Backward: testChain(), Forward: testChain()}},
				{Users: 2, Model: client.Model{}},
			},
			Plan: &client.PlanSpec{Kind: "quantified", Alpha: 1, Horizon: 30,
				Model: &client.Model{Backward: testChain(), Forward: testChain()}},
		}
	}
	const steps = 18
	values := func(i int) []int {
		v := make([]int, 5)
		for u := range v {
			v[u] = (i*7 + u*3) % 2
		}
		return v
	}
	eps := func(i int) *float64 {
		if i%3 == 0 {
			return nil // draw from the plan
		}
		e := 0.1 + 0.05*float64(i%3)
		return &e
	}

	// v1: one request per step.
	_, c1 := newServerAndClient(t)
	if _, err := c1.V1().CreateSession(ctx, cfg("parity")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= steps; i++ {
		if _, err := c1.V1().Step(ctx, "parity", values(i), eps(i)); err != nil {
			t.Fatalf("v1 step %d: %v", i, err)
		}
	}

	// v2: the same steps in mixed-shape batches.
	_, c2 := newServerAndClient(t)
	if _, err := c2.CreateSession(ctx, cfg("parity")); err != nil {
		t.Fatal(err)
	}
	var batch []client.Step
	for i := 1; i <= steps; i++ {
		batch = append(batch, client.Step{Values: values(i), Eps: eps(i)})
	}
	// First third over NDJSON, second third as an array, final third via
	// the BatchWriter.
	third := steps / 3
	if _, err := c2.StepsNDJSON(ctx, "parity", batch[:third]); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Steps(ctx, "parity", batch[third:2*third]); err != nil {
		t.Fatal(err)
	}
	w := c2.NewBatchWriter(ctx, "parity", client.WithFlushSize(4), client.WithFlushInterval(0))
	for _, st := range batch[2*third:] {
		if err := w.Add(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-identical accounting across the two wire contracts.
	rep1, err := c1.V1().Report(ctx, "parity")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Report(ctx, "parity")
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Fatalf("reports diverge:\n  v1 %+v\n  v2 %+v", rep1, rep2)
	}
	for u := 0; u < 5; u++ {
		s1, err := c1.V1().TPLSeries(ctx, "parity", u)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := c2.TPLSeries(ctx, "parity", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(s1) != steps || len(s2) != steps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("user %d TPL[%d]: v1 %v != v2 %v", u, i, s1[i], s2[i])
			}
		}
	}
	w1, err := c1.V1().WEvent(ctx, "parity", 3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c2.WEvent(ctx, "parity", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatalf("wevent diverges: v1 %+v, v2 %+v", w1, w2)
	}
	h1, err := c1.V1().Published(ctx, "parity")
	if err != nil {
		t.Fatal(err)
	}
	items, err := c2.PublishedAll(ctx, "parity")
	if err != nil {
		t.Fatal(err)
	}
	if len(h1.Published) != steps || len(items) != steps {
		t.Fatalf("history lengths %d/%d", len(h1.Published), len(items))
	}
	for i := range items {
		if h1.Budgets[i] != items[i].Eps {
			t.Fatalf("budget %d diverges: %v vs %v", i, h1.Budgets[i], items[i].Eps)
		}
		for j := range items[i].Published {
			if h1.Published[i][j] != items[i].Published[j] {
				t.Fatalf("published[%d][%d]: v1 %v != v2 %v", i, j, h1.Published[i][j], items[i].Published[j])
			}
		}
	}
}

// TestParityMatchesStream cross-checks the wire parity against the
// in-process stream.Server ground truth for one deterministic chain
// (guards against both APIs drifting together).
func TestParityMatchesStream(t *testing.T) {
	ctx := context.Background()
	_, c := newServerAndClient(t)
	if _, err := c.CreateSession(ctx, client.SessionConfig{
		Name: "truth", Domain: 2, Users: 1, Seed: 9,
		Models: []client.Model{{Backward: testChain()}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Steps(ctx, "truth", []client.Step{
		{Values: []int{0}, Eps: client.Eps(0.1)},
		{Values: []int{1}, Eps: client.Eps(0.1)},
	}); err != nil {
		t.Fatal(err)
	}
	series, err := c.TPLSeries(ctx, "truth", 0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.FromRows(testChain().Rows)
	if err != nil {
		t.Fatal(err)
	}
	want := groundTruthTPL(t, chain, []float64{0.1, 0.1})
	if len(series) != len(want) {
		t.Fatalf("series %v, want %v", series, want)
	}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("TPL[%d] = %v, want %v", i, series[i], want[i])
		}
	}
}
