package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Watcher is a live subscription to a session's per-step leakage
// frames (the /v2 watch SSE stream). Read Events until it closes, then
// check Err; Close ends the subscription.
type Watcher struct {
	events chan WatchEvent
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// Events delivers frames in step order. The channel closes when the
// stream ends — context cancellation, Close, a transport error, or the
// server disconnecting a lagging consumer (reconnect with the last
// seen frame's T as from).
func (w *Watcher) Events() <-chan WatchEvent { return w.events }

// Err reports why the stream ended, nil for a clean close. Valid after
// Events is closed.
func (w *Watcher) Err() error {
	<-w.done
	return w.err
}

// Close cancels the subscription.
func (w *Watcher) Close() {
	w.cancel()
	<-w.done
}

// Watch subscribes to a session's step frames. from >= 0 replays
// history after step from before going live (0 = everything); from < 0
// means live-only. The stream is a single long request — it is not
// retried; reconnect with the last seen T to resume.
func (c *Client) Watch(ctx context.Context, session string, from int) (*Watcher, error) {
	ctx, cancel := context.WithCancel(ctx)
	suffix := "/v2/sessions/" + url.PathEscape(session) + "/watch"
	if from >= 0 {
		suffix += "?from=" + strconv.Itoa(from)
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.sessionBase(ctx, session)+suffix, nil)
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("User-Agent", c.userAgent)
		req.Header.Set("Accept", "text/event-stream")
		resp, err = c.hc.Do(req)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("client: opening watch stream: %w", err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ae := decodeProblem(resp.StatusCode, body)
		if c.routing && ae.Code == CodeWrongShard && attempt < wrongShardRetries {
			c.forgetSession(session)
			c.noteWrongShard(session, ae.Location)
			continue
		}
		cancel()
		return nil, ae
	}
	if mt := resp.Header.Get("Content-Type"); !strings.HasPrefix(mt, "text/event-stream") {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: watch endpoint answered %q, want text/event-stream", mt)
	}
	w := &Watcher{
		events: make(chan WatchEvent, 16),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go w.read(ctx, resp.Body)
	return w, nil
}

// read parses SSE frames until the stream ends.
func (w *Watcher) read(ctx context.Context, body io.ReadCloser) {
	defer close(w.done)
	defer close(w.events)
	defer body.Close()
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // event:/id: framing lines and keep-alives
		}
		var ev WatchEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			w.err = fmt.Errorf("client: decoding watch frame: %w", err)
			return
		}
		select {
		case w.events <- ev:
		case <-ctx.Done():
			return
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		w.err = fmt.Errorf("client: watch stream: %w", err)
	}
}
