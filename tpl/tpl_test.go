package tpl_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/tpl"
)

func chains(t *testing.T) (pb, pf *tpl.Chain) {
	t.Helper()
	pb, err := tpl.NewChain([][]float64{{0.8, 0.2}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	pf, err = tpl.NewChain([][]float64{{0.8, 0.2}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	return pb, pf
}

func TestNewChainValidates(t *testing.T) {
	if _, err := tpl.NewChain([][]float64{{0.5, 0.6}, {0, 1}}); err == nil {
		t.Error("non-stochastic rows should fail")
	}
}

func TestSeriesEndToEnd(t *testing.T) {
	pb, pf := chains(t)
	eps := tpl.UniformBudgets(0.1, 10)
	tplSeries, err := tpl.TPLSeries(pb, pf, eps)
	if err != nil {
		t.Fatal(err)
	}
	bpl, err := tpl.BPLSeries(pb, eps)
	if err != nil {
		t.Fatal(err)
	}
	fpl, err := tpl.FPLSeries(pf, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eps {
		want := bpl[i] + fpl[i] - eps[i]
		if math.Abs(tplSeries[i]-want) > 1e-12 {
			t.Errorf("TPL[%d] = %v, want %v", i, tplSeries[i], want)
		}
	}
	worst, err := tpl.MaxTPL(pb, pf, eps)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0.1 {
		t.Errorf("MaxTPL = %v should exceed eps under correlation", worst)
	}
}

func TestAccountantFacade(t *testing.T) {
	pb, pf := chains(t)
	acc := tpl.NewAccountant(pb, pf)
	for i := 0; i < 5; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	alpha, err := acc.MaxTPL()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tpl.MaxTPL(pb, pf, tpl.UniformBudgets(0.1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-want) > 1e-12 {
		t.Errorf("accountant alpha = %v, batch = %v", alpha, want)
	}
}

func TestSupremumFacade(t *testing.T) {
	pf, err := tpl.NewChain([][]float64{{0.8, 0.2}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	sup, ok := tpl.Supremum(pf, 0.23)
	if !ok || sup <= 0.23 {
		t.Errorf("supremum = %v/%v", sup, ok)
	}
	id, err := tpl.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tpl.Supremum(id, 0.23); ok {
		t.Error("identity chain should have no supremum")
	}
}

func TestPlansFacade(t *testing.T) {
	pb, pf := chains(t)
	ub, err := tpl.PlanUpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := tpl.PlanQuantified(pb, pf, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Realized leakage under both plans stays within alpha.
	for _, plan := range []tpl.Plan{ub, qp} {
		budgets, err := plan.Budgets(10)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := tpl.MaxTPL(pb, pf, budgets)
		if err != nil {
			t.Fatal(err)
		}
		if worst > 1+1e-9 {
			t.Errorf("plan leaks %v > alpha", worst)
		}
	}
	id, err := tpl.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.PlanUpperBound(id, nil, 1); !errors.Is(err, tpl.ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
}

func TestReleaserFacade(t *testing.T) {
	pb, pf := chains(t)
	plan, err := tpl.PlanQuantified(pb, pf, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := tpl.NewReleaser(plan, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := tpl.NewSnapshot(2, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := r.Release(snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("histogram size %d", len(out))
		}
	}
}

func TestServerFacade(t *testing.T) {
	pb, pf := chains(t)
	srv, err := tpl.NewServer(2, 2, []tpl.AdversaryModel{
		{Backward: pb, Forward: pf},
		{},
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := srv.Collect([]int{0, 1}, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := srv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventLevelAlpha <= 0.2 {
		t.Errorf("correlated alpha = %v should exceed per-step eps", rep.EventLevelAlpha)
	}
	if math.Abs(rep.UserLevel-0.8) > 1e-12 {
		t.Errorf("user level = %v", rep.UserLevel)
	}
}

func TestChainHelpers(t *testing.T) {
	u, err := tpl.UniformChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tpl.Supremum(u, 1); !ok {
		t.Error("uniform chain should have a supremum (eps itself)")
	}
	sc, err := tpl.SmoothedChain(rand.New(rand.NewSource(3)), 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.N() != 10 {
		t.Errorf("smoothed chain N = %d", sc.N())
	}
	est, err := tpl.EstimateChain(2, [][]int{{0, 1, 0, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Prob(0, 1) != 1 {
		t.Errorf("estimated Pr(0->1) = %v", est.Prob(0, 1))
	}
	fwd, err := tpl.NewChain([][]float64{{0.9, 0.1}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := tpl.ReverseChain(fwd, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bwd.Prob(0, 0)-0.45/0.7) > 1e-12 {
		t.Errorf("reversed Prob(0,0) = %v", bwd.Prob(0, 0))
	}
}

func TestUserLevelFacade(t *testing.T) {
	if got := tpl.UserLevelTPL([]float64{0.1, 0.4}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("UserLevelTPL = %v", got)
	}
}
