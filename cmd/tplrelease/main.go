// Command tplrelease plans privacy budgets that convert an eps-DP
// mechanism into one satisfying alpha-DP_T under given temporal
// correlations, using the paper's Algorithm 2 (upper bound, any horizon)
// or Algorithm 3 (exact quantification, known horizon).
//
// Usage:
//
//	tplrelease -pb backward.csv -pf forward.csv -alpha 1 -alg 2
//	tplrelease -pb backward.csv -pf forward.csv -alpha 1 -alg 3 -T 20
//
// The tool prints the per-step budgets, the realized TPL at every time
// point (verified through the quantification machinery), and the
// expected Laplace noise per released count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/release"
	"repro/internal/report"
	"repro/internal/version"
)

func main() {
	var (
		pbPath  = flag.String("pb", "", "backward correlation matrix file; optional")
		pfPath  = flag.String("pf", "", "forward correlation matrix file; optional")
		alpha   = flag.Float64("alpha", 1, "target temporal privacy leakage (alpha-DP_T)")
		alg     = flag.Int("alg", 3, "planner: 2 = upper bound (any horizon), 3 = quantification (fixed T)")
		T       = flag.Int("T", 10, "release horizon (budgets printed for this many steps)")
		format  = flag.String("format", "", "output format: "+report.FormatNames()+" (default text)")
		csv     = flag.Bool("csv", false, "deprecated: alias for -format csv")
		showVer = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplrelease", version.String())
		return
	}
	*format = report.ResolveFormat(*format, *csv)
	if err := run(os.Stdout, *pbPath, *pfPath, *alpha, *alg, *T, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tplrelease: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, pbPath, pfPath string, alpha float64, alg, T int, format string) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	if T < 1 {
		return fmt.Errorf("-T must be at least 1, got %d", T)
	}
	var pb, pf *markov.Chain
	if pbPath != "" {
		if pb, err = loadChain(pbPath); err != nil {
			return fmt.Errorf("loading -pb: %w", err)
		}
	}
	if pfPath != "" {
		if pf, err = loadChain(pfPath); err != nil {
			return fmt.Errorf("loading -pf: %w", err)
		}
	}

	var plan release.Plan
	var title string
	switch alg {
	case 2:
		p, err := release.UpperBound(pb, pf, alpha)
		if err != nil {
			return err
		}
		plan = p
		title = fmt.Sprintf("Algorithm 2 plan for %g-DP_T (eps=%.6f at every step; BPL sup %.6f, FPL sup %.6f)",
			alpha, p.Eps, p.AlphaB, p.AlphaF)
	case 3:
		p, err := release.Quantified(pb, pf, alpha, T)
		if err != nil {
			return err
		}
		plan = p
		title = fmt.Sprintf("Algorithm 3 plan for %g-DP_T over T=%d (eps1=%.6f, epsM=%.6f, epsT=%.6f)",
			alpha, T, p.Eps1, p.EpsM, p.EpsT)
	default:
		return fmt.Errorf("-alg must be 2 or 3, got %d", alg)
	}

	budgets, err := plan.Budgets(T)
	if err != nil {
		return err
	}
	tpl, err := core.TPLSeries(core.NewQuantifier(pb), core.NewQuantifier(pf), budgets)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title:  title,
		Header: []string{"t", "eps", "realized TPL", "E|noise| (sens=1)"},
	}
	for t := 0; t < T; t++ {
		tb.AddRow(strconv.Itoa(t+1),
			fmt.Sprintf("%.6f", budgets[t]),
			fmt.Sprintf("%.6f", tpl[t]),
			fmt.Sprintf("%.4f", 1/budgets[t]))
	}
	if noise, err := mechanism.MeanExpectedAbsNoise(1, budgets); err == nil {
		tb.Notes = append(tb.Notes, fmt.Sprintf("mean E|noise| over the horizon: %.4f", noise))
	}
	worst := 0.0
	for _, v := range tpl {
		if v > worst {
			worst = v
		}
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("max realized TPL: %.6f (target %.6f)", worst, alpha))
	return tb.RenderFormat(w, f)
}

// loadChain reads a row-stochastic matrix from a text file (one row per
// line, comma- or whitespace-separated; '#' comments allowed).
func loadChain(path string) (*markov.Chain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		row := make([]float64, 0, len(fields))
		for _, fd := range fields {
			v, err := strconv.ParseFloat(fd, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q is not a number", lineNo, fd)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return markov.New(m)
}
