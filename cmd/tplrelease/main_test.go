package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

func writeMatrix(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithm3(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	pf := writeMatrix(t, "0.8 0.2\n0.1 0.9\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, pf, 1, 3, 6, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Algorithm 3 plan") {
		t.Errorf("missing title:\n%s", out)
	}
	// Algorithm 3 realizes the target exactly.
	if !strings.Contains(out, "max realized TPL: 1.000000 (target 1.000000)") {
		t.Errorf("expected exact realization:\n%s", out)
	}
}

func TestRunAlgorithm2(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 1, 2, 8, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Algorithm 2 plan") {
		t.Errorf("missing title:\n%s", buf.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	pb := writeMatrix(t, "0.9 0.1\n0.1 0.9\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 0.5, 3, 4, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t,eps,") {
		t.Errorf("csv header missing: %q", buf.String())
	}
}

func TestRunValidation(t *testing.T) {
	pb := writeMatrix(t, "0.9 0.1\n0.1 0.9\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 1, 9, 5, "text"); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := run(&buf, pb, "", 1, 3, 0, "text"); err == nil {
		t.Error("T=0 should fail")
	}
	if err := run(&buf, "/nope", "", 1, 3, 5, "text"); err == nil {
		t.Error("missing file should fail")
	}
	// Strongest correlation is refused by the fine planners.
	id := writeMatrix(t, "1 0\n0 1\n")
	if err := run(&buf, id, "", 1, 3, 5, "text"); err == nil {
		t.Error("identity correlation should be refused")
	}
}

func TestRunMarkdownAndJSON(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 1, 3, 4, "md"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### Algorithm 3 plan") {
		t.Errorf("markdown heading missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, pb, "", 1, 3, 4, "json"); err != nil {
		t.Fatal(err)
	}
	tables, err := report.ParseJSONLines(&buf)
	if err != nil || len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("json output does not round trip: %v", err)
	}
	if err := run(&buf, pb, "", 1, 3, 4, "yaml"); err == nil {
		t.Error("unknown format should fail")
	}
}
