// Command tplvet runs the repo's invariant analyzers (locksafe,
// determinism, wirecompat, hotalloc) over a set of package patterns
// and prints findings in the familiar file:line:col form.
//
// Usage:
//
//	tplvet [-analyzers locksafe,determinism,...] [packages]
//
// Patterns default to ./... relative to the current directory. Exit
// status: 0 when clean, 1 when findings were reported, 2 on a load or
// typecheck failure. CI runs `go run ./cmd/tplvet ./...` and treats any
// nonzero exit as a gate failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tplvet", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: tplvet [-analyzers list] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "\nanalyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tplvet:", err)
		return 2
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tplvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing")
	}
	return picked, nil
}
