package main

import "testing"

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != 4 {
		t.Fatalf("default selection: got %d analyzers, err %v", len(all), err)
	}
	two, err := selectAnalyzers("locksafe, determinism")
	if err != nil || len(two) != 2 {
		t.Fatalf("subset selection: got %d analyzers, err %v", len(two), err)
	}
	if _, err := selectAnalyzers("bogus"); err == nil {
		t.Fatal("unknown analyzer name accepted")
	}
	if _, err := selectAnalyzers(","); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestRunExitCodes(t *testing.T) {
	// The driver's own package is clean: no markers, out of scope.
	if got := run([]string{"."}); got != 0 {
		t.Fatalf("clean package: exit %d, want 0", got)
	}
	if got := run([]string{"-analyzers", "bogus", "."}); got != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", got)
	}
	if got := run([]string{"./does-not-exist"}); got != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", got)
	}
}
