package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/plugins/logs"
	"repro/internal/report"
	"repro/internal/service"
	"repro/tpl/client"
)

// The wire-API perf smoke behind -fig api: how fast can a tenant push
// time steps into the accountant over HTTP? Wire shapes measured
// against a real TCP server with identical 100k-user sessions (10
// cohorts, so each landed step does the same accounting work in every
// mode):
//
//   - v1-per-step: the deprecated contract — one request per step,
//     per-user values.
//   - v2-ndjson-values: the v2 batch endpoint, NDJSON, per-user values.
//     Removes the per-request overhead but still pays the dominant
//     cost, JSON-decoding 100k integers per step.
//   - v2-ndjson-counts: the v2 batch endpoint, NDJSON, pre-aggregated
//     histograms. The at-scale wire shape: a step is domain-sized, so
//     the transport stops being the bottleneck entirely.
//   - v2-ndjson-counts-minimal: the same wire shape with
//     `Prefer: return=minimal`, skipping the per-step noisy-value echo
//     in the response — the recommended high-rate ingest contract.
//   - v2-ndjson-counts-contended: aggregate throughput of several
//     sessions ingesting counts batches concurrently — the striped
//     registry's contention number.
//
// Each mode is warmed up untimed, then measured over a bounded-time
// window (not a fixed tiny request count — the old harness timed the
// counts row over ~3ms, which made the trajectory noise). Request
// bodies are pre-encoded outside the timed window. Alloc/op comes from
// runtime.MemStats deltas around the timed window and is process-wide:
// client and server share the process, so it bounds the server's
// steady-state garbage from above. Written as BENCH_api.json so CI
// tracks the trajectory next to BENCH_engine.json and
// BENCH_persist.json (the perf-gate job fails on >15% regressions).

// apiPoint is one row of BENCH_api.json.
type apiPoint struct {
	Mode          string  `json:"mode"`
	Steps         int     `json:"steps"`
	Requests      int     `json:"requests"`
	Writers       int     `json:"writers,omitempty"` // concurrent writers (contended + cluster rows)
	BytesPerStep  int     `json:"bytes_per_step"`
	NsPerStep     int64   `json:"ns_per_step"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	AllocsPerStep float64 `json:"allocs_per_step"` // process-wide (client+server)
	// Cluster rows only: the aggregate split per shard, and the
	// aggregate over cluster-1's (the near-linear-scaling claim the
	// perf gate holds — both field names match gated patterns).
	PerShardStepsPerSec float64 `json:"per_shard_steps_per_sec,omitempty"`
	ScalingSpeedup      float64 `json:"scaling_speedup_vs_cluster1,omitempty"`
}

// apiBenchFile is the BENCH_api.json document.
type apiBenchFile struct {
	Benchmark          string     `json:"benchmark"`
	Users              int        `json:"users"`
	Domain             int        `json:"domain"`
	Cohorts            int        `json:"cohorts"`
	Points             []apiPoint `json:"points"`
	SpeedupValuesVsV1  float64    `json:"speedup_values_vs_v1"`
	SpeedupCountsVsV1  float64    `json:"speedup_counts_vs_v1"`
	SpeedupBatchedVsV1 float64    `json:"speedup_batched_vs_v1"` // best batched mode vs v1
	Note               string     `json:"note"`
}

// encodeStepJSON renders one step object ({"values":[...]} or
// {"counts":[...]}) with an explicit budget.
func encodeStepJSON(key string, data []int, eps float64) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"` + key + `":[`)
	for i, v := range data {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.Itoa(v))
	}
	buf.WriteString(`],"eps":` + strconv.FormatFloat(eps, 'g', -1, 64) + `}`)
	return buf.Bytes()
}

// poster sends pre-encoded bodies to one endpoint, re-using a URL
// parsed once and a header map built once. http.NewRequest re-parses
// the URL (a percent-escape scan) and allocates fresh headers on every
// call — client-side overhead the harness would otherwise charge to
// the server being measured. The transport treats URL and Header as
// read-only, so sharing them across this poster's requests is safe
// (contended mode gives each writer its own poster).
type poster struct {
	hc     *http.Client
	u      *url.URL
	header http.Header
}

// newPoster builds a poster for one endpoint. minimal asks the server
// for the batch-ack-only response (RFC 7240).
func newPoster(hc *http.Client, rawURL, contentType string, minimal bool) (*poster, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	h := http.Header{"Content-Type": []string{contentType}}
	if minimal {
		h.Set("Prefer", "return=minimal")
	}
	return &poster{hc: hc, u: u, header: h}, nil
}

// post sends one pre-encoded body and drains the response.
func (p *poster) post(body []byte) error {
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           p.u,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        p.header,
		Host:          p.u.Host,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// timedResult is one measured window.
type timedResult struct {
	steps, requests int
	elapsed         time.Duration
	allocsPerStep   float64
}

// runTimed posts the pre-encoded bodies cyclically: one untimed warmup
// pass, then a timed loop that runs at least one full pass AND at least
// minWindow of wall clock — short fixed request counts made the old
// trajectory numbers noise. Alloc accounting wraps only the timed loop.
func runTimed(minWindow time.Duration, stepsPerBody []int, post func(i int) error) (timedResult, error) {
	n := len(stepsPerBody)
	for i := 0; i < n; i++ {
		if err := post(i); err != nil {
			return timedResult{}, fmt.Errorf("warmup: %w", err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var res timedResult
	start := time.Now()
	for i := 0; ; i++ {
		if err := post(i % n); err != nil {
			return timedResult{}, err
		}
		res.steps += stepsPerBody[i%n]
		res.requests++
		if res.requests >= n && time.Since(start) >= minWindow {
			break
		}
	}
	res.elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	res.allocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(res.steps)
	return res, nil
}

// point converts a timed window into a BENCH_api.json row.
func (r timedResult) point(mode string, bytesPerStep int) apiPoint {
	return apiPoint{
		Mode: mode, Steps: r.steps, Requests: r.requests,
		BytesPerStep:  bytesPerStep,
		NsPerStep:     r.elapsed.Nanoseconds() / int64(r.steps),
		StepsPerSec:   float64(r.steps) / r.elapsed.Seconds(),
		AllocsPerStep: r.allocsPerStep,
	}
}

// runAPIBench measures the wire modes and optionally writes
// BENCH_api.json.
func runAPIBench(wr *report.Writer, seed int64, full bool, jsonPath string) error {
	users, domain, cohorts := 100_000, 4, 10
	batch := 96
	minWindow := 500 * time.Millisecond
	contendedWriters := 8
	if full {
		minWindow = 2 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))

	// A real TCP server: the v1 number must pay genuine per-request
	// overhead, not httptest in-process shortcuts.
	api := service.NewAPI()
	hs := &http.Server{Handler: api.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{}
	c, err := client.New(base)
	if err != nil {
		return err
	}
	ctx := context.Background()

	newSession := func(name string) error {
		cfg, err := loadgen.SessionConfig(name, users, domain, cohorts, 0.45, 7)
		if err != nil {
			return err
		}
		_, err = c.CreateSession(ctx, cfg)
		return err
	}
	values := func() []int {
		v := make([]int, users)
		for i := range v {
			v[i] = rng.Intn(domain)
		}
		return v
	}
	counts := func() []int {
		cs := make([]int, domain)
		left := users
		for v := 0; v < domain-1; v++ {
			n := rng.Intn(left + 1)
			cs[v] = n
			left -= n
		}
		cs[domain-1] = left
		return cs
	}
	ndjsonBody := func(key string, steps int, gen func() []int) []byte {
		var buf bytes.Buffer
		for j := 0; j < steps; j++ {
			buf.Write(encodeStepJSON(key, gen(), 0.1))
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	// Steps landed per session (warmup included), for the sanity check.
	landed := map[string]int{}

	doc := apiBenchFile{
		Benchmark: "api", Users: users, Domain: domain, Cohorts: cohorts,
		Note: "warmed, bounded-time windows; pre-encoded bodies over real TCP; identical accounting per step in every mode; allocs/step is process-wide (client+server); counts(+minimal) is the recommended at-scale wire shape",
	}

	// --- v1: one request per step ---
	if err := newSession("bench-v1"); err != nil {
		return err
	}
	v1Bodies := make([][]byte, 12)
	v1Steps := make([]int, len(v1Bodies))
	for i := range v1Bodies {
		v1Bodies[i] = encodeStepJSON("values", values(), 0.1)
		v1Steps[i] = 1
	}
	v1Post, err := newPoster(hc, base+"/v1/sessions/bench-v1/steps", "application/json", false)
	if err != nil {
		return err
	}
	res, err := runTimed(minWindow, v1Steps, func(i int) error {
		landed["bench-v1"]++
		return v1Post.post(v1Bodies[i])
	})
	if err != nil {
		return fmt.Errorf("v1 step: %w", err)
	}
	p1 := res.point("v1-per-step", len(v1Bodies[0]))
	doc.Points = append(doc.Points, p1)

	// --- v2: NDJSON batches of per-user values ---
	if err := newSession("bench-v2v"); err != nil {
		return err
	}
	vBatch := 48 // a values batch is ~10 MB; keep bodies modest
	vBodies := [][]byte{ndjsonBody("values", vBatch, values)}
	vPost, err := newPoster(hc, base+"/v2/sessions/bench-v2v/steps", "application/x-ndjson", false)
	if err != nil {
		return err
	}
	res, err = runTimed(minWindow, []int{vBatch}, func(i int) error {
		landed["bench-v2v"] += vBatch
		return vPost.post(vBodies[i])
	})
	if err != nil {
		return fmt.Errorf("v2 values batch: %w", err)
	}
	p2 := res.point("v2-ndjson-values", len(vBodies[0])/vBatch)
	doc.Points = append(doc.Points, p2)

	// --- v2: NDJSON batches of pre-aggregated counts (full echo) ---
	if err := newSession("bench-v2c"); err != nil {
		return err
	}
	cBodies := make([][]byte, 4)
	cSteps := make([]int, len(cBodies))
	for i := range cBodies {
		cBodies[i] = ndjsonBody("counts", batch, counts)
		cSteps[i] = batch
	}
	cPost, err := newPoster(hc, base+"/v2/sessions/bench-v2c/steps", "application/x-ndjson", false)
	if err != nil {
		return err
	}
	res, err = runTimed(minWindow, cSteps, func(i int) error {
		landed["bench-v2c"] += batch
		return cPost.post(cBodies[i])
	})
	if err != nil {
		return fmt.Errorf("v2 counts batch: %w", err)
	}
	p3 := res.point("v2-ndjson-counts", len(cBodies[0])/batch)
	doc.Points = append(doc.Points, p3)

	// --- v2 counts with Prefer: return=minimal (batch ack only) ---
	if err := newSession("bench-v2m"); err != nil {
		return err
	}
	mPost, err := newPoster(hc, base+"/v2/sessions/bench-v2m/steps", "application/x-ndjson", true)
	if err != nil {
		return err
	}
	res, err = runTimed(minWindow, cSteps, func(i int) error {
		landed["bench-v2m"] += batch
		return mPost.post(cBodies[i])
	})
	if err != nil {
		return fmt.Errorf("v2 counts minimal batch: %w", err)
	}
	pm := res.point("v2-ndjson-counts-minimal", len(cBodies[0])/batch)
	doc.Points = append(doc.Points, pm)

	// --- v2 counts-minimal with the decision-log plugin attached ---
	// The management-plane overhead row: the same wire shape as
	// counts-minimal, but every batch's accounting decision flows
	// through the non-blocking sink into a gzip spool (batch 256). The
	// perf gate keeps this within noise of the undecorated row.
	if err := newSession("bench-v2d"); err != nil {
		return err
	}
	spoolDir, err := os.MkdirTemp("", "tplbench-declog")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spoolDir)
	lp, err := logs.NewPlugin(logs.Config{SpoolPath: spoolDir + "/decisions.gz", Batch: 256, Buffer: 8192})
	if err != nil {
		return err
	}
	if err := lp.Start(ctx); err != nil {
		return err
	}
	api.Registry().SetDecisionSink(lp)
	dPost, err := newPoster(hc, base+"/v2/sessions/bench-v2d/steps", "application/x-ndjson", true)
	if err != nil {
		return err
	}
	res, err = runTimed(minWindow, cSteps, func(i int) error {
		landed["bench-v2d"] += batch
		return dPost.post(cBodies[i])
	})
	api.Registry().SetDecisionSink(nil)
	lp.Stop(ctx)
	if err != nil {
		return fmt.Errorf("v2 counts declog batch: %w", err)
	}
	pd := res.point("v2-ndjson-counts-declog-minimal", len(cBodies[0])/batch)
	doc.Points = append(doc.Points, pd)

	// --- v2 counts at the at-scale batch size (1024 steps/request,
	// minimal response): the headline ingest-rate number. At batch 96
	// the per-request TCP+client round trip (~175µs in-process-client
	// terms) is the dominant cost; 1024-step batches amortize it away.
	if err := newSession("bench-v2b"); err != nil {
		return err
	}
	bigBatch := 1024
	bBodies := [][]byte{ndjsonBody("counts", bigBatch, counts), ndjsonBody("counts", bigBatch, counts)}
	bSteps := []int{bigBatch, bigBatch}
	bPost, err := newPoster(hc, base+"/v2/sessions/bench-v2b/steps", "application/x-ndjson", true)
	if err != nil {
		return err
	}
	res, err = runTimed(minWindow, bSteps, func(i int) error {
		landed["bench-v2b"] += bigBatch
		return bPost.post(bBodies[i])
	})
	if err != nil {
		return fmt.Errorf("v2 counts big batch: %w", err)
	}
	pb := res.point("v2-ndjson-counts-b1024-minimal", len(bBodies[0])/bigBatch)
	doc.Points = append(doc.Points, pb)

	// --- contended: aggregate counts ingest across concurrent sessions ---
	contended, err := runContended(hc, c, base, newSession, cBodies, batch, contendedWriters, minWindow, landed)
	if err != nil {
		return err
	}
	doc.Points = append(doc.Points, contended.point("v2-ndjson-counts-contended", len(cBodies[0])/batch))
	doc.Points[len(doc.Points)-1].Writers = contendedWriters

	// --- cluster-N: weak-scaling ingest across isolated durable shards ---
	clusterPts, err := runClusterBench(hc, cBodies, batch, users, domain, cohorts, minWindow)
	if err != nil {
		return err
	}
	doc.Points = append(doc.Points, clusterPts...)

	// Sanity: every mode really accounted its steps.
	for name, want := range landed {
		sum, err := c.GetSession(ctx, name)
		if err != nil {
			return err
		}
		if sum.T != want {
			return fmt.Errorf("session %s ended at t=%d, want %d", name, sum.T, want)
		}
	}

	doc.SpeedupValuesVsV1 = p2.StepsPerSec / p1.StepsPerSec
	doc.SpeedupCountsVsV1 = p3.StepsPerSec / p1.StepsPerSec
	doc.SpeedupBatchedVsV1 = max(doc.SpeedupValuesVsV1, pm.StepsPerSec/p1.StepsPerSec)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	tb := &report.Table{
		Title:  fmt.Sprintf("Wire-API ingest benchmark (%d users, %d cohorts, domain %d)", users, cohorts, domain),
		Header: []string{"mode", "steps", "requests", "writers", "bytes/step", "per step", "steps/s", "allocs/step", "vs v1", "scaling"},
	}
	for _, p := range doc.Points {
		writers := p.Writers
		if writers == 0 {
			writers = 1
		}
		scaling := "-"
		if p.ScalingSpeedup > 0 {
			scaling = fmt.Sprintf("%.2fx", p.ScalingSpeedup)
		}
		tb.AddRow(
			p.Mode,
			strconv.Itoa(p.Steps),
			strconv.Itoa(p.Requests),
			strconv.Itoa(writers),
			strconv.Itoa(p.BytesPerStep),
			time.Duration(p.NsPerStep).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", p.StepsPerSec),
			fmt.Sprintf("%.1f", p.AllocsPerStep),
			fmt.Sprintf("%.1fx", p.StepsPerSec/p1.StepsPerSec),
			scaling,
		)
	}
	tb.Notes = append(tb.Notes,
		"values batching removes per-request overhead but still JSON-decodes one integer per user per step; counts removes the transport bottleneck",
		"counts-minimal adds `Prefer: return=minimal` (batch ack instead of the per-step noisy-value echo) — the high-rate ingest contract",
		"allocs/step is a process-wide MemStats delta (client+server share the process): an upper bound on server-side garbage",
		"cluster-N: weak scaling over N isolated durable shards (group-commit journal, one counts writer per shard, direct dial); scaling = aggregate steps/s vs cluster-1",
		"regenerate BENCH_api.json with: go run ./cmd/tplbench -fig api -api-json BENCH_api.json")
	return wr.WriteTable(tb)
}

// runContended measures aggregate counts-mode throughput with one
// writer goroutine per session, all ingesting concurrently against the
// same registry until a shared deadline — the striped-lock contention
// number.
func runContended(hc *http.Client, c *client.Client, base string, newSession func(string) error,
	bodies [][]byte, batch, writers int, minWindow time.Duration, landed map[string]int) (timedResult, error) {
	names := make([]string, writers)
	for i := range names {
		names[i] = fmt.Sprintf("bench-cont-%d", i)
		if err := newSession(names[i]); err != nil {
			return timedResult{}, err
		}
	}
	posters := make(map[string]*poster, writers)
	for _, name := range names {
		p, err := newPoster(hc, base+"/v2/sessions/"+name+"/steps", "application/x-ndjson", true)
		if err != nil {
			return timedResult{}, err
		}
		posters[name] = p
	}
	post := func(name string, body []byte) error {
		return posters[name].post(body)
	}
	// Untimed warmup: one body per writer, concurrently.
	var wg sync.WaitGroup
	warmErr := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := post(names[i], bodies[0]); err != nil {
				warmErr <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-warmErr:
		return timedResult{}, fmt.Errorf("contended warmup: %w", err)
	default:
	}
	for _, name := range names {
		landed[name] += batch
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var steps, requests atomic.Int64
	perWriter := make([]int, writers) // landed steps, merged after the join
	errs := make(chan error, writers)
	start := time.Now()
	deadline := start.Add(minWindow)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; time.Now().Before(deadline); k++ {
				if err := post(names[i], bodies[k%len(bodies)]); err != nil {
					errs <- fmt.Errorf("contended writer %d: %w", i, err)
					return
				}
				perWriter[i] += batch
				steps.Add(int64(batch))
				requests.Add(1)
			}
		}(i)
	}
	wg.Wait()
	for i, n := range perWriter {
		landed[names[i]] += n
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errs:
		return timedResult{}, err
	default:
	}
	res := timedResult{
		steps:    int(steps.Load()),
		requests: int(requests.Load()),
		elapsed:  elapsed,
	}
	res.allocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(res.steps)
	return res, nil
}
