package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/loadgen"
	"repro/internal/report"
	"repro/internal/service"
	"repro/tpl/client"
)

// The wire-API perf smoke behind -fig api: how fast can a tenant push
// time steps into the accountant over HTTP? Three wire shapes are
// measured against a real TCP server with an identical 100k-user
// session (10 cohorts, so each landed step does the same accounting
// work in every mode):
//
//   - v1-per-step: the deprecated contract — one request per step,
//     per-user values.
//   - v2-ndjson-values: the v2 batch endpoint, NDJSON, per-user values.
//     Removes the per-request overhead but still pays the dominant
//     cost, JSON-decoding 100k integers per step.
//   - v2-ndjson-counts: the v2 batch endpoint, NDJSON, pre-aggregated
//     histograms. The at-scale wire shape: a step is domain-sized, so
//     the transport stops being the bottleneck entirely.
//
// Request bodies are pre-encoded outside the timed window — the figure
// is server ingest throughput, not client marshaling. Written as
// BENCH_api.json so CI tracks the trajectory next to BENCH_engine.json
// and BENCH_persist.json.

// apiPoint is one row of BENCH_api.json.
type apiPoint struct {
	Mode         string  `json:"mode"`
	Steps        int     `json:"steps"`
	Requests     int     `json:"requests"`
	BytesPerStep int     `json:"bytes_per_step"`
	NsPerStep    int64   `json:"ns_per_step"`
	StepsPerSec  float64 `json:"steps_per_sec"`
}

// apiBenchFile is the BENCH_api.json document.
type apiBenchFile struct {
	Benchmark          string     `json:"benchmark"`
	Users              int        `json:"users"`
	Domain             int        `json:"domain"`
	Cohorts            int        `json:"cohorts"`
	Points             []apiPoint `json:"points"`
	SpeedupValuesVsV1  float64    `json:"speedup_values_vs_v1"`
	SpeedupCountsVsV1  float64    `json:"speedup_counts_vs_v1"`
	SpeedupBatchedVsV1 float64    `json:"speedup_batched_vs_v1"` // best batched mode vs v1
	Note               string     `json:"note"`
}

// encodeStepJSON renders one step object ({"values":[...]} or
// {"counts":[...]}) with an explicit budget.
func encodeStepJSON(key string, data []int, eps float64) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"` + key + `":[`)
	for i, v := range data {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.Itoa(v))
	}
	buf.WriteString(`],"eps":` + strconv.FormatFloat(eps, 'g', -1, 64) + `}`)
	return buf.Bytes()
}

// postRaw sends one pre-encoded body and drains the response.
func postRaw(hc *http.Client, url, contentType string, body []byte) error {
	resp, err := hc.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// runAPIBench measures the three wire modes and optionally writes
// BENCH_api.json.
func runAPIBench(wr *report.Writer, seed int64, full bool, jsonPath string) error {
	users, domain, cohorts := 100_000, 4, 10
	v1Steps, valuesSteps, countsSteps := 12, 48, 384
	batch := 96
	if full {
		v1Steps, valuesSteps, countsSteps = 30, 120, 1024
	}
	rng := rand.New(rand.NewSource(seed))

	// A real TCP server: the v1 number must pay genuine per-request
	// overhead, not httptest in-process shortcuts.
	api := service.NewAPI()
	hs := &http.Server{Handler: api.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{}
	c, err := client.New(base)
	if err != nil {
		return err
	}
	ctx := context.Background()

	newSession := func(name string) error {
		cfg, err := loadgen.SessionConfig(name, users, domain, cohorts, 0.45, 7)
		if err != nil {
			return err
		}
		_, err = c.CreateSession(ctx, cfg)
		return err
	}
	values := func() []int {
		v := make([]int, users)
		for i := range v {
			v[i] = rng.Intn(domain)
		}
		return v
	}
	counts := func() []int {
		cs := make([]int, domain)
		left := users
		for v := 0; v < domain-1; v++ {
			n := rng.Intn(left + 1)
			cs[v] = n
			left -= n
		}
		cs[domain-1] = left
		return cs
	}

	doc := apiBenchFile{
		Benchmark: "api", Users: users, Domain: domain, Cohorts: cohorts,
		Note: "pre-encoded bodies over real TCP; identical accounting per step in every mode; counts is the recommended at-scale wire shape",
	}

	// --- v1: one request per step ---
	if err := newSession("bench-v1"); err != nil {
		return err
	}
	v1Bodies := make([][]byte, v1Steps)
	for i := range v1Bodies {
		v1Bodies[i] = encodeStepJSON("values", values(), 0.1)
	}
	start := time.Now()
	for _, body := range v1Bodies {
		if err := postRaw(hc, base+"/v1/sessions/bench-v1/steps", "application/json", body); err != nil {
			return fmt.Errorf("v1 step: %w", err)
		}
	}
	elapsed := time.Since(start)
	p1 := apiPoint{
		Mode: "v1-per-step", Steps: v1Steps, Requests: v1Steps,
		BytesPerStep: len(v1Bodies[0]),
		NsPerStep:    elapsed.Nanoseconds() / int64(v1Steps),
		StepsPerSec:  float64(v1Steps) / elapsed.Seconds(),
	}
	doc.Points = append(doc.Points, p1)

	// --- v2: NDJSON batches of per-user values ---
	if err := newSession("bench-v2v"); err != nil {
		return err
	}
	var vBodies [][]byte
	for done := 0; done < valuesSteps; {
		n := min(batch, valuesSteps-done)
		var buf bytes.Buffer
		for j := 0; j < n; j++ {
			buf.Write(encodeStepJSON("values", values(), 0.1))
			buf.WriteByte('\n')
		}
		vBodies = append(vBodies, buf.Bytes())
		done += n
	}
	start = time.Now()
	for _, body := range vBodies {
		if err := postRaw(hc, base+"/v2/sessions/bench-v2v/steps", "application/x-ndjson", body); err != nil {
			return fmt.Errorf("v2 values batch: %w", err)
		}
	}
	elapsed = time.Since(start)
	p2 := apiPoint{
		Mode: "v2-ndjson-values", Steps: valuesSteps, Requests: len(vBodies),
		BytesPerStep: len(vBodies[0]) / min(batch, valuesSteps),
		NsPerStep:    elapsed.Nanoseconds() / int64(valuesSteps),
		StepsPerSec:  float64(valuesSteps) / elapsed.Seconds(),
	}
	doc.Points = append(doc.Points, p2)

	// --- v2: NDJSON batches of pre-aggregated counts ---
	if err := newSession("bench-v2c"); err != nil {
		return err
	}
	var cBodies [][]byte
	for done := 0; done < countsSteps; {
		n := min(batch, countsSteps-done)
		var buf bytes.Buffer
		for j := 0; j < n; j++ {
			buf.Write(encodeStepJSON("counts", counts(), 0.1))
			buf.WriteByte('\n')
		}
		cBodies = append(cBodies, buf.Bytes())
		done += n
	}
	start = time.Now()
	for _, body := range cBodies {
		if err := postRaw(hc, base+"/v2/sessions/bench-v2c/steps", "application/x-ndjson", body); err != nil {
			return fmt.Errorf("v2 counts batch: %w", err)
		}
	}
	elapsed = time.Since(start)
	p3 := apiPoint{
		Mode: "v2-ndjson-counts", Steps: countsSteps, Requests: len(cBodies),
		BytesPerStep: len(cBodies[0]) / min(batch, countsSteps),
		NsPerStep:    elapsed.Nanoseconds() / int64(countsSteps),
		StepsPerSec:  float64(countsSteps) / elapsed.Seconds(),
	}
	doc.Points = append(doc.Points, p3)

	// Sanity: every mode really accounted its steps.
	for _, chk := range []struct {
		name string
		want int
	}{{"bench-v1", v1Steps}, {"bench-v2v", valuesSteps}, {"bench-v2c", countsSteps}} {
		sum, err := c.GetSession(ctx, chk.name)
		if err != nil {
			return err
		}
		if sum.T != chk.want {
			return fmt.Errorf("session %s ended at t=%d, want %d", chk.name, sum.T, chk.want)
		}
	}

	doc.SpeedupValuesVsV1 = p2.StepsPerSec / p1.StepsPerSec
	doc.SpeedupCountsVsV1 = p3.StepsPerSec / p1.StepsPerSec
	doc.SpeedupBatchedVsV1 = max(doc.SpeedupValuesVsV1, doc.SpeedupCountsVsV1)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	tb := &report.Table{
		Title:  fmt.Sprintf("Wire-API ingest benchmark (%d users, %d cohorts, domain %d)", users, cohorts, domain),
		Header: []string{"mode", "steps", "requests", "bytes/step", "per step", "steps/s", "vs v1"},
	}
	for _, p := range doc.Points {
		tb.AddRow(
			p.Mode,
			strconv.Itoa(p.Steps),
			strconv.Itoa(p.Requests),
			strconv.Itoa(p.BytesPerStep),
			time.Duration(p.NsPerStep).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", p.StepsPerSec),
			fmt.Sprintf("%.1fx", p.StepsPerSec/p1.StepsPerSec),
		)
	}
	tb.Notes = append(tb.Notes,
		"values batching removes per-request overhead but still JSON-decodes one integer per user per step; counts removes the transport bottleneck",
		"regenerate BENCH_api.json with: go run ./cmd/tplbench -fig api -api-json BENCH_api.json")
	return wr.WriteTable(tb)
}
