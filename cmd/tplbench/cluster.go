package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/persist"
	"repro/internal/service"
	"repro/tpl/client"
)

// The cluster rows: weak-scaling ingest across N shards in one
// process. Each shard is a fully isolated tplserved data plane — its
// own registry, its own persist store, its own group-commit journal,
// its own TCP listener — exactly what `-role shard` boots, minus the
// process boundary. One session and one writer per shard, all posting
// counts batches (minimal responses) against a shared deadline, so
// growing N grows the offered load with the capacity (weak scaling:
// the per-shard work is constant, the aggregate should grow ~N×).
//
// The writers dial their shard directly rather than through a router:
// topology-aware clients are the design's steady-state data path (the
// router exists for topology discovery and transition traffic), so
// the scaling number measures what the architecture actually promises.
//
// Durability is ON (group-commit journal). That is deliberate twice
// over: it is the production configuration, and the commit window is
// precisely the per-request cost that a single shard cannot buy back
// with more client concurrency — one journal, one commit lock. Adding
// shards multiplies independent commit groups, which is where the
// near-linear aggregate comes from.
//
// The shards run a 6ms commit window (-journal-window 6ms in flag
// terms) rather than the 2ms default. The scaling rows must measure
// shard independence, not how many cores the bench machine happens to
// have: with a wider window each request's CPU share (decode, journal
// gob-encode, fsync issue) stays small next to the window even with
// four shards on one core, so the measured regime is the
// commit-window-bound one the sharding design targets. The perf gate
// then holds the ratio — a change that couples the shards (a shared
// lock, a shared committer) collapses it regardless of the window.
const clusterCommitWindow = 6 * time.Millisecond

type benchShard struct {
	api  *service.API
	hs   *http.Server
	base string
	dir  string
	post *poster
	name string // its session
}

// startBenchShard boots one isolated durable shard on a loopback port
// and creates its session.
func startBenchShard(hc *http.Client, id int, users, domain, cohorts int) (*benchShard, error) {
	dir, err := os.MkdirTemp("", "tplbench-cluster")
	if err != nil {
		return nil, err
	}
	s := &benchShard{api: service.NewAPI(), dir: dir}
	store, err := persist.NewStore(dir)
	if err != nil {
		s.stop()
		return nil, err
	}
	if err := s.api.Registry().SetJournalSync(service.JournalSyncGroup, clusterCommitWindow); err != nil {
		s.stop()
		return nil, err
	}
	// Snapshots off the timed path: at 1<<20 steps between snapshots the
	// window only ever pays journal appends, never a full-state encode.
	if err := s.api.Registry().EnablePersistence(store, 1<<20); err != nil {
		s.stop()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.stop()
		return nil, err
	}
	s.hs = &http.Server{Handler: s.api.Handler()}
	go s.hs.Serve(ln)
	s.base = "http://" + ln.Addr().String()

	s.name = fmt.Sprintf("bench-cluster-%d", id)
	cfg, err := loadgen.SessionConfig(s.name, users, domain, cohorts, 0.45, 7)
	if err != nil {
		s.stop()
		return nil, err
	}
	c, err := client.New(s.base)
	if err != nil {
		s.stop()
		return nil, err
	}
	if _, err := c.CreateSession(context.Background(), cfg); err != nil {
		s.stop()
		return nil, err
	}
	s.post, err = newPoster(hc, s.base+"/v2/sessions/"+s.name+"/steps", "application/x-ndjson", true)
	if err != nil {
		s.stop()
		return nil, err
	}
	return s, nil
}

func (s *benchShard) stop() {
	if s.hs != nil {
		s.hs.Close()
	}
	s.api.Registry().Close()
	os.RemoveAll(s.dir)
}

// runClusterWindow measures one shard count: boot n shards, warm each
// writer once untimed, then drive one writer per shard until a shared
// deadline and verify every step landed.
func runClusterWindow(hc *http.Client, n int, bodies [][]byte, batch, users, domain, cohorts int,
	minWindow time.Duration) (timedResult, error) {
	shards := make([]*benchShard, 0, n)
	defer func() {
		for _, s := range shards {
			s.stop()
		}
	}()
	for i := 0; i < n; i++ {
		s, err := startBenchShard(hc, i, users, domain, cohorts)
		if err != nil {
			return timedResult{}, fmt.Errorf("cluster-%d shard %d: %w", n, i, err)
		}
		shards = append(shards, s)
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, s := range shards {
		wg.Add(1)
		go func(s *benchShard) {
			defer wg.Done()
			if err := s.post.post(bodies[0]); err != nil {
				errs <- fmt.Errorf("cluster-%d warmup: %w", n, err)
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return timedResult{}, err
	default:
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var steps, requests atomic.Int64
	perShard := make([]int, n) // landed steps past warmup, merged after the join
	start := time.Now()
	deadline := start.Add(minWindow)
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *benchShard) {
			defer wg.Done()
			for k := 0; time.Now().Before(deadline); k++ {
				if err := s.post.post(bodies[k%len(bodies)]); err != nil {
					errs <- fmt.Errorf("cluster-%d writer %d: %w", n, i, err)
					return
				}
				perShard[i] += batch
				steps.Add(int64(batch))
				requests.Add(1)
			}
		}(i, s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errs:
		return timedResult{}, err
	default:
	}

	// Sanity: every shard really accounted its steps.
	ctx := context.Background()
	for i, s := range shards {
		c, err := client.New(s.base)
		if err != nil {
			return timedResult{}, err
		}
		sum, err := c.GetSession(ctx, s.name)
		if err != nil {
			return timedResult{}, err
		}
		if want := batch + perShard[i]; sum.T != want {
			return timedResult{}, fmt.Errorf("cluster-%d shard %d ended at t=%d, want %d", n, i, sum.T, want)
		}
	}

	res := timedResult{
		steps:    int(steps.Load()),
		requests: int(requests.Load()),
		elapsed:  elapsed,
	}
	res.allocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(res.steps)
	return res, nil
}

// runClusterBench produces the cluster-1/2/4 rows. The scaling number
// each larger row carries is its aggregate steps/s over cluster-1's —
// the perf gate holds it (a "speedup" field is gated higher-better),
// so a change that breaks shard independence fails CI even if every
// absolute throughput row stays green.
func runClusterBench(hc *http.Client, bodies [][]byte, batch, users, domain, cohorts int,
	minWindow time.Duration) ([]apiPoint, error) {
	sizes := []int{1, 2, 4}
	points := make([]apiPoint, 0, len(sizes))
	var base1 float64
	for _, n := range sizes {
		res, err := runClusterWindow(hc, n, bodies, batch, users, domain, cohorts, minWindow)
		if err != nil {
			return nil, err
		}
		p := res.point(fmt.Sprintf("cluster-%d", n), len(bodies[0])/batch)
		p.Writers = n
		p.PerShardStepsPerSec = p.StepsPerSec / float64(n)
		if n == 1 {
			base1 = p.StepsPerSec
		}
		p.ScalingSpeedup = p.StepsPerSec / base1
		points = append(points, p)
	}
	return points, nil
}
