// Command tplbench regenerates the tables and figures of the paper's
// evaluation (Section VI) plus the illustrative figures of Section III,
// printing the same rows/series the paper plots.
//
// Usage:
//
//	tplbench -fig all            # everything at quick sizes
//	tplbench -fig 5n -full       # Fig 5(a) at paper-scale parameters
//	tplbench -fig 7 -csv         # CSV instead of aligned text
//
// Figure ids: 1, 3, 4, 5n, 5a, 6, 7, 8t, 8s, table2, ablation,
// soundness, mixing, all.
//
// The -full flag switches to the paper's parameter scales where they are
// feasible on one machine; the default "quick" scales preserve every
// qualitative shape while finishing in seconds. The simplex baseline of
// Fig 5 stands in for Gurobi/lp_solve (see DESIGN.md) and is always run
// at reduced n: the whole point of the figure is that it explodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "which figure/table to regenerate: 1,3,4,5n,5a,6,7,8t,8s,table2,ablation,soundness,mixing,all")
		full = flag.Bool("full", false, "use paper-scale parameters where feasible (slower)")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seed = flag.Int64("seed", 1, "seed for the synthetic-correlation generators")
	)
	flag.Parse()
	if err := run(os.Stdout, *fig, *full, *csv, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "tplbench: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig string, full, csv bool, seed int64) error {
	emit := func(tables ...*expt.Table) error {
		for _, tb := range tables {
			var err error
			if csv {
				err = tb.CSV(w)
			} else {
				err = tb.Render(w)
			}
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	want := func(id string) bool { return fig == "all" || strings.EqualFold(fig, id) }
	matched := false

	if want("1") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		r, err := expt.Fig1(rng, 40, 6, 1)
		if err != nil {
			return err
		}
		if err := emit(r.Tables()...); err != nil {
			return err
		}
	}
	if want("3") {
		matched = true
		r, err := expt.Fig3(0.1, 10)
		if err != nil {
			return err
		}
		if err := emit(r.Tables()...); err != nil {
			return err
		}
	}
	if want("4") {
		matched = true
		T := 100
		panels, err := expt.Fig4(T)
		if err != nil {
			return err
		}
		if err := emit(expt.Fig4Table(panels)); err != nil {
			return err
		}
	}
	if want("5n") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		alg1 := []int{50, 100, 150}
		simplexNs := []int{4, 6, 8, 10}
		if full {
			alg1 = []int{50, 100, 150, 200, 250}
			simplexNs = []int{4, 6, 8, 10, 12, 16, 20}
		}
		pts, err := expt.Fig5N(rng, alg1, simplexNs, 10)
		if err != nil {
			return err
		}
		if err := emit(expt.Fig5Table("Fig 5(a): runtime vs n (alpha=10)", pts)); err != nil {
			return err
		}
	}
	if want("5a") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		alphas := []float64{0.001, 0.01, 0.1, 1, 10, 20}
		alg1N, simplexN := 50, 8
		if full {
			simplexN = 12
		}
		pts, err := expt.Fig5Alpha(rng, alphas, alg1N, simplexN)
		if err != nil {
			return err
		}
		if err := emit(expt.Fig5Table(
			fmt.Sprintf("Fig 5(b): runtime vs alpha (Algorithm 1 at n=%d, simplex at n=%d)", alg1N, simplexN), pts)); err != nil {
			return err
		}
	}
	if want("6") {
		matched = true
		for _, eps := range []float64{1, 0.1} {
			rng := rand.New(rand.NewSource(seed))
			T := 15
			configs := expt.Fig6DefaultConfigs(eps)
			if eps == 0.1 {
				T = 150
			}
			if !full {
				// Shrink n=200 to n=100 in quick mode.
				for i := range configs {
					if configs[i].N > 100 {
						configs[i].N = 100
					}
				}
				if T > 80 {
					T = 80
				}
			}
			curves, err := expt.Fig6(rng, configs, T)
			if err != nil {
				return err
			}
			if err := emit(expt.Fig6Table(eps, curves)); err != nil {
				return err
			}
		}
	}
	if want("7") {
		matched = true
		r, err := expt.Fig7(1, 30)
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
	}
	if want("8t") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		n := 50
		if !full {
			n = 30
		}
		pts, err := expt.Fig8T(rng, 2, 0.001, n, []int{5, 10, 50})
		if err != nil {
			return err
		}
		tb, err := expt.Fig8Table(
			fmt.Sprintf("Fig 8(a): utility of 2-DP_T vs T (n=%d, s=0.001)", n), "T", pts)
		if err != nil {
			return err
		}
		if err := emit(tb); err != nil {
			return err
		}
	}
	if want("8s") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		n := 50
		if !full {
			n = 30
		}
		pts, ref, err := expt.Fig8S(rng, 2, 10, n, []float64{0.01, 0.1, 1})
		if err != nil {
			return err
		}
		tb, err := expt.Fig8Table(
			fmt.Sprintf("Fig 8(b): utility of 2-DP_T vs s (n=%d, T=10)", n), "s", pts)
		if err != nil {
			return err
		}
		tb.Notes = append(tb.Notes, fmt.Sprintf("no-correlation reference noise: %.4f", ref))
		if err := emit(tb); err != nil {
			return err
		}
	}
	if want("table2") {
		matched = true
		r, err := expt.TableII(fig7Chain(), 0.1, 10, 3)
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
	}
	if want("ablation") {
		matched = true
		rng := rand.New(rand.NewSource(seed))
		T := 50
		n := 12
		if full {
			n = 20
		}
		rows, err := expt.AblationPlanners(rng, 2, T, n, []float64{0, 0.01, 0.1, 1})
		if err != nil {
			return err
		}
		if err := emit(expt.AblationPlannersTable(2, T, rows)); err != nil {
			return err
		}
		ns := []int{5, 10, 20, 40}
		if full {
			ns = append(ns, 80)
		}
		solvers, err := expt.AblationSolvers(rng, ns, 10)
		if err != nil {
			return err
		}
		if err := emit(expt.AblationSolversTable(10, solvers)); err != nil {
			return err
		}
	}
	if want("mixing") {
		matched = true
		rows, err := expt.Mixing(0.2, []float64{1.0 / 3, 0.5, 0.7, 0.9, 0.99, 1})
		if err != nil {
			return err
		}
		if err := emit(expt.MixingTable(0.2, rows)); err != nil {
			return err
		}
	}
	if want("soundness") {
		matched = true
		steps := 8
		if !full {
			steps = 6
		}
		rows, err := expt.Soundness(0.3, steps)
		if err != nil {
			return err
		}
		if err := emit(expt.SoundnessTable(rows)); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure id %q (want 1,3,4,5n,5a,6,7,8t,8s,table2,ablation,soundness,mixing,all)", fig)
	}
	return nil
}
