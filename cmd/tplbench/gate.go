package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/perfgate"
)

// runGate executes the perf-regression gate: each spec entry is
// "trajectory.json:fresh.json", comma-separated for several documents.
// It prints one summary line per comparison and returns an error (which
// main turns into a non-zero exit) if any metric regressed beyond the
// tolerance — this is what the CI perf-gate step runs after
// regenerating the BENCH_*.ci.json files.
func runGate(w io.Writer, spec string, tolerance float64) error {
	pairs := strings.Split(spec, ",")
	failed := 0
	for _, pair := range pairs {
		oldPath, newPath, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok || oldPath == "" || newPath == "" {
			return fmt.Errorf("-gate wants trajectory.json:fresh.json pairs, got %q", pair)
		}
		oldDoc, err := os.ReadFile(oldPath)
		if err != nil {
			return err
		}
		newDoc, err := os.ReadFile(newPath)
		if err != nil {
			return err
		}
		rep, err := perfgate.Compare(oldDoc, newDoc, tolerance)
		if err != nil {
			return err
		}
		status := "ok"
		if !rep.OK() {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "perf-gate %s: %s (%d rows, %d metrics vs %s)\n",
			rep.Benchmark, status, rep.Points, rep.Metrics, oldPath)
		for _, np := range rep.NewPoints {
			fmt.Fprintf(w, "  new row (no trajectory yet): %s\n", np)
		}
		for _, reg := range rep.Regressions {
			fmt.Fprintf(w, "  regression: %s\n", reg)
		}
	}
	if failed > 0 {
		return fmt.Errorf("perf gate failed: %d benchmark document(s) regressed beyond %.0f%%",
			failed, 100*effectiveTolerance(tolerance))
	}
	return nil
}

func effectiveTolerance(tol float64) float64 {
	if tol <= 0 {
		return perfgate.DefaultTolerance
	}
	return tol
}
