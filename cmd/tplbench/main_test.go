package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestRunEveryFigure(t *testing.T) {
	// Quick-scale smoke of every figure id, asserting each produces its
	// identifying title.
	wantTitles := map[string]string{
		"1":         "Fig 1(c)",
		"3":         "Fig 3(a)",
		"4":         "Fig 4",
		"7":         "Fig 7",
		"table2":    "Table II",
		"mixing":    "Structure vs privacy",
		"soundness": "Soundness",
	}
	for fig, title := range wantTitles {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, "text", 1, "", "", ""); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), title) {
			t.Errorf("fig %s: output missing %q", fig, title)
		}
	}
}

func TestRunSlowFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second figure regenerations in -short mode")
	}
	wantTitles := map[string]string{
		"5n":       "Fig 5(a)",
		"5a":       "Fig 5(b)",
		"6":        "Fig 6",
		"8t":       "Fig 8(a)",
		"8s":       "Fig 8(b)",
		"ablation": "Ablation",
	}
	for fig, title := range wantTitles {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, "text", 1, "", "", ""); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), title) {
			t.Errorf("fig %s: output missing %q", fig, title)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", false, "csv", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "privacy notion,independent,temporally correlated") {
		t.Errorf("csv output missing header: %q", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", false, "text", 1, "", "", ""); err == nil {
		t.Error("unknown figure id should fail")
	}
}

func TestRunFig3MatchesGolden(t *testing.T) {
	// The Fig. 3 CSV is fully deterministic (no RNG involved); pin it to
	// a golden file so numeric regressions in the quantification core
	// surface immediately.
	golden, err := os.ReadFile("testdata/fig3.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "3", false, "csv", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("fig 3 output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
			buf.String(), golden)
	}
}

func TestRunTable2MatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/table2.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "table2", false, "csv", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("Table II output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
			buf.String(), golden)
	}
}

func TestRunFig3PrintsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "3", false, "text", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"0.18", "0.64", "0.50"} {
		if !strings.Contains(buf.String(), v) {
			t.Errorf("fig 3 output missing paper value %s", v)
		}
	}
}

func TestCSVFlagAliasesFormat(t *testing.T) {
	cases := []struct {
		format string
		csv    bool
		want   string
	}{
		{"", false, ""},
		{"", true, "csv"},
		{"md", true, "md"}, // explicit -format wins over the alias
		{"json", false, "json"},
	}
	for _, c := range cases {
		if got := report.ResolveFormat(c.format, c.csv); got != c.want {
			t.Errorf("report.ResolveFormat(%q, %v) = %q, want %q", c.format, c.csv, got, c.want)
		}
	}
}

func TestEveryFastFigureRendersInAllFormats(t *testing.T) {
	// Acceptance: every figure id renders through internal/report in
	// all four formats. The fast figures run the full matrix here; the
	// multi-second ones are covered in text by TestRunSlowFigures and
	// in JSON by TestSlowFigureJSONParses.
	for _, fig := range []string{"1", "3", "4", "7", "table2", "mixing", "soundness"} {
		for _, format := range []string{"text", "csv", "md", "json"} {
			var buf bytes.Buffer
			if err := run(&buf, fig, false, format, 1, "", "", ""); err != nil {
				t.Fatalf("fig %s format %s: %v", fig, format, err)
			}
			if buf.Len() == 0 {
				t.Errorf("fig %s format %s: empty output", fig, format)
			}
			if format == "json" {
				tables, err := report.ParseJSONLines(&buf)
				if err != nil || len(tables) == 0 {
					t.Errorf("fig %s: JSON lines do not parse back: %v", fig, err)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "3", false, "yaml", 1, "", "", ""); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestSlowFigureJSONParses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second figure regeneration in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "8t", false, "json", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	tables, err := report.ParseJSONLines(&buf)
	if err != nil || len(tables) == 0 {
		t.Fatalf("fig 8t JSON lines do not parse back: %v", err)
	}
}

func TestRunAllEmitsDocumentHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full regeneration in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", false, "md", 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Paper-vs-measured record") {
		t.Errorf("markdown document should start with the H1 preamble, got %q", out[:80])
	}
	if !strings.Contains(out, "go run ./cmd/tplbench -fig all -format md > EXPERIMENTS.md") {
		t.Error("document preamble should state the regeneration command")
	}
}

// TestEngineBenchJSON runs the compiled-engine perf smoke at tiny sizes
// and checks both the rendered table and the machine-readable
// BENCH_engine.json it writes for the perf trajectory.
func TestEngineBenchJSON(t *testing.T) {
	path := t.TempDir() + "/BENCH_engine.json"
	var buf bytes.Buffer
	wr, err := report.NewWriter(&buf, report.Text)
	if err != nil {
		t.Fatal(err)
	}
	if err := runEngineBench(wr, 1, path, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Compiled-engine benchmark") {
		t.Errorf("table missing title:\n%s", out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc engineBenchFile
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("BENCH_engine.json does not parse: %v", err)
	}
	if doc.Benchmark != "engine" || len(doc.Points) != 2 {
		t.Fatalf("unexpected document %+v", doc)
	}
	for _, p := range doc.Points {
		if p.CompileNs <= 0 || p.EvalNs <= 0 || p.NaiveEvalNs <= 0 || p.Segments <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}
}
