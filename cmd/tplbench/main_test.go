package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunEveryFigure(t *testing.T) {
	// Quick-scale smoke of every figure id, asserting each produces its
	// identifying title.
	wantTitles := map[string]string{
		"1":         "Fig 1(c)",
		"3":         "Fig 3(a)",
		"4":         "Fig 4",
		"7":         "Fig 7",
		"table2":    "Table II",
		"mixing":    "Structure vs privacy",
		"soundness": "Soundness",
	}
	for fig, title := range wantTitles {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, false, 1); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), title) {
			t.Errorf("fig %s: output missing %q", fig, title)
		}
	}
}

func TestRunSlowFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second figure regenerations in -short mode")
	}
	wantTitles := map[string]string{
		"5n":       "Fig 5(a)",
		"5a":       "Fig 5(b)",
		"6":        "Fig 6",
		"8t":       "Fig 8(a)",
		"8s":       "Fig 8(b)",
		"ablation": "Ablation",
	}
	for fig, title := range wantTitles {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, false, 1); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), title) {
			t.Errorf("fig %s: output missing %q", fig, title)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", false, true, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "privacy notion,independent,temporally correlated") {
		t.Errorf("csv output missing header: %q", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", false, false, 1); err == nil {
		t.Error("unknown figure id should fail")
	}
}

func TestRunFig3MatchesGolden(t *testing.T) {
	// The Fig. 3 CSV is fully deterministic (no RNG involved); pin it to
	// a golden file so numeric regressions in the quantification core
	// surface immediately.
	golden, err := os.ReadFile("testdata/fig3.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "3", false, true, 1); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("fig 3 output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
			buf.String(), golden)
	}
}

func TestRunTable2MatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/table2.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "table2", false, true, 1); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("Table II output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
			buf.String(), golden)
	}
}

func TestRunFig3PrintsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "3", false, false, 1); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"0.18", "0.64", "0.50"} {
		if !strings.Contains(buf.String(), v) {
			t.Errorf("fig 3 output missing paper value %s", v)
		}
	}
}
