package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/enginecache"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/report"
)

// The compiled-engine perf smoke: compile cost and per-evaluation cost
// of Loss(alpha) at the three reference sizes, written as
// BENCH_engine.json so CI can track the perf trajectory run over run.
// n = 16 and n = 128 are dense uniform-random matrices; n = 1024 is a
// road-network-style sparse chain (8 successors per state), the regime
// the engine's sparse candidate extraction targets.

// enginePoint is one row of BENCH_engine.json.
type enginePoint struct {
	N           int     `json:"n"`
	Chain       string  `json:"chain"`
	CompileNs   int64   `json:"compile_ns"`
	EvalNs      float64 `json:"eval_ns"`
	NaiveEvalNs int64   `json:"naive_eval_ns"`
	Speedup     float64 `json:"speedup_per_eval"`
	// Warm-start columns: the on-disk engine cache's per-entry write
	// and load cost, and how many times cheaper a load is than the
	// compile it replaces. load is averaged over many repetitions —
	// entries are tiny, so a single load sits at timer resolution.
	CacheWriteNs int64   `json:"cache_write_ns"`
	CacheLoadNs  int64   `json:"cache_load_ns"`
	LoadSpeedup  float64 `json:"speedup_load_vs_compile"`
	Pairs        int     `json:"pairs"`
	Curves       int     `json:"curves"`
	Frontier     int     `json:"frontier"`
	Segments     int     `json:"segments"`
}

// engineBenchFile is the BENCH_engine.json document.
type engineBenchFile struct {
	Benchmark string        `json:"benchmark"`
	Alpha     float64       `json:"alpha"`
	Points    []enginePoint `json:"points"`
	Note      string        `json:"note"`
}

// engineChain builds the size-n benchmark chain (dense below 1024,
// sparse at 1024 and beyond).
func engineChain(seed int64, n int) (*markov.Chain, string, error) {
	rng := rand.New(rand.NewSource(seed + int64(n)))
	if n < 1024 {
		c, err := markov.UniformRandom(rng, n)
		return c, "dense-random", err
	}
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 8; k++ {
			m.Set(i, (i+1+rng.Intn(n-1))%n, rng.Float64()+0.05)
		}
		m.Set(i, i, rng.Float64()+0.05)
	}
	if err := m.NormalizeRows(); err != nil {
		return nil, "", err
	}
	c, err := markov.New(m)
	return c, "sparse-roadnet", err
}

// engineBench measures one size.
func engineBench(seed int64, n int, alpha float64) (enginePoint, error) {
	c, kind, err := engineChain(seed, n)
	if err != nil {
		return enginePoint{}, err
	}
	p := enginePoint{N: n, Chain: kind}

	// Compile: average a few repetitions at the small sizes, where a
	// single run sits near timer resolution.
	reps := 1
	if n <= 128 {
		reps = 5
	}
	start := time.Now()
	var qt *core.Quantifier
	for r := 0; r < reps; r++ {
		qt = core.NewQuantifier(c)
		qt.Engine()
	}
	p.CompileNs = time.Since(start).Nanoseconds() / int64(reps)
	st := qt.Engine().Stats()
	p.Pairs, p.Curves, p.Frontier, p.Segments = st.Pairs, st.Curves, st.Frontier, st.Segments

	// Compiled per-eval cost, amortized over a large batch.
	const evals = 200000
	start = time.Now()
	for i := 0; i < evals; i++ {
		_ = qt.LossValue(alpha)
	}
	p.EvalNs = float64(time.Since(start).Nanoseconds()) / evals

	// Pre-refactor pair scan, for the speedup trajectory. One repetition
	// is plenty at the large sizes (it is the slow route by construction).
	naiveReps := 1
	if n <= 128 {
		naiveReps = 3
	}
	start = time.Now()
	for r := 0; r < naiveReps; r++ {
		_ = qt.LossNaive(alpha)
	}
	p.NaiveEvalNs = time.Since(start).Nanoseconds() / int64(naiveReps)
	if p.EvalNs > 0 {
		p.Speedup = float64(p.NaiveEvalNs) / p.EvalNs
	}

	// Warm start: persist the compiled engine through the on-disk cache
	// and measure the load that replaces a compile on the next boot.
	// Load repetitions are high because a few-hundred-byte read plus
	// decode is microseconds — far below one compile at any size.
	dir, err := os.MkdirTemp("", "tplbench-enginecache-*")
	if err != nil {
		return enginePoint{}, err
	}
	defer os.RemoveAll(dir)
	cache, err := enginecache.Open(dir)
	if err != nil {
		return enginePoint{}, err
	}
	hash := qt.ContentHash()
	// Store is fsync-dominated, so one sample is all jitter: average a
	// handful of overwrites (same temp-write/sync/rename path as the
	// first store).
	const writeReps = 8
	start = time.Now()
	for r := 0; r < writeReps; r++ {
		cache.Store(hash, qt.Engine())
	}
	p.CacheWriteNs = time.Since(start).Nanoseconds() / writeReps
	const loadReps = 50
	start = time.Now()
	for r := 0; r < loadReps; r++ {
		if _, ok := cache.Load(hash, n); !ok {
			return enginePoint{}, fmt.Errorf("engine bench: cache load failed for n=%d", n)
		}
	}
	p.CacheLoadNs = time.Since(start).Nanoseconds() / loadReps
	if p.CacheLoadNs > 0 {
		p.LoadSpeedup = float64(p.CompileNs) / float64(p.CacheLoadNs)
	}
	return p, nil
}

// engineBenchSizes is the reference size grid of BENCH_engine.json.
var engineBenchSizes = []int{16, 128, 1024}

// runEngineBench measures the given sizes (the reference grid when
// empty), optionally writes BENCH_engine.json to jsonPath, and renders
// a table through the report writer.
func runEngineBench(wr *report.Writer, seed int64, jsonPath string, sizes []int) error {
	const alpha = 10.0
	if len(sizes) == 0 {
		sizes = engineBenchSizes
	}
	doc := engineBenchFile{
		Benchmark: "engine",
		Alpha:     alpha,
		Note:      "compile_ns is the one-time cost per matrix; eval_ns is per Loss(alpha) after compilation; naive_eval_ns is the pre-refactor pair scan per evaluation; cache_load_ns is the warm-start disk load that replaces compile_ns on restart",
	}
	for _, n := range sizes {
		p, err := engineBench(seed, n, alpha)
		if err != nil {
			return err
		}
		doc.Points = append(doc.Points, p)
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("Compiled-engine benchmark (alpha=%g)", alpha),
		Header: []string{"n", "chain", "compile", "eval/op", "naive eval/op", "speedup", "cache write", "cache load", "load speedup", "segments"},
	}
	for _, p := range doc.Points {
		tb.AddRow(
			fmt.Sprintf("%d", p.N), p.Chain,
			time.Duration(p.CompileNs).String(),
			time.Duration(int64(p.EvalNs)).String(),
			time.Duration(p.NaiveEvalNs).String(),
			fmt.Sprintf("%.0fx", p.Speedup),
			time.Duration(p.CacheWriteNs).String(),
			time.Duration(p.CacheLoadNs).String(),
			fmt.Sprintf("%.0fx", p.LoadSpeedup),
			fmt.Sprintf("%d", p.Segments),
		)
	}
	tb.Notes = append(tb.Notes, "regenerate BENCH_engine.json with: go run ./cmd/tplbench -fig engine -engine-json BENCH_engine.json")
	return wr.WriteTable(tb)
}
