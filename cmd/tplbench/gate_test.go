package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGateCommand drives the -gate code path end to end on files: a
// clean comparison passes, an injected 20% throughput slowdown fails
// with the offending metric named, and malformed specs are rejected.
func TestGateCommand(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	traj := write("BENCH_api.json", `{"benchmark":"api","points":[
		{"mode":"v2-ndjson-counts","steps_per_sec":500000,"ns_per_step":2000}]}`)
	same := write("fresh_ok.json", `{"benchmark":"api","points":[
		{"mode":"v2-ndjson-counts","steps_per_sec":510000,"ns_per_step":1960}]}`)
	slow := write("fresh_slow.json", `{"benchmark":"api","points":[
		{"mode":"v2-ndjson-counts","steps_per_sec":400000,"ns_per_step":2500}]}`)

	var buf bytes.Buffer
	if err := runGate(&buf, traj+":"+same, 0); err != nil {
		t.Fatalf("clean gate failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "perf-gate api: ok") {
		t.Fatalf("missing ok summary:\n%s", buf.String())
	}

	buf.Reset()
	err := runGate(&buf, traj+":"+slow, 0)
	if err == nil {
		t.Fatalf("20%% slowdown passed the gate:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "steps_per_sec") {
		t.Fatalf("failure output does not name the regression:\n%s", out)
	}

	if err := runGate(&buf, "only-one-path", 0); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if err := runGate(&buf, traj+":"+dir+"/missing.json", 0); err == nil {
		t.Fatal("missing fresh file accepted")
	}
}
