package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/markov"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/stream"
)

// The durability perf smoke: what a coalesced snapshot costs to
// capture, encode and durably write, what a boot-time restore costs,
// and how fast journal replay brings a restored session back to the
// present. Written as BENCH_persist.json so CI can track the perf
// trajectory alongside BENCH_engine.json — these numbers gate how
// aggressively snapshot-on-step coalescing can be tuned before the
// persistence pipeline shows up in the collect path.

// persistPoint is one row of BENCH_persist.json.
type persistPoint struct {
	Users            int     `json:"users"`
	Cohorts          int     `json:"cohorts"`
	Steps            int     `json:"steps"`
	SnapshotNs       int64   `json:"snapshot_ns"`        // capture the in-memory state
	EncodeNs         int64   `json:"encode_ns"`          // gob-encode the state
	SnapshotBytes    int     `json:"snapshot_bytes"`     // encoded size (pre-envelope)
	SaveNs           int64   `json:"save_ns"`            // envelope + atomic write + fsync
	RestoreNs        int64   `json:"restore_ns"`         // decode + rebuild a live server
	ReplayRecords    int     `json:"replay_records"`     // journal records replayed
	ReplayPerSec     float64 `json:"replay_per_sec"`     // ApplyStep throughput during recovery
	JournalAppendNs  int64   `json:"journal_append_ns"`  // per-step journal cost (amortized)
	JournalRecordLen int     `json:"journal_record_len"` // bytes per step record on disk
}

// persistBenchFile is the BENCH_persist.json document.
type persistBenchFile struct {
	Benchmark string         `json:"benchmark"`
	Points    []persistPoint `json:"points"`
	Note      string         `json:"note"`
}

// persistBenchSizes is the reference population grid.
var persistBenchSizes = []int{1000, 100000}

// persistBench measures one population size.
func persistBench(seed int64, users int) (persistPoint, error) {
	const (
		domain   = 5
		classes  = 10
		steps    = 32
		tailLen  = 64 // journal records replayed on top of the snapshot
		appendsN = 256
	)
	rng := rand.New(rand.NewSource(seed))
	chains := make([]*markov.Chain, classes)
	for k := range chains {
		c, err := markov.Smoothed(rng, domain, 0.05)
		if err != nil {
			return persistPoint{}, err
		}
		chains[k] = c
	}
	models := make([]stream.AdversaryModel, users)
	for i := range models {
		c := chains[i%classes]
		models[i] = stream.AdversaryModel{Backward: c, Forward: c}
	}
	srv, err := stream.NewServer(domain, users, models, nil)
	if err != nil {
		return persistPoint{}, err
	}
	values := make([]int, users)
	for i := range values {
		values[i] = i % domain
	}
	for t := 0; t < steps; t++ {
		if _, err := srv.Collect(values, 0.1); err != nil {
			return persistPoint{}, err
		}
	}
	p := persistPoint{Users: users, Cohorts: srv.Cohorts(), Steps: steps}

	// Capture.
	start := time.Now()
	st := srv.Snapshot()
	p.SnapshotNs = time.Since(start).Nanoseconds()

	// Encode (gob, the service's snapshot body codec).
	start = time.Now()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return persistPoint{}, err
	}
	p.EncodeNs = time.Since(start).Nanoseconds()
	p.SnapshotBytes = buf.Len()

	// Durable write: envelope + temp file + fsync + rename.
	dir, err := os.MkdirTemp("", "tplbench-persist-*")
	if err != nil {
		return persistPoint{}, err
	}
	defer os.RemoveAll(dir)
	store, err := persist.NewStore(dir)
	if err != nil {
		return persistPoint{}, err
	}
	start = time.Now()
	if err := store.SaveSnapshot("bench", 1, buf.Bytes()); err != nil {
		return persistPoint{}, err
	}
	p.SaveNs = time.Since(start).Nanoseconds()

	// Journal the next tailLen steps (the crash-recovery window).
	j, err := store.OpenJournal("bench")
	if err != nil {
		return persistPoint{}, err
	}
	defer j.Close()
	var recs [][]byte
	for i := 0; i < tailLen; i++ {
		noisy, err := srv.Collect(values, 0.1)
		if err != nil {
			return persistPoint{}, err
		}
		rec := stream.StepRecord{T: srv.T(), Eps: 0.1, Published: noisy, NoiseDraws: srv.NoiseState().Draws}
		var rb bytes.Buffer
		if err := gob.NewEncoder(&rb).Encode(rec); err != nil {
			return persistPoint{}, err
		}
		recs = append(recs, rb.Bytes())
		if err := j.Append(1, rb.Bytes()); err != nil {
			return persistPoint{}, err
		}
	}
	p.JournalRecordLen = len(recs[0])

	// Amortized append cost (re-appending the first record; the journal
	// is reset afterwards so replay below sees exactly the real tail).
	start = time.Now()
	for i := 0; i < appendsN; i++ {
		if err := j.Append(1, recs[i%len(recs)]); err != nil {
			return persistPoint{}, err
		}
	}
	p.JournalAppendNs = time.Since(start).Nanoseconds() / appendsN
	if err := j.Reset(); err != nil {
		return persistPoint{}, err
	}
	for _, rb := range recs {
		if err := j.Append(1, rb); err != nil {
			return persistPoint{}, err
		}
	}
	if err := j.Sync(); err != nil {
		return persistPoint{}, err
	}

	// Restore: load + decode + rebuild.
	start = time.Now()
	_, body, err := store.LoadSnapshot("bench")
	if err != nil {
		return persistPoint{}, err
	}
	var back stream.ServerState
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&back); err != nil {
		return persistPoint{}, err
	}
	restored, err := stream.RestoreServer(&back, stream.RestoreOptions{})
	if err != nil {
		return persistPoint{}, err
	}
	p.RestoreNs = time.Since(start).Nanoseconds()

	// Replay rate: the journal tail through ApplyStep.
	start = time.Now()
	res, err := store.ReplayJournal("bench", func(version uint32, body []byte) error {
		var rec stream.StepRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return err
		}
		return restored.ApplyStep(rec)
	})
	if err != nil {
		return persistPoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	p.ReplayRecords = res.Records
	if elapsed > 0 {
		p.ReplayPerSec = float64(res.Records) / elapsed
	}
	if restored.T() != srv.T() {
		return persistPoint{}, fmt.Errorf("persist bench: replay ended at t=%d, want %d", restored.T(), srv.T())
	}
	return p, nil
}

// runPersistBench measures the reference populations, optionally
// writes BENCH_persist.json, and renders a table.
func runPersistBench(wr *report.Writer, seed int64, jsonPath string) error {
	doc := persistBenchFile{
		Benchmark: "persist",
		Note:      "snapshot/encode/save_ns is the coalesced per-snapshot cost; journal_append_ns the per-step cost; replay_per_sec the recovery rate of snapshot+journal restores",
	}
	for _, users := range persistBenchSizes {
		p, err := persistBench(seed, users)
		if err != nil {
			return err
		}
		doc.Points = append(doc.Points, p)
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	tb := &report.Table{
		Title:  "Durable-accounting benchmark (snapshot / restore / journal replay)",
		Header: []string{"users", "snapshot", "encode", "size", "save", "restore", "append/step", "replay rec/s"},
	}
	for _, p := range doc.Points {
		tb.AddRow(
			fmt.Sprintf("%d", p.Users),
			time.Duration(p.SnapshotNs).String(),
			time.Duration(p.EncodeNs).String(),
			fmt.Sprintf("%.1fMB", float64(p.SnapshotBytes)/1e6),
			time.Duration(p.SaveNs).String(),
			time.Duration(p.RestoreNs).String(),
			time.Duration(p.JournalAppendNs).String(),
			fmt.Sprintf("%.0f", p.ReplayPerSec),
		)
	}
	tb.Notes = append(tb.Notes, "regenerate BENCH_persist.json with: go run ./cmd/tplbench -fig persist -persist-json BENCH_persist.json")
	return wr.WriteTable(tb)
}
