package main

import "repro/internal/markov"

// fig7Chain returns the moderate 2-state correlation used by the Table II
// demonstration.
func fig7Chain() *markov.Chain { return markov.Fig7Backward() }
