// Command tplsim generates the synthetic workloads of the reproduction:
// user trajectories and per-location counts under a chosen mobility
// model, optionally released with Laplace noise. Output is CSV, ready
// to feed external analysis or the other tools (tplquant consumes the
// same matrices tplsim can dump).
//
// Usage:
//
//	tplsim -model fig1 -users 100 -T 20 -out counts
//	tplsim -model smoothed -n 50 -s 0.01 -users 500 -T 50 -out traces
//	tplsim -model lazy -n 10 -stay 0.9 -out matrix
//	tplsim -model fig1 -users 100 -T 20 -out noisy -eps 0.5
//
// Models: fig1 (the paper's road network, 5 locations), smoothed
// (strongest correlation smoothed by Eq. 25 with -s over -n states),
// lazy (stay with probability -stay else uniform move, -n states).
// Outputs: traces (one row per user), counts (one row per time step),
// noisy (counts + Laplace noise at -eps), matrix (the model's forward
// transition matrix, loadable by tplquant/tplrelease).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/trace"
)

func main() {
	var (
		model = flag.String("model", "fig1", "mobility model: fig1, smoothed, lazy")
		out   = flag.String("out", "counts", "what to emit: traces, counts, noisy, matrix, matrixB")
		users = flag.Int("users", 100, "population size")
		T     = flag.Int("T", 20, "number of time steps")
		n     = flag.Int("n", 10, "domain size (smoothed/lazy models)")
		s     = flag.Float64("s", 0.05, "Laplacian smoothing parameter (smoothed model)")
		stay  = flag.Float64("stay", 0.8, "stay probability (lazy model)")
		eps   = flag.Float64("eps", 1, "Laplace budget for -out noisy")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *model, *out, *users, *T, *n, *s, *stay, *eps, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "tplsim: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, model, out string, users, T, n int, s, stay, eps float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	chain, err := buildModel(rng, model, n, s, stay)
	if err != nil {
		return err
	}
	switch out {
	case "matrix":
		return writeMatrix(w, chain)
	case "matrixB":
		// The backward correlation via Bayes at the stationary
		// distribution (Section III-A) — feed this to tplquant -pb.
		pi, err := chain.Stationary(0, 0)
		if err != nil {
			return err
		}
		back, err := chain.Reverse(pi)
		if err != nil {
			return err
		}
		return writeMatrix(w, back)
	case "traces", "counts", "noisy":
		if users < 1 || T < 1 {
			return fmt.Errorf("need positive -users and -T, got %d, %d", users, T)
		}
		pop, err := trace.NewPopulation(chain, users, matrix.Uniform(chain.N()), rng)
		if err != nil {
			return err
		}
		locs, counts, err := pop.Run(T)
		if err != nil {
			return err
		}
		switch out {
		case "traces":
			return writeTraces(w, locs)
		case "counts":
			return writeCounts(w, counts)
		default:
			lap, err := mechanism.NewLaplace(eps, mechanism.CountSensitivity, rng)
			if err != nil {
				return err
			}
			return writeNoisy(w, counts, lap)
		}
	default:
		return fmt.Errorf("unknown -out %q (want traces, counts, noisy, matrix, matrixB)", out)
	}
}

func buildModel(rng *rand.Rand, model string, n int, s, stay float64) (*markov.Chain, error) {
	switch model {
	case "fig1":
		return trace.Fig1Network().UniformChain()
	case "smoothed":
		return markov.Smoothed(rng, n, s)
	case "lazy":
		return markov.Lazy(n, stay)
	default:
		return nil, fmt.Errorf("unknown -model %q (want fig1, smoothed, lazy)", model)
	}
}

func writeMatrix(w io.Writer, c *markov.Chain) error {
	cw := csv.NewWriter(w)
	p := c.P()
	for i := 0; i < p.Rows(); i++ {
		row := make([]string, p.Cols())
		for j := range row {
			row[j] = strconv.FormatFloat(p.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeTraces(w io.Writer, locs [][]int) error {
	cw := csv.NewWriter(w)
	header := []string{"user"}
	for t := range locs {
		header = append(header, fmt.Sprintf("t%d", t+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	users := len(locs[0])
	for u := 0; u < users; u++ {
		row := []string{strconv.Itoa(u)}
		for t := range locs {
			row = append(row, strconv.Itoa(locs[t][u]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeCounts(w io.Writer, counts [][]int) error {
	cw := csv.NewWriter(w)
	header := []string{"t"}
	for l := range counts[0] {
		header = append(header, fmt.Sprintf("loc%d", l+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for t, row := range counts {
		cells := []string{strconv.Itoa(t + 1)}
		for _, c := range row {
			cells = append(cells, strconv.Itoa(c))
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeNoisy(w io.Writer, counts [][]int, lap *mechanism.Laplace) error {
	cw := csv.NewWriter(w)
	header := []string{"t"}
	for l := range counts[0] {
		header = append(header, fmt.Sprintf("loc%d", l+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for t, row := range counts {
		noisy := lap.ReleaseCounts(row)
		cells := []string{strconv.Itoa(t + 1)}
		for _, c := range noisy {
			cells = append(cells, strconv.FormatFloat(c, 'f', 2, 64))
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
