// Command tplsim generates the synthetic workloads of the reproduction:
// user trajectories and per-location counts under a chosen mobility
// model, optionally released with Laplace noise. Tabular outputs
// (traces, counts, noisy) render through internal/report in any of its
// formats (-format text, csv, md, json; default csv, ready to feed
// external analysis). The matrix outputs are always raw CSV because
// tplquant and tplrelease load them back.
//
// Usage:
//
//	tplsim -model fig1 -users 100 -T 20 -out counts
//	tplsim -model smoothed -n 50 -s 0.01 -users 500 -T 50 -out traces
//	tplsim -model lazy -n 10 -stay 0.9 -out matrix
//	tplsim -model fig1 -users 100 -T 20 -out noisy -eps 0.5
//
// Models: fig1 (the paper's road network, 5 locations), smoothed
// (strongest correlation smoothed by Eq. 25 with -s over -n states),
// lazy (stay with probability -stay else uniform move, -n states).
// Outputs: traces (one row per user), counts (one row per time step),
// noisy (counts + Laplace noise at -eps), matrix (the model's forward
// transition matrix, loadable by tplquant/tplrelease).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	var (
		model   = flag.String("model", "fig1", "mobility model: fig1, smoothed, lazy")
		out     = flag.String("out", "counts", "what to emit: traces, counts, noisy, matrix, matrixB")
		users   = flag.Int("users", 100, "population size")
		T       = flag.Int("T", 20, "number of time steps")
		n       = flag.Int("n", 10, "domain size (smoothed/lazy models)")
		s       = flag.Float64("s", 0.05, "Laplacian smoothing parameter (smoothed model)")
		stay    = flag.Float64("stay", 0.8, "stay probability (lazy model)")
		eps     = flag.Float64("eps", 1, "Laplace budget for -out noisy")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "csv", "format for tabular outputs: "+report.FormatNames()+" (matrix outputs are always raw CSV)")
		showVer = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplsim", version.String())
		return
	}
	if err := run(os.Stdout, *model, *out, *users, *T, *n, *s, *stay, *eps, *seed, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tplsim: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, model, out string, users, T, n int, s, stay, eps float64, seed int64, format string) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	chain, err := buildModel(rng, model, n, s, stay)
	if err != nil {
		return err
	}
	switch out {
	case "matrix":
		return writeMatrix(w, chain)
	case "matrixB":
		// The backward correlation via Bayes at the stationary
		// distribution (Section III-A) — feed this to tplquant -pb.
		pi, err := chain.Stationary(0, 0)
		if err != nil {
			return err
		}
		back, err := chain.Reverse(pi)
		if err != nil {
			return err
		}
		return writeMatrix(w, back)
	case "traces", "counts", "noisy":
		if users < 1 || T < 1 {
			return fmt.Errorf("need positive -users and -T, got %d, %d", users, T)
		}
		pop, err := trace.NewPopulation(chain, users, matrix.Uniform(chain.N()), rng)
		if err != nil {
			return err
		}
		locs, counts, err := pop.Run(T)
		if err != nil {
			return err
		}
		switch out {
		case "traces":
			return tracesTable(model, locs).RenderFormat(w, f)
		case "counts":
			return countsTable(model, counts).RenderFormat(w, f)
		default:
			lap, err := mechanism.NewLaplace(eps, mechanism.CountSensitivity, rng)
			if err != nil {
				return err
			}
			return noisyTable(model, eps, counts, lap).RenderFormat(w, f)
		}
	default:
		return fmt.Errorf("unknown -out %q (want traces, counts, noisy, matrix, matrixB)", out)
	}
}

func buildModel(rng *rand.Rand, model string, n int, s, stay float64) (*markov.Chain, error) {
	switch model {
	case "fig1":
		return trace.Fig1Network().UniformChain()
	case "smoothed":
		return markov.Smoothed(rng, n, s)
	case "lazy":
		return markov.Lazy(n, stay)
	default:
		return nil, fmt.Errorf("unknown -model %q (want fig1, smoothed, lazy)", model)
	}
}

func writeMatrix(w io.Writer, c *markov.Chain) error {
	cw := csv.NewWriter(w)
	p := c.P()
	for i := 0; i < p.Rows(); i++ {
		row := make([]string, p.Cols())
		for j := range row {
			row[j] = strconv.FormatFloat(p.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func tracesTable(model string, locs [][]int) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("tplsim traces (model=%s, users=%d, T=%d)", model, len(locs[0]), len(locs)),
		Header: []string{"user"},
	}
	for t := range locs {
		tb.Header = append(tb.Header, fmt.Sprintf("t%d", t+1))
	}
	users := len(locs[0])
	for u := 0; u < users; u++ {
		row := make([]string, 0, len(locs)+1)
		row = append(row, strconv.Itoa(u))
		for t := range locs {
			row = append(row, strconv.Itoa(locs[t][u]))
		}
		tb.AddRow(row...)
	}
	return tb
}

func countsHeader(counts [][]int) []string {
	header := []string{"t"}
	for l := range counts[0] {
		header = append(header, fmt.Sprintf("loc%d", l+1))
	}
	return header
}

func countsTable(model string, counts [][]int) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("tplsim counts (model=%s, T=%d)", model, len(counts)),
		Header: countsHeader(counts),
	}
	for t, row := range counts {
		cells := make([]string, 0, len(row)+1)
		cells = append(cells, strconv.Itoa(t+1))
		for _, c := range row {
			cells = append(cells, strconv.Itoa(c))
		}
		tb.AddRow(cells...)
	}
	return tb
}

func noisyTable(model string, eps float64, counts [][]int, lap *mechanism.Laplace) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("tplsim noisy counts (model=%s, T=%d, Laplace eps=%g)", model, len(counts), eps),
		Header: countsHeader(counts),
	}
	for t, row := range counts {
		noisy := lap.ReleaseCounts(row)
		cells := make([]string, 0, len(noisy)+1)
		cells = append(cells, strconv.Itoa(t+1))
		for _, c := range noisy {
			cells = append(cells, strconv.FormatFloat(c, 'f', 2, 64))
		}
		tb.AddRow(cells...)
	}
	return tb
}
