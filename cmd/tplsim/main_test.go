package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestRunMatrixOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1", "matrix", 10, 5, 10, 0.05, 0.8, 1, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("fig1 matrix should have 5 rows, got %d", len(lines))
	}
	// Row 4 (loc4) must be deterministic to loc5: 0,0,0,0,1.
	if lines[3] != "0,0,0,0,1" {
		t.Errorf("loc4 row = %q, want deterministic road", lines[3])
	}
}

func TestRunMatrixBackward(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1", "matrixB", 10, 5, 10, 0.05, 0.8, 1, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("backward matrix should have 5 rows, got %d", len(lines))
	}
	// Every row must parse as probabilities summing to ~1.
	for i, line := range lines {
		sum := 0.0
		for _, c := range strings.Split(line, ",") {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("row %d: bad cell %q", i, c)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// The backward matrix of loc5 (row 5) must give positive probability
	// of having come from loc4 (column 4): the Example 1 inference.
	cells := strings.Split(lines[4], ",")
	v, err := strconv.ParseFloat(cells[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Error("Pr(prev=loc4 | cur=loc5) should be positive")
	}
}

func TestRunTraces(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "lazy", "traces", 7, 4, 3, 0, 0.9, 1, 2, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 users
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "user,t1,t2,t3,t4" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "smoothed", "counts", 20, 3, 4, 0.1, 0, 1, 3, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 steps
		t.Fatalf("%d lines", len(lines))
	}
	// Each data row's counts sum to the population.
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		sum := 0
		for _, c := range cells[1:] {
			v, err := strconv.Atoi(c)
			if err != nil {
				t.Fatalf("bad cell %q", c)
			}
			sum += v
		}
		if sum != 20 {
			t.Errorf("row %q sums to %d, want 20", line, sum)
		}
	}
}

func TestRunNoisy(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1", "noisy", 15, 3, 0, 0, 0, 2, 4, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[1], ".") {
		t.Error("noisy output should have fractional counts")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", "counts", 10, 5, 3, 0.1, 0.8, 1, 1, "csv"); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run(&buf, "fig1", "bogus", 10, 5, 3, 0.1, 0.8, 1, 1, "csv"); err == nil {
		t.Error("unknown output should fail")
	}
	if err := run(&buf, "fig1", "counts", 0, 5, 3, 0.1, 0.8, 1, 1, "csv"); err == nil {
		t.Error("0 users should fail")
	}
	if err := run(&buf, "fig1", "noisy", 5, 5, 3, 0.1, 0.8, 0, 1, "csv"); err == nil {
		t.Error("eps=0 noisy should fail")
	}
	if err := run(&buf, "lazy", "matrix", 5, 5, 0, 0.1, 0.8, 1, 1, "csv"); err == nil {
		t.Error("n=0 lazy should fail")
	}
}

func TestRunCountsMarkdownAndJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1", "counts", 10, 3, 0, 0, 0, 1, 1, "md"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### tplsim counts") || !strings.Contains(out, "| t | loc1 |") {
		t.Errorf("markdown table missing:\n%s", out)
	}
	buf.Reset()
	if err := run(&buf, "fig1", "traces", 4, 3, 0, 0, 0, 1, 1, "json"); err != nil {
		t.Fatal(err)
	}
	tables, err := report.ParseJSONLines(&buf)
	if err != nil || len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("json traces do not round trip: %v", err)
	}
	if err := run(&buf, "fig1", "counts", 10, 3, 0, 0, 0, 1, 1, "yaml"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestMatrixOutputIgnoresFormat(t *testing.T) {
	// Matrix dumps are machine food for tplquant/tplrelease: raw CSV
	// regardless of -format.
	var md, csvOut bytes.Buffer
	if err := run(&md, "fig1", "matrix", 10, 5, 10, 0.05, 0.8, 1, 1, "md"); err != nil {
		t.Fatal(err)
	}
	if err := run(&csvOut, "fig1", "matrix", 10, 5, 10, 0.05, 0.8, 1, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	if md.String() != csvOut.String() {
		t.Error("matrix output should be identical in every format")
	}
}
