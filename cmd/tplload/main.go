// Command tplload is the load generator for the continuous-release
// service: it drives one or more sessions of configurable population
// against a running tplserved over the tpl/client SDK and reports
// ingest throughput. Use it to size deployments, compare wire modes
// (v1 per-step vs v2 batched values vs v2 batched pre-aggregated
// counts), and soak the durability pipeline.
//
// Usage:
//
//	tplload -addr http://localhost:8344 -users 100000 -steps 200
//	tplload -mode v2-values -batch 64 -sessions 4
//	tplload -mode v1 -steps 50          # the deprecated per-step wire
//
// Modes: v2-counts (default; NDJSON batches of pre-aggregated
// histograms — the at-scale shape), v2-values (NDJSON batches of raw
// per-user values), v1 (one request per step over the deprecated API).
// Every v2 batch carries an idempotency key, so the run is retry-safe
// end to end.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/loadgen"
	"repro/internal/report"
	"repro/internal/version"
	"repro/tpl/client"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8344", "base URL of the tplserved service")
		mode     = flag.String("mode", "v2-counts", "wire mode: v2-counts, v2-values, v1")
		sessions = flag.Int("sessions", 1, "concurrent sessions (one worker each)")
		users    = flag.Int("users", 100000, "population per session")
		domain   = flag.Int("domain", 4, "value-domain size")
		cohorts  = flag.Int("cohorts", 10, "distinct adversary-model cohorts per session")
		steps    = flag.Int("steps", 100, "time steps per session")
		batch    = flag.Int("batch", 64, "steps per v2 batch request")
		eps      = flag.Float64("eps", 0.1, "per-step privacy budget")
		seed     = flag.Int64("seed", 1, "workload seed")
		keep     = flag.Bool("keep", false, "leave the load sessions on the server (default: delete them)")
		format   = flag.String("format", "", "output format: "+report.FormatNames()+" (default text)")
		showVer  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplload", version.String())
		return
	}
	if err := run(os.Stdout, *addr, *mode, *sessions, *users, *domain, *cohorts, *steps, *batch, *eps, *seed, *keep, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tplload: %v\n", err)
		os.Exit(1)
	}
}

// workload generates one session's steps deterministically.
type workload struct {
	rng    *rand.Rand
	users  int
	domain int
	eps    float64
}

func (wk *workload) step(counts bool) client.Step {
	st := client.Step{Eps: &wk.eps}
	if counts {
		st.Counts = make([]int, wk.domain)
		left := wk.users
		for v := 0; v < wk.domain-1; v++ {
			n := wk.rng.Intn(left + 1)
			st.Counts[v] = n
			left -= n
		}
		st.Counts[wk.domain-1] = left
	} else {
		st.Values = make([]int, wk.users)
		for i := range st.Values {
			st.Values[i] = wk.rng.Intn(wk.domain)
		}
	}
	return st
}

// percentile reads the pth percentile from an ascending-sorted sample
// using the nearest-rank rule (p in [0,100]).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func run(w io.Writer, addr, mode string, sessions, users, domain, cohorts, steps, batchSize int, eps float64, seed int64, keep bool, format string) error {
	f, err := report.ParseFormat(report.ResolveFormat(format, false))
	if err != nil {
		return err
	}
	switch mode {
	case "v1", "v2-values", "v2-counts":
	default:
		return fmt.Errorf("unknown -mode %q (want v2-counts, v2-values or v1)", mode)
	}
	if sessions < 1 || steps < 1 || batchSize < 1 {
		return fmt.Errorf("-sessions, -steps and -batch must be positive")
	}
	c, err := client.New(addr)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		return fmt.Errorf("service not reachable at %s: %w", addr, err)
	}

	names := make([]string, sessions)
	for i := range names {
		names[i] = "load-" + strconv.FormatInt(seed, 10) + "-" + strconv.Itoa(i)
		cfg, err := loadgen.SessionConfig(names[i], users, domain, cohorts, 0.4, 0)
		if err != nil {
			return err
		}
		if _, err := c.CreateSession(ctx, cfg); err != nil {
			return fmt.Errorf("creating %s: %w", names[i], err)
		}
	}
	if !keep {
		defer func() {
			for _, name := range names {
				_ = c.DeleteSession(context.Background(), name)
			}
		}()
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		sent      int
		latencies []time.Duration // one entry per ingest request, all workers
	)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wk := &workload{rng: rand.New(rand.NewSource(seed + int64(i))), users: users, domain: domain, eps: eps}
			name := names[i]
			done := 0
			// Collected worker-locally; merged under the mutex at the end
			// so the timing loop never contends on it.
			local := make([]time.Duration, 0, (steps+batchSize-1)/batchSize)
			for done < steps {
				var err error
				var n int
				reqStart := time.Now()
				switch mode {
				case "v1":
					n = 1
					_, err = c.V1().Step(ctx, name, wk.step(false).Values, &eps)
				default:
					n = min(batchSize, steps-done)
					batch := make([]client.Step, n)
					for j := range batch {
						batch[j] = wk.step(mode == "v2-counts")
					}
					_, err = c.StepsNDJSON(ctx, name, batch)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("session %s: %w", name, err)
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(reqStart))
				done += n
				mu.Lock()
				sent += n
				mu.Unlock()
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	perStep := elapsed / time.Duration(sent)
	tb := &report.Table{
		Title:  fmt.Sprintf("tplload: %s ingest against %s", mode, addr),
		Header: []string{"sessions", "users", "cohorts", "steps", "elapsed", "steps/s", "user-values/s", "per step", "p50", "p95", "p99"},
	}
	tb.AddRow(
		strconv.Itoa(sessions),
		strconv.Itoa(users),
		strconv.Itoa(cohorts),
		strconv.Itoa(sent),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", float64(sent)/elapsed.Seconds()),
		fmt.Sprintf("%.3g", float64(sent)*float64(users)/elapsed.Seconds()),
		perStep.Round(time.Microsecond).String(),
		percentile(latencies, 50).Round(time.Microsecond).String(),
		percentile(latencies, 95).Round(time.Microsecond).String(),
		percentile(latencies, 99).Round(time.Microsecond).String(),
	)
	tb.Notes = append(tb.Notes, "p50/p95/p99: per-request ingest latency across all workers (a v2 request carries one batch)")
	if mode != "v1" {
		tb.Notes = append(tb.Notes, fmt.Sprintf("batched NDJSON, %d steps per request, idempotency-keyed (retry-safe)", batchSize))
	} else {
		tb.Notes = append(tb.Notes, "deprecated v1 wire: one request per step, no retry safety")
	}
	return tb.RenderFormat(w, f)
}
