// Command tplload is the load generator for the continuous-release
// service: it drives one or more sessions of configurable population
// against a running tplserved over the tpl/client SDK and reports
// ingest throughput. Use it to size deployments, compare wire modes
// (v1 per-step vs v2 batched values vs v2 batched pre-aggregated
// counts), and soak the durability pipeline.
//
// Usage:
//
//	tplload -addr http://localhost:8344 -users 100000 -steps 200
//	tplload -mode v2-values -batch 64 -sessions 4
//	tplload -mode v1 -steps 50          # the deprecated per-step wire
//
// Cluster targets:
//
//	tplload -addr http://h1:8344,http://h2:8344 -sessions 8
//	tplload -addr http://router:8344 -topology -sessions 8
//
// A comma-separated -addr list drives the shards directly: each
// session is placed on the shard the cluster's own consistent hashing
// names, exactly as a router would place it. With -topology the single
// -addr is a cluster entry point (normally the router): the topology
// document is fetched once and every worker dials its session's owning
// shard directly over the shard-routing SDK. Either way the report
// shows the aggregate plus one row per shard, so scaling bottlenecks
// are attributable.
//
// Modes: v2-counts (default; NDJSON batches of pre-aggregated
// histograms — the at-scale shape), v2-values (NDJSON batches of raw
// per-user values), v1 (one request per step over the deprecated API).
// Every v2 batch carries an idempotency key, so the run is retry-safe
// end to end.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/report"
	"repro/internal/version"
	"repro/tpl/client"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8344", "base URL of the tplserved service, or a comma-separated shard list")
		topology = flag.Bool("topology", false, "treat -addr as a cluster entry point: fetch /v2/topology and dial each session's owning shard directly")
		mode     = flag.String("mode", "v2-counts", "wire mode: v2-counts, v2-values, v1")
		sessions = flag.Int("sessions", 1, "concurrent sessions (one worker each)")
		users    = flag.Int("users", 100000, "population per session")
		domain   = flag.Int("domain", 4, "value-domain size")
		cohorts  = flag.Int("cohorts", 10, "distinct adversary-model cohorts per session")
		steps    = flag.Int("steps", 100, "time steps per session")
		batch    = flag.Int("batch", 64, "steps per v2 batch request")
		eps      = flag.Float64("eps", 0.1, "per-step privacy budget")
		seed     = flag.Int64("seed", 1, "workload seed")
		keep     = flag.Bool("keep", false, "leave the load sessions on the server (default: delete them)")
		format   = flag.String("format", "", "output format: "+report.FormatNames()+" (default text)")
		showVer  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplload", version.String())
		return
	}
	if err := run(os.Stdout, *addr, *mode, *topology, *sessions, *users, *domain, *cohorts, *steps, *batch, *eps, *seed, *keep, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tplload: %v\n", err)
		os.Exit(1)
	}
}

// workload generates one session's steps deterministically.
type workload struct {
	rng    *rand.Rand
	users  int
	domain int
	eps    float64
}

func (wk *workload) step(counts bool) client.Step {
	st := client.Step{Eps: &wk.eps}
	if counts {
		st.Counts = make([]int, wk.domain)
		left := wk.users
		for v := 0; v < wk.domain-1; v++ {
			n := wk.rng.Intn(left + 1)
			st.Counts[v] = n
			left -= n
		}
		st.Counts[wk.domain-1] = left
	} else {
		st.Values = make([]int, wk.users)
		for i := range st.Values {
			st.Values[i] = wk.rng.Intn(wk.domain)
		}
	}
	return st
}

// percentile reads the pth percentile from an ascending-sorted sample
// using the nearest-rank rule (p in [0,100]).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// target is one ingest destination a worker drives: the client to use
// and the shard label its numbers are attributed to.
type target struct {
	label string
	c     *client.Client
}

// resolveTargets maps each session name to its target and returns the
// client used for session lifecycle (create/delete) plus the shard
// labels in report order.
func resolveTargets(ctx context.Context, addr string, topology bool, names []string) (byName map[string]*target, admin *client.Client, labels []string, err error) {
	byName = make(map[string]*target, len(names))

	if topology {
		// One entry point; the shard-routing SDK dials owners directly.
		rc, err := client.New(addr, client.WithShardRouting())
		if err != nil {
			return nil, nil, nil, err
		}
		doc, err := rc.Topology(ctx)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("fetching topology from %s: %w", addr, err)
		}
		topo := &cluster.Topology{Version: doc.Version, RingSize: doc.RingSize, Overrides: doc.Overrides}
		for _, s := range doc.Shards {
			topo.Shards = append(topo.Shards, cluster.Shard{ID: s.ID, Addr: s.Addr})
		}
		if err := topo.Validate(); err != nil {
			return nil, nil, nil, err
		}
		for _, s := range topo.Shards {
			labels = append(labels, s.ID)
		}
		for _, name := range names {
			owner, err := topo.Owner(name)
			if err != nil {
				return nil, nil, nil, err
			}
			byName[name] = &target{label: owner.ID, c: rc}
		}
		return byName, rc, labels, nil
	}

	if strings.Contains(addr, ",") {
		// Direct shard list: place sessions exactly as the cluster's own
		// hashing would, and drive each shard with its own client.
		shards, err := cluster.ParseShards(addr)
		if err != nil {
			return nil, nil, nil, err
		}
		topo, err := cluster.New(shards, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		clients := make(map[string]*client.Client, len(shards))
		for _, s := range shards {
			c, err := client.New(s.Addr)
			if err != nil {
				return nil, nil, nil, err
			}
			clients[s.ID] = c
			labels = append(labels, s.ID)
		}
		for _, name := range names {
			owner, err := topo.Owner(name)
			if err != nil {
				return nil, nil, nil, err
			}
			byName[name] = &target{label: owner.ID, c: clients[owner.ID]}
		}
		// Lifecycle calls go to each session's own shard; any client
		// works for the health probe.
		return byName, clients[shards[0].ID], labels, nil
	}

	c, err := client.New(addr)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, name := range names {
		byName[name] = &target{label: addr, c: c}
	}
	return byName, c, []string{addr}, nil
}

// shardStats accumulates one shard's numbers across workers.
type shardStats struct {
	sent      int
	latencies []time.Duration
}

func run(w io.Writer, addr, mode string, topology bool, sessions, users, domain, cohorts, steps, batchSize int, eps float64, seed int64, keep bool, format string) error {
	f, err := report.ParseFormat(report.ResolveFormat(format, false))
	if err != nil {
		return err
	}
	switch mode {
	case "v1", "v2-values", "v2-counts":
	default:
		return fmt.Errorf("unknown -mode %q (want v2-counts, v2-values or v1)", mode)
	}
	if sessions < 1 || steps < 1 || batchSize < 1 {
		return fmt.Errorf("-sessions, -steps and -batch must be positive")
	}
	ctx := context.Background()

	names := make([]string, sessions)
	for i := range names {
		names[i] = "load-" + strconv.FormatInt(seed, 10) + "-" + strconv.Itoa(i)
	}
	byName, admin, labels, err := resolveTargets(ctx, addr, topology, names)
	if err != nil {
		return err
	}
	if _, err := admin.Health(ctx); err != nil {
		return fmt.Errorf("service not reachable at %s: %w", addr, err)
	}
	for _, name := range names {
		cfg, err := loadgen.SessionConfig(name, users, domain, cohorts, 0.4, 0)
		if err != nil {
			return err
		}
		if _, err := byName[name].c.CreateSession(ctx, cfg); err != nil {
			return fmt.Errorf("creating %s: %w", name, err)
		}
	}
	if !keep {
		defer func() {
			for _, name := range names {
				_ = byName[name].c.DeleteSession(context.Background(), name)
			}
		}()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		perShard = make(map[string]*shardStats, len(labels))
	)
	for _, label := range labels {
		perShard[label] = &shardStats{}
	}
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wk := &workload{rng: rand.New(rand.NewSource(seed + int64(i))), users: users, domain: domain, eps: eps}
			name := names[i]
			tgt := byName[name]
			done := 0
			// Collected worker-locally; merged under the mutex at the end
			// so the timing loop never contends on it.
			local := make([]time.Duration, 0, (steps+batchSize-1)/batchSize)
			for done < steps {
				var err error
				var n int
				reqStart := time.Now()
				switch mode {
				case "v1":
					n = 1
					_, err = tgt.c.V1().Step(ctx, name, wk.step(false).Values, &eps)
				default:
					n = min(batchSize, steps-done)
					batch := make([]client.Step, n)
					for j := range batch {
						batch[j] = wk.step(mode == "v2-counts")
					}
					_, err = tgt.c.StepsNDJSON(ctx, name, batch)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("session %s: %w", name, err)
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(reqStart))
				done += n
			}
			mu.Lock()
			st := perShard[tgt.label]
			st.sent += done
			st.latencies = append(st.latencies, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	var sent int
	var all []time.Duration
	for _, st := range perShard {
		sent += st.sent
		all = append(all, st.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	perStep := elapsed / time.Duration(sent)
	tb := &report.Table{
		Title:  fmt.Sprintf("tplload: %s ingest against %s", mode, addr),
		Header: []string{"shard", "sessions", "users", "cohorts", "steps", "elapsed", "steps/s", "user-values/s", "per step", "p50", "p95", "p99"},
	}
	tb.AddRow(
		"all",
		strconv.Itoa(sessions),
		strconv.Itoa(users),
		strconv.Itoa(cohorts),
		strconv.Itoa(sent),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", float64(sent)/elapsed.Seconds()),
		fmt.Sprintf("%.3g", float64(sent)*float64(users)/elapsed.Seconds()),
		perStep.Round(time.Microsecond).String(),
		percentile(all, 50).Round(time.Microsecond).String(),
		percentile(all, 95).Round(time.Microsecond).String(),
		percentile(all, 99).Round(time.Microsecond).String(),
	)
	if len(labels) > 1 {
		// One row per shard: same wall clock (the run is concurrent), so
		// per-shard steps/s sum to the aggregate and imbalances show up
		// directly.
		for _, label := range labels {
			st := perShard[label]
			if st.sent == 0 {
				continue
			}
			sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
			nSess := 0
			for _, name := range names {
				if byName[name].label == label {
					nSess++
				}
			}
			tb.AddRow(
				label,
				strconv.Itoa(nSess),
				strconv.Itoa(users),
				strconv.Itoa(cohorts),
				strconv.Itoa(st.sent),
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(st.sent)/elapsed.Seconds()),
				fmt.Sprintf("%.3g", float64(st.sent)*float64(users)/elapsed.Seconds()),
				(elapsed / time.Duration(st.sent)).Round(time.Microsecond).String(),
				percentile(st.latencies, 50).Round(time.Microsecond).String(),
				percentile(st.latencies, 95).Round(time.Microsecond).String(),
				percentile(st.latencies, 99).Round(time.Microsecond).String(),
			)
		}
	}
	tb.Notes = append(tb.Notes, "p50/p95/p99: per-request ingest latency across all workers (a v2 request carries one batch)")
	if mode != "v1" {
		tb.Notes = append(tb.Notes, fmt.Sprintf("batched NDJSON, %d steps per request, idempotency-keyed (retry-safe)", batchSize))
	} else {
		tb.Notes = append(tb.Notes, "deprecated v1 wire: one request per step, no retry safety")
	}
	if len(labels) > 1 {
		tb.Notes = append(tb.Notes, "per-shard rows share the run's wall clock: their steps/s sum to the aggregate")
	}
	return tb.RenderFormat(w, f)
}
