package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestLoadModes drives every wire mode at a tiny scale against an
// in-process service and checks the run completes, reports the right
// step count, and cleans its sessions up.
func TestLoadModes(t *testing.T) {
	api := service.NewAPI()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	for _, mode := range []string{"v2-counts", "v2-values", "v1"} {
		t.Run(mode, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, srv.URL, mode, 2, 50, 3, 4, 7, 3, 0.1, 42, false, "csv"); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "14") { // 2 sessions x 7 steps
				t.Fatalf("output does not report 14 steps:\n%s", out)
			}
			if api.Registry().Len() != 0 {
				t.Fatalf("%d sessions left behind", api.Registry().Len())
			}
		})
	}
}

func TestLoadBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "http://127.0.0.1:1", "nope", 1, 10, 2, 1, 1, 1, 0.1, 1, false, ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(&buf, "http://127.0.0.1:1", "v1", 0, 10, 2, 1, 1, 1, 0.1, 1, false, ""); err == nil {
		t.Fatal("zero sessions accepted")
	}
}
