package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// TestLoadModes drives every wire mode at a tiny scale against an
// in-process service and checks the run completes, reports the right
// step count, and cleans its sessions up.
func TestLoadModes(t *testing.T) {
	api := service.NewAPI()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	for _, mode := range []string{"v2-counts", "v2-values", "v1"} {
		t.Run(mode, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, srv.URL, mode, false, 2, 50, 3, 4, 7, 3, 0.1, 42, false, "csv"); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "14") { // 2 sessions x 7 steps
				t.Fatalf("output does not report 14 steps:\n%s", out)
			}
			if api.Registry().Len() != 0 {
				t.Fatalf("%d sessions left behind", api.Registry().Len())
			}
		})
	}
}

// TestLoadReportsLatencyPercentiles: the report carries the latency
// distribution columns, and the percentile math follows nearest-rank.
func TestLoadReportsLatencyPercentiles(t *testing.T) {
	api := service.NewAPI()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	var buf bytes.Buffer
	if err := run(&buf, srv.URL, "v2-counts", false, 1, 50, 3, 4, 7, 3, 0.1, 43, false, "csv"); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{"p50", "p95", "p99"} {
		if !strings.Contains(header, col) {
			t.Fatalf("report header lacks %s:\n%s", col, buf.String())
		}
	}

	sample := make([]time.Duration, 100)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{0, 1 * time.Millisecond},
	} {
		if got := percentile(sample, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

// TestLoadClusterModes drives the two cluster target shapes — a
// direct shard list and a router entry point with -topology — against
// two in-process shards, and checks the report carries per-shard rows
// alongside the aggregate.
func TestLoadClusterModes(t *testing.T) {
	apiA, apiB := service.NewAPI(), service.NewAPI()
	srvA := httptest.NewServer(apiA.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(apiB.Handler())
	defer srvB.Close()
	shards, err := cluster.ParseShards(srvA.URL + "," + srvB.URL)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.New(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(cluster.NewRouter(topo).Handler())
	defer router.Close()

	for name, addr := range map[string]string{
		"shard-list": srvA.URL + "," + srvB.URL,
		"topology":   router.URL,
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			// 6 sessions so both shards almost surely own at least one.
			if err := run(&buf, addr, "v2-counts", name == "topology", 6, 50, 3, 4, 7, 3, 0.1, 42, false, "csv"); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "all") || !strings.Contains(out, "shard-0") || !strings.Contains(out, "shard-1") {
				t.Fatalf("report lacks aggregate or per-shard rows:\n%s", out)
			}
			if !strings.Contains(out, "42") { // 6 sessions x 7 steps
				t.Fatalf("output does not report 42 steps:\n%s", out)
			}
			if apiA.Registry().Len()+apiB.Registry().Len() != 0 {
				t.Fatalf("sessions left behind: A=%d B=%d", apiA.Registry().Len(), apiB.Registry().Len())
			}
		})
	}
}

func TestLoadBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "http://127.0.0.1:1", "nope", false, 1, 10, 2, 1, 1, 1, 0.1, 1, false, ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(&buf, "http://127.0.0.1:1", "v1", false, 0, 10, 2, 1, 1, 1, 0.1, 1, false, ""); err == nil {
		t.Fatal("zero sessions accepted")
	}
}
