package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

func writeMatrix(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBothChains(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	pf := writeMatrix(t, "0.8,0.2\n0.1,0.9\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, pf, 0.1, 5, "", "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BPL", "FPL", "TPL", "supremum", "user-level"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBackwardOnly(t *testing.T) {
	pb := writeMatrix(t, "# comment line\n0.8 0.2\n0 1\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 0.23, 4, "", "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no supremum") {
		t.Error("eps=0.23 under (0.8 0.2; 0 1) should report unbounded BPL")
	}
}

func TestRunCSV(t *testing.T) {
	pb := writeMatrix(t, "0.5 0.5\n0.5 0.5\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 0.1, 3, "", "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t,eps,BPL,FPL,TPL") {
		t.Errorf("csv header missing: %q", buf.String())
	}
}

func TestRunWithBudgetsFile(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	budgets := writeMatrix(t, "# plan from tplrelease\n0.5\n0.2\n0.2\n0.7\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 0.1, 99, budgets, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 time points") {
		t.Errorf("budgets file should set T=4:\n%s", out)
	}
	if !strings.Contains(out, "0.700000") {
		t.Errorf("per-step budgets should appear in the table:\n%s", out)
	}
	// Invalid budgets files.
	for _, content := range []string{"", "0.1\n-0.5\n", "abc\n"} {
		bad := writeMatrix(t, content)
		if err := run(&buf, pb, "", 0.1, 5, bad, "text"); err == nil {
			t.Errorf("budgets %q should fail", content)
		}
	}
	if err := run(&buf, pb, "", 0.1, 5, "/nonexistent", "text"); err == nil {
		t.Error("missing budgets file should fail")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", 0.1, 3, "", "text"); err == nil {
		t.Error("no chains should fail")
	}
	pb := writeMatrix(t, "1 0\n0 1\n")
	if err := run(&buf, pb, "", 0.1, 0, "", "text"); err == nil {
		t.Error("T=0 should fail")
	}
	if err := run(&buf, "/nonexistent/file", "", 0.1, 3, "", "text"); err == nil {
		t.Error("missing file should fail")
	}
	bad := writeMatrix(t, "0.5 0.6\n0 1\n")
	if err := run(&buf, bad, "", 0.1, 3, "", "text"); err == nil {
		t.Error("non-stochastic matrix should fail")
	}
	notNum := writeMatrix(t, "0.5 abc\n0 1\n")
	if err := run(&buf, notNum, "", 0.1, 3, "", "text"); err == nil {
		t.Error("non-numeric matrix should fail")
	}
}

func TestRunMarkdownAndJSON(t *testing.T) {
	pb := writeMatrix(t, "0.8 0.2\n0.2 0.8\n")
	var buf bytes.Buffer
	if err := run(&buf, pb, "", 0.1, 3, "", "md"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| t | eps | BPL | FPL | TPL |") {
		t.Errorf("markdown header row missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, pb, "", 0.1, 3, "", "json"); err != nil {
		t.Fatal(err)
	}
	tables, err := report.ParseJSONLines(&buf)
	if err != nil || len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("json output does not round trip: %v", err)
	}
	if err := run(&buf, pb, "", 0.1, 3, "", "yaml"); err == nil {
		t.Error("unknown format should fail")
	}
}
