// Command tplquant quantifies the temporal privacy leakage of an eps-DP
// mechanism released at every time step, given the adversary's temporal
// correlations as transition-matrix files.
//
// Usage:
//
//	tplquant -pb backward.csv -pf forward.csv -eps 0.1 -T 20
//	tplquant -pb backward.csv -eps 0.1 -T 20        # backward-only adversary
//	tplquant -pf forward.csv -eps 1 -T 10 -format csv
//	tplquant -pb backward.csv -budgets plan.txt     # heterogeneous budgets
//	                                                # (one eps per line, e.g.
//	                                                # from tplrelease output)
//
// Matrix files contain one row per line, comma- or whitespace-separated
// probabilities; rows must sum to 1. The tool prints BPL, FPL and TPL at
// every time point plus the Theorem-5 suprema.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/report"
	"repro/internal/version"
)

func main() {
	var (
		pbPath  = flag.String("pb", "", "backward correlation matrix file (Pr(l_{t-1}|l_t)); optional")
		pfPath  = flag.String("pf", "", "forward correlation matrix file (Pr(l_t|l_{t-1})); optional")
		eps     = flag.Float64("eps", 0.1, "per-step privacy budget of the DP mechanism")
		T       = flag.Int("T", 10, "number of release time points")
		budgets = flag.String("budgets", "", "file with one per-step budget per line; overrides -eps and -T")
		format  = flag.String("format", "", "output format: "+report.FormatNames()+" (default text)")
		csv     = flag.Bool("csv", false, "deprecated: alias for -format csv")
		showVer = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplquant", version.String())
		return
	}
	*format = report.ResolveFormat(*format, *csv)
	if err := run(os.Stdout, *pbPath, *pfPath, *eps, *T, *budgets, *format); err != nil {
		fmt.Fprintf(os.Stderr, "tplquant: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, pbPath, pfPath string, eps float64, T int, budgetsPath, format string) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	if pbPath == "" && pfPath == "" {
		return fmt.Errorf("need at least one of -pb and -pf")
	}
	if T < 1 {
		return fmt.Errorf("-T must be at least 1, got %d", T)
	}
	var pb, pf *markov.Chain
	if pbPath != "" {
		if pb, err = loadChain(pbPath); err != nil {
			return fmt.Errorf("loading -pb: %w", err)
		}
	}
	if pfPath != "" {
		if pf, err = loadChain(pfPath); err != nil {
			return fmt.Errorf("loading -pf: %w", err)
		}
	}
	qb, qf := core.NewQuantifier(pb), core.NewQuantifier(pf)
	budgets := core.UniformBudgets(eps, T)
	if budgetsPath != "" {
		if budgets, err = loadBudgets(budgetsPath); err != nil {
			return fmt.Errorf("loading -budgets: %w", err)
		}
		T = len(budgets)
	}
	bpl, err := core.BPLSeries(qb, budgets)
	if err != nil {
		return err
	}
	fpl, err := core.FPLSeries(qf, budgets)
	if err != nil {
		return err
	}
	tpl, err := core.TPLSeries(qb, qf, budgets)
	if err != nil {
		return err
	}

	title := fmt.Sprintf("Temporal privacy leakage of %g-DP at each of %d time points", eps, T)
	if budgetsPath != "" {
		title = fmt.Sprintf("Temporal privacy leakage under per-step budgets from %s (%d time points)", budgetsPath, T)
	}
	tb := &report.Table{
		Title:  title,
		Header: []string{"t", "eps", "BPL", "FPL", "TPL"},
	}
	for t := 0; t < T; t++ {
		tb.AddRow(strconv.Itoa(t+1), fmt.Sprintf("%.6f", budgets[t]),
			fmt.Sprintf("%.6f", bpl[t]), fmt.Sprintf("%.6f", fpl[t]), fmt.Sprintf("%.6f", tpl[t]))
	}
	// Suprema assume a constant budget; with heterogeneous budgets use
	// the largest one (an upper bound for every step).
	supEps := budgets[0]
	for _, e := range budgets {
		if e > supEps {
			supEps = e
		}
	}
	if supB, ok := core.Supremum(qb, supEps); ok {
		tb.Notes = append(tb.Notes, fmt.Sprintf("BPL supremum over infinite time (at eps=%g per step): %.6f", supEps, supB))
	} else {
		tb.Notes = append(tb.Notes, "BPL has no supremum: it grows without bound (Theorem 5)")
	}
	if supF, ok := core.Supremum(qf, supEps); ok {
		tb.Notes = append(tb.Notes, fmt.Sprintf("FPL supremum over infinite time (at eps=%g per step): %.6f", supEps, supF))
	} else {
		tb.Notes = append(tb.Notes, "FPL has no supremum: it grows without bound (Theorem 5)")
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("user-level leakage (Corollary 1): %.6f", core.UserLevelTPL(budgets)))
	return tb.RenderFormat(w, f)
}

// loadBudgets reads one positive per-step budget per line ('#' comments
// and blank lines skipped).
func loadBudgets(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %q is not a number", lineNo, line)
		}
		if v <= 0 {
			return nil, fmt.Errorf("line %d: budget must be positive, got %v", lineNo, v)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no budgets in %s", path)
	}
	return out, nil
}

// loadChain reads a row-stochastic matrix from a text file: one row per
// line, values separated by commas and/or whitespace. Blank lines and
// lines starting with '#' are skipped.
func loadChain(path string) (*markov.Chain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		row := make([]float64, 0, len(fields))
		for _, fd := range fields {
			v, err := strconv.ParseFloat(fd, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q is not a number", lineNo, fd)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return markov.New(m)
}
