package main

import (
	"bufio"
	"compress/gzip"
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/markov"
	"repro/internal/plugins/bundle"
	"repro/internal/service"
	"repro/tpl/client"
)

// mgmtFixture is everything the management e2e tests share: a signed
// bundle served from the test process and a config file pointing a
// tplserved child at it.
type mgmtFixture struct {
	pub     ed25519.PublicKey
	priv    ed25519.PrivateKey
	srv     *bundle.Server
	httpSrv *httptest.Server
	cfgPath string
	spool   string
}

func newMgmtFixture(t *testing.T, b1 *bundle.Bundle) *mgmtFixture {
	t.Helper()
	srv := bundle.NewServer()
	if err := srv.SetBundle(b1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	dir := t.TempDir()
	f := &mgmtFixture{srv: srv, httpSrv: ts, cfgPath: filepath.Join(dir, "config.json"), spool: filepath.Join(dir, "decisions.ndjson.gz")}
	return f
}

// writeConfig renders the management-plane config file. The bundle
// public key is optional (empty = unsigned bundles accepted).
func (f *mgmtFixture) writeConfig(t *testing.T, pubHex string) {
	t.Helper()
	cfg := fmt.Sprintf(`{
		"plugins": {
			"bundle": {"url": %q, "public_key": %q, "poll": "2s", "min_backoff": "20ms", "max_backoff": "200ms"},
			"decision_logs": {"spool_path": %q, "batch": 2, "flush_interval": "50ms"},
			"status": {"interval": "100ms"}
		}
	}`, f.httpSrv.URL, pubHex, f.spool)
	if pubHex == "" {
		cfg = strings.Replace(cfg, `"public_key": "", `, "", 1)
	}
	if err := os.WriteFile(f.cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitBundleRevision polls the child's healthz until the bundle plugin
// reports the wanted revision.
func waitBundleRevision(t *testing.T, c *client.Client, want string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		h, err := c.Health(ctx)
		if err == nil {
			if st, ok := h.Plugins["bundle"]; ok {
				if rev, _ := st.Detail["revision"].(string); rev == want {
					return
				} else {
					last = rev
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("bundle plugin never reported revision %s (last %q)", want, last)
}

// readSpool decodes the decision spool's concatenated gzip members.
func readSpool(t *testing.T, path string) []service.Decision {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	var out []service.Decision
	sc := bufio.NewScanner(zr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var d service.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad spool line %q: %v", sc.Text(), err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// testBundleModels builds the two bundle revisions the e2e tests flip
// between: rev1's "road" is the paper's Fig. 7 pair, rev2 rewires it.
func testBundleModels() (rev1, rev2 map[string]bundle.Model) {
	rev1 = map[string]bundle.Model{
		"road":         {Backward: markov.Fig7Backward(), Forward: markov.Fig7Forward()},
		"independent2": {},
	}
	rev2 = map[string]bundle.Model{
		"road": {Backward: markov.Fig7Forward(), Forward: markov.Fig7Backward()},
	}
	return rev1, rev2
}

// TestManagementPlaneE2E boots a tplserved child against an in-test
// bundle server with the full plugin config: the bundle plugin
// activates the signed fixture, a revision flip hot-swaps without a
// restart (observed via healthz), sessions pin the revision they were
// created under, and after a graceful stop the decision spool holds
// the run's accounting decisions — including a budget refusal.
func TestManagementPlaneE2E(t *testing.T) {
	bin := buildServed(t)
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := testBundleModels()
	b1, err := bundle.Build(m1, priv)
	if err != nil {
		t.Fatal(err)
	}
	fix := newMgmtFixture(t, b1)
	fix.writeConfig(t, hex.EncodeToString(pub))

	child, base := startChild(t, bin, t.TempDir(), "-config", fix.cfgPath)
	c, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	waitBundleRevision(t, c, b1.Revision)

	// A session resolves its ref against the active bundle and pins it.
	cfg := client.SessionConfig{
		Name: "refsess", Domain: 2,
		Cohorts: []client.Cohort{
			{Users: 2, Model: client.Model{Ref: "road"}},
			{Users: 1, Model: client.Model{}},
		},
	}
	if _, err := c.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Steps(ctx, "refsess", []client.Step{
		{Values: []int{0, 1, 0}, Eps: client.Eps(0.2)},
		{Values: []int{1, 1, 0}, Eps: client.Eps(0.2)},
	}); err != nil {
		t.Fatal(err)
	}

	// A planned session that runs out of horizon: the refused batch
	// must land in the decision log.
	planCfg := client.SessionConfig{
		Name: "planned", Domain: 2, Users: 2,
		Plan: &client.PlanSpec{Kind: "quantified", Alpha: 1.0, Horizon: 2, Model: &client.Model{Ref: "road"}},
	}
	if _, err := c.CreateSession(ctx, planCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Steps(ctx, "planned", []client.Step{
		{Values: []int{0, 1}}, {Values: []int{1, 0}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Steps(ctx, "planned", []client.Step{{Values: []int{0, 0}}})
	if err == nil || !strings.Contains(err.Error(), "budget_exhausted") {
		t.Fatalf("horizon overrun not refused: %v", err)
	}

	// Flip the revision: the long-polling child hot-swaps without a
	// restart...
	b2, err := bundle.Build(m2, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := fix.srv.SetBundle(b2); err != nil {
		t.Fatal(err)
	}
	waitBundleRevision(t, c, b2.Revision)
	// ...while the in-flight session keeps the revision pinned at its
	// creation and keeps accounting.
	sum, err := c.GetSession(ctx, "refsess")
	if err != nil {
		t.Fatal(err)
	}
	if sum.ModelRevision != b1.Revision {
		t.Fatalf("session rebound: revision %s, want %s", sum.ModelRevision, b1.Revision)
	}
	if _, err := c.Steps(ctx, "refsess", []client.Step{{Values: []int{0, 0, 1}, Eps: client.Eps(0.2)}}); err != nil {
		t.Fatal(err)
	}
	// A session created now binds the new revision.
	if _, err := c.CreateSession(ctx, client.SessionConfig{
		Name: "latesess", Domain: 2,
		Cohorts: []client.Cohort{{Users: 1, Model: client.Model{Ref: "road"}}},
	}); err != nil {
		t.Fatal(err)
	}
	sum, err = c.GetSession(ctx, "latesess")
	if err != nil {
		t.Fatal(err)
	}
	if sum.ModelRevision != b2.Revision {
		t.Fatalf("late session revision %s, want %s", sum.ModelRevision, b2.Revision)
	}
	// But the old revision's other models are gone: refusal, not limbo.
	_, err = c.CreateSession(ctx, client.SessionConfig{
		Name: "gone", Domain: 2,
		Cohorts: []client.Cohort{{Users: 1, Model: client.Model{Ref: "independent2"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "model_not_found") {
		t.Fatalf("stale ref not refused: %v", err)
	}

	// Graceful stop: SIGTERM drains the server and the plugin manager's
	// stop flushes the tail of the decision log.
	if err := child.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child.Wait(); err != nil {
		t.Fatalf("graceful exit: %v", err)
	}

	recs := readSpool(t, fix.spool)
	var steps, refusals int
	var sawExhausted, sawRevision bool
	for _, d := range recs {
		switch d.Kind {
		case "steps":
			steps++
			if d.Session == "refsess" && d.ModelRevision == b1.Revision {
				sawRevision = true
			}
		case "refusal":
			refusals++
			if d.Session == "planned" && d.Code == "budget_exhausted" {
				sawExhausted = true
			}
		}
	}
	if steps < 3 {
		t.Fatalf("spool has %d steps decisions, want >= 3 (%+v)", steps, recs)
	}
	if !sawExhausted {
		t.Fatalf("no budget_exhausted refusal in the spool (%d records, %d refusals)", len(recs), refusals)
	}
	if !sawRevision {
		t.Fatal("steps decisions do not carry the pinned model revision")
	}
}

// TestValidateConfigCLI covers the -validate-config mode end to end:
// a good file exits 0, a bad one exits non-zero listing every problem,
// an unparsable one fails at load.
func TestValidateConfigCLI(t *testing.T) {
	bin := buildServed(t)
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	runCLI := func(args ...string) (string, int) {
		out, err := exec.Command(bin, args...).CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		return string(out), code
	}

	good := write("good.json", `{"addr": ":0", "plugins": {"status": {"interval": "5s"}}}`)
	if out, code := runCLI("-config", good, "-validate-config"); code != 0 || !strings.Contains(out, "config ok") {
		t.Fatalf("good config: exit %d, output %q", code, out)
	}

	bad := write("bad.json", `{
		"journal_sync": "sometimes",
		"plugins": {
			"bundle": {"public_key": "zz"},
			"decision_logs": {"upload_url": "http://x", "spool_path": "/y"}
		}
	}`)
	out, code := runCLI("-config", bad, "-validate-config")
	if code == 0 {
		t.Fatalf("bad config validated: %q", out)
	}
	for _, want := range []string{"journal_sync", "plugins.bundle.url", "plugins.bundle.public_key", "plugins.decision_logs"} {
		if !strings.Contains(out, want) {
			t.Errorf("problem list missing %q:\n%s", want, out)
		}
	}

	typo := write("typo.json", `{"adr": ":8344"}`)
	if out, code := runCLI("-config", typo, "-validate-config"); code == 0 || !strings.Contains(out, "adr") {
		t.Fatalf("typoed key: exit %d, output %q", code, out)
	}

	// A bad config also refuses to BOOT (not just to validate).
	if out, code := runCLI("-config", bad); code == 0 {
		t.Fatalf("server booted on a bad config: %q", out)
	}
	if _, code := runCLI("-validate-config"); code != 2 {
		t.Fatal("-validate-config without -config must exit 2")
	}
}

// TestKillAndRecoverWithPlugins is the crash-safety acceptance test
// with the whole management plane enabled: a child ingesting through
// bundle-resolved models and a live decision log is SIGKILLed
// mid-stream, the bundle server flips to a NEW revision, and the
// restarted child must still recover the session bit-for-bit against
// an uninterrupted control — restore re-reads the resolved chains from
// the persisted config, never the currently-active bundle.
func TestKillAndRecoverWithPlugins(t *testing.T) {
	bin := buildServed(t)
	m1, m2 := testBundleModels()
	b1, err := bundle.Build(m1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fix := newMgmtFixture(t, b1)
	fix.writeConfig(t, "")
	stateDir := t.TempDir()
	ctx := context.Background()

	const (
		users      = 4
		batchLen   = 3
		batches    = 5
		killAfterB = 3
	)
	cfg := client.SessionConfig{
		Name: "mgmtcrash", Domain: 2, Seed: 991199,
		Cohorts: []client.Cohort{
			{Users: 2, Model: client.Model{Ref: "road"}},
			{Users: 2, Model: client.Model{}},
		},
	}
	batch := func(b int) []client.Step {
		steps := make([]client.Step, batchLen)
		for j := range steps {
			i := (b-1)*batchLen + j + 1
			v := make([]int, users)
			for u := range v {
				v[u] = (i*3 + u*5) % 2
			}
			steps[j] = client.Step{Values: v, Eps: client.Eps(0.1 + 0.05*float64(i%2))}
		}
		return steps
	}
	key := func(b int) string { return fmt.Sprintf("mgmtcrash-%d", b) }

	child, base := startChild(t, bin, stateDir, "-config", fix.cfgPath)
	c1, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	waitBundleRevision(t, c1, b1.Revision)
	if _, err := c1.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= killAfterB; b++ {
		if _, err := c1.StepsNDJSON(ctx, "mgmtcrash", batch(b), client.WithIdempotencyKey(key(b))); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()

	// Flip the bundle while the server is down: the restarted child
	// activates rev2, but the restored session must keep rev1's chains.
	b2, err := bundle.Build(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fix.srv.SetBundle(b2); err != nil {
		t.Fatal(err)
	}

	child2, base2 := startChild(t, bin, stateDir, "-config", fix.cfgPath)
	defer func() {
		_ = child2.Process.Signal(syscall.SIGKILL)
		_ = child2.Wait()
	}()
	c2, err := client.New(base2)
	if err != nil {
		t.Fatal(err)
	}
	waitBundleRevision(t, c2, b2.Revision)
	sum, err := c2.GetSession(ctx, "mgmtcrash")
	if err != nil {
		t.Fatal(err)
	}
	if sum.ModelRevision != b1.Revision {
		t.Fatalf("restored session revision %s, want %s", sum.ModelRevision, b1.Revision)
	}
	// Retry the unacknowledged batch, then drive the stream to the end.
	res, err := c2.StepsNDJSON(ctx, "mgmtcrash", batch(killAfterB), client.WithIdempotencyKey(key(killAfterB)))
	if err != nil {
		t.Fatalf("post-crash retry: %v", err)
	}
	if !res.Replayed || res.LastT != killAfterB*batchLen {
		t.Fatalf("post-crash retry: %+v", res)
	}
	for b := killAfterB + 1; b <= batches; b++ {
		if _, err := c2.StepsNDJSON(ctx, "mgmtcrash", batch(b), client.WithIdempotencyKey(key(b))); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	// Control: uninterrupted in-process run with rev1 active.
	api := service.NewAPI()
	api.Registry().ModelCache().ActivateNamed(b1.Revision, b1.AdversaryModels())
	ctl := httptest.NewServer(api.Handler())
	defer ctl.Close()
	cc, err := client.New(ctl.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= batches; b++ {
		if _, err := cc.StepsNDJSON(ctx, "mgmtcrash", batch(b)); err != nil {
			t.Fatalf("control batch %d: %v", b, err)
		}
	}

	const totalSteps = batches * batchLen
	for u := 0; u < users; u++ {
		got, err := c2.TPLSeries(ctx, "mgmtcrash", u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cc.TPLSeries(ctx, "mgmtcrash", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != totalSteps || len(want) != totalSteps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d TPL[%d]: recovered %v != control %v", u, i, got[i], want[i])
			}
		}
	}
	gotPub, err := c2.PublishedAll(ctx, "mgmtcrash")
	if err != nil {
		t.Fatal(err)
	}
	wantPub, err := cc.PublishedAll(ctx, "mgmtcrash")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPub) != totalSteps {
		t.Fatalf("published history %d steps", len(gotPub))
	}
	for i := range wantPub {
		for j := range wantPub[i].Published {
			if gotPub[i].Published[j] != wantPub[i].Published[j] {
				t.Fatalf("published[%d][%d]: recovered %v != control %v", i, j, gotPub[i].Published[j], wantPub[i].Published[j])
			}
		}
	}
}
