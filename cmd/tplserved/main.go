// Command tplserved runs the continuous-release service: the trusted
// aggregator of the paper's Fig. 1 as a long-running multi-tenant JSON
// HTTP server (see internal/service for the API).
//
// Usage:
//
//	tplserved -addr :8344
//	tplserved -addr :8344 -state-dir /var/lib/tplserved -snapshot-every 64
//
// With -state-dir the accounting is durable: each session's leakage
// state is snapshotted (coalesced, atomically replaced) and every step
// is appended to a per-session journal, so a crash — even SIGKILL —
// recovers to the exact leakage series via snapshot + journal replay,
// and a restart restores all sessions before serving. Without it a
// restart forgets all sessions (and with them every user's accumulated
// leakage), which would let an operator reset privacy budgets by
// bouncing the process.
//
// Sessions are created over the API, ingest time steps in atomic
// batches (v2: JSON arrays or NDJSON streams, idempotency-keyed so
// retries are exactly-once) with explicit or planned budgets, and
// answer leakage queries; users declaring identical adversary models
// share one accountant (cohort-sharded accounting), so sessions scale
// to very large populations. Errors are RFC 7807 problem+json with
// stable codes; the deprecated /v1 per-step API remains as shims. Go
// callers should use the typed tpl/client SDK instead of raw HTTP.
// The server shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests.
//
//	curl -s localhost:8344/healthz
//	curl -s -X POST localhost:8344/v2/sessions -d '{
//	  "name": "demo", "domain": 2,
//	  "cohorts": [{"users": 100000, "model": {"backward": {"rows": [[0.8,0.2],[0.2,0.8]]}}},
//	              {"users": 900000, "model": {}}]}'
//	curl -s -X POST localhost:8344/v2/sessions/demo/steps -H 'Idempotency-Key: b1' \
//	  -d '[{"counts": [...], "eps": 0.1}, {"counts": [...], "eps": 0.1}]'
//	curl -s 'localhost:8344/v2/sessions/demo/published?limit=10'
//	curl -s 'localhost:8344/v2/sessions/demo/report?format=jsonl'
//	curl -s -N 'localhost:8344/v2/sessions/demo/watch?from=0'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/service"
	"repro/internal/version"
)

func main() {
	var (
		addr          = flag.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
		quiet         = flag.Bool("quiet", false, "suppress serving logs")
		stateDir      = flag.String("state-dir", "", "directory for durable session state (snapshots + step journals); empty = ephemeral, state dies with the process")
		snapshotEvery = flag.Int("snapshot-every", 0, "steps between coalesced session snapshots (0 = default; journal records are appended every step regardless)")
		journalSync   = flag.String("journal-sync", "group", "journal durability: none (page-cache only), group (one fsync per commit group, bounded latency) or step (fsync every batch)")
		journalWindow = flag.Duration("journal-window", 0, "group-commit latency window: how long an append may wait for companions before its fsync (0 = default)")
		showVer       = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplserved", version.String())
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := service.Options{
		StateDir:      *stateDir,
		SnapshotEvery: *snapshotEvery,
		JournalSync:   *journalSync,
		JournalWindow: *journalWindow,
	}
	if err := run(ctx, *addr, *quiet, opts, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tplserved: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled. ready, when non-nil, learns the
// bound address (tests listen on port 0).
func run(ctx context.Context, addr string, quiet bool, opts service.Options, ready func(net.Addr)) error {
	var logger *log.Logger
	if !quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv, err := service.NewWithOptions(addr, logger, opts)
	if err != nil {
		return err
	}
	return srv.Run(ctx, ready)
}
