// Command tplserved runs the continuous-release service: the trusted
// aggregator of the paper's Fig. 1 as a long-running multi-tenant JSON
// HTTP server (see internal/service for the API).
//
// Usage:
//
//	tplserved -addr :8344
//	tplserved -addr :8344 -state-dir /var/lib/tplserved -snapshot-every 64
//	tplserved -config /etc/tplserved/config.json
//	tplserved -config config.json -validate-config
//
// With -state-dir the accounting is durable: each session's leakage
// state is snapshotted (coalesced, atomically replaced) and every step
// is appended to a per-session journal, so a crash — even SIGKILL —
// recovers to the exact leakage series via snapshot + journal replay,
// and a restart restores all sessions before serving. Without it a
// restart forgets all sessions (and with them every user's accumulated
// leakage), which would let an operator reset privacy budgets by
// bouncing the process.
//
// With -config the server loads a declarative JSON config file
// (schema: internal/plugins/plugincfg) that additionally drives the
// management plane: a bundle plugin polling signed model bundles and
// hot-swapping them into the shared model cache, a decision-log plugin
// streaming every accounting decision to an upload endpoint or spool
// file, and a status plugin reporting bundle revisions, snapshot ages
// and budget pressure. Precedence is fixed: built-in defaults <
// config file < explicitly-set flags. -validate-config lints the file
// and exits without booting.
//
// Sessions are created over the API, ingest time steps in atomic
// batches (v2: JSON arrays or NDJSON streams, idempotency-keyed so
// retries are exactly-once) with explicit or planned budgets, and
// answer leakage queries; users declaring identical adversary models
// share one accountant (cohort-sharded accounting), so sessions scale
// to very large populations. Session configs may reference bundle
// models by name ({"model": {"ref": "road"}}) instead of inlining
// matrices. Errors are RFC 7807 problem+json with stable codes; the
// deprecated /v1 per-step API remains as shims. Go callers should use
// the typed tpl/client SDK instead of raw HTTP. The server shuts down
// gracefully on SIGINT/SIGTERM, draining in-flight requests.
//
//	curl -s localhost:8344/healthz
//	curl -s -X POST localhost:8344/v2/sessions -d '{
//	  "name": "demo", "domain": 2,
//	  "cohorts": [{"users": 100000, "model": {"ref": "road"}},
//	              {"users": 900000, "model": {}}]}'
//	curl -s -X POST localhost:8344/v2/sessions/demo/steps -H 'Idempotency-Key: b1' \
//	  -d '[{"counts": [...], "eps": 0.1}, {"counts": [...], "eps": 0.1}]'
//	curl -s 'localhost:8344/v2/sessions/demo/published?limit=10'
//	curl -s 'localhost:8344/v2/sessions/demo/report?format=jsonl'
//	curl -s -N 'localhost:8344/v2/sessions/demo/watch?from=0'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/plugins/plugincfg"
	"repro/internal/service"
	"repro/internal/version"
)

// pluginStopGrace bounds the graceful plugin stop (final decision-log
// flush) after the server has drained.
const pluginStopGrace = 10 * time.Second

func main() {
	// Flag defaults come from plugincfg.Default() — the single source
	// of tplserved defaults. Precedence: defaults < config file <
	// explicitly-set flags (plugincfg.ApplyFlags).
	def := plugincfg.Default()
	var (
		configPath     = flag.String("config", "", "JSON config file (schema: internal/plugins/plugincfg); explicitly-set flags override it")
		validateOnly   = flag.Bool("validate-config", false, "parse and validate -config, print every problem, and exit (non-zero when invalid)")
		addr           = flag.String("addr", def.Addr, "listen address (host:port; port 0 picks a free port)")
		quiet          = flag.Bool("quiet", def.Quiet, "suppress serving logs")
		stateDir       = flag.String("state-dir", def.StateDir, "directory for durable session state (snapshots + step journals); empty = ephemeral, state dies with the process")
		snapshotEvery  = flag.Int("snapshot-every", def.SnapshotEvery, "steps between coalesced session snapshots (0 = default; journal records are appended every step regardless)")
		journalSync    = flag.String("journal-sync", def.JournalSync, "journal durability: none (page-cache only), group (one fsync per commit group, bounded latency) or step (fsync every batch)")
		journalWindow  = flag.Duration("journal-window", time.Duration(def.JournalWindow), "group-commit latency window: how long an append may wait for companions before its fsync (0 = default)")
		engineCacheDir = flag.String("engine-cache-dir", def.EngineCacheDir, "directory for the on-disk compiled-engine cache: adversary models seen by any previous process warm-start instead of recompiling; empty = compile fresh every boot")
		role           = flag.String("role", def.Role, "process role: serve (one ingest shard, the default) or router (cluster front door proxying to -shards by consistent hashing)")
		shards         = flag.String("shards", "", "comma-separated shard list (role router): bare base URLs (order fixes IDs shard-0,shard-1,...) or id=addr pairs, e.g. a=http://h1:8344,b=http://h2:8344")
		ringSize       = flag.Int("ring-size", def.RingSize, "consistent-hash ring slots (role router; 0 = default)")
		showVer        = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tplserved", version.String())
		return
	}
	cfg := def
	if *configPath != "" {
		var err error
		if cfg, err = plugincfg.Load(*configPath); err != nil {
			fmt.Fprintf(os.Stderr, "tplserved: %v\n", err)
			os.Exit(1)
		}
	}
	if *validateOnly {
		if *configPath == "" {
			fmt.Fprintln(os.Stderr, "tplserved: -validate-config requires -config")
			os.Exit(2)
		}
		if problems := cfg.Validate(); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "tplserved: config: %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("tplserved: %s: config ok\n", *configPath)
		return
	}
	cfg.ApplyFlags(flag.CommandLine, addr, quiet, stateDir, snapshotEvery, journalSync, journalWindow, engineCacheDir, role, shards, ringSize)
	if problems := cfg.Validate(); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "tplserved: config: %s\n", p)
		}
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tplserved: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled. ready, when non-nil, learns the
// bound address (tests listen on port 0).
func run(ctx context.Context, cfg plugincfg.File, ready func(net.Addr)) error {
	var logger *log.Logger
	if !cfg.Quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	if cfg.Role == "router" {
		return runRouter(ctx, cfg, logger, ready)
	}
	srv, err := service.NewWithOptions(cfg.Addr, logger, cfg.Options())
	if err != nil {
		return err
	}
	mgr, err := cfg.BuildPlugins(srv.API().Registry())
	if err != nil {
		return err
	}
	srv.API().SetPluginHealth(func() any { return mgr.StatusAll() })
	// Plugins run on their own context: the manager's Stop (below), not
	// the serve context, ends them — decisions recorded while in-flight
	// requests drain after ctx cancels still reach the log's final
	// flush.
	if err := mgr.Start(context.Background()); err != nil {
		return err
	}
	defer func() {
		stopCtx, cancel := context.WithTimeout(context.Background(), pluginStopGrace)
		defer cancel()
		mgr.Stop(stopCtx)
	}()
	return srv.Run(ctx, ready)
}

// routerShutdownGrace bounds the in-flight drain of a stopping router.
const routerShutdownGrace = 10 * time.Second

// runRouter serves the cluster front door: no sessions, no durability —
// just the topology document and the consistent-hash proxy over the
// configured shards (internal/cluster).
func runRouter(ctx context.Context, cfg plugincfg.File, logger *log.Logger, ready func(net.Addr)) error {
	topo, err := cfg.Topology()
	if err != nil {
		return err
	}
	rt := cluster.NewRouter(topo)
	hs := &http.Server{
		Addr:              cfg.Addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Same bounds the shards use: honest traffic fits easily, a
		// byte-trickling client cannot pin a proxy goroutine forever.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	if logger != nil {
		hs.ErrorLog = logger
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	if logger != nil {
		logger.Printf("tplserved: listening on %s", ln.Addr())
		logger.Printf("tplserved: router over %d shard(s), ring size %d, topology v%d", len(topo.Shards), topo.RingSize, topo.Version)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if logger != nil {
		logger.Printf("tplserved: shutting down")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), routerShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
