package main

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/plugins/plugincfg"
	"repro/tpl/client"
)

// TestRunServesAndShutsDown boots the service on a free port, checks
// liveness and one session round-trip over real TCP through the SDK,
// then cancels the context and expects a clean drain.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	cfg := plugincfg.Default()
	cfg.Addr = "127.0.0.1:0"
	cfg.Quiet = true
	go func() {
		errc <- run(ctx, cfg, func(a net.Addr) { addrc <- a })
	}()

	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}

	c, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Sessions != 0 || health.Version == "" {
		t.Fatalf("health %+v", health)
	}

	if _, err := c.CreateSession(ctx, client.SessionConfig{Name: "smoke", Domain: 2, Users: 3}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Steps(ctx, "smoke", []client.Step{{Values: []int{0, 1, 1}, Eps: client.Eps(0.5)}}); err != nil {
		t.Fatalf("steps: %v", err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}
