package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndShutsDown boots the service on a free port, checks
// liveness and one session round-trip over real TCP, then cancels the
// context and expects a clean drain.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", true, "", 0, func(a net.Addr) { addrc <- a })
	}()

	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Sessions != 0 {
		t.Fatalf("health %+v", health)
	}

	body := `{"name":"smoke","domain":2,"users":3}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}
