package main

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/tpl/client"
)

// TestKillAndRecover is the crash-safety acceptance test, driven
// entirely through the tpl/client SDK over the v2 batch endpoint: a
// tplserved child is SIGKILLed mid-stream (no graceful shutdown, so
// recovery runs from the last coalesced snapshot plus the journal
// tail), restarted on the same state dir, the batch in flight at the
// kill is RETRIED with its idempotency key — the restored process must
// replay it from its journaled memory, not double-charge it — and the
// stream is driven to the end. Every leakage answer — per-user TPL
// series, the report, the w-event maximum — and even the published
// histograms must match an uninterrupted in-process control run bit
// for bit.
func TestKillAndRecover(t *testing.T) {
	bin := buildServed(t)
	stateDir := t.TempDir()
	// Both child runs share an on-disk engine cache, while the control
	// run compiles fresh: the equality checks below therefore also pin
	// down that a cache-loaded engine is bit-identical to a compile.
	cacheDir := t.TempDir()
	cacheFlags := []string{"-engine-cache-dir", cacheDir}
	ctx := context.Background()

	const (
		users      = 5
		batchLen   = 3
		batches    = 6 // 18 steps total
		killAfterB = 4 // kill after batch 4 (t=12); snapshots land at 5 and 10
	)
	chain := &client.Chain{Rows: [][]float64{{0.8, 0.2}, {0.3, 0.7}}}
	fwd := &client.Chain{Rows: [][]float64{{0.6, 0.4}, {0.1, 0.9}}}
	cfg := client.SessionConfig{
		Name: "crashy", Domain: 2, Seed: 424242,
		Cohorts: []client.Cohort{
			{Users: 3, Model: client.Model{Backward: chain, Forward: fwd}},
			{Users: 2, Model: client.Model{}},
		},
	}
	values := func(i int) []int {
		v := make([]int, users)
		for u := range v {
			v[u] = (i*7 + u*3) % 2
		}
		return v
	}
	eps := func(i int) float64 { return 0.1 + 0.05*float64(i%3) }
	batch := func(b int) []client.Step {
		steps := make([]client.Step, batchLen)
		for j := range steps {
			i := (b-1)*batchLen + j + 1
			steps[j] = client.Step{Values: values(i), Eps: client.Eps(eps(i))}
		}
		return steps
	}
	key := func(b int) string { return fmt.Sprintf("crashy-batch-%d", b) }

	// --- interrupted run, phase 1: serve, batch, SIGKILL ---
	child, base := startChild(t, bin, stateDir, cacheFlags...)
	c1, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= killAfterB; b++ {
		res, err := c1.StepsNDJSON(ctx, "crashy", batch(b), client.WithIdempotencyKey(key(b)))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if res.Replayed || res.LastT != b*batchLen {
			t.Fatalf("batch %d: %+v", b, res)
		}
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()

	// --- interrupted run, phase 2: restart on the same state dir ---
	child2, base2 := startChild(t, bin, stateDir, cacheFlags...)
	defer func() {
		_ = child2.Process.Signal(syscall.SIGKILL)
		_ = child2.Wait()
	}()
	c2, err := client.New(base2)
	if err != nil {
		t.Fatal(err)
	}
	health, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Sessions != 1 || health.Persistence.Mode != "durable" {
		t.Fatalf("restarted health: %+v", health)
	}
	// Cold-start-free restart: the restored session's two chains (one
	// backward, one forward) must have loaded their compiled engines
	// from the cache the first process wrote — hits with zero stores
	// means no recompilation happened at all.
	if health.EngineCache == nil {
		t.Fatal("restarted health has no engine_cache block")
	}
	if health.EngineCache.Hits == 0 || health.EngineCache.Stores != 0 {
		t.Fatalf("restart was not cold-start-free: %+v", *health.EngineCache)
	}
	// The client never heard back about batch 4 before the kill (as far
	// as a real caller knows): retry it with the same key. The restored
	// process must answer from its journaled idempotency memory.
	res, err := c2.StepsNDJSON(ctx, "crashy", batch(killAfterB), client.WithIdempotencyKey(key(killAfterB)))
	if err != nil {
		t.Fatalf("post-crash retry: %v", err)
	}
	if !res.Replayed || res.LastT != killAfterB*batchLen {
		t.Fatalf("post-crash retry was not replayed: %+v", res)
	}
	// Drive the stream to the end.
	for b := killAfterB + 1; b <= batches; b++ {
		res, err := c2.StepsNDJSON(ctx, "crashy", batch(b), client.WithIdempotencyKey(key(b)))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if res.Replayed || res.LastT != b*batchLen {
			t.Fatalf("batch %d: %+v", b, res)
		}
	}

	// --- control run: same session, uninterrupted, in process ---
	ctl := httptest.NewServer(service.NewAPI().Handler())
	defer ctl.Close()
	cc, err := client.New(ctl.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= batches; b++ {
		if _, err := cc.StepsNDJSON(ctx, "crashy", batch(b)); err != nil {
			t.Fatalf("control batch %d: %v", b, err)
		}
	}

	// --- equality ---
	const totalSteps = batches * batchLen
	for u := 0; u < users; u++ {
		got, err := c2.TPLSeries(ctx, "crashy", u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cc.TPLSeries(ctx, "crashy", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != totalSteps || len(want) != totalSteps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d TPL[%d]: recovered %v != control %v", u, i, got[i], want[i])
			}
		}
	}
	gotRep, err := c2.Report(ctx, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := cc.Report(ctx, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != wantRep {
		t.Fatalf("report: recovered %+v != control %+v", gotRep, wantRep)
	}
	gotW, err := c2.WEvent(ctx, "crashy", 3)
	if err != nil {
		t.Fatal(err)
	}
	wantW, err := cc.WEvent(ctx, "crashy", 3)
	if err != nil {
		t.Fatal(err)
	}
	if gotW != wantW {
		t.Fatalf("wevent: recovered %+v != control %+v", gotW, wantW)
	}
	// The session's seed is an explicit opt-in, so even the noise
	// stream must have survived the kill AND the idempotent replay:
	// every published histogram matches the control run.
	gotPub, err := c2.PublishedAll(ctx, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	wantPub, err := cc.PublishedAll(ctx, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPub) != totalSteps {
		t.Fatalf("published history %d steps", len(gotPub))
	}
	for i := range wantPub {
		for j := range wantPub[i].Published {
			if gotPub[i].Published[j] != wantPub[i].Published[j] {
				t.Fatalf("published[%d][%d]: recovered %v != control %v", i, j, gotPub[i].Published[j], wantPub[i].Published[j])
			}
		}
	}
}

// TestKillMidCommitWindowAndRecover kills the child while a batch is
// parked INSIDE the group-commit window: journaling is configured with
// a long -journal-window, the batch is posted asynchronously, and the
// SIGKILL lands before (usually) its group has fsync'd — so the record
// may or may not have reached the disk, and the client never got an
// acknowledgement either way. The group-commit contract makes this
// safe: an unacked record is retried idempotently after restart, and
// whether the retry finds it journaled (Replayed=true) or re-applies it
// fresh (Replayed=false), the final leakage series must be bit-exact
// against an uninterrupted control run.
func TestKillMidCommitWindowAndRecover(t *testing.T) {
	bin := buildServed(t)
	stateDir := t.TempDir()
	ctx := context.Background()
	syncFlags := []string{"-journal-sync", "group", "-journal-window", "250ms"}

	const (
		users    = 4
		batchLen = 3
		batches  = 4 // 12 steps total
		killAtB  = 3 // batch 3 is in flight when the SIGKILL lands
	)
	cfg := client.SessionConfig{
		Name: "midwin", Domain: 2, Seed: 777,
		Cohorts: []client.Cohort{
			{Users: 2, Model: client.Model{Backward: &client.Chain{Rows: [][]float64{{0.7, 0.3}, {0.2, 0.8}}}}},
			{Users: 2, Model: client.Model{}},
		},
	}
	batch := func(b int) []client.Step {
		steps := make([]client.Step, batchLen)
		for j := range steps {
			i := (b-1)*batchLen + j + 1
			v := make([]int, users)
			for u := range v {
				v[u] = (i*5 + u) % 2
			}
			steps[j] = client.Step{Values: v, Eps: client.Eps(0.1 + 0.05*float64(i%2))}
		}
		return steps
	}
	key := func(b int) string { return fmt.Sprintf("midwin-batch-%d", b) }

	child, base := startChild(t, bin, stateDir, syncFlags...)
	c1, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b < killAtB; b++ {
		if _, err := c1.StepsNDJSON(ctx, "midwin", batch(b), client.WithIdempotencyKey(key(b))); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	// Post the kill batch asynchronously: its journal append parks in
	// the 250ms commit window, and the SIGKILL lands ~60ms in. The
	// request fails (or, if scheduling is slow, may have committed) —
	// either way no acknowledged data may be lost.
	inflight := make(chan error, 1)
	go func() {
		_, err := c1.StepsNDJSON(ctx, "midwin", batch(killAtB), client.WithIdempotencyKey(key(killAtB)))
		inflight <- err
	}()
	time.Sleep(60 * time.Millisecond)
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()
	<-inflight // outcome intentionally ignored: the client treats it as unknown

	// Restart and retry the unacknowledged batch with the same key.
	child2, base2 := startChild(t, bin, stateDir, syncFlags...)
	defer func() {
		_ = child2.Process.Signal(syscall.SIGKILL)
		_ = child2.Wait()
	}()
	c2, err := client.New(base2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.StepsNDJSON(ctx, "midwin", batch(killAtB), client.WithIdempotencyKey(key(killAtB)))
	if err != nil {
		t.Fatalf("post-crash retry: %v", err)
	}
	// Replayed is true iff the group happened to fsync before the kill;
	// both outcomes are legal. The step position is not negotiable.
	if res.LastT != killAtB*batchLen {
		t.Fatalf("post-crash retry: %+v", res)
	}
	for b := killAtB + 1; b <= batches; b++ {
		if _, err := c2.StepsNDJSON(ctx, "midwin", batch(b), client.WithIdempotencyKey(key(b))); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	// Control: uninterrupted in-process run of the same seeded workload.
	ctl := httptest.NewServer(service.NewAPI().Handler())
	defer ctl.Close()
	cc, err := client.New(ctl.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= batches; b++ {
		if _, err := cc.StepsNDJSON(ctx, "midwin", batch(b)); err != nil {
			t.Fatalf("control batch %d: %v", b, err)
		}
	}

	const totalSteps = batches * batchLen
	for u := 0; u < users; u++ {
		got, err := c2.TPLSeries(ctx, "midwin", u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cc.TPLSeries(ctx, "midwin", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != totalSteps || len(want) != totalSteps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d TPL[%d]: recovered %v != control %v", u, i, got[i], want[i])
			}
		}
	}
	gotPub, err := c2.PublishedAll(ctx, "midwin")
	if err != nil {
		t.Fatal(err)
	}
	wantPub, err := cc.PublishedAll(ctx, "midwin")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPub) != totalSteps {
		t.Fatalf("published history %d steps", len(gotPub))
	}
	for i := range wantPub {
		for j := range wantPub[i].Published {
			if gotPub[i].Published[j] != wantPub[i].Published[j] {
				t.Fatalf("published[%d][%d]: recovered %v != control %v", i, j, gotPub[i].Published[j], wantPub[i].Published[j])
			}
		}
	}
}

// buildServed compiles the tplserved binary once per test into a temp
// dir (skipping in -short mode or without a go toolchain).
func buildServed(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("child-process recovery test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "tplserved")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startChild launches the built tplserved on a free port with the given
// state dir (plus any extra flags) and returns the running command plus
// its base URL, parsed from the listen log line.
func startChild(t *testing.T, bin, stateDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-state-dir", stateDir, "-snapshot-every", "5"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGKILL)
		_, _ = cmd.Process.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrc <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case addr := <-addrc:
		base := "http://" + addr
		// The listener is up before the log line, but be patient anyway.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				return cmd, base
			}
			if time.Now().After(deadline) {
				t.Fatalf("child never became healthy: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child never logged its listen address")
	}
	panic("unreachable")
}
