package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// TestKillAndRecover is the crash-safety acceptance test: a tplserved
// child is SIGKILLed mid-stream (no graceful shutdown, so recovery runs
// from the last coalesced snapshot plus the journal tail), restarted on
// the same state dir, and driven to the end of the stream. Every
// leakage answer — per-user TPL series, the report, the w-event
// maximum — and even the published histograms must match an
// uninterrupted in-process control run bit for bit.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process recovery test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "tplserved")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	stateDir := t.TempDir()

	const (
		sessionJSON = `{"name":"crashy","domain":2,"seed":424242,` +
			`"cohorts":[{"users":3,"model":{"backward":{"rows":[[0.8,0.2],[0.3,0.7]]},"forward":{"rows":[[0.6,0.4],[0.1,0.9]]}}},` +
			`{"users":2,"model":{}}]}`
		users      = 5
		totalSteps = 18
		killAfter  = 12 // snapshots land at 5 and 10; the journal holds 11..12
	)
	values := func(i int) []int {
		v := make([]int, users)
		for u := range v {
			v[u] = (i*7 + u*3) % 2
		}
		return v
	}
	eps := func(i int) float64 { return 0.1 + 0.05*float64(i%3) }

	postStep := func(base string, i int) error {
		body, _ := json.Marshal(map[string]any{"values": values(i), "eps": eps(i)})
		resp, err := http.Post(base+"/v1/sessions/crashy/steps", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			out, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("step %d: %d: %s", i, resp.StatusCode, out)
		}
		return nil
	}

	// --- interrupted run, phase 1: serve, step, SIGKILL ---
	child, base := startChild(t, bin, stateDir)
	createResp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(sessionJSON))
	if err != nil {
		t.Fatal(err)
	}
	if createResp.StatusCode != http.StatusCreated {
		out, _ := io.ReadAll(createResp.Body)
		t.Fatalf("create: %d: %s", createResp.StatusCode, out)
	}
	createResp.Body.Close()
	for i := 1; i <= killAfter; i++ {
		if err := postStep(base, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()

	// --- interrupted run, phase 2: restart on the same state dir ---
	child2, base2 := startChild(t, bin, stateDir)
	defer func() {
		_ = child2.Process.Signal(syscall.SIGKILL)
		_ = child2.Wait()
	}()
	var health struct {
		Sessions    int `json:"sessions"`
		Persistence struct {
			Mode string `json:"mode"`
		} `json:"persistence"`
	}
	getJSON(t, base2+"/healthz", &health)
	if health.Sessions != 1 || health.Persistence.Mode != "durable" {
		t.Fatalf("restarted health: %+v", health)
	}
	for i := killAfter + 1; i <= totalSteps; i++ {
		if err := postStep(base2, i); err != nil {
			t.Fatal(err)
		}
	}

	// --- control run: same session, uninterrupted, in process ---
	api := service.NewAPI()
	ctl := httptest.NewServer(api.Handler())
	defer ctl.Close()
	resp, err := http.Post(ctl.URL+"/v1/sessions", "application/json", strings.NewReader(sessionJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 1; i <= totalSteps; i++ {
		if err := postStep(ctl.URL, i); err != nil {
			t.Fatalf("control %v", err)
		}
	}

	// --- equality ---
	for u := 0; u < users; u++ {
		var got, want struct {
			TPL []float64 `json:"tpl"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/sessions/crashy/tpl?user=%d", base2, u), &got)
		getJSON(t, fmt.Sprintf("%s/v1/sessions/crashy/tpl?user=%d", ctl.URL, u), &want)
		if len(got.TPL) != totalSteps || len(want.TPL) != totalSteps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(got.TPL), len(want.TPL))
		}
		for i := range want.TPL {
			if got.TPL[i] != want.TPL[i] {
				t.Fatalf("user %d TPL[%d]: recovered %v != control %v", u, i, got.TPL[i], want.TPL[i])
			}
		}
	}
	var gotRep, wantRep map[string]any
	getJSON(t, base2+"/v1/sessions/crashy/report", &gotRep)
	getJSON(t, ctl.URL+"/v1/sessions/crashy/report", &wantRep)
	for k, v := range wantRep {
		if gotRep[k] != v {
			t.Fatalf("report %q: recovered %v != control %v", k, gotRep[k], v)
		}
	}
	var gotW, wantW map[string]any
	getJSON(t, base2+"/v1/sessions/crashy/wevent?w=3", &gotW)
	getJSON(t, ctl.URL+"/v1/sessions/crashy/wevent?w=3", &wantW)
	if gotW["leakage"] != wantW["leakage"] || gotW["user"] != wantW["user"] {
		t.Fatalf("wevent: recovered %v != control %v", gotW, wantW)
	}
	// The session's seed is an explicit opt-in, so even the noise
	// stream must have survived the kill: every published histogram
	// matches the control run.
	var gotPub, wantPub struct {
		Published [][]float64 `json:"published"`
	}
	getJSON(t, base2+"/v1/sessions/crashy/published", &gotPub)
	getJSON(t, ctl.URL+"/v1/sessions/crashy/published", &wantPub)
	if len(gotPub.Published) != totalSteps {
		t.Fatalf("published history %d steps", len(gotPub.Published))
	}
	for i := range wantPub.Published {
		for j := range wantPub.Published[i] {
			if gotPub.Published[i][j] != wantPub.Published[i][j] {
				t.Fatalf("published[%d][%d]: recovered %v != control %v", i, j, gotPub.Published[i][j], wantPub.Published[i][j])
			}
		}
	}
}

// startChild launches the built tplserved on a free port with the given
// state dir and returns the running command plus its base URL, parsed
// from the listen log line.
func startChild(t *testing.T, bin, stateDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state-dir", stateDir, "-snapshot-every", "5")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGKILL)
		_, _ = cmd.Process.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrc <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case addr := <-addrc:
		base := "http://" + addr
		// The listener is up before the log line, but be patient anyway.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				return cmd, base
			}
			if time.Now().After(deadline) {
				t.Fatalf("child never became healthy: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child never logged its listen address")
	}
	panic("unreachable")
}

// getJSON fetches and decodes one JSON response.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, out)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
