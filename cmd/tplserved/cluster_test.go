package main

import (
	"bufio"
	"context"
	"fmt"
	"net/http/httptest"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/tpl/client"
)

// startRouter launches the built tplserved in router mode over the
// given shard base URLs and returns the command plus its base URL.
func startRouter(t *testing.T, bin string, shardURLs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := []string{"-addr", "127.0.0.1:0", "-role", "router", "-shards", strings.Join(shardURLs, ",")}
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGKILL)
		_, _ = cmd.Process.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrc <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("router never logged its listen address")
	}
	panic("unreachable")
}

// TestMigrateMidStreamDifferential is the migration acceptance test,
// run with the same discipline as TestKillAndRecover: a session
// streams batches into shard A, is migrated to shard B while a keyed
// batch is in flight, the unacknowledged batch is retried, and the
// stream finishes at B. Every leakage answer — per-user TPL series,
// the report, the w-event maximum, the published histograms — must
// match an unmigrated in-process control run bit for bit. Both shards
// share an on-disk engine cache, so the import rebinds compiled
// engines instead of recompiling.
func TestMigrateMidStreamDifferential(t *testing.T) {
	bin := buildServed(t)
	cacheDir := t.TempDir()
	cacheFlags := []string{"-engine-cache-dir", cacheDir}
	ctx := context.Background()

	const (
		users    = 5
		batchLen = 3
		batches  = 6 // 18 steps total
		moveAtB  = 3 // batch 3 races the migration
	)
	chain := &client.Chain{Rows: [][]float64{{0.8, 0.2}, {0.3, 0.7}}}
	fwd := &client.Chain{Rows: [][]float64{{0.6, 0.4}, {0.1, 0.9}}}
	cfg := client.SessionConfig{
		Name: "roamer", Domain: 2, Seed: 99331,
		Cohorts: []client.Cohort{
			{Users: 3, Model: client.Model{Backward: chain, Forward: fwd}},
			{Users: 2, Model: client.Model{}},
		},
	}
	batch := func(b int) []client.Step {
		steps := make([]client.Step, batchLen)
		for j := range steps {
			i := (b-1)*batchLen + j + 1
			v := make([]int, users)
			for u := range v {
				v[u] = (i*7 + u*3) % 2
			}
			steps[j] = client.Step{Values: v, Eps: client.Eps(0.1 + 0.05*float64(i%3))}
		}
		return steps
	}
	key := func(b int) string { return fmt.Sprintf("roamer-batch-%d", b) }

	_, baseA := startChild(t, bin, t.TempDir(), cacheFlags...)
	_, baseB := startChild(t, bin, t.TempDir(), cacheFlags...)

	// The streaming client is shard-routing: it follows the migration
	// transparently via the 421 location (no router in this test).
	c, err := client.New(baseA, client.WithShardRouting())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b < moveAtB; b++ {
		if _, err := c.StepsNDJSON(ctx, "roamer", batch(b), client.WithIdempotencyKey(key(b))); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	// Race a keyed batch against the migration. Whatever interleaving
	// the scheduler picks — batch applied before the freeze, parked on
	// the session lock during the push, or refused with wrong_shard and
	// transparently re-routed — the idempotency key guarantees it lands
	// exactly once.
	inflight := make(chan error, 1)
	go func() {
		_, err := c.StepsNDJSON(ctx, "roamer", batch(moveAtB), client.WithIdempotencyKey(key(moveAtB)))
		inflight <- err
	}()
	loc, err := c.Migrate(ctx, "roamer", baseB)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if loc != baseB {
		t.Fatalf("migrate location %q, want %s", loc, baseB)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("racing batch: %v", err)
	}
	// The client treats the racing batch as unacknowledged and retries
	// it with the same key; the new owner must replay it from migrated
	// idempotency memory, never double-charge.
	res, err := c.StepsNDJSON(ctx, "roamer", batch(moveAtB), client.WithIdempotencyKey(key(moveAtB)))
	if err != nil {
		t.Fatalf("post-migrate retry: %v", err)
	}
	if !res.Replayed || res.LastT != moveAtB*batchLen {
		t.Fatalf("post-migrate retry: %+v", res)
	}
	for b := moveAtB + 1; b <= batches; b++ {
		res, err := c.StepsNDJSON(ctx, "roamer", batch(b), client.WithIdempotencyKey(key(b)))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if res.Replayed || res.LastT != b*batchLen {
			t.Fatalf("batch %d: %+v", b, res)
		}
	}

	// Placement assertions: B owns the session, A redirects.
	cb, err := client.New(baseB)
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := cb.GetSession(ctx, "roamer"); err != nil || sum.T != batches*batchLen {
		t.Fatalf("session on target: %+v, %v", sum, err)
	}
	ca, err := client.New(baseA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.GetSession(ctx, "roamer"); !client.IsWrongShard(err) {
		t.Fatalf("old owner answered %v, want wrong_shard", err)
	}

	// --- control run: same session, never migrated, in process ---
	ctl := httptest.NewServer(service.NewAPI().Handler())
	defer ctl.Close()
	cc, err := client.New(ctl.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateSession(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= batches; b++ {
		if _, err := cc.StepsNDJSON(ctx, "roamer", batch(b)); err != nil {
			t.Fatalf("control batch %d: %v", b, err)
		}
	}

	// --- equality, bit for bit ---
	const totalSteps = batches * batchLen
	for u := 0; u < users; u++ {
		got, err := cb.TPLSeries(ctx, "roamer", u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cc.TPLSeries(ctx, "roamer", u)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != totalSteps || len(want) != totalSteps {
			t.Fatalf("user %d: series lengths %d/%d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d TPL[%d]: migrated %v != control %v", u, i, got[i], want[i])
			}
		}
	}
	gotRep, err := cb.Report(ctx, "roamer")
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := cc.Report(ctx, "roamer")
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != wantRep {
		t.Fatalf("report: migrated %+v != control %+v", gotRep, wantRep)
	}
	gotW, err := cb.WEvent(ctx, "roamer", 3)
	if err != nil {
		t.Fatal(err)
	}
	wantW, err := cc.WEvent(ctx, "roamer", 3)
	if err != nil {
		t.Fatal(err)
	}
	if gotW != wantW {
		t.Fatalf("wevent: migrated %+v != control %+v", gotW, wantW)
	}
	gotPub, err := cb.PublishedAll(ctx, "roamer")
	if err != nil {
		t.Fatal(err)
	}
	wantPub, err := cc.PublishedAll(ctx, "roamer")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPub) != totalSteps {
		t.Fatalf("published history %d steps", len(gotPub))
	}
	for i := range wantPub {
		for j := range wantPub[i].Published {
			if gotPub[i].Published[j] != wantPub[i].Published[j] {
				t.Fatalf("published[%d][%d]: migrated %v != control %v", i, j, gotPub[i].Published[j], wantPub[i].Published[j])
			}
		}
	}
}

// TestClusterSmoke is the end-to-end cluster exercise with real
// binaries: two shards and a router, creation through the router,
// SDK direct-to-shard ingest from the fetched topology, a migration,
// and a shard SIGKILL that must leave the router answering
// shard_unavailable for the dead shard's sessions while the surviving
// shard keeps serving.
func TestClusterSmoke(t *testing.T) {
	bin := buildServed(t)
	ctx := context.Background()

	shardA, baseA := startChild(t, bin, t.TempDir())
	shardB, baseB := startChild(t, bin, t.TempDir())
	_, routerURL := startRouter(t, bin, baseA, baseB)
	_ = shardA

	// Mirror the router's placement locally to pick names landing on
	// each shard deterministically.
	shards, err := cluster.ParseShards(baseA + "," + baseB)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.New(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	nameOn := func(addr string) string {
		for i := 0; i < 10000; i++ {
			name := fmt.Sprintf("smoke-%d", i)
			if topo.OwnerAddr(name) == addr {
				return name
			}
		}
		t.Fatal("no name hashes to shard")
		return ""
	}
	nameA, nameB := nameOn(baseA), nameOn(baseB)

	// Create both sessions through the router; each must land on its
	// ring owner.
	c, err := client.New(routerURL, client.WithShardRouting())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{nameA, nameB} {
		if _, err := c.CreateSession(ctx, client.SessionConfig{Name: name, Domain: 2, Users: 2, Seed: 1}); err != nil {
			t.Fatalf("create %s via router: %v", name, err)
		}
	}
	direct := func(base, name string) client.Summary {
		t.Helper()
		pc, err := client.New(base)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := pc.GetSession(ctx, name)
		if err != nil {
			t.Fatalf("session %s not on %s: %v", name, base, err)
		}
		return sum
	}
	direct(baseA, nameA)
	direct(baseB, nameB)

	// SDK ingest: the routing client fetched the topology from the
	// router and dials shards directly.
	if topoDoc, err := c.Topology(ctx); err != nil || len(topoDoc.Shards) != 2 {
		t.Fatalf("topology via router: %+v, %v", topoDoc, err)
	}
	for _, name := range []string{nameA, nameB} {
		for i := 0; i < 3; i++ {
			if _, err := c.Steps(ctx, name, []client.Step{{Values: []int{1, 0}, Eps: client.Eps(0.1)}}); err != nil {
				t.Fatalf("ingest %s: %v", name, err)
			}
		}
	}

	// Migrate the A-owned session to B through the router.
	if loc, err := c.Migrate(ctx, nameA, baseB); err != nil || loc != baseB {
		t.Fatalf("migrate via router: %q, %v", loc, err)
	}
	if sum := direct(baseB, nameA); sum.T != 3 {
		t.Fatalf("migrated session T=%d, want 3", sum.T)
	}
	if _, err := c.Steps(ctx, nameA, []client.Step{{Values: []int{0, 1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatalf("ingest after migrate: %v", err)
	}

	// Kill shard B. Requests for its sessions must answer
	// shard_unavailable at the router; shard A keeps serving. A fresh
	// session hashing to A can still be created and driven.
	if err := shardB.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = shardB.Process.Wait()

	// Via the router only (no learned direct dials): a plain client.
	rc, err := client.New(routerURL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = rc.GetSession(ctx, nameB)
		if client.IsShardUnavailable(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router answered %v for dead shard, want shard_unavailable", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fresh := nameOn(baseA) + "-post-kill"
	if topo.OwnerAddr(fresh) != baseA {
		// The suffix may move the hash; find a fresh A-owned name.
		for i := 0; ; i++ {
			fresh = fmt.Sprintf("post-kill-%d", i)
			if topo.OwnerAddr(fresh) == baseA {
				break
			}
		}
	}
	if _, err := rc.CreateSession(ctx, client.SessionConfig{Name: fresh, Domain: 2, Users: 1}); err != nil {
		t.Fatalf("create on surviving shard: %v", err)
	}
	if _, err := rc.Steps(ctx, fresh, []client.Step{{Values: []int{1}, Eps: client.Eps(0.1)}}); err != nil {
		t.Fatalf("ingest on surviving shard: %v", err)
	}
}
