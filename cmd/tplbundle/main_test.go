package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plugins/bundle"
)

// TestKeygenBuildVerify exercises the artifact pipeline end to end:
// generate keys, build a signed Fig. 7 fixture bundle, verify it, and
// reject it under the wrong key.
func TestKeygenBuildVerify(t *testing.T) {
	dir := t.TempDir()
	keys := filepath.Join(dir, "release")
	if err := keygen([]string{"-out", keys}); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "other")
	if err := keygen([]string{"-out", other}); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "bundle.json")
	if err := build([]string{"-fig7", "-key", keys + ".key", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := verify([]string{"-in", out, "-pub", keys + ".pub"}); err != nil {
		t.Fatal(err)
	}
	if err := verify([]string{"-in", out}); err != nil {
		t.Fatal(err) // content-hash-only check also passes
	}
	if err := verify([]string{"-in", out, "-pub", other + ".pub"}); err == nil {
		t.Fatal("bundle verified under the wrong key")
	}

	// The written artifact parses as a bundle with the fixture models.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Parse(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Models) != 2 || b.Models["road"].Backward == nil {
		t.Fatalf("fixture models %v", b.Models)
	}

	// A models file round-trips through build too: reuse the built
	// bundle's model block as the input file.
	modelsPath := filepath.Join(dir, "models.json")
	var shell struct {
		Models map[string]bundle.Model `json:"models"`
	}
	if err := json.Unmarshal(data, &shell); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(shell.Models)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelsPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "bundle2.json")
	if err := build([]string{"-models", modelsPath, "-out", out2}); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(out2)
	b2, err := bundle.Parse(data2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Revision != b.Revision {
		t.Fatalf("rebuilt revision %s, want %s", b2.Revision, b.Revision)
	}
	if b2.Signature != "" {
		t.Fatal("unsigned rebuild carries a signature")
	}
}
