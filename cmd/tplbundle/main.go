// Command tplbundle builds, signs, verifies and serves model bundles —
// the artifact side of tplserved's management plane (see
// internal/plugins/bundle). A bundle is a named set of adversary
// models (Markov transition matrices); its revision is the hex SHA-256
// of the canonical model encoding, optionally signed with Ed25519.
//
// Usage:
//
//	tplbundle keygen -out keys/release
//	tplbundle build -models models.json -key keys/release.key -out bundle.json
//	tplbundle build -fig7 -out bundle.json
//	tplbundle verify -in bundle.json -pub keys/release.pub
//	tplbundle serve -in bundle.json -addr :8345
//
// The models file is a JSON object mapping model names to
// {"backward": {"rows": [[...]]}, "forward": {"rows": [[...]]}}; -fig7
// instead emits the paper's Fig. 7 road-network chains as a ready-made
// fixture. serve watches the bundle file and republishes whenever its
// revision changes, so flipping the served revision is just
// overwriting the file — long-polling tplserved instances pick the
// change up immediately.
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/markov"
	"repro/internal/plugins/bundle"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "build":
		err = build(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tplbundle: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tplbundle: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tplbundle <command> [flags]

commands:
  keygen  generate an Ed25519 signing key pair (<out>.key, <out>.pub)
  build   build (and optionally sign) a bundle from a models file
  verify  check a bundle's content hash and signature
  serve   serve a bundle file over HTTP with ETag + long-poll support`)
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("out", "bundle", "output path prefix (writes <out>.key and <out>.pub)")
	fs.Parse(args)
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out+".key", []byte(hex.EncodeToString(priv)+"\n"), 0o600); err != nil {
		return err
	}
	if err := os.WriteFile(*out+".pub", []byte(hex.EncodeToString(pub)+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s.key (private) and %s.pub (public)\n", *out, *out)
	return nil
}

func build(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	modelsPath := fs.String("models", "", "models file: JSON object of name -> {backward, forward} chains")
	fig7 := fs.Bool("fig7", false, "use the paper's Fig. 7 road-network chains instead of -models")
	keyPath := fs.String("key", "", "hex Ed25519 private key file; omit for an unsigned bundle")
	out := fs.String("out", "", "output bundle file (default stdout)")
	fs.Parse(args)

	var models map[string]bundle.Model
	switch {
	case *fig7 && *modelsPath != "":
		return fmt.Errorf("-models and -fig7 are mutually exclusive")
	case *fig7:
		models = map[string]bundle.Model{
			"road":         {Backward: markov.Fig7Backward(), Forward: markov.Fig7Forward()},
			"independent2": {},
		}
	case *modelsPath != "":
		data, err := os.ReadFile(*modelsPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &models); err != nil {
			return fmt.Errorf("parsing %s: %w", *modelsPath, err)
		}
	default:
		return fmt.Errorf("build needs -models or -fig7")
	}

	var priv ed25519.PrivateKey
	if *keyPath != "" {
		var err error
		if priv, err = readPrivateKey(*keyPath); err != nil {
			return err
		}
	}
	b, err := bundle.Build(models, priv)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bundle revision %s (%d models, signed=%t)\n", b.Revision, len(b.Models), priv != nil)
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "bundle file to verify")
	pubPath := fs.String("pub", "", "hex Ed25519 public key file; omit to check the content hash only")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("verify needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var pub ed25519.PublicKey
	if *pubPath != "" {
		if pub, err = readPublicKey(*pubPath); err != nil {
			return err
		}
	}
	b, err := bundle.Parse(data, pub)
	if err != nil {
		return err
	}
	fmt.Printf("ok: revision %s, %d models, signed=%t\n", b.Revision, len(b.Models), b.Signature != "")
	return nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "bundle file to serve (rechecked every -reload; overwrite it to flip the revision)")
	addr := fs.String("addr", ":8345", "listen address")
	reload := fs.Duration("reload", time.Second, "how often the bundle file is rechecked for a new revision")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("serve needs -in")
	}
	srv := bundle.NewServer()
	publish := func() error {
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		// The served bundle's integrity is the pollers' concern
		// (signature checks happen client-side); the server only
		// requires a well-formed, hash-consistent file.
		b, err := bundle.Parse(data, nil)
		if err != nil {
			return err
		}
		if srv.Revision() != b.Revision {
			if err := srv.SetBundle(b); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "tplbundle: serving revision %s\n", b.Revision)
		}
		return nil
	}
	if err := publish(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		t := time.NewTicker(*reload)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := publish(); err != nil {
					fmt.Fprintf(os.Stderr, "tplbundle: reload: %v\n", err)
				}
			}
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tplbundle: listening on %s\n", *addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}

func readPrivateKey(path string) (ed25519.PrivateKey, error) {
	raw, err := readHexKey(path)
	if err != nil {
		return nil, err
	}
	if len(raw) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("%s: want %d key bytes, got %d", path, ed25519.PrivateKeySize, len(raw))
	}
	return ed25519.PrivateKey(raw), nil
}

func readPublicKey(path string) (ed25519.PublicKey, error) {
	raw, err := readHexKey(path)
	if err != nil {
		return nil, err
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%s: want %d key bytes, got %d", path, ed25519.PublicKeySize, len(raw))
	}
	return ed25519.PublicKey(raw), nil
}

func readHexKey(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("%s: not hex: %v", path, err)
	}
	return raw, nil
}
