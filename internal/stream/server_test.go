package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/release"
)

func twoUserModels() []AdversaryModel {
	return []AdversaryModel{
		{Backward: markov.Fig7Backward(), Forward: markov.Fig7Forward()},
		{}, // traditional DP adversary
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0, 1, []AdversaryModel{{}}, nil); err == nil {
		t.Error("domain 0 should fail")
	}
	if _, err := NewServer(2, 0, nil, nil); err == nil {
		t.Error("0 users should fail")
	}
	if _, err := NewServer(2, 2, []AdversaryModel{{}}, nil); err == nil {
		t.Error("model count mismatch should fail")
	}
	three, _ := markov.IdentityChain(3)
	if _, err := NewServer(2, 1, []AdversaryModel{{Backward: three}}, nil); err == nil {
		t.Error("chain/domain mismatch should fail")
	}
	if _, err := NewServer(3, 1, []AdversaryModel{{Forward: three}}, nil); err != nil {
		t.Errorf("matching chain rejected: %v", err)
	}
}

func TestCollectPublishesHistogram(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Collect([]int{0, 1}, 10) // tiny noise at eps=10
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("histogram length %d", len(out))
	}
	if math.Abs(out[0]-1) > 3 || math.Abs(out[1]-1) > 3 {
		t.Errorf("noisy histogram %v implausibly far from (1,1)", out)
	}
	if s.T() != 1 {
		t.Errorf("T = %d", s.T())
	}
	got, err := s.Published(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != out[0] {
		t.Error("Published(1) mismatch")
	}
	if _, err := s.Published(2); err == nil {
		t.Error("future time should fail")
	}
}

func TestCollectValidation(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect([]int{0}, 1); !errors.Is(err, ErrDomainMismatch) {
		t.Errorf("err = %v, want ErrDomainMismatch", err)
	}
	if _, err := s.Collect([]int{0, 5}, 1); err == nil {
		t.Error("out-of-domain value should fail")
	}
	if _, err := s.Collect([]int{0, 1}, 0); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestServerLeakageMatchesCore(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := []float64{0.1, 0.2, 0.1}
	for _, e := range eps {
		if _, err := s.Collect([]int{0, 1}, e); err != nil {
			t.Fatal(err)
		}
	}
	qb := core.NewQuantifier(markov.Fig7Backward())
	qf := core.NewQuantifier(markov.Fig7Forward())
	tpl, err := core.TPLSeries(qb, qf, eps)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 1; tm <= 3; tm++ {
		got, err := s.UserTPL(0, tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tpl[tm-1]) > 1e-12 {
			t.Errorf("user 0 TPL(%d) = %v, want %v", tm, got, tpl[tm-1])
		}
		// The uncorrelated user leaks exactly eps_t.
		got1, err := s.UserTPL(1, tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got1-eps[tm-1]) > 1e-12 {
			t.Errorf("user 1 TPL(%d) = %v, want %v", tm, got1, eps[tm-1])
		}
	}
	if _, err := s.UserTPL(5, 1); err == nil {
		t.Error("bad user should fail")
	}
}

func TestServerReport(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if empty.T != 0 {
		t.Error("empty report should have T=0")
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Collect([]int{0, 1}, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.T != 5 {
		t.Errorf("T = %d", rep.T)
	}
	if rep.WorstUser != 0 {
		t.Errorf("worst user = %d, want the correlated one", rep.WorstUser)
	}
	if rep.EventLevelAlpha <= rep.NominalEventLevel {
		t.Errorf("correlated alpha %v should exceed nominal %v", rep.EventLevelAlpha, rep.NominalEventLevel)
	}
	if math.Abs(rep.UserLevel-0.5) > 1e-12 {
		t.Errorf("user level = %v, want 0.5", rep.UserLevel)
	}
	if rep.NominalEventLevel != 0.1 {
		t.Errorf("nominal = %v", rep.NominalEventLevel)
	}
}

func TestServerWEvent(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Collect([]int{0, 1}, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	// Uncorrelated user: w-event equals w*eps.
	v, err := s.WEvent(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.2) > 1e-12 {
		t.Errorf("uncorrelated 2-event leakage = %v, want 0.2", v)
	}
	// Correlated user leaks more.
	v0, err := s.WEvent(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v0 <= v {
		t.Errorf("correlated 2-event leakage %v should exceed %v", v0, v)
	}
	if _, err := s.WEvent(9, 1); err == nil {
		t.Error("bad user should fail")
	}
}

func TestSetNoiseGeometric(t *testing.T) {
	s, err := NewServer(3, 2, []AdversaryModel{{}, {}}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetNoise(release.GeometricNoise); err != nil {
		t.Fatal(err)
	}
	out, err := s.Collect([]int{0, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != math.Trunc(v) {
			t.Errorf("cell %d: geometric release %v not integral", i, v)
		}
	}
	// Fractional sensitivity conflicts with geometric noise, in either
	// setter order: SetSensitivity must re-validate against the active
	// noise kind (regression: it used to silently break the geometric
	// path when called after SetNoise).
	if err := s.SetSensitivity(1.5); err == nil {
		t.Error("fractional sensitivity should be rejected while geometric noise is active")
	}
	if err := s.SetNoise(release.LaplaceNoise); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSensitivity(1.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNoise(release.GeometricNoise); err == nil {
		t.Error("fractional sensitivity should reject geometric noise")
	}
	if err := s.SetSensitivity(1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNoise(release.Noise(42)); err == nil {
		t.Error("unknown noise kind should fail")
	}
	if err := s.SetNoise(release.LaplaceNoise); err != nil {
		t.Fatal(err)
	}
}

func TestSetSensitivity(t *testing.T) {
	s, err := NewServer(2, 1, []AdversaryModel{{}}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSensitivity(2); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -1, math.NaN()} {
		if err := s.SetSensitivity(bad); err == nil {
			t.Errorf("SetSensitivity(%v) should fail", bad)
		}
	}
}

func TestServerBudgetsCopy(t *testing.T) {
	s, err := NewServer(2, 1, []AdversaryModel{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect([]int{1}, 0.3); err != nil {
		t.Fatal(err)
	}
	b := s.Budgets()
	b[0] = 9
	if s.Budgets()[0] != 0.3 {
		t.Error("Budgets exposes internal state")
	}
}
