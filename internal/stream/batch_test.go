package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/release"
)

// batchTestServer builds a small two-cohort server with a deterministic
// seed so noise streams can be compared bit for bit.
func batchTestServer(t *testing.T, seed int64) *Server {
	t.Helper()
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{
		{Backward: chain, Forward: chain},
		{Backward: chain, Forward: chain},
		{}, {}, {},
	}
	srv, err := NewServer(2, 5, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNoiseSeed(seed)
	return srv
}

func eqF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCollectBatchMatchesSequential drives the same workload through
// CollectBatch and through per-step Collect on identically seeded
// servers: every published histogram, budget, and leakage answer must
// be bit-identical — batching is transport, not semantics.
func TestCollectBatchMatchesSequential(t *testing.T) {
	const steps = 12
	values := func(i int) []int {
		v := make([]int, 5)
		for u := range v {
			v[u] = (i*3 + u) % 2
		}
		return v
	}
	eps := func(i int) float64 { return 0.1 + 0.02*float64(i%4) }

	batched := batchTestServer(t, 99)
	var batch []BatchStep
	for i := 0; i < steps; i++ {
		e := eps(i)
		batch = append(batch, BatchStep{Values: values(i), Eps: &e})
	}
	results, err := batched.CollectBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != steps {
		t.Fatalf("batch returned %d results, want %d", len(results), steps)
	}

	sequential := batchTestServer(t, 99)
	for i := 0; i < steps; i++ {
		noisy, err := sequential.Collect(values(i), eps(i))
		if err != nil {
			t.Fatal(err)
		}
		r := results[i]
		if r.T != i+1 || r.Eps != eps(i) || r.Planned {
			t.Fatalf("result %d = %+v", i, r)
		}
		if !eqF64(noisy, r.Published) {
			t.Fatalf("step %d: batch published %v, sequential %v", i+1, r.Published, noisy)
		}
	}
	for u := 0; u < 5; u++ {
		a, err := batched.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sequential.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		if !eqF64(a, b) {
			t.Fatalf("user %d TPL series diverge: %v vs %v", u, a, b)
		}
	}
	if batched.NoiseState() != sequential.NoiseState() {
		t.Fatalf("noise positions diverge: %+v vs %+v", batched.NoiseState(), sequential.NoiseState())
	}
}

// TestCollectBatchCountsEquivalent checks the pre-aggregated wire
// shape: a counts step must account and publish exactly as the values
// step it summarizes.
func TestCollectBatchCountsEquivalent(t *testing.T) {
	byValues := batchTestServer(t, 7)
	byCounts := batchTestServer(t, 7)
	values := []int{0, 1, 1, 0, 1}
	counts := []int{2, 3}
	e := 0.2
	rv, err := byValues.CollectBatch([]BatchStep{{Values: values, Eps: &e}})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := byCounts.CollectBatch([]BatchStep{{Counts: counts, Eps: &e}})
	if err != nil {
		t.Fatal(err)
	}
	if !eqF64(rv[0].Published, rc[0].Published) {
		t.Fatalf("published diverge: %v vs %v", rv[0].Published, rc[0].Published)
	}
}

// TestCollectBatchAtomic puts the invalid step in the middle: the whole
// batch must be rejected with no step published and no leakage accrued.
func TestCollectBatchAtomic(t *testing.T) {
	srv := batchTestServer(t, 1)
	good := 0.1
	bad := -1.0
	cases := []struct {
		name  string
		steps []BatchStep
	}{
		{"bad eps", []BatchStep{
			{Values: []int{0, 0, 0, 0, 0}, Eps: &good},
			{Values: []int{0, 0, 0, 0, 0}, Eps: &bad},
		}},
		{"wrong population", []BatchStep{
			{Values: []int{0, 0, 0, 0, 0}, Eps: &good},
			{Values: []int{0}, Eps: &good},
		}},
		{"value out of domain", []BatchStep{
			{Values: []int{0, 0, 0, 0, 0}, Eps: &good},
			{Values: []int{0, 0, 0, 0, 9}, Eps: &good},
		}},
		{"both values and counts", []BatchStep{
			{Values: []int{0, 0, 0, 0, 0}, Counts: []int{5, 0}, Eps: &good},
		}},
		{"neither values nor counts", []BatchStep{
			{Eps: &good},
		}},
		{"counts wrong sum", []BatchStep{
			{Counts: []int{1, 1}, Eps: &good},
		}},
		{"counts negative", []BatchStep{
			{Counts: []int{6, -1}, Eps: &good},
		}},
		{"planned without plan", []BatchStep{
			{Values: []int{0, 0, 0, 0, 0}, Eps: &good},
			{Values: []int{0, 0, 0, 0, 0}},
		}},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := srv.NoiseState()
			if _, err := srv.CollectBatch(tc.steps); err == nil {
				t.Fatal("batch accepted")
			}
			if srv.T() != 0 {
				t.Fatalf("rejected batch advanced the server to t=%d", srv.T())
			}
			if srv.NoiseState() != before {
				t.Fatal("rejected batch consumed noise draws")
			}
		})
	}
}

// TestCollectBatchPlanMix attaches a finite quantified plan and mixes
// explicit and planned steps in one batch: planned steps must draw the
// same budgets the equivalent CollectPlanned sequence would, and a
// batch reaching past the horizon must be rejected whole.
func TestCollectBatchPlanMix(t *testing.T) {
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	newPlanned := func() *Server {
		srv := batchTestServer(t, 5)
		plan, err := release.Quantified(chain, chain, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetPlan(plan)
		return srv
	}
	values := []int{0, 1, 0, 1, 0}
	e := 0.05

	batched := newPlanned()
	results, err := batched.CollectBatch([]BatchStep{
		{Values: values},
		{Values: values, Eps: &e},
		{Values: values},
		{Values: values},
	})
	if err != nil {
		t.Fatal(err)
	}
	sequential := newPlanned()
	for i := 0; i < 4; i++ {
		var err error
		if i == 1 {
			_, err = sequential.Collect(values, e)
		} else {
			_, err = sequential.CollectPlanned(values)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	wantBudgets := sequential.Budgets()
	for i, r := range results {
		if r.Eps != wantBudgets[i] {
			t.Fatalf("step %d: batch eps %v, sequential %v", i+1, r.Eps, wantBudgets[i])
		}
		if wantPlanned := i != 1; r.Planned != wantPlanned {
			t.Fatalf("step %d: planned = %v, want %v", i+1, r.Planned, wantPlanned)
		}
	}

	// 4 steps are in; the plan (horizon 6, attached at t=0) has 2 left.
	// A 3-planned-step batch must fail whole on the horizon.
	if _, err := batched.CollectBatch([]BatchStep{{Values: values}, {Values: values}, {Values: values}}); !errors.Is(err, release.ErrHorizonExceeded) {
		t.Fatalf("past-horizon batch: err = %v, want ErrHorizonExceeded", err)
	}
	if batched.T() != 4 {
		t.Fatalf("failed batch advanced server to t=%d, want 4", batched.T())
	}
}

// TestLeakageAt checks the watch digest against first principles:
// TPL = BPL + FPL - eps at the worst cohort, and agreement with
// Report's event-level alpha at the final step's running maximum.
func TestLeakageAt(t *testing.T) {
	srv := batchTestServer(t, 3)
	e := 0.1
	var batch []BatchStep
	for i := 0; i < 8; i++ {
		batch = append(batch, BatchStep{Values: []int{0, 1, 0, 1, 0}, Eps: &e})
	}
	if _, err := srv.CollectBatch(batch); err != nil {
		t.Fatal(err)
	}
	worst := math.Inf(-1)
	for tt := 1; tt <= 8; tt++ {
		p, err := srv.LeakageAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if p.T != tt || p.Eps != e {
			t.Fatalf("point %+v", p)
		}
		if got := p.BPL + p.FPL - p.Eps; math.Abs(got-p.TPL) > 1e-12 {
			t.Fatalf("t=%d: TPL %v != BPL+FPL-eps %v", tt, p.TPL, got)
		}
		want, err := srv.UserTPL(p.WorstUser, tt)
		if err != nil {
			t.Fatal(err)
		}
		if p.TPL != want {
			t.Fatalf("t=%d: digest TPL %v != worst user's TPL %v", tt, p.TPL, want)
		}
		if p.TPL > worst {
			worst = p.TPL
		}
	}
	rep, err := srv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if worst != rep.EventLevelAlpha {
		t.Fatalf("running max %v != report alpha %v", worst, rep.EventLevelAlpha)
	}
	if _, err := srv.LeakageAt(0); err == nil {
		t.Fatal("LeakageAt(0) accepted")
	}
	if _, err := srv.LeakageAt(9); err == nil {
		t.Fatal("LeakageAt(9) accepted")
	}
}

// TestCohortLeakages checks the per-cohort digest (the decision-log
// payload) against direct per-user queries.
func TestCohortLeakages(t *testing.T) {
	srv := batchTestServer(t, 5)
	e := 0.1
	var batch []BatchStep
	for i := 0; i < 4; i++ {
		batch = append(batch, BatchStep{Values: []int{0, 1, 0, 1, 0}, Eps: &e})
	}
	if _, err := srv.CollectBatch(batch); err != nil {
		t.Fatal(err)
	}
	leaks, err := srv.CohortLeakages(4)
	if err != nil {
		t.Fatal(err)
	}
	// batchTestServer's five users share two distinct models, so the
	// server folds them into two cohorts.
	if len(leaks) != 2 {
		t.Fatalf("%d cohorts, want 2", len(leaks))
	}
	for i, l := range leaks {
		if l.Cohort != i {
			t.Fatalf("cohort %d labelled %d", i, l.Cohort)
		}
		want, err := srv.UserTPL(l.FirstUser, 4)
		if err != nil {
			t.Fatal(err)
		}
		if l.TPL != want {
			t.Fatalf("cohort %d: TPL %v != user %d's %v", i, l.TPL, l.FirstUser, want)
		}
		if got := l.BPL + l.FPL - e; math.Abs(got-l.TPL) > 1e-12 {
			t.Fatalf("cohort %d: TPL %v != BPL+FPL-eps %v", i, l.TPL, got)
		}
	}
	if _, err := srv.CohortLeakages(0); err == nil {
		t.Fatal("CohortLeakages(0) accepted")
	}
	if _, err := srv.CohortLeakages(5); err == nil {
		t.Fatal("CohortLeakages(5) accepted")
	}
}

// TestUserTPLRange checks pagination slices against the full series.
func TestUserTPLRange(t *testing.T) {
	srv := batchTestServer(t, 4)
	e := 0.15
	var batch []BatchStep
	for i := 0; i < 10; i++ {
		batch = append(batch, BatchStep{Values: []int{1, 0, 1, 0, 1}, Eps: &e})
	}
	if _, err := srv.CollectBatch(batch); err != nil {
		t.Fatal(err)
	}
	full, err := srv.UserTPLSeries(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]int{{1, 10}, {1, 1}, {4, 7}, {10, 10}} {
		got, err := srv.UserTPLRange(0, rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		if !eqF64(got, full[rg[0]-1:rg[1]]) {
			t.Fatalf("range %v: %v, want %v", rg, got, full[rg[0]-1:rg[1]])
		}
	}
	for _, rg := range [][2]int{{0, 3}, {5, 11}, {7, 6}} {
		if _, err := srv.UserTPLRange(0, rg[0], rg[1]); err == nil {
			t.Fatalf("range %v accepted", rg)
		}
	}
	if _, err := srv.UserTPLRange(99, 1, 2); err == nil {
		t.Fatal("bad user accepted")
	}
}
