package stream

import (
	"errors"

	"repro/internal/release"
)

// ErrNoPlan is returned by CollectPlanned when no release plan has been
// attached to the server.
var ErrNoPlan = errors.New("stream: no release plan attached; call SetPlan or use Collect with an explicit budget")

// SetPlan attaches a budget plan to the server: subsequent
// CollectPlanned calls draw their per-step budget from the plan instead
// of taking an explicit epsilon. Passing nil detaches the plan.
//
// The plan's time index starts at the server's *next* step, so a plan
// can be attached mid-stream (e.g. after an initial exploratory phase
// released with explicit budgets).
func (s *Server) SetPlan(plan release.Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = plan
	s.planBase = s.budgets.Len()
}

// CollectPlanned ingests one time step using the attached plan's budget
// for the current step. It fails with release.ErrHorizonExceeded once a
// finite plan is exhausted — the caller must attach a new plan (or fall
// back to explicit budgets) to continue, which keeps budget exhaustion
// an explicit, auditable event.
func (s *Server) CollectPlanned(values []int) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var p preparedStep
	if err := s.prepareLocked(&p, BatchStep{Values: values}, 0); err != nil {
		return nil, err
	}
	return s.applyLocked(&p).Published, nil
}

// PlanStep returns the 1-based step the next CollectPlanned will use
// from the attached plan, or 0 when no plan is attached.
func (s *Server) PlanStep() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.plan == nil {
		return 0
	}
	return s.budgets.Len() - s.planBase + 1
}

// PlanHorizon returns the attached plan's finite horizon in steps, or
// 0 when no plan is attached or the plan is horizonless. Together with
// PlanStep it is the budget-pressure signal the status plugin reports:
// plan_step/horizon is how much of the planned budget is spent.
func (s *Server) PlanHorizon() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.plan == nil {
		return 0
	}
	return s.plan.Horizon()
}

// HasPlan reports whether a budget plan is attached.
func (s *Server) HasPlan() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.plan != nil
}
