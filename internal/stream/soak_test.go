package stream

import (
	"testing"

	"repro/internal/chunked"
	"repro/internal/markov"
)

// TestSoakChunkedHistoryMillionSteps is the regression test for the
// chunked history storage: a single session ingesting soakSteps
// releases (1M+ without -race) must never re-copy settled history —
// the whole point of replacing the doubling slices — and every
// paginated read crossing chunk boundaries must agree bit-for-bit
// with the per-step accessors it is documented to batch.
func TestSoakChunkedHistoryMillionSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{
		{Backward: chain, Forward: chain},
		{Backward: chain, Forward: chain},
	}
	s, err := NewServer(2, 2, models, nil)
	if err != nil {
		t.Fatal(err)
	}

	copiesBefore := chunked.ElementCopies()

	const batch = 4096
	eps := 0.1
	steps := make([]BatchStep, batch)
	var firstBudgetAddr *float64
	var firstPublishedAddr *[]float64
	for done := 0; done < soakSteps; {
		n := soakSteps - done
		if n > batch {
			n = batch
		}
		for i := 0; i < n; i++ {
			e := eps
			steps[i] = BatchStep{Counts: []int{1, 1}, Eps: &e}
		}
		if _, err := s.CollectBatch(steps[:n]); err != nil {
			t.Fatalf("batch at %d steps: %v", done, err)
		}
		if done == 0 {
			// Element addresses inside the first chunk must survive the
			// rest of the run: appends may grow the pointer spine but
			// never move settled elements.
			firstBudgetAddr = &s.budgets.Chunk(0)[0]
			firstPublishedAddr = &s.published.Chunk(0)[0]
		}
		done += n
	}
	if got := s.T(); got != soakSteps {
		t.Fatalf("server at T=%d, want %d", got, soakSteps)
	}

	if d := chunked.ElementCopies() - copiesBefore; d != 0 {
		t.Fatalf("chunked storage re-copied %d elements during the soak; appends must never move settled history", d)
	}
	if &s.budgets.Chunk(0)[0] != firstBudgetAddr {
		t.Fatal("budgets chunk 0 moved during the soak")
	}
	if &s.published.Chunk(0)[0] != firstPublishedAddr {
		t.Fatal("published chunk 0 moved during the soak")
	}

	// Budget pagination: PublishedRange pages concatenated over the full
	// run must reproduce Budgets() exactly. Page size 1000 does not
	// divide the chunk size, so pages straddle every chunk boundary.
	all := s.Budgets()
	if len(all) != soakSteps {
		t.Fatalf("Budgets() returned %d entries, want %d", len(all), soakSteps)
	}
	const page = 1000
	at := 0
	for from := 1; from <= soakSteps; from += page {
		to := from + page - 1
		if to > soakSteps {
			to = soakSteps
		}
		got, _, err := s.PublishedRange(from, to)
		if err != nil {
			t.Fatalf("PublishedRange(%d,%d): %v", from, to, err)
		}
		for i, v := range got {
			if v != all[at+i] {
				t.Fatalf("budget at t=%d: paged %v != full %v", at+i+1, v, all[at+i])
			}
		}
		at += len(got)
	}
	if at != soakSteps {
		t.Fatalf("pages covered %d steps, want %d", at, soakSteps)
	}

	// Histogram pagination at chunk boundaries: the paged read must
	// agree with per-step Published(t) exactly where the storage
	// switches chunks.
	for _, boundary := range []int{chunked.Size, 2 * chunked.Size, 3 * chunked.Size} {
		from, to := boundary-2, boundary+3
		epsPage, hists, err := s.PublishedRange(from, to)
		if err != nil {
			t.Fatalf("PublishedRange(%d,%d): %v", from, to, err)
		}
		for i := range hists {
			tt := from + i
			single, err := s.Published(tt)
			if err != nil {
				t.Fatalf("Published(%d): %v", tt, err)
			}
			if len(single) != len(hists[i]) {
				t.Fatalf("histogram at t=%d: paged len %d != single len %d", tt, len(hists[i]), len(single))
			}
			for j := range single {
				if single[j] != hists[i][j] {
					t.Fatalf("histogram at t=%d bin %d: paged %v != single %v", tt, j, hists[i][j], single[j])
				}
			}
			b, err := s.Budget(tt)
			if err != nil {
				t.Fatalf("Budget(%d): %v", tt, err)
			}
			if b != epsPage[i] {
				t.Fatalf("budget at t=%d: paged %v != single %v", tt, epsPage[i], b)
			}
		}
	}

	// TPL pagination: UserTPLRange pages concatenated must reproduce
	// UserTPLSeries bit-for-bit across every chunk boundary.
	series, err := s.UserTPLSeries(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != soakSteps {
		t.Fatalf("UserTPLSeries returned %d points, want %d", len(series), soakSteps)
	}
	at = 0
	for from := 1; from <= soakSteps; from += page {
		to := from + page - 1
		if to > soakSteps {
			to = soakSteps
		}
		got, err := s.UserTPLRange(0, from, to)
		if err != nil {
			t.Fatalf("UserTPLRange(%d,%d): %v", from, to, err)
		}
		for i, v := range got {
			if v != series[at+i] {
				t.Fatalf("TPL at t=%d: paged %v != series %v", at+i+1, v, series[at+i])
			}
		}
		at += len(got)
	}
}
