//go:build race

package stream

import "repro/internal/chunked"

// soakSteps under the race detector: every memory access is
// instrumented, so the million-step walk is cut to a few chunks. Three
// boundary crossings still exercise everything the full run does —
// tail-chunk appends, spine growth, cross-chunk pagination — just not
// at volume.
const soakSteps = 3*chunked.Size + 37
