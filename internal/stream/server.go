// Package stream implements the continuous-data-release substrate of the
// paper's problem setting (Section II-C): a trusted server collects each
// user's value into a database D^t at every time step and publishes a
// differentially private aggregate r^t, while tracking the temporal
// privacy leakage of everything published so far against a registry of
// adversaries with per-user temporal correlations.
//
// It glues together mechanism (the Laplace primitives), core (the TPL
// accountants) and release (the budget plans) into the end-to-end
// pipeline of Fig. 1.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/mechanism"
	"repro/internal/release"
)

// ErrDomainMismatch is returned when a collected snapshot disagrees with
// the server's configured domain or user count.
var ErrDomainMismatch = errors.New("stream: snapshot does not match server configuration")

// AdversaryModel describes the temporal correlations one adversary_T is
// assumed to know about a user (Definition 4). Either chain may be nil.
type AdversaryModel struct {
	Backward *markov.Chain // P^B_i, Pr(l_{t-1} | l_t)
	Forward  *markov.Chain // P^F_i, Pr(l_t | l_{t-1})
}

// Server is the trusted aggregator. It publishes a noisy histogram per
// time step and maintains one TPL accountant per registered user.
type Server struct {
	domain      int
	users       int
	sensitivity float64
	rng         *rand.Rand

	accountants []*core.Accountant // one per user
	published   [][]float64        // r^1, r^2, ... (noisy histograms)
	budgets     []float64          // eps_t actually spent

	plan     release.Plan // optional budget plan for CollectPlanned
	planBase int          // number of steps already taken when the plan was attached

	noise release.Noise // perturbation primitive; Laplace by default
}

// NewServer creates a release server over the given value domain and
// user population. models must contain one adversary model per user; a
// user with a nil-chains model corresponds to the traditional DP
// adversary. rng may be nil for a deterministic default.
func NewServer(domain, users int, models []AdversaryModel, rng *rand.Rand) (*Server, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("stream: domain must be positive, got %d", domain)
	}
	if users <= 0 {
		return nil, fmt.Errorf("stream: need at least one user, got %d", users)
	}
	if len(models) != users {
		return nil, fmt.Errorf("stream: %d adversary models for %d users", len(models), users)
	}
	for i, m := range models {
		if m.Backward != nil && m.Backward.N() != domain {
			return nil, fmt.Errorf("stream: user %d backward chain has %d states, domain is %d", i, m.Backward.N(), domain)
		}
		if m.Forward != nil && m.Forward.N() != domain {
			return nil, fmt.Errorf("stream: user %d forward chain has %d states, domain is %d", i, m.Forward.N(), domain)
		}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	s := &Server{
		domain:      domain,
		users:       users,
		sensitivity: mechanism.CountSensitivity,
		rng:         rng,
	}
	s.accountants = make([]*core.Accountant, users)
	for i, m := range models {
		s.accountants[i] = core.NewAccountant(m.Backward, m.Forward)
	}
	return s, nil
}

// SetSensitivity overrides the query sensitivity (default: 1, the
// paper's per-count convention). Use mechanism.HistogramL1Sensitivity
// for the strict joint-histogram calibration.
func (s *Server) SetSensitivity(delta float64) error {
	if delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("stream: sensitivity must be finite and positive, got %v", delta)
	}
	s.sensitivity = delta
	return nil
}

// SetNoise selects the perturbation primitive (default Laplace).
// Geometric noise requires the sensitivity to be integral.
func (s *Server) SetNoise(noise release.Noise) error {
	switch noise {
	case release.LaplaceNoise:
	case release.GeometricNoise:
		if s.sensitivity != math.Trunc(s.sensitivity) {
			return fmt.Errorf("stream: geometric noise needs integral sensitivity, have %v", s.sensitivity)
		}
	default:
		return fmt.Errorf("stream: unknown noise kind %d", int(noise))
	}
	s.noise = noise
	return nil
}

// Collect ingests the database of one time step and publishes its noisy
// histogram under an eps-DP Laplace mechanism, updating every user's
// leakage accountant. It returns the published histogram.
func (s *Server) Collect(values []int, eps float64) ([]float64, error) {
	if len(values) != s.users {
		return nil, fmt.Errorf("%w: %d values for %d users", ErrDomainMismatch, len(values), s.users)
	}
	snap, err := mechanism.NewSnapshot(s.domain, values)
	if err != nil {
		return nil, err
	}
	var noisy []float64
	switch s.noise {
	case release.GeometricNoise:
		geo, err := mechanism.NewGeometric(eps, int(s.sensitivity), s.rng)
		if err != nil {
			return nil, err
		}
		ints := geo.ReleaseCounts(snap.Histogram())
		noisy = make([]float64, len(ints))
		for i, v := range ints {
			noisy[i] = float64(v)
		}
	default:
		lap, err := mechanism.NewLaplace(eps, s.sensitivity, s.rng)
		if err != nil {
			return nil, err
		}
		noisy = lap.ReleaseCounts(snap.Histogram())
	}
	for _, acc := range s.accountants {
		if _, err := acc.Observe(eps); err != nil {
			return nil, err
		}
	}
	s.published = append(s.published, noisy)
	s.budgets = append(s.budgets, eps)
	return noisy, nil
}

// T returns the number of time steps published so far.
func (s *Server) T() int { return len(s.published) }

// Published returns the noisy histogram released at 1-based time t.
func (s *Server) Published(t int) ([]float64, error) {
	if t < 1 || t > len(s.published) {
		return nil, fmt.Errorf("stream: time %d out of range [1,%d]", t, len(s.published))
	}
	return append([]float64(nil), s.published[t-1]...), nil
}

// Budgets returns a copy of the per-step budgets spent so far.
func (s *Server) Budgets() []float64 { return append([]float64(nil), s.budgets...) }

// UserTPL returns user u's temporal privacy leakage at 1-based time t.
func (s *Server) UserTPL(u, t int) (float64, error) {
	if u < 0 || u >= s.users {
		return 0, fmt.Errorf("stream: user %d out of range [0,%d)", u, s.users)
	}
	return s.accountants[u].TPL(t)
}

// Report summarizes the privacy guarantee of everything published so
// far, per Definition 8 and Table II.
type Report struct {
	T int
	// EventLevelAlpha is the maximum over users and time points of the
	// temporal privacy leakage: the alpha of the overall alpha-DP_T
	// guarantee (Definition 8 takes the max over all users).
	EventLevelAlpha float64
	// WorstUser is the user attaining EventLevelAlpha.
	WorstUser int
	// UserLevel is the user-level leakage (Corollary 1): the plain sum
	// of the budgets, identical for all users.
	UserLevel float64
	// NominalEventLevel is the per-step guarantee a correlation-unaware
	// analysis would claim: the maximum single-step budget.
	NominalEventLevel float64
}

// Report computes the current privacy guarantee summary.
func (s *Server) Report() (*Report, error) {
	if len(s.budgets) == 0 {
		return &Report{}, nil
	}
	r := &Report{T: len(s.budgets), UserLevel: core.UserLevelTPL(s.budgets)}
	for _, e := range s.budgets {
		if e > r.NominalEventLevel {
			r.NominalEventLevel = e
		}
	}
	r.EventLevelAlpha = math.Inf(-1)
	for u, acc := range s.accountants {
		v, err := acc.MaxTPL()
		if err != nil {
			return nil, err
		}
		if v > r.EventLevelAlpha {
			r.EventLevelAlpha = v
			r.WorstUser = u
		}
	}
	return r, nil
}

// WEvent returns the worst leakage of any w-length window for user u
// (Theorem 2 / Table II middle row).
func (s *Server) WEvent(u, w int) (float64, error) {
	if u < 0 || u >= s.users {
		return 0, fmt.Errorf("stream: user %d out of range [0,%d)", u, s.users)
	}
	return s.accountants[u].WEvent(w)
}
