// Package stream implements the continuous-data-release substrate of the
// paper's problem setting (Section II-C): a trusted server collects each
// user's value into a database D^t at every time step and publishes a
// differentially private aggregate r^t, while tracking the temporal
// privacy leakage of everything published so far against a registry of
// adversaries with per-user temporal correlations.
//
// It glues together mechanism (the Laplace primitives), core (the TPL
// accountants) and release (the budget plans) into the end-to-end
// pipeline of Fig. 1.
//
// # Cohort-sharded accounting
//
// Temporal privacy leakage depends only on the adversary's correlation
// model and the budget sequence, not on the user's identity, so users
// declaring identical adversary models provably accrue identical
// leakage. The server exploits this: users are deduplicated into
// cohorts keyed by model content, each cohort shares one accountant,
// and a step costs K accountant updates (K = distinct models, fanned
// out over workers) instead of N (the population). A million-user
// session with a handful of model classes accounts a step in
// microseconds.
//
// # Concurrency
//
// A Server is safe for concurrent use: Collect and the other mutators
// take a write lock, while the read-side accessors (Published, Budgets,
// UserTPL, WEvent, Report, T, PlanStep) may run concurrently with each
// other and block only for the duration of a collection. Collections
// themselves serialize — the step sequence is the unit of accounting,
// so this is semantic, not incidental.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chunked"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/mechanism"
	"repro/internal/release"
)

// ErrDomainMismatch is returned when a collected snapshot disagrees with
// the server's configured domain or user count.
var ErrDomainMismatch = errors.New("stream: snapshot does not match server configuration")

// AdversaryModel describes the temporal correlations one adversary_T is
// assumed to know about a user (Definition 4). Either chain may be nil.
type AdversaryModel struct {
	Backward *markov.Chain // P^B_i, Pr(l_{t-1} | l_t)
	Forward  *markov.Chain // P^F_i, Pr(l_t | l_{t-1})
}

// cohort is one equivalence class of users under adversary-model
// content equality. All members share the accountant; mu guards the
// accountant's lazily-cached forward series so concurrent readers of
// the same cohort do not race (Collect holds the server write lock, so
// it never contends with readers here). Only the smallest member id is
// retained — members resolve through Server.userCohort, so keeping the
// full list would cost O(N) for one int of information.
type cohort struct {
	mu        sync.Mutex
	acc       *core.Accountant
	firstUser int // smallest member user id
	// backward, forward retain the adversary model's chains (shared
	// pointers, one per cohort not per user) so Snapshot can serialize
	// the model content — the compiled engines are re-derived from it on
	// restore rather than serialized.
	backward, forward *markov.Chain
}

// Server is the trusted aggregator. It publishes a noisy histogram per
// time step and maintains one TPL accountant per cohort of users with
// identical adversary models.
type Server struct {
	domain  int
	users   int
	workers int // observe fan-out; 0 = GOMAXPROCS

	mu          sync.RWMutex
	sensitivity float64
	rng         *rand.Rand
	// Noise-RNG seam (see noise.go): when the source is tracked,
	// noiseSrc counts draws so snapshots can record the stream position;
	// noiseSeed/noiseProvenance say whether and how it can be restored.
	noiseSrc        *countingSource
	noiseSeed       int64
	noiseProvenance string
	cohorts         []*cohort
	userCohort      []int // user id -> index into cohorts
	// published and budgets are the session-lifetime release history;
	// chunked storage keeps the per-step append free of history
	// memmove (see internal/chunked).
	published chunked.Log[[]float64] // r^1, r^2, ... (noisy histograms)
	budgets   chunked.Log[float64]   // eps_t actually spent

	plan     release.Plan // optional budget plan for CollectPlanned
	planBase int          // number of steps already taken when the plan was attached

	noise release.Noise // perturbation primitive; Laplace by default

	// Releaser memo (see releaserLocked): the last-built noise mechanism
	// and the parameters it was built for. relFn nil means no memo.
	relFn    func(dst []float64, counts []int) []float64
	relEps   float64
	relSens  float64
	relNoise release.Noise

	// obsNs estimates one accountant Observe in nanoseconds (EWMA,
	// see observeAll). Trivial cohorts cost a few ns per observe;
	// engine-backed ones 30-150ns — three orders of magnitude around
	// the point where goroutine fan-out stops paying for itself.
	obsNs float64
}

// NewServer creates a release server over the given value domain and
// user population. models must contain one adversary model per user; a
// user with a nil-chains model corresponds to the traditional DP
// adversary. rng may be nil for a deterministic default.
//
// Users with content-identical models (same transition probabilities,
// including both being absent) are grouped into one cohort sharing a
// single accountant; see the package comment. Passing the same *Chain
// pointer to many users is the cheap way to declare a cohort — content
// is only fingerprinted once per distinct pointer.
//
// Compiled correlation models are additionally deduplicated by chain
// content within the server: cohorts whose backward or forward chains
// coincide share one core.Quantifier, so each distinct transition
// matrix compiles its leakage engine exactly once. Use NewServerCached
// to extend that sharing across servers.
func NewServer(domain, users int, models []AdversaryModel, rng *rand.Rand) (*Server, error) {
	return NewServerCached(domain, users, models, rng, nil)
}

// NewServerCached is NewServer with an explicit compiled-model cache,
// letting many servers (the service registry's sessions) share one
// compiled engine per distinct chain content. A nil cache gives the
// server a private one.
func NewServerCached(domain, users int, models []AdversaryModel, rng *rand.Rand, cache *ModelCache) (*Server, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("stream: domain must be positive, got %d", domain)
	}
	if users <= 0 {
		return nil, fmt.Errorf("stream: need at least one user, got %d", users)
	}
	if len(models) != users {
		return nil, fmt.Errorf("stream: %d adversary models for %d users", len(models), users)
	}
	for i, m := range models {
		if m.Backward != nil && m.Backward.N() != domain {
			return nil, fmt.Errorf("stream: user %d backward chain has %d states, domain is %d", i, m.Backward.N(), domain)
		}
		if m.Forward != nil && m.Forward.N() != domain {
			return nil, fmt.Errorf("stream: user %d forward chain has %d states, domain is %d", i, m.Forward.N(), domain)
		}
	}
	if cache == nil {
		cache = NewModelCache()
	}
	s := &Server{
		domain:      domain,
		users:       users,
		sensitivity: mechanism.CountSensitivity,
		userCohort:  make([]int, users),
	}
	if rng == nil {
		// The historical deterministic default, now through the tracked
		// seam so even default-constructed servers snapshot exactly.
		s.setNoiseSourceLocked(1, NoiseSeeded)
	} else {
		// A caller-supplied generator is opaque: its position cannot be
		// serialized, so snapshots of this server record only that a
		// restore must re-seed.
		s.rng = rng
		s.noiseProvenance = NoiseExternal
	}
	byKey := make(map[string]int) // model fingerprint -> cohort index
	fps := make(map[*markov.Chain]string)
	for i, m := range models {
		// Length-prefix the backward fingerprint so the concatenation of
		// two variable-length byte strings stays unambiguous.
		bfp := chainFingerprint(m.Backward, fps)
		ffp := chainFingerprint(m.Forward, fps)
		key := strconv.Itoa(len(bfp)) + ":" + bfp + ffp
		ci, ok := byKey[key]
		if !ok {
			ci = len(s.cohorts)
			byKey[key] = ci
			// The quantifiers come from the content-keyed cache: cohorts
			// (and, with a shared cache, whole servers) with the same
			// chain reuse one compiled engine. Compilation is a
			// deterministic function of chain content, so sharing is
			// invisible to the accounting.
			acc := core.NewAccountantFromQuantifiers(cache.quantifier(m.Backward, bfp), cache.quantifier(m.Forward, ffp))
			s.cohorts = append(s.cohorts, &cohort{acc: acc, firstUser: i, backward: m.Backward, forward: m.Forward})
		}
		s.userCohort[i] = ci
	}
	return s, nil
}

// chainFingerprint returns a content key for a chain: the raw bits of
// its transition probabilities in row-major order (exact equality — no
// hashing, so no collisions; a real fingerprint is at least 8 bytes, so
// the 1-byte nil marker cannot collide with one). The per-pointer cache
// makes the common shared-pointer population O(1) per user after the
// first encounter.
func chainFingerprint(c *markov.Chain, cache map[*markov.Chain]string) string {
	if c == nil {
		return "-"
	}
	if s, ok := cache[c]; ok {
		return s
	}
	n := c.N()
	var b strings.Builder
	b.Grow(8 * n * n)
	var buf [8]byte
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Prob(i, j)))
			b.Write(buf[:])
		}
	}
	s := b.String()
	cache[c] = s
	return s
}

// Cohorts returns the number of distinct adversary-model cohorts the
// population deduplicated into: the per-step accounting cost in
// accountant updates.
func (s *Server) Cohorts() int { return len(s.cohorts) }

// CohortOf returns the cohort index user u belongs to.
func (s *Server) CohortOf(u int) (int, error) {
	if u < 0 || u >= s.users {
		return 0, fmt.Errorf("stream: user %d out of range [0,%d)", u, s.users)
	}
	return s.userCohort[u], nil
}

// Users returns the population size.
func (s *Server) Users() int { return s.users }

// Domain returns the value-domain size.
func (s *Server) Domain() int { return s.domain }

// SetWorkers bounds the goroutines Collect fans per-cohort accountant
// updates over. Zero (the default) means GOMAXPROCS.
func (s *Server) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// SetSensitivity overrides the query sensitivity (default: 1, the
// paper's per-count convention). Use mechanism.HistogramL1Sensitivity
// for the strict joint-histogram calibration. When geometric noise is
// already selected the sensitivity must stay integral — the constraint
// is re-validated here, not just in SetNoise, so the two setters are
// order-independent.
func (s *Server) SetSensitivity(delta float64) error {
	if delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("stream: sensitivity must be finite and positive, got %v", delta)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.noise == release.GeometricNoise && delta != math.Trunc(delta) {
		return fmt.Errorf("stream: geometric noise needs integral sensitivity, got %v", delta)
	}
	s.sensitivity = delta
	return nil
}

// Sensitivity returns the configured query sensitivity.
func (s *Server) Sensitivity() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sensitivity
}

// SetNoise selects the perturbation primitive (default Laplace).
// Geometric noise requires the sensitivity to be integral.
func (s *Server) SetNoise(noise release.Noise) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch noise {
	case release.LaplaceNoise:
	case release.GeometricNoise:
		if s.sensitivity != math.Trunc(s.sensitivity) {
			return fmt.Errorf("stream: geometric noise needs integral sensitivity, have %v", s.sensitivity)
		}
	default:
		return fmt.Errorf("stream: unknown noise kind %d", int(noise))
	}
	s.noise = noise
	return nil
}

// Noise returns the configured perturbation primitive.
func (s *Server) Noise() release.Noise {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.noise
}

// Collect ingests the database of one time step and publishes its noisy
// histogram under an eps-DP mechanism, updating every cohort's leakage
// accountant. It returns the published histogram.
//
// The step is all-or-nothing: the budget, values and noise parameters
// are validated before any accountant is touched, so a failed Collect
// leaves no user charged for a step that was never published.
func (s *Server) Collect(values []int, eps float64) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collectLocked(values, eps)
}

// collectLocked is Collect with s.mu already write-held. It is the
// single-step form of the batch pipeline: validate everything that can
// fail — budget, snapshot, mechanism parameters — before the first
// accountant update, so the step is atomic from the accounting point of
// view (see batch.go for the shared prepare/apply helpers).
func (s *Server) collectLocked(values []int, eps float64) ([]float64, error) {
	var p preparedStep
	if err := s.prepareLocked(&p, BatchStep{Values: values, Eps: &eps}, 0); err != nil {
		return nil, err
	}
	return s.applyLocked(&p).Published, nil
}

// observeAll charges a sequence of budgets (one per batch step, in
// step order) to every cohort accountant, adaptively fanning the
// per-cohort work out over the configured worker count — one fan-out
// decision per batch, not per step. Every eps has already passed
// core.CheckBudget — the only error Observe can return — so an error
// here is a core invariant violation, not an input problem, and panics
// rather than leaving the batch half-observed. The panic is raised from
// the calling goroutine (worker errors are collected first), so a
// recover higher up — e.g. net/http's handler recovery — confines the
// blast radius to one request instead of the whole process.
//
// Adaptivity: a per-cohort observe ranges from a few ns (budget check
// plus two chunked appends, loss memoized) to ~150ns (engine-backed
// loss on a cold memo), while spawning a worker costs on the order of
// a microsecond. Charging a 96-step batch to ten trivial cohorts is
// ~4µs of real work — a parallel dispatch would spend more than that
// on goroutine startup alone, and the single-step Collect path used to
// pay that tax on every call. So cohort 0 is always charged inline and
// timed, feeding an EWMA of the per-observe cost; the remaining
// cohorts go parallel only when the estimated sequential remainder
// exceeds the spawn cost of the workers that would absorb it.
// Sequential batches time the full truth, so an estimate that ever
// misjudges heavy work corrects itself on the next batch.
func (s *Server) observeAll(epsSeq []float64) {
	if len(s.cohorts) == 0 {
		return
	}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.cohorts) {
		workers = len(s.cohorts)
	}
	observeCohort := func(c *cohort) error {
		for _, eps := range epsSeq {
			if _, err := c.acc.Observe(eps); err != nil {
				return err
			}
		}
		return nil
	}

	// Cohort 0 runs inline as this batch's cost sample.
	start := time.Now()
	invariant := observeCohort(s.cohorts[0])
	if n := len(epsSeq); n > 0 {
		sample := float64(time.Since(start).Nanoseconds()) / float64(n)
		if s.obsNs == 0 {
			s.obsNs = sample
		} else {
			s.obsNs += (sample - s.obsNs) / 8 // EWMA, alpha = 1/8
		}
	}

	rest := s.cohorts[1:]
	if workers > len(rest) {
		workers = len(rest)
	}
	// Estimated cost of charging the remaining cohorts sequentially,
	// vs ~1.5µs of startup+handoff per worker goroutine.
	const spawnNs = 1500
	estimate := s.obsNs * float64(len(epsSeq)) * float64(len(rest))
	if workers <= 1 || estimate < float64(workers)*spawnNs {
		for _, c := range rest {
			if err := observeCohort(c); err != nil && invariant == nil {
				invariant = err
			}
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(rest); i += workers {
					if err := observeCohort(rest[i]); err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil && invariant == nil {
				invariant = err
			}
		}
	}
	if invariant != nil {
		panic(fmt.Sprintf("stream: validated budget rejected by accountant: %v", invariant))
	}
}

// T returns the number of time steps published so far.
func (s *Server) T() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.published.Len()
}

// Published returns the noisy histogram released at 1-based time t.
func (s *Server) Published(t int) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t < 1 || t > s.published.Len() {
		return nil, fmt.Errorf("stream: time %d out of range [1,%d]", t, s.published.Len())
	}
	return append([]float64(nil), s.published.At(t-1)...), nil
}

// Budgets returns a copy of the per-step budgets spent so far.
func (s *Server) Budgets() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.budgets.CopyAll()
}

// Budget returns the budget spent at 1-based time t (O(1), unlike
// copying the whole history with Budgets).
func (s *Server) Budget(t int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t < 1 || t > s.budgets.Len() {
		return 0, fmt.Errorf("stream: time %d out of range [1,%d]", t, s.budgets.Len())
	}
	return s.budgets.At(t - 1), nil
}

// UserTPL returns user u's temporal privacy leakage at 1-based time t.
func (s *Server) UserTPL(u, t int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.cohortFor(u)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acc.TPL(t)
}

// UserTPLSeries returns user u's TPL at every time point published so
// far (1-based time t is element t-1).
func (s *Server) UserTPLSeries(u int) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.cohortFor(u)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, c.acc.T())
	for t := 1; t <= len(out); t++ {
		v, err := c.acc.TPL(t)
		if err != nil {
			return nil, err
		}
		out[t-1] = v
	}
	return out, nil
}

// cohortFor resolves user u's cohort; the caller holds at least a read
// lock.
func (s *Server) cohortFor(u int) (*cohort, error) {
	if u < 0 || u >= s.users {
		return nil, fmt.Errorf("stream: user %d out of range [0,%d)", u, s.users)
	}
	return s.cohorts[s.userCohort[u]], nil
}

// Report summarizes the privacy guarantee of everything published so
// far, per Definition 8 and Table II.
type Report struct {
	T int
	// EventLevelAlpha is the maximum over users and time points of the
	// temporal privacy leakage: the alpha of the overall alpha-DP_T
	// guarantee (Definition 8 takes the max over all users).
	EventLevelAlpha float64
	// WorstUser is the user attaining EventLevelAlpha.
	WorstUser int
	// UserLevel is the user-level leakage (Corollary 1): the plain sum
	// of the budgets, identical for all users.
	UserLevel float64
	// NominalEventLevel is the per-step guarantee a correlation-unaware
	// analysis would claim: the maximum single-step budget.
	NominalEventLevel float64
}

// Report computes the current privacy guarantee summary.
func (s *Server) Report() (*Report, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.budgets.Len() == 0 {
		return &Report{}, nil
	}
	// UserLevel is core.UserLevelTPL's plain sequential sum, walked
	// chunk-by-chunk in the same step order.
	r := &Report{T: s.budgets.Len()}
	for ci, n := 0, s.budgets.Chunks(); ci < n; ci++ {
		for _, e := range s.budgets.Chunk(ci) {
			r.UserLevel += e
			if e > r.NominalEventLevel {
				r.NominalEventLevel = e
			}
		}
	}
	// Every member of a cohort attains the same leakage, and cohorts
	// are ordered by first-encountered user id, so keeping the first
	// cohort on ties makes the worst user the smallest user id
	// attaining the maximum — the same user the pre-cohort per-user
	// scan reported.
	r.EventLevelAlpha = math.Inf(-1)
	for _, c := range s.cohorts {
		c.mu.Lock()
		v, err := c.acc.MaxTPL()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if v > r.EventLevelAlpha {
			r.EventLevelAlpha = v
			r.WorstUser = c.firstUser
		}
	}
	return r, nil
}

// WEvent returns the worst leakage of any w-length window for user u
// (Theorem 2 / Table II middle row).
func (s *Server) WEvent(u, w int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.cohortFor(u)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acc.WEvent(w)
}

// MaxWEvent returns the worst w-window leakage over the whole
// population (one accountant query per cohort) together with the
// smallest user id attaining it (ties keep the earliest cohort, which
// holds the smallest user id).
func (s *Server) MaxWEvent(w int) (float64, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	worst, worstUser := math.Inf(-1), 0
	for _, c := range s.cohorts {
		c.mu.Lock()
		v, err := c.acc.WEvent(w)
		c.mu.Unlock()
		if err != nil {
			return 0, 0, err
		}
		if v > worst {
			worst = v
			worstUser = c.firstUser
		}
	}
	return worst, worstUser, nil
}
