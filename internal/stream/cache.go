package stream

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/markov"
)

// defaultModelCacheCap bounds the number of distinct compiled models a
// cache retains. Compiled engines are immutable but not free (the
// envelope plus the quantifier's row copies); a long-lived service fed
// adversarial configs must not grow without bound. At the cap the cache
// stops inserting and hands out uncached quantifiers — correctness is
// unaffected, only the sharing.
const defaultModelCacheCap = 1024

// ModelCache deduplicates compiled correlation models by chain content.
// Quantifiers compile their pair structure once (core.Engine) and are
// immutable afterwards, so any number of cohorts, servers and sessions
// can share one compiled model per distinct transition matrix: the
// cache is what turns "every session re-quantifies the same road map"
// into "the fleet compiles each map once".
//
// A ModelCache is safe for concurrent use. The zero value is not
// usable; construct with NewModelCache.
type ModelCache struct {
	mu     sync.Mutex
	m      map[[sha256.Size]byte]*core.Quantifier
	cap    int
	hits   int64
	misses int64

	// store, when set, is the on-disk tier behind the in-memory map:
	// first sight of a chain content tries a disk load before
	// compiling, and fresh compilations are persisted back. See
	// SetEngineStore.
	store EngineStore

	// named is the active named-model set (nil until the first
	// activation). Activations swap the whole pointer, so readers never
	// observe a half-updated table — the hot-swap seam the bundle
	// plugin drives (see internal/plugins/bundle).
	named atomic.Pointer[namedSet]
}

// namedSet is one immutable revision of the named-model table. The map
// is never mutated after Activate publishes it.
type namedSet struct {
	revision string
	models   map[string]AdversaryModel
}

// NewModelCache creates an empty cache with the default capacity.
func NewModelCache() *ModelCache {
	return &ModelCache{m: make(map[[sha256.Size]byte]*core.Quantifier), cap: defaultModelCacheCap}
}

// quantifier returns the shared quantifier for a chain, keyed by the
// caller-computed content fingerprint, building and caching it on first
// sight. A nil chain is the no-correlation model: nil quantifier,
// nothing cached. The raw fingerprint is 8*n² bytes of matrix content;
// the cache keys by its SHA-256 so a long-lived process retains 32
// bytes per model, not the matrix dump, and map probes stay O(1)-sized.
func (mc *ModelCache) quantifier(c *markov.Chain, fp string) *core.Quantifier {
	if c == nil {
		return nil
	}
	key := sha256.Sum256([]byte(fp))
	// The store probe stays under mu on purpose: the adopt-or-hook
	// decision must be made before the quantifier can escape to another
	// goroutine, or two callers could compile the same model twice and
	// persist divergent entries. Misses are once-per-model cold-start
	// work, not steady-state ingest.
	//tplvet:allow locksafe single-flight adopt-or-hook must resolve under mu before the quantifier escapes; store probes are once per model
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if q, ok := mc.m[key]; ok {
		mc.hits++
		return q
	}
	mc.misses++
	q := core.NewQuantifier(c)
	if mc.store != nil {
		// Disk tier: adopt a previously persisted engine, or arrange
		// for the eventual compilation to be persisted. Both sides key
		// by the same content hash, and compilation is deterministic,
		// so a loaded engine is bit-identical to the compile it skips.
		// The hook is set here, under mc.mu, before the quantifier can
		// escape to any other goroutine.
		hexKey := hex.EncodeToString(key[:])
		if e, ok := mc.store.Load(hexKey, q.N()); ok && q.AdoptEngine(e) {
			// Warm start: no compile will ever run for this model.
		} else {
			st := mc.store
			q.SetOnCompile(func(e *core.Engine) { st.Store(hexKey, e) })
		}
	}
	if len(mc.m) < mc.cap {
		mc.m[key] = q
	}
	return q
}

// EngineStore is a persistent second tier for compiled engines, keyed
// by the hex SHA-256 of the chain's content fingerprint — the same
// digest core.Quantifier.ContentHash reports and the signed bundle
// manifests embed. internal/enginecache implements it on disk; the
// interface keeps stream free of filesystem concerns and lets tests
// substitute in-memory stores. Implementations must be safe for
// concurrent use and must never return an invalid engine (Load
// failures of any kind are simply (nil, false)).
type EngineStore interface {
	Load(hash string, n int) (*core.Engine, bool)
	Store(hash string, e *core.Engine)
}

// SetEngineStore attaches a persistent engine tier. Quantifiers built
// before the call keep their in-memory-only behavior; attach the store
// before the first session is built (the service does this at
// construction) to get warm starts for every model. A nil store
// detaches.
func (mc *ModelCache) SetEngineStore(s EngineStore) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.store = s
}

// ModelCacheStats is a point-in-time snapshot of cache effectiveness.
type ModelCacheStats struct {
	// Size is the number of distinct compiled models retained.
	Size int
	// Hits counts lookups answered by an already-compiled model.
	Hits int64
	// Misses counts lookups that had to compile.
	Misses int64
}

// Stats snapshots the cache counters.
func (mc *ModelCache) Stats() ModelCacheStats {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return ModelCacheStats{Size: len(mc.m), Hits: mc.hits, Misses: mc.misses}
}

// ActivateNamed atomically replaces the cache's named-model table with
// a new revision. Names resolve against exactly one revision at a time:
// a resolver running concurrently with an activation sees either the
// whole old set or the whole new set, never a mix. Sessions built
// before the swap keep the chain pointers (and compiled engines) they
// resolved — activation changes what *future* resolutions see, it never
// rebinds a live accountant; that is what makes bundle hot-swap safe
// under live ingest.
//
// Every chain in the new set is compiled through the content-keyed
// cache before the swap, so the first session to reference a new model
// pays a map hit, not a compile — the activation (a background plugin
// goroutine) absorbs the compile cost instead of an ingest request.
// Chains whose content survives across revisions share the already
// compiled engine.
func (mc *ModelCache) ActivateNamed(revision string, models map[string]AdversaryModel) {
	set := &namedSet{revision: revision, models: make(map[string]AdversaryModel, len(models))}
	fps := make(map[*markov.Chain]string)
	for name, m := range models {
		mc.quantifier(m.Backward, chainFingerprint(m.Backward, fps))
		mc.quantifier(m.Forward, chainFingerprint(m.Forward, fps))
		set.models[name] = m
	}
	mc.named.Store(set)
}

// ResolveNamed resolves model names against the active named-model
// revision in one atomic read: all names resolve against the same
// revision even while an activation races. It returns the revision the
// names resolved under, the resolved models (index-aligned with names),
// and the names that did not resolve (nil on full success). With no
// revision active every name is missing and the revision is empty.
func (mc *ModelCache) ResolveNamed(names []string) (revision string, models []AdversaryModel, missing []string) {
	set := mc.named.Load()
	if set == nil {
		return "", nil, append([]string(nil), names...)
	}
	models = make([]AdversaryModel, len(names))
	for i, name := range names {
		m, ok := set.models[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		models[i] = m
	}
	if missing != nil {
		return set.revision, nil, missing
	}
	return set.revision, models, nil
}

// NamedRevision returns the active named-model revision ("" before the
// first activation).
func (mc *ModelCache) NamedRevision() string {
	if set := mc.named.Load(); set != nil {
		return set.revision
	}
	return ""
}

// NamedModels lists the active revision's model names, sorted.
func (mc *ModelCache) NamedModels() []string {
	set := mc.named.Load()
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set.models))
	for name := range set.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
