package stream

import (
	"crypto/sha256"
	"sync"

	"repro/internal/core"
	"repro/internal/markov"
)

// defaultModelCacheCap bounds the number of distinct compiled models a
// cache retains. Compiled engines are immutable but not free (the
// envelope plus the quantifier's row copies); a long-lived service fed
// adversarial configs must not grow without bound. At the cap the cache
// stops inserting and hands out uncached quantifiers — correctness is
// unaffected, only the sharing.
const defaultModelCacheCap = 1024

// ModelCache deduplicates compiled correlation models by chain content.
// Quantifiers compile their pair structure once (core.Engine) and are
// immutable afterwards, so any number of cohorts, servers and sessions
// can share one compiled model per distinct transition matrix: the
// cache is what turns "every session re-quantifies the same road map"
// into "the fleet compiles each map once".
//
// A ModelCache is safe for concurrent use. The zero value is not
// usable; construct with NewModelCache.
type ModelCache struct {
	mu     sync.Mutex
	m      map[[sha256.Size]byte]*core.Quantifier
	cap    int
	hits   int64
	misses int64
}

// NewModelCache creates an empty cache with the default capacity.
func NewModelCache() *ModelCache {
	return &ModelCache{m: make(map[[sha256.Size]byte]*core.Quantifier), cap: defaultModelCacheCap}
}

// quantifier returns the shared quantifier for a chain, keyed by the
// caller-computed content fingerprint, building and caching it on first
// sight. A nil chain is the no-correlation model: nil quantifier,
// nothing cached. The raw fingerprint is 8*n² bytes of matrix content;
// the cache keys by its SHA-256 so a long-lived process retains 32
// bytes per model, not the matrix dump, and map probes stay O(1)-sized.
func (mc *ModelCache) quantifier(c *markov.Chain, fp string) *core.Quantifier {
	if c == nil {
		return nil
	}
	key := sha256.Sum256([]byte(fp))
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if q, ok := mc.m[key]; ok {
		mc.hits++
		return q
	}
	mc.misses++
	q := core.NewQuantifier(c)
	if len(mc.m) < mc.cap {
		mc.m[key] = q
	}
	return q
}

// ModelCacheStats is a point-in-time snapshot of cache effectiveness.
type ModelCacheStats struct {
	// Size is the number of distinct compiled models retained.
	Size int
	// Hits counts lookups answered by an already-compiled model.
	Hits int64
	// Misses counts lookups that had to compile.
	Misses int64
}

// Stats snapshots the cache counters.
func (mc *ModelCache) Stats() ModelCacheStats {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return ModelCacheStats{Size: len(mc.m), Hits: mc.hits, Misses: mc.misses}
}
