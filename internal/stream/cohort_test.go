package stream

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/release"
)

// TestCohortDedup checks that users with content-identical adversary
// models collapse into shared cohorts — whether they share chain
// pointers or merely chain contents — and that the deduplicated
// accounting reports leakage identical to one accountant per distinct
// model.
func TestCohortDedup(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	// Content-equal but pointer-distinct copies of pb.
	pbCopy, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{
		{Backward: pb, Forward: pf},
		{Backward: pbCopy, Forward: pf}, // same content, different pointer
		{Backward: pb},                  // backward-only: its own cohort
		{},                              // traditional DP adversary
		{Backward: pb, Forward: pf},     // shared pointers again
		{},
	}
	s, err := NewServer(pb.N(), len(models), models, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cohorts(); got != 3 {
		t.Fatalf("Cohorts() = %d, want 3", got)
	}
	for _, pair := range [][2]int{{0, 1}, {0, 4}, {3, 5}} {
		a, err := s.CohortOf(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.CohortOf(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("users %d and %d in cohorts %d and %d, want shared", pair[0], pair[1], a, b)
		}
	}

	budgets := []float64{0.1, 0.3, 0.2, 0.1}
	values := make([]int, len(models))
	for _, eps := range budgets {
		if _, err := s.Collect(values, eps); err != nil {
			t.Fatal(err)
		}
	}

	// Per-user leakage must equal a dedicated accountant driven with the
	// same budgets — dedup is an optimization, not an approximation.
	for u, m := range models {
		acc := core.NewAccountant(m.Backward, m.Forward)
		for _, eps := range budgets {
			if _, err := acc.Observe(eps); err != nil {
				t.Fatal(err)
			}
		}
		for step := 1; step <= len(budgets); step++ {
			want, err := acc.TPL(step)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.UserTPL(u, step)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("user %d TPL(%d) = %v, want %v", u, step, got, want)
			}
		}
	}

	// The report's worst user must be the smallest user id in the worst
	// cohort (the same user a per-user scan reports).
	rep, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantAlpha, wantUser := math.Inf(-1), 0
	for u, m := range models {
		acc := core.NewAccountant(m.Backward, m.Forward)
		for _, eps := range budgets {
			if _, err := acc.Observe(eps); err != nil {
				t.Fatal(err)
			}
		}
		v, err := acc.MaxTPL()
		if err != nil {
			t.Fatal(err)
		}
		if v > wantAlpha {
			wantAlpha, wantUser = v, u
		}
	}
	if rep.EventLevelAlpha != wantAlpha || rep.WorstUser != wantUser {
		t.Errorf("Report = (alpha %v, user %d), want (alpha %v, user %d)",
			rep.EventLevelAlpha, rep.WorstUser, wantAlpha, wantUser)
	}
	if want := core.UserLevelTPL(budgets); rep.UserLevel != want {
		t.Errorf("UserLevel = %v, want %v", rep.UserLevel, want)
	}
}

// TestUserTPLSeries checks the series accessor against the scalar one.
func TestUserTPLSeries(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Collect([]int{0, 1}, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 2; u++ {
		series, err := s.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 5 {
			t.Fatalf("user %d: series length %d, want 5", u, len(series))
		}
		for step := 1; step <= 5; step++ {
			want, err := s.UserTPL(u, step)
			if err != nil {
				t.Fatal(err)
			}
			if series[step-1] != want {
				t.Errorf("user %d series[%d] = %v, want %v", u, step-1, series[step-1], want)
			}
		}
	}
	if _, err := s.UserTPLSeries(2); err == nil {
		t.Error("out-of-range user should fail")
	}
}

// TestCollectAllOrNothing is the regression test for the partial-update
// bug: a Collect that fails for any reason — bad budget, bad values,
// noise-parameter mismatch — must leave no accountant charged and
// nothing published, and the server must behave exactly like one that
// never saw the failed call.
func TestCollectAllOrNothing(t *testing.T) {
	newServer := func() *Server {
		s, err := NewServer(2, 2, twoUserModels(), rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	assertUncharged := func(t *testing.T, s *Server) {
		t.Helper()
		if s.T() != 0 {
			t.Fatalf("T() = %d after failed Collect, want 0", s.T())
		}
		for u := 0; u < 2; u++ {
			if _, err := s.UserTPL(u, 1); err == nil {
				t.Fatalf("user %d charged for an unpublished step", u)
			}
		}
	}

	t.Run("bad budgets", func(t *testing.T) {
		s := newServer()
		for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
			if _, err := s.Collect([]int{0, 1}, eps); err == nil {
				t.Fatalf("Collect with eps=%v should fail", eps)
			}
			assertUncharged(t, s)
		}
	})
	t.Run("bad values", func(t *testing.T) {
		s := newServer()
		if _, err := s.Collect([]int{0}, 0.1); err == nil {
			t.Fatal("short value vector should fail")
		}
		if _, err := s.Collect([]int{0, 7}, 0.1); err == nil {
			t.Fatal("out-of-domain value should fail")
		}
		assertUncharged(t, s)
	})
	t.Run("recovers cleanly", func(t *testing.T) {
		s := newServer()
		if _, err := s.Collect([]int{0, 1}, math.NaN()); err == nil {
			t.Fatal("NaN budget should fail")
		}
		if _, err := s.Collect([]int{0, 1}, 0.4); err != nil {
			t.Fatal(err)
		}
		fresh := newServer()
		if _, err := fresh.Collect([]int{0, 1}, 0.4); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 2; u++ {
			got, err := s.UserTPL(u, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.UserTPL(u, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("user %d: TPL after failed step %v, fresh server %v", u, got, want)
			}
		}
	})
}

// TestConcurrentReadersDuringCollect exercises the documented
// concurrency contract: readers may run concurrently with Collect and
// with each other (run under -race in CI).
func TestConcurrentReadersDuringCollect(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	models := make([]AdversaryModel, 16)
	for i := range models {
		switch i % 3 {
		case 0:
			models[i] = AdversaryModel{Backward: pb, Forward: pf}
		case 1:
			models[i] = AdversaryModel{Backward: pb}
		}
	}
	s, err := NewServer(pb.N(), len(models), models, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := release.UpperBound(pb, pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)

	const steps = 40
	values := make([]int, len(models))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if T := s.T(); T > 0 {
					if _, err := s.UserTPL(r, 1); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Published(T); err != nil {
						// A concurrent Collect may have advanced T; only
						// a range error on a stable T is a bug, and T
						// only grows, so any error here is one.
						t.Error(err)
						return
					}
				}
				if _, err := s.Report(); err != nil {
					t.Error(err)
					return
				}
				_ = s.Budgets()
				_ = s.PlanStep()
			}
		}(r)
	}
	for i := 0; i < steps; i++ {
		if i%2 == 0 {
			if _, err := s.Collect(values, 0.05); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.CollectPlanned(values); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if s.T() != steps {
		t.Fatalf("T() = %d, want %d", s.T(), steps)
	}
}
