package stream

import "math/rand"

// The noise-RNG seam. Restoring a server requires knowing where its
// noise stream is, and math/rand sources are opaque: once a *rand.Rand
// has been drawn from, its position cannot be read back. The seam fixes
// that by wrapping the source in a draw counter — position = (seed,
// draws), and fast-forwarding is "skip draws steps". Sessions whose
// seed may be persisted restore their noise stream exactly; sessions
// seeded from OS entropy (the service's privacy-preserving default)
// deliberately withhold the seed from snapshots and are re-seeded on
// restore, with the provenance recorded so an operator can tell the two
// histories apart.

// Noise-stream provenance values, recorded in NoiseState.Provenance.
const (
	// NoiseSeeded: tracked source whose seed may be serialized; a
	// restore reproduces the stream exactly.
	NoiseSeeded = "seeded"
	// NoiseEphemeral: tracked source whose seed is withheld from
	// snapshots (an unpredictable noise stream written to disk would be
	// replayable by anyone who reads the state directory).
	NoiseEphemeral = "ephemeral"
	// NoiseExternal: caller-supplied *rand.Rand; position unknown.
	NoiseExternal = "external"
	// NoiseReseeded: this server was restored from a snapshot whose
	// noise stream could not be reproduced and drew a fresh seed. The
	// leakage accounting is unaffected (it never depends on the noise
	// values), only noise reproducibility across restarts is lost.
	NoiseReseeded = "reseeded"
)

// NoiseState is the serializable position of a server's noise stream.
//
//tplvet:wire v2 schema=7102e512f0eb
type NoiseState struct {
	// Provenance is one of the Noise* constants above.
	Provenance string
	// Seed is the source seed; only set when Provenance == NoiseSeeded.
	Seed int64
	// Draws counts primitive values consumed from the source (0 when the
	// source is untracked).
	Draws uint64
}

// countingSource wraps a rand.Source64 with a draw counter. Every
// primitive read — Int63 or Uint64 — advances the underlying generator
// by exactly one step, so "position" is a single integer regardless of
// which rand.Rand methods consumed the values.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

// newCountingSource builds a tracked source. rand.NewSource's result
// implements Source64 (documented since Go 1.8).
func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// skip fast-forwards the source by n steps (used when restoring a
// snapshot or replaying a journal).
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}

// setNoiseSourceLocked installs a tracked noise source; the caller
// holds the write lock.
func (s *Server) setNoiseSourceLocked(seed int64, provenance string) {
	s.noiseSrc = newCountingSource(seed)
	s.rng = rand.New(s.noiseSrc)
	s.noiseSeed = seed
	s.noiseProvenance = provenance
	// The releaser memo captured the previous rand.Rand; drop it.
	s.relFn = nil
}

// SetNoiseSeed makes the noise stream deterministic and fully
// restorable: the seed is recorded in snapshots, so a restored server
// continues the exact noise sequence. Use only when reproducibility is
// wanted — a server whose noise an observer can replay from persisted
// state offers no privacy against that observer. Resets the stream
// position.
func (s *Server) SetNoiseSeed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setNoiseSourceLocked(seed, NoiseSeeded)
}

// SetEphemeralNoiseSeed makes the noise stream position-tracked but
// withholds the seed from snapshots: restores re-seed and record
// NoiseReseeded provenance. This is the right mode for seeds drawn from
// OS entropy. Resets the stream position.
func (s *Server) SetEphemeralNoiseSeed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setNoiseSourceLocked(seed, NoiseEphemeral)
}

// NoiseState reports the current noise-stream position and provenance.
func (s *Server) NoiseState() NoiseState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.noiseStateLocked()
}

// noiseStateLocked is NoiseState with s.mu already held (read or write).
func (s *Server) noiseStateLocked() NoiseState {
	ns := NoiseState{Provenance: s.noiseProvenance}
	if s.noiseSrc != nil {
		ns.Draws = s.noiseSrc.draws
	}
	if s.noiseProvenance == NoiseSeeded {
		ns.Seed = s.noiseSeed
	}
	return ns
}
