package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/release"
)

func plannedServer(t *testing.T) (*Server, *markov.Chain, *markov.Chain) {
	t.Helper()
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	s, err := NewServer(2, 2, []AdversaryModel{
		{Backward: pb, Forward: pf},
		{},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, pb, pf
}

func TestCollectPlannedUsesPlanBudgets(t *testing.T) {
	s, pb, pf := plannedServer(t)
	plan, err := release.Quantified(pb, pf, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)
	for i := 0; i < 4; i++ {
		if _, err := s.CollectPlanned([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := plan.Budgets(4)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Budgets()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("step %d: spent %v, plan says %v", i+1, got[i], want[i])
		}
	}
	// The correlated user's leakage equals the plan's target at every
	// point (Algorithm 3 exactness, observed through the server).
	for tm := 1; tm <= 4; tm++ {
		v, err := s.UserTPL(0, tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("t=%d: user TPL %v, want 1", tm, v)
		}
	}
}

// TestPlanHorizon checks the budget-pressure signal the status plugin
// reports: 0 without a plan, the finite horizon with one.
func TestPlanHorizon(t *testing.T) {
	s, pb, pf := plannedServer(t)
	if h := s.PlanHorizon(); h != 0 {
		t.Fatalf("horizon %d with no plan, want 0", h)
	}
	plan, err := release.Quantified(pb, pf, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)
	if h := s.PlanHorizon(); h != 4 {
		t.Fatalf("horizon %d, want 4", h)
	}
	s.SetPlan(nil)
	if h := s.PlanHorizon(); h != 0 {
		t.Fatalf("horizon %d after detach, want 0", h)
	}
}

func TestCollectPlannedHorizonExhaustion(t *testing.T) {
	s, pb, pf := plannedServer(t)
	plan, err := release.Quantified(pb, pf, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)
	for i := 0; i < 2; i++ {
		if _, err := s.CollectPlanned([]int{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CollectPlanned([]int{0, 0}); !errors.Is(err, release.ErrHorizonExceeded) {
		t.Errorf("err = %v, want ErrHorizonExceeded", err)
	}
	// Explicit-budget collection still works after exhaustion.
	if _, err := s.Collect([]int{0, 0}, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestCollectPlannedNoPlan(t *testing.T) {
	s, _, _ := plannedServer(t)
	if _, err := s.CollectPlanned([]int{0, 1}); !errors.Is(err, ErrNoPlan) {
		t.Errorf("err = %v, want ErrNoPlan", err)
	}
	if s.PlanStep() != 0 {
		t.Error("PlanStep without a plan should be 0")
	}
}

func TestSetPlanMidStream(t *testing.T) {
	s, pb, pf := plannedServer(t)
	// Two exploratory steps with explicit budgets.
	for i := 0; i < 2; i++ {
		if _, err := s.Collect([]int{0, 1}, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := release.Quantified(pb, pf, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)
	if s.PlanStep() != 1 {
		t.Errorf("PlanStep = %d, want 1 (plan indexes from attachment)", s.PlanStep())
	}
	if _, err := s.CollectPlanned([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if s.PlanStep() != 2 {
		t.Errorf("PlanStep = %d after one planned step", s.PlanStep())
	}
	b := s.Budgets()
	if math.Abs(b[2]-plan.Eps1) > 1e-15 {
		t.Errorf("first planned budget = %v, want plan.Eps1 = %v", b[2], plan.Eps1)
	}
	// Detach.
	s.SetPlan(nil)
	if _, err := s.CollectPlanned([]int{0, 1}); !errors.Is(err, ErrNoPlan) {
		t.Error("detached plan should fail CollectPlanned")
	}
}

func TestCollectPlannedUnboundedPlan(t *testing.T) {
	s, pb, pf := plannedServer(t)
	plan, err := release.UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPlan(plan)
	for i := 0; i < 20; i++ {
		if _, err := s.CollectPlanned([]int{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventLevelAlpha > 1+1e-9 {
		t.Errorf("upper-bound plan leaked %v > alpha", rep.EventLevelAlpha)
	}
}
