package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mechanism"
	"repro/internal/release"
)

// Batched collection. The v2 wire API ingests many time steps per
// request; CollectBatch is its substrate: one lock acquisition, one
// validation pass over the whole batch, then the releases. The batch is
// atomic in the same sense a single Collect is — everything that can
// fail (step shapes, budgets, plan horizon, mechanism parameters) is
// checked before the first accountant is touched, so a rejected batch
// charges no user for any of its steps.

// BatchStep is one time step of a CollectBatch call. The step's
// database is declared exactly one way: Values (one entry per user, as
// Collect takes) or Counts (the pre-aggregated histogram — the compact
// wire shape for large populations, since leakage accounting depends
// only on the budget sequence, never on who held which value).
type BatchStep struct {
	// Values is the per-user database of the step (len == Users()).
	Values []int
	// Counts is the pre-aggregated histogram: len == Domain(),
	// non-negative entries summing to Users().
	Counts []int
	// Eps is the explicit per-step budget; nil draws from the attached
	// release plan (as CollectPlanned does).
	Eps *float64
}

// StepResult reports one step a batch landed: the 1-based step index,
// the budget actually charged, whether it came from the plan, and the
// published noisy histogram. Draws is the noise-stream position after
// the step (0 when the stream is untracked) — the journaling layer
// records it so replays fast-forward the stream exactly.
type StepResult struct {
	T         int
	Eps       float64
	Planned   bool
	Published []float64
	Draws     uint64
}

// preparedStep is a fully validated step awaiting its release: the true
// histogram, the resolved budget, and the noise mechanism already
// constructed (so applying a prepared batch cannot fail). release
// appends the noisy histogram to dst — the batch path carves every
// step's output from one slab instead of allocating per step.
type preparedStep struct {
	hist    []int
	eps     float64
	planned bool
	release func(dst []float64, counts []int) []float64
}

// releaserLocked builds the noise mechanism for one step's budget,
// memoizing the last construction: a stream charging the same budget
// step after step (the common continuous-release shape) rebuilds
// nothing. The memo is invalidated whenever the noise kind, the
// sensitivity, or the RNG seam changes (SetNoise, SetSensitivity,
// setNoiseSourceLocked) — the mechanism itself is stateless between
// releases; only the rand.Rand it draws from carries state, and that is
// shared by construction. Caller holds the write lock.
//
//tplvet:hotpath
func (s *Server) releaserLocked(eps float64) (func(dst []float64, counts []int) []float64, error) {
	if s.relFn != nil && s.relEps == eps && s.relNoise == s.noise && s.relSens == s.sensitivity {
		return s.relFn, nil
	}
	fn, err := s.buildReleaserLocked(eps)
	if err != nil {
		return nil, err
	}
	s.relFn, s.relEps, s.relNoise, s.relSens = fn, eps, s.noise, s.sensitivity
	return fn, nil
}

// buildReleaserLocked constructs the mechanism without consulting the
// memo. Caller holds the write lock.
func (s *Server) buildReleaserLocked(eps float64) (func(dst []float64, counts []int) []float64, error) {
	switch s.noise {
	case release.GeometricNoise:
		geo, err := mechanism.NewGeometric(eps, int(s.sensitivity), s.rng)
		if err != nil {
			return nil, err
		}
		return func(dst []float64, h []int) []float64 {
			for _, v := range geo.ReleaseCounts(h) {
				dst = append(dst, float64(v))
			}
			return dst
		}, nil
	default:
		lap, err := mechanism.NewLaplace(eps, s.sensitivity, s.rng)
		if err != nil {
			return nil, err
		}
		return lap.AppendReleaseCounts, nil
	}
}

// prepareLocked validates one step and resolves its budget into *p
// (written in place: the batch path prepares straight into its
// preallocated slice, and the struct's slice/func fields make a
// by-value return a measurable per-step write-barrier cost). offset is
// the number of batch steps that will land before this one (0 for a
// single-step collect) — plan budgets are drawn by absolute step index,
// so a batch mixing explicit and planned budgets indexes the plan
// exactly as the equivalent sequence of single-step collects would.
// Caller holds the write lock.
//
//tplvet:hotpath
func (s *Server) prepareLocked(p *preparedStep, st BatchStep, offset int) error {
	switch {
	case st.Values != nil && st.Counts != nil:
		return fmt.Errorf("stream: step declares both values and counts")
	case st.Values != nil:
		if len(st.Values) != s.users {
			return fmt.Errorf("%w: %d values for %d users", ErrDomainMismatch, len(st.Values), s.users)
		}
		// Build the histogram directly: one pass validates the domain
		// range and aggregates, where mechanism.NewSnapshot would copy
		// the 100k-value slice and scan it twice.
		p.hist = make([]int, s.domain)
		for i, v := range st.Values {
			if v < 0 || v >= s.domain {
				return fmt.Errorf("stream: user %d has value %d outside [0,%d)", i, v, s.domain)
			}
			p.hist[v]++
		}
	case st.Counts != nil:
		if len(st.Counts) != s.domain {
			return fmt.Errorf("%w: %d counts for domain %d", ErrDomainMismatch, len(st.Counts), s.domain)
		}
		total := 0
		for v, c := range st.Counts {
			if c < 0 {
				return fmt.Errorf("stream: count for value %d is negative (%d)", v, c)
			}
			total += c
		}
		if total != s.users {
			return fmt.Errorf("%w: counts sum to %d for %d users", ErrDomainMismatch, total, s.users)
		}
		// Alias, don't copy: the histogram is only read (the release
		// mechanisms allocate their own output), and it is dead once the
		// step is applied — CollectBatch borrows the caller's slices for
		// the duration of the call, which is what lets the service layer
		// feed pooled decode buffers straight through.
		p.hist = st.Counts
	default:
		return fmt.Errorf("stream: step declares neither values nor counts")
	}
	if st.Eps != nil {
		p.eps = *st.Eps
		if err := core.CheckBudget(p.eps); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	} else {
		if s.plan == nil {
			return ErrNoPlan
		}
		p.planned = true
		step := s.budgets.Len() + offset - s.planBase + 1
		if h := s.plan.Horizon(); h > 0 && step > h {
			return fmt.Errorf("stream: plan step %d beyond horizon %d: %w", step, h, release.ErrHorizonExceeded)
		}
		eps, err := s.plan.BudgetAt(step)
		if err != nil {
			return err
		}
		p.eps = eps
	}
	var err error
	if p.release, err = s.releaserLocked(p.eps); err != nil {
		return err
	}
	return nil
}

// applyLocked releases one prepared step: noise, accountant fan-out,
// history append. It cannot fail — everything fallible happened in
// prepareLocked. Caller holds the write lock.
//
//tplvet:hotpath
func (s *Server) applyLocked(p *preparedStep) StepResult {
	slab := make([]float64, 0, s.domain)
	var r StepResult
	s.releaseLocked(p, &slab, &r)
	s.observeAll([]float64{p.eps})
	return r
}

// releaseLocked publishes one prepared step — noise draw, history
// append — WITHOUT charging the accountants; the caller owes an
// observeAll for the step's budget. Splitting release from observation
// lets CollectBatch draw noise in exact step order (the RNG stream is
// serial) while fanning the independent per-cohort accounting out once
// per batch instead of once per step. The noisy histogram is carved
// from slab (capacity-capped, so later carves cannot clobber it; if
// the slab grows and relocates, earlier carves keep reading their own
// immutable memory). The result is written into *out — the batch path
// releases straight into its preallocated results slice, and the
// struct's Published slice field makes a by-value return a per-step
// write-barrier cost. Caller holds the write lock.
//
//tplvet:hotpath
func (s *Server) releaseLocked(p *preparedStep, slab *[]float64, out *StepResult) {
	start := len(*slab)
	buf := p.release(*slab, p.hist)
	*slab = buf
	noisy := buf[start:len(buf):len(buf)]
	// The history lives for the session in chunked logs: the append
	// writes one tail slot and never re-copies the settled history
	// (the doubling memmove it replaces was visible in ingest
	// profiles).
	s.published.Append(noisy)
	s.budgets.Append(p.eps)
	*out = StepResult{T: s.budgets.Len(), Eps: p.eps, Planned: p.planned, Published: noisy}
	if s.noiseSrc != nil {
		out.Draws = s.noiseSrc.draws
	}
}

// CollectBatch ingests a sequence of time steps under one lock: the
// whole batch is validated first (shapes, budgets, plan horizon), then
// every step is released in order. A batch that fails validation
// publishes nothing and charges no accountant — the same all-or-nothing
// contract Collect gives one step, extended to the sequence. Budgets
// may mix explicit and planned steps; noise draws are identical to the
// equivalent sequence of single-step collects.
//
//tplvet:hotpath
func (s *Server) CollectBatch(steps []BatchStep) ([]StepResult, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("stream: empty batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prepared := make([]preparedStep, len(steps))
	for i, st := range steps {
		if err := s.prepareLocked(&prepared[i], st, i); err != nil {
			return nil, fmt.Errorf("stream: batch step %d: %w", i+1, err)
		}
	}
	results := make([]StepResult, len(prepared))
	epsSeq := make([]float64, len(prepared))
	// One output slab for the whole batch: the per-step noisy
	// histograms land in history and live forever, so carving them from
	// one allocation costs nothing extra and saves a per-step malloc.
	slab := make([]float64, 0, len(prepared)*s.domain)
	for i := range prepared {
		s.releaseLocked(&prepared[i], &slab, &results[i])
		epsSeq[i] = prepared[i].eps
	}
	// One accounting fan-out for the whole batch: each cohort observes
	// the batch's budgets in step order (per-cohort accounting is
	// sequential in eps order but independent across cohorts), so a
	// 96-step batch costs one goroutine hand-off per worker, not 96.
	s.observeAll(epsSeq)
	return results, nil
}

// LeakagePoint is the per-step leakage digest of one published time
// point: the population-worst TPL at t together with its backward and
// forward components and the user attaining it. The watch endpoint
// streams one per step.
type LeakagePoint struct {
	T         int
	Eps       float64
	TPL       float64
	BPL       float64
	FPL       float64
	WorstUser int
}

// LeakageAt computes the population-worst leakage digest at 1-based
// time t (one accountant query per cohort; FPL values reflect all
// releases observed so far, per Eq. 10's backward-recomputation).
func (s *Server) LeakageAt(t int) (LeakagePoint, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t < 1 || t > s.budgets.Len() {
		return LeakagePoint{}, fmt.Errorf("stream: time %d out of range [1,%d]", t, s.budgets.Len())
	}
	p := LeakagePoint{T: t, Eps: s.budgets.At(t - 1)}
	first := true
	for _, c := range s.cohorts {
		c.mu.Lock()
		v, err := c.acc.TPL(t)
		if err != nil {
			c.mu.Unlock()
			return LeakagePoint{}, err
		}
		if first || v > p.TPL {
			first = false
			b, berr := c.acc.BPL(t)
			f, ferr := c.acc.FPL(t)
			if berr != nil || ferr != nil {
				c.mu.Unlock()
				return LeakagePoint{}, fmt.Errorf("stream: leakage components at t=%d: %v %v", t, berr, ferr)
			}
			p.TPL, p.BPL, p.FPL, p.WorstUser = v, b, f, c.firstUser
		}
		c.mu.Unlock()
	}
	return p, nil
}

// CohortLeakage is one cohort's leakage digest at a time point: the
// shared accountant's TPL with its backward and forward components,
// attributed to the cohort's smallest member id. The decision-log hook
// embeds one per cohort in each audit record.
type CohortLeakage struct {
	Cohort    int
	FirstUser int
	TPL       float64
	BPL       float64
	FPL       float64
}

// CohortLeakages computes every cohort's leakage digest at 1-based
// time t — K accountant queries, K = distinct adversary models, so the
// cost matches one step of accounting, not the population size. FPL
// values reflect all releases observed so far (Eq. 10 recomputes
// forward leakage backward from the stream tail), so querying an older
// t reports that step's leakage as currently known.
func (s *Server) CohortLeakages(t int) ([]CohortLeakage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t < 1 || t > s.budgets.Len() {
		return nil, fmt.Errorf("stream: time %d out of range [1,%d]", t, s.budgets.Len())
	}
	out := make([]CohortLeakage, len(s.cohorts))
	for i, c := range s.cohorts {
		c.mu.Lock()
		tpl, err := c.acc.TPL(t)
		var bpl, fpl float64
		if err == nil {
			bpl, err = c.acc.BPL(t)
		}
		if err == nil {
			fpl, err = c.acc.FPL(t)
		}
		c.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("stream: cohort %d leakage at t=%d: %w", i, t, err)
		}
		out[i] = CohortLeakage{Cohort: i, FirstUser: c.firstUser, TPL: tpl, BPL: bpl, FPL: fpl}
	}
	return out, nil
}

// PublishedRange returns copies of the budgets and published
// histograms for 1-based steps [from, to] under one lock acquisition —
// the paginated read of the release history (per-step Budget+Published
// calls would take two locks per item).
func (s *Server) PublishedRange(from, to int) (eps []float64, hists [][]float64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from < 1 || to > s.budgets.Len() || from > to {
		return nil, nil, fmt.Errorf("stream: range [%d,%d] outside [1,%d]", from, to, s.budgets.Len())
	}
	eps = s.budgets.AppendRange(eps, from-1, to)
	hists = make([][]float64, 0, to-from+1)
	for t := from; t <= to; t++ {
		hists = append(hists, append([]float64(nil), s.published.At(t-1)...))
	}
	return eps, hists, nil
}

// UserTPLRange returns user u's TPL at every 1-based time point in
// [from, to] — the paginated slice of UserTPLSeries.
func (s *Server) UserTPLRange(u, from, to int) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from < 1 || to > s.budgets.Len() || from > to {
		return nil, fmt.Errorf("stream: range [%d,%d] outside [1,%d]", from, to, s.budgets.Len())
	}
	c, err := s.cohortFor(u)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, 0, to-from+1)
	for t := from; t <= to; t++ {
		v, err := c.acc.TPL(t)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
