package stream

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/release"
)

// stateChain builds a chain or fails the test.
func stateChain(t testing.TB, rows [][]float64) *markov.Chain {
	t.Helper()
	c, err := markov.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sparseChain builds an n-state road-network-style chain: each state
// reaches only a handful of successors.
func sparseChain(t testing.TB, n int, seed int64) *markov.Chain {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = rng.Float64() + 0.05
		for k := 0; k < 3; k++ {
			rows[i][(i+1+rng.Intn(n-1))%n] = rng.Float64() + 0.05
		}
		sum := 0.0
		for _, v := range rows[i] {
			sum += v
		}
		for j := range rows[i] {
			rows[i][j] /= sum
		}
	}
	return stateChain(t, rows)
}

// stepValues draws one synthetic database for a server.
func stepValues(rng *rand.Rand, users, domain int) []int {
	values := make([]int, users)
	for i := range values {
		values[i] = rng.Intn(domain)
	}
	return values
}

// mustEqualSeries compares two float64 slices for exact equality.
func mustEqualSeries(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v", label, i, got[i], want[i])
		}
	}
}

// mustAgree asserts a restored server answers every summary query
// bit-identically to the original.
func mustAgree(t *testing.T, orig, restored *Server, sampleUsers []int) {
	t.Helper()
	ro, err := orig.Report()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := restored.Report()
	if err != nil {
		t.Fatal(err)
	}
	if *ro != *rr {
		t.Fatalf("Report diverged: original %+v restored %+v", ro, rr)
	}
	for _, u := range sampleUsers {
		so, err := orig.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := restored.UserTPLSeries(u)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeries(t, "UserTPLSeries", sr, so)
	}
	for _, w := range []int{1, 2, 3} {
		vo, uo, err := orig.MaxWEvent(w)
		if err != nil {
			t.Fatal(err)
		}
		vr, ur, err := restored.MaxWEvent(w)
		if err != nil {
			t.Fatal(err)
		}
		if vo != vr || uo != ur {
			t.Fatalf("MaxWEvent(%d): original (%v,%d) restored (%v,%d)", w, vo, uo, vr, ur)
		}
	}
	mustEqualSeries(t, "Budgets", restored.Budgets(), orig.Budgets())
	if orig.T() != restored.T() {
		t.Fatalf("T: %d != %d", orig.T(), restored.T())
	}
	for tt := 1; tt <= orig.T(); tt++ {
		po, err := orig.Published(tt)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := restored.Published(tt)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeries(t, "Published", pr, po)
	}
}

// snapshotRoundTrip pushes a ServerState through gob — the encoding the
// service persists — proving serialization keeps bit-identical floats.
func snapshotRoundTrip(t *testing.T, st *ServerState) *ServerState {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var back ServerState
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	return &back
}

// TestRestoreDifferential is the acceptance-criteria test: for dense,
// sparse, planned and cohort-shared sessions, Restore(Snapshot(s))
// yields identical Report, UserTPLSeries and MaxWEvent, and stays in
// lockstep when both servers continue with the same inputs.
func TestRestoreDifferential(t *testing.T) {
	dense := stateChain(t, [][]float64{{0.7, 0.2, 0.1}, {0.25, 0.5, 0.25}, {0.05, 0.15, 0.8}})
	denseF := stateChain(t, [][]float64{{0.6, 0.3, 0.1}, {0.2, 0.6, 0.2}, {0.1, 0.3, 0.6}})
	cases := []struct {
		name    string
		domain  int
		models  func(t *testing.T) []AdversaryModel
		plan    func(first AdversaryModel) (release.Plan, error)
		planned bool
	}{
		{
			name:   "dense",
			domain: 3,
			models: func(t *testing.T) []AdversaryModel {
				return []AdversaryModel{
					{Backward: dense, Forward: denseF},
					{Backward: dense},
					{Forward: denseF},
					{},
					{Backward: dense, Forward: denseF},
				}
			},
		},
		{
			name:   "sparse",
			domain: 24,
			models: func(t *testing.T) []AdversaryModel {
				sp := sparseChain(t, 24, 3)
				sp2 := sparseChain(t, 24, 4)
				models := make([]AdversaryModel, 12)
				for i := range models {
					switch i % 3 {
					case 0:
						models[i] = AdversaryModel{Backward: sp, Forward: sp2}
					case 1:
						models[i] = AdversaryModel{Backward: sp2}
					default:
						models[i] = AdversaryModel{}
					}
				}
				return models
			},
		},
		{
			name:   "planned",
			domain: 3,
			models: func(t *testing.T) []AdversaryModel {
				return []AdversaryModel{{Backward: dense, Forward: denseF}, {Backward: dense, Forward: denseF}, {}}
			},
			plan: func(first AdversaryModel) (release.Plan, error) {
				return release.UpperBound(first.Backward, first.Forward, 2.0)
			},
			planned: true,
		},
		{
			name:   "cohort-shared",
			domain: 3,
			models: func(t *testing.T) []AdversaryModel {
				models := make([]AdversaryModel, 400)
				for i := range models {
					if i%2 == 0 {
						models[i] = AdversaryModel{Backward: dense}
					} else {
						models[i] = AdversaryModel{Forward: denseF}
					}
				}
				return models
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			models := tc.models(t)
			srv, err := NewServer(tc.domain, len(models), models, nil)
			if err != nil {
				t.Fatal(err)
			}
			srv.SetNoiseSeed(42)
			var origPlan release.Plan
			if tc.plan != nil {
				if origPlan, err = tc.plan(models[0]); err != nil {
					t.Fatal(err)
				}
				srv.SetPlan(origPlan)
			}
			data := rand.New(rand.NewSource(99))
			step := func(s *Server) {
				t.Helper()
				values := stepValues(data, len(models), tc.domain)
				if tc.planned {
					if _, err := s.CollectPlanned(values); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := s.Collect(values, 0.1+0.05*float64(s.T()%4)); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < 8; i++ {
				step(srv)
			}
			// Interleave a read so some accountants carry a stale FPL cache.
			if _, err := srv.Report(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				step(srv)
			}

			st := snapshotRoundTrip(t, srv.Snapshot())
			var restorePlan release.Plan
			if tc.plan != nil {
				if restorePlan, err = tc.plan(models[0]); err != nil {
					t.Fatal(err)
				}
			}
			restored, err := RestoreServer(st, RestoreOptions{Plan: restorePlan})
			if err != nil {
				t.Fatal(err)
			}
			sample := []int{0, len(models) - 1, len(models) / 2}
			mustAgree(t, srv, restored, sample)

			// Continue both with identical inputs: seeded noise makes even
			// the published histograms stay bit-identical.
			dataA := rand.New(rand.NewSource(7))
			dataB := rand.New(rand.NewSource(7))
			for i := 0; i < 5; i++ {
				va := stepValues(dataA, len(models), tc.domain)
				vb := stepValues(dataB, len(models), tc.domain)
				if tc.planned {
					if _, err := srv.CollectPlanned(va); err != nil {
						t.Fatal(err)
					}
					if _, err := restored.CollectPlanned(vb); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := srv.Collect(va, 0.2); err != nil {
						t.Fatal(err)
					}
					if _, err := restored.Collect(vb, 0.2); err != nil {
						t.Fatal(err)
					}
				}
			}
			mustAgree(t, srv, restored, sample)
		})
	}
}

// TestApplyStepReplay rebuilds a server from an early snapshot plus
// step records — the recovery path — and checks it matches the
// uninterrupted original exactly, including the noise stream.
func TestApplyStepReplay(t *testing.T) {
	chain := stateChain(t, [][]float64{{0.8, 0.2}, {0.3, 0.7}})
	models := []AdversaryModel{{Backward: chain}, {}, {Backward: chain}}
	srv, err := NewServer(2, 3, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNoiseSeed(11)
	data := rand.New(rand.NewSource(5))

	var early *ServerState
	var records []StepRecord
	for i := 0; i < 9; i++ {
		if i == 4 {
			early = srv.Snapshot()
		}
		values := stepValues(data, 3, 2)
		eps := 0.1 + 0.1*float64(i%3)
		noisy, err := srv.Collect(values, eps)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, StepRecord{
			T:          srv.T(),
			Eps:        eps,
			Published:  append([]float64(nil), noisy...),
			NoiseDraws: srv.NoiseState().Draws,
		})
	}

	restored, err := RestoreServer(early, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if rec.T <= early.T() {
			continue
		}
		if err := restored.ApplyStep(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustAgree(t, srv, restored, []int{0, 1, 2})
	if got, want := restored.NoiseState(), srv.NoiseState(); got != want {
		t.Fatalf("noise state diverged: %+v != %+v", got, want)
	}
	// And the next live step must still be bit-identical.
	va := stepValues(rand.New(rand.NewSource(6)), 3, 2)
	pa, err := srv.Collect(va, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := restored.Collect(va, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSeries(t, "post-replay publish", pb, pa)

	// Replay misuse: gaps and garbage are rejected.
	if err := restored.ApplyStep(StepRecord{T: restored.T() + 2, Eps: 0.1, Published: []float64{0, 0}}); !errors.Is(err, ErrBadServerState) {
		t.Fatalf("gap record: %v", err)
	}
	if err := restored.ApplyStep(StepRecord{T: restored.T() + 1, Eps: -1, Published: []float64{0, 0}}); !errors.Is(err, ErrBadServerState) {
		t.Fatalf("bad budget record: %v", err)
	}
	if err := restored.ApplyStep(StepRecord{T: restored.T() + 1, Eps: 0.1, Published: []float64{0}}); !errors.Is(err, ErrBadServerState) {
		t.Fatalf("wrong-domain record: %v", err)
	}
}

// TestRestoreReseedProvenance: a server with an unrestorable noise
// stream restores with reseeded provenance, and the accounting is
// unaffected.
func TestRestoreReseedProvenance(t *testing.T) {
	models := []AdversaryModel{{Backward: stateChain(t, [][]float64{{0.9, 0.1}, {0.2, 0.8}})}}
	srv, err := NewServer(2, 1, models, rand.New(rand.NewSource(123))) // external rng
	if err != nil {
		t.Fatal(err)
	}
	if ns := srv.NoiseState(); ns.Provenance != NoiseExternal {
		t.Fatalf("provenance %q, want external", ns.Provenance)
	}
	for i := 0; i < 4; i++ {
		if _, err := srv.Collect([]int{i % 2}, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Snapshot()
	if st.RNG.Provenance != NoiseExternal || st.RNG.Seed != 0 {
		t.Fatalf("external snapshot leaked RNG detail: %+v", st.RNG)
	}
	restored, err := RestoreServer(st, RestoreOptions{ReseedSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if ns := restored.NoiseState(); ns.Provenance != NoiseReseeded {
		t.Fatalf("restored provenance %q, want reseeded", ns.Provenance)
	}
	mustAgree(t, srv, restored, []int{0})

	// Ephemeral seeds likewise never reach the snapshot.
	srv2, err := NewServer(2, 1, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv2.SetEphemeralNoiseSeed(555)
	st2 := srv2.Snapshot()
	if st2.RNG.Provenance != NoiseEphemeral || st2.RNG.Seed != 0 {
		t.Fatalf("ephemeral snapshot leaked the seed: %+v", st2.RNG)
	}
}

// TestRestoreRejectsCorruptState: structural corruption in any layer of
// the snapshot fails with ErrBadServerState.
func TestRestoreRejectsCorruptState(t *testing.T) {
	chain := stateChain(t, [][]float64{{0.8, 0.2}, {0.3, 0.7}})
	srv, err := NewServer(2, 4, []AdversaryModel{{Backward: chain}, {}, {Backward: chain}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		if _, err := srv.Collect(stepValues(data, 4, 2), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	mutations := map[string]func(st *ServerState){
		"domain-zero":           func(st *ServerState) { st.Domain = 0 },
		"user-map-short":        func(st *ServerState) { st.UserCohort = st.UserCohort[:2] },
		"cohort-index-wild":     func(st *ServerState) { st.UserCohort[1] = 9 },
		"first-user-wrong":      func(st *ServerState) { st.Cohorts[0].FirstUser = 3 },
		"budget-negative":       func(st *ServerState) { st.Budgets[1] = -0.5 },
		"published-missing":     func(st *ServerState) { st.Published = st.Published[:1] },
		"published-wrong-width": func(st *ServerState) { st.Published[0] = []float64{1} },
		"sensitivity-zero":      func(st *ServerState) { st.Sensitivity = 0 },
		"noise-unknown":         func(st *ServerState) { st.Noise = 9 },
		"plan-base-wild":        func(st *ServerState) { st.PlanBase = 99 },
		"provenance-unknown":    func(st *ServerState) { st.RNG.Provenance = "quantum" },
		"accountant-truncated": func(st *ServerState) {
			st.Cohorts[0].Accountant.Eps = st.Cohorts[0].Accountant.Eps[:1]
			st.Cohorts[0].Accountant.BPL = st.Cohorts[0].Accountant.BPL[:1]
		},
		"chain-not-stochastic": func(st *ServerState) { st.Cohorts[0].Backward[0][0] = 0.5 },
		"chain-swapped":        func(st *ServerState) { st.Cohorts[0].Backward = [][]float64{{0.5, 0.5}, {0.5, 0.5}} },
		"accountant-nil":       func(st *ServerState) { st.Cohorts[1].Accountant = nil },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			st := snapshotRoundTrip(t, srv.Snapshot()) // deep copy via gob
			mutate(st)
			if _, err := RestoreServer(st, RestoreOptions{}); !errors.Is(err, ErrBadServerState) {
				t.Fatalf("corrupt state: want ErrBadServerState, got %v", err)
			}
		})
	}
	// Plan mismatches both ways.
	st := srv.Snapshot()
	plan, err := release.UpperBound(chain, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreServer(st, RestoreOptions{Plan: plan}); !errors.Is(err, ErrBadServerState) {
		t.Fatalf("unexpected plan accepted: %v", err)
	}
	srv.SetPlan(plan)
	if _, err := RestoreServer(srv.Snapshot(), RestoreOptions{}); !errors.Is(err, ErrBadServerState) {
		t.Fatalf("missing plan accepted: %v", err)
	}
}

// TestSnapshotSharesCompiledEngines: restoring many sessions through
// one cache compiles each distinct chain once.
func TestSnapshotSharesCompiledEngines(t *testing.T) {
	chain := stateChain(t, [][]float64{{0.8, 0.2}, {0.3, 0.7}})
	cache := NewModelCache()
	var states []*ServerState
	for i := 0; i < 3; i++ {
		srv, err := NewServerCached(2, 2, []AdversaryModel{{Backward: chain}, {Backward: chain}}, nil, cache)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Collect([]int{0, 1}, 0.1); err != nil {
			t.Fatal(err)
		}
		// Touch the quantifier so the engine compiles.
		if _, err := srv.Report(); err != nil {
			t.Fatal(err)
		}
		states = append(states, srv.Snapshot())
	}
	before := cache.Stats()
	for _, st := range states {
		if _, err := RestoreServer(st, RestoreOptions{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("restores recompiled models: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Size != 1 {
		t.Fatalf("cache holds %d models, want 1", after.Size)
	}
}
