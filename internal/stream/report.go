package stream

import (
	"fmt"

	"repro/internal/report"
)

// Table renders the leakage summary as a report.Table, comparing the
// guarantee a correlation-unaware analysis would claim against the
// temporal privacy leakage actually accumulated, at the granularities
// of the paper's Table II. It renders in every report format, so a
// server's privacy posture drops straight into the same documents as
// the experiment harness output.
func (r *Report) Table() *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("Leakage summary after %d releases", r.T),
		Header: []string{"privacy notion", "claimed (no correlation)", "realized (temporal)"},
	}
	tb.AddRow("event-level", fmt.Sprintf("%.6f", r.NominalEventLevel), fmt.Sprintf("%.6f", r.EventLevelAlpha))
	tb.AddRow("user-level", fmt.Sprintf("%.6f", r.UserLevel), fmt.Sprintf("%.6f", r.UserLevel))
	if r.T > 0 {
		tb.AddNote(fmt.Sprintf("worst-case user: %d (attains the event-level alpha of the overall alpha-DP_T guarantee)", r.WorstUser))
		tb.AddNote("user-level leakage is the budget sum regardless of correlation (Corollary 1)")
	}
	return tb
}

// ReportTable computes the current summary and renders it as a
// report.Table in one step: the leakage-report path of the CLIs and
// the generated docs.
func (s *Server) ReportTable() (*report.Table, error) {
	r, err := s.Report()
	if err != nil {
		return nil, err
	}
	return r.Table(), nil
}
