package stream

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/markov"
)

// TestModelCacheDedup checks that a server compiles each distinct chain
// content once: cohorts sharing a chain (even across the
// backward/forward roles) hit the cache, and leakage is unchanged.
func TestModelCacheDedup(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	pbCopy, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{
		{Backward: pb, Forward: pf},
		{Backward: pbCopy},          // same backward content, new cohort
		{Backward: pf, Forward: pb}, // roles swapped: same two chains
		{},
	}
	cache := NewModelCache()
	s, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(2)), cache)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	// Two distinct chain contents total, across four cohorts and both
	// correlation roles.
	if st.Size != 2 || st.Misses != 2 {
		t.Fatalf("cache stats %+v, want 2 compiled models", st)
	}
	if st.Hits == 0 {
		t.Fatalf("cache stats %+v, expected hits from shared contents", st)
	}
	if _, err := s.Collect(make([]int, len(models)), 0.2); err != nil {
		t.Fatal(err)
	}
	// Shared engines must not change the numbers: compare against
	// dedicated accountants.
	for u, m := range models {
		acc := core.NewAccountant(m.Backward, m.Forward)
		if _, err := acc.Observe(0.2); err != nil {
			t.Fatal(err)
		}
		want, err := acc.TPL(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.UserTPL(u, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("user %d: TPL %v with shared engine, %v dedicated", u, got, want)
		}
	}
}

// TestModelCacheAcrossServers shares one cache between servers — the
// session-registry pattern — and checks the second server compiles
// nothing new.
func TestModelCacheAcrossServers(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	models := []AdversaryModel{{Backward: pb, Forward: pf}, {Backward: pb}}
	cache := NewModelCache()
	s1, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(3)), cache)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	// Content-equal chains under fresh pointers: still fully cached.
	pb2, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := markov.New(pf.P())
	if err != nil {
		t.Fatal(err)
	}
	models2 := []AdversaryModel{{Backward: pb2, Forward: pf2}}
	s2, err := NewServerCached(pb.N(), 1, models2, rand.New(rand.NewSource(4)), cache)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != misses {
		t.Fatalf("second server compiled %d new models, want 0 (stats %+v)", st.Misses-misses, st)
	}
	// Both servers account identically for the shared model.
	for i := 0; i < 3; i++ {
		if _, err := s1.Collect(make([]int, 2), 0.1); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Collect(make([]int, 1), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	a, err := s1.UserTPL(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.UserTPL(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("shared-model TPL diverged across servers: %v vs %v", a, b)
	}
}

// TestActivateNamed covers the named-revision activation seam: atomic
// swap semantics, one-revision-per-resolve, precompilation through the
// content cache, and content sharing across revisions.
func TestActivateNamed(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	cache := NewModelCache()
	if rev := cache.NamedRevision(); rev != "" {
		t.Fatalf("fresh cache has named revision %q", rev)
	}
	if rev, _, missing := cache.ResolveNamed([]string{"road"}); rev != "" || len(missing) != 1 {
		t.Fatalf("resolve before activation: rev=%q missing=%v", rev, missing)
	}

	cache.ActivateNamed("rev1", map[string]AdversaryModel{
		"road": {Backward: pb, Forward: pf},
		"none": {},
	})
	// Activation precompiled both chains.
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("activation compiled %d models, want 2 (stats %+v)", st.Misses, st)
	}
	rev, models, missing := cache.ResolveNamed([]string{"road", "none"})
	if rev != "rev1" || missing != nil || len(models) != 2 {
		t.Fatalf("resolve: rev=%q models=%d missing=%v", rev, len(models), missing)
	}
	if models[0].Backward != pb || models[0].Forward != pf || models[1].Backward != nil {
		t.Fatalf("resolved models do not match activation")
	}
	if names := cache.NamedModels(); len(names) != 2 || names[0] != "none" || names[1] != "road" {
		t.Fatalf("NamedModels = %v", names)
	}
	// A partially-missing resolve returns no models and the missing names.
	if _, models, missing := cache.ResolveNamed([]string{"road", "ghost"}); models != nil || len(missing) != 1 || missing[0] != "ghost" {
		t.Fatalf("partial resolve: models=%v missing=%v", models, missing)
	}

	// A server built from rev1's resolution keeps its chains after the
	// table swaps to rev2 — activation never rebinds a live accountant.
	_, res, _ := cache.ResolveNamed([]string{"road"})
	s1, err := NewServerCached(pb.N(), 1, []AdversaryModel{res[0]}, rand.New(rand.NewSource(1)), cache)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	cache.ActivateNamed("rev2", map[string]AdversaryModel{
		"road": {Backward: pf}, // new content for the name...
		"map":  {Backward: pb}, // ...and rev1 content under a new name
	})
	if st := cache.Stats(); st.Misses != misses {
		t.Fatalf("rev2 activation compiled %d new models, want 0 — both chains were already compiled (stats %+v)", st.Misses-misses, st)
	}
	if rev := cache.NamedRevision(); rev != "rev2" {
		t.Fatalf("active revision %q, want rev2", rev)
	}
	if _, err := s1.Collect([]int{0}, 0.2); err != nil {
		t.Fatal(err)
	}
	got, err := s1.UserTPL(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := core.NewAccountant(pb, pf) // rev1's model, the one s1 pinned
	if _, err := acc.Observe(0.2); err != nil {
		t.Fatal(err)
	}
	want, err := acc.TPL(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pinned session TPL %v, want rev1 model's %v", got, want)
	}
}

// TestActivateNamedRace races activations against resolutions and
// checks every resolve sees a consistent revision (run under -race).
func TestActivateNamedRace(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	cache := NewModelCache()
	cache.ActivateNamed("rev0", map[string]AdversaryModel{"a": {Backward: pb}, "b": {Backward: pf}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rev := "rev1"
			if i%2 == 0 {
				rev = "rev2"
			}
			cache.ActivateNamed(rev, map[string]AdversaryModel{"a": {Backward: pb, Forward: pf}, "b": {}})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rev, models, missing := cache.ResolveNamed([]string{"a", "b"})
				if missing != nil {
					t.Errorf("resolve missing %v under revision %q", missing, rev)
					return
				}
				if len(models) != 2 {
					t.Errorf("resolve returned %d models", len(models))
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestModelCacheSharedRace is the race test for compiled engines shared
// across cohorts and servers: many servers built concurrently from one
// cache, collecting and reading concurrently, all over the same two
// chains (run under -race in CI).
func TestModelCacheSharedRace(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	cache := NewModelCache()
	const servers = 6
	var wg sync.WaitGroup
	for g := 0; g < servers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			models := []AdversaryModel{
				{Backward: pb, Forward: pf},
				{Backward: pb},
				{},
			}
			s, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(int64(g))), cache)
			if err != nil {
				t.Error(err)
				return
			}
			values := make([]int, len(models))
			var inner sync.WaitGroup
			inner.Add(1)
			go func() { // concurrent reader against this server
				defer inner.Done()
				for i := 0; i < 20; i++ {
					if s.T() > 0 {
						if _, err := s.Report(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
			for i := 0; i < 20; i++ {
				if _, err := s.Collect(values, 0.05); err != nil {
					t.Error(err)
					return
				}
			}
			inner.Wait()
			if _, err := s.UserTPL(0, 20); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("compiled %d models across %d racing servers, want 2 (stats %+v)", st.Misses, servers, st)
	}
}
