package stream

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

// TestModelCacheDedup checks that a server compiles each distinct chain
// content once: cohorts sharing a chain (even across the
// backward/forward roles) hit the cache, and leakage is unchanged.
func TestModelCacheDedup(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	pbCopy, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{
		{Backward: pb, Forward: pf},
		{Backward: pbCopy},          // same backward content, new cohort
		{Backward: pf, Forward: pb}, // roles swapped: same two chains
		{},
	}
	cache := NewModelCache()
	s, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(2)), cache)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	// Two distinct chain contents total, across four cohorts and both
	// correlation roles.
	if st.Size != 2 || st.Misses != 2 {
		t.Fatalf("cache stats %+v, want 2 compiled models", st)
	}
	if st.Hits == 0 {
		t.Fatalf("cache stats %+v, expected hits from shared contents", st)
	}
	if _, err := s.Collect(make([]int, len(models)), 0.2); err != nil {
		t.Fatal(err)
	}
	// Shared engines must not change the numbers: compare against
	// dedicated accountants.
	for u, m := range models {
		acc := core.NewAccountant(m.Backward, m.Forward)
		if _, err := acc.Observe(0.2); err != nil {
			t.Fatal(err)
		}
		want, err := acc.TPL(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.UserTPL(u, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("user %d: TPL %v with shared engine, %v dedicated", u, got, want)
		}
	}
}

// TestModelCacheAcrossServers shares one cache between servers — the
// session-registry pattern — and checks the second server compiles
// nothing new.
func TestModelCacheAcrossServers(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	models := []AdversaryModel{{Backward: pb, Forward: pf}, {Backward: pb}}
	cache := NewModelCache()
	s1, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(3)), cache)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	// Content-equal chains under fresh pointers: still fully cached.
	pb2, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := markov.New(pf.P())
	if err != nil {
		t.Fatal(err)
	}
	models2 := []AdversaryModel{{Backward: pb2, Forward: pf2}}
	s2, err := NewServerCached(pb.N(), 1, models2, rand.New(rand.NewSource(4)), cache)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != misses {
		t.Fatalf("second server compiled %d new models, want 0 (stats %+v)", st.Misses-misses, st)
	}
	// Both servers account identically for the shared model.
	for i := 0; i < 3; i++ {
		if _, err := s1.Collect(make([]int, 2), 0.1); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Collect(make([]int, 1), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	a, err := s1.UserTPL(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.UserTPL(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("shared-model TPL diverged across servers: %v vs %v", a, b)
	}
}

// TestModelCacheSharedRace is the race test for compiled engines shared
// across cohorts and servers: many servers built concurrently from one
// cache, collecting and reading concurrently, all over the same two
// chains (run under -race in CI).
func TestModelCacheSharedRace(t *testing.T) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	cache := NewModelCache()
	const servers = 6
	var wg sync.WaitGroup
	for g := 0; g < servers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			models := []AdversaryModel{
				{Backward: pb, Forward: pf},
				{Backward: pb},
				{},
			}
			s, err := NewServerCached(pb.N(), len(models), models, rand.New(rand.NewSource(int64(g))), cache)
			if err != nil {
				t.Error(err)
				return
			}
			values := make([]int, len(models))
			var inner sync.WaitGroup
			inner.Add(1)
			go func() { // concurrent reader against this server
				defer inner.Done()
				for i := 0; i < 20; i++ {
					if s.T() > 0 {
						if _, err := s.Report(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
			for i := 0; i < 20; i++ {
				if _, err := s.Collect(values, 0.05); err != nil {
					t.Error(err)
					return
				}
			}
			inner.Wait()
			if _, err := s.UserTPL(0, 20); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("compiled %d models across %d racing servers, want 2 (stats %+v)", st.Misses, servers, st)
	}
}
