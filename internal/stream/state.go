package stream

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/chunked"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/release"
)

// ErrBadServerState is wrapped by every RestoreServer/ApplyStep
// rejection: corrupt, truncated or inconsistent state must never
// restore into a server claiming a smaller leakage than was accrued.
var ErrBadServerState = errors.New("stream: invalid server state")

// CohortState is one cohort's share of a snapshot: the adversary
// model's chain content (from which the compiled engine is re-derived
// on restore — engines are never serialized) and the accountant state.
//
//tplvet:wire v2 schema=007e4468ff2c
type CohortState struct {
	FirstUser int
	// Backward, Forward are the transition rows of the cohort's chains;
	// nil means no correlation in that direction.
	Backward [][]float64
	Forward  [][]float64
	// Accountant carries the leakage series plus the content hashes the
	// restore re-binds against.
	Accountant *core.AccountantState
}

// ServerState is the explicit, serializable value of a Server: every
// piece of state a restart would otherwise lose. It is a deep copy;
// mutating it never affects the server it came from.
//
// Plans are not serialized — they are pure functions of their
// construction parameters, which the owning layer (service configs)
// retains; the snapshot records only the attachment position so a
// rebuilt plan resumes at the right step.
//
//tplvet:wire v2 schema=624116c4936f
type ServerState struct {
	Domain      int
	Users       int
	Workers     int
	Sensitivity float64
	Noise       int // release.Noise
	UserCohort  []int
	Cohorts     []CohortState
	Published   [][]float64
	Budgets     []float64
	HasPlan     bool
	PlanBase    int
	RNG         NoiseState
}

// T returns the number of published steps the state covers.
func (st *ServerState) T() int { return len(st.Budgets) }

// chainRows extracts a chain's transition rows (nil chain -> nil).
func chainRows(c *markov.Chain) [][]float64 {
	if c == nil {
		return nil
	}
	return c.Rows()
}

// Snapshot captures the server's complete state as an explicit value:
// cohorts (model content + accountant series), the per-user cohort map,
// the published history and budgets, the plan position, and the noise
// stream position. Safe to call concurrently with readers; it takes the
// same locks a Report does.
func (s *Server) Snapshot() *ServerState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := &ServerState{
		Domain:      s.domain,
		Users:       s.users,
		Workers:     s.workers,
		Sensitivity: s.sensitivity,
		Noise:       int(s.noise),
		UserCohort:  append([]int(nil), s.userCohort...),
		Budgets:     s.budgets.CopyAll(),
		HasPlan:     s.plan != nil,
		PlanBase:    s.planBase,
		RNG:         s.noiseStateLocked(),
	}
	st.Published = make([][]float64, s.published.Len())
	for i := range st.Published {
		st.Published[i] = append([]float64(nil), s.published.At(i)...)
	}
	st.Cohorts = make([]CohortState, len(s.cohorts))
	for i, c := range s.cohorts {
		c.mu.Lock()
		acc := c.acc.Snapshot()
		c.mu.Unlock()
		st.Cohorts[i] = CohortState{
			FirstUser:  c.firstUser,
			Backward:   chainRows(c.backward),
			Forward:    chainRows(c.forward),
			Accountant: acc,
		}
	}
	return st
}

// RestoreOptions parameterizes RestoreServer.
type RestoreOptions struct {
	// Cache deduplicates the compiled correlation models the restore
	// re-derives from chain content; nil gives the server a private one.
	// Restoring a fleet of sessions through one cache compiles each
	// distinct matrix once, exactly like creating them did.
	Cache *ModelCache
	// Plan re-attaches a budget plan at the snapshot's recorded
	// position. Required when the state says a plan was attached
	// (plans are rebuilt by the layer that knows their construction
	// parameters, not serialized).
	Plan release.Plan
	// ReseedSeed seeds the noise stream when the snapshot's RNG is not
	// restorable (ephemeral/external/reseeded provenance). The restored
	// server records NoiseReseeded provenance. Zero (the natural
	// omission) means "draw one from OS entropy" — a fixed default
	// would hand every careless restore the same predictable noise
	// stream, the exact hole the ephemeral-seed design closes.
	ReseedSeed int64
}

// entropySeed draws a reseed value from the OS entropy source.
func entropySeed() (int64, error) {
	var buf [8]byte
	if _, err := crand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("stream: drawing reseed entropy: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

// badState wraps a restore rejection with ErrBadServerState.
func badState(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadServerState, fmt.Sprintf(format, args...))
}

// validate checks every structural invariant of a snapshot before any
// of it is adopted.
func (st *ServerState) validate() error {
	if st.Domain <= 0 {
		return badState("domain %d", st.Domain)
	}
	if st.Users <= 0 {
		return badState("users %d", st.Users)
	}
	if st.Workers < 0 {
		return badState("workers %d", st.Workers)
	}
	if len(st.UserCohort) != st.Users {
		return badState("%d cohort assignments for %d users", len(st.UserCohort), st.Users)
	}
	if len(st.Cohorts) == 0 || len(st.Cohorts) > st.Users {
		return badState("%d cohorts for %d users", len(st.Cohorts), st.Users)
	}
	// Every cohort must be referenced, and its FirstUser must be the
	// first reference — the Report tie-breaking contract depends on it.
	first := make([]int, len(st.Cohorts))
	for i := range first {
		first[i] = -1
	}
	for u, ci := range st.UserCohort {
		if ci < 0 || ci >= len(st.Cohorts) {
			return badState("user %d assigned to cohort %d of %d", u, ci, len(st.Cohorts))
		}
		if first[ci] == -1 {
			first[ci] = u
		}
	}
	for ci, u := range first {
		if u == -1 {
			return badState("cohort %d has no members", ci)
		}
		if st.Cohorts[ci].FirstUser != u {
			return badState("cohort %d records first user %d but the map says %d", ci, st.Cohorts[ci].FirstUser, u)
		}
	}
	if len(st.Published) != len(st.Budgets) {
		return badState("%d published steps but %d budgets", len(st.Published), len(st.Budgets))
	}
	for t, row := range st.Published {
		if len(row) != st.Domain {
			return badState("published step %d has %d bins, domain is %d", t+1, len(row), st.Domain)
		}
	}
	for t, e := range st.Budgets {
		if err := core.CheckBudget(e); err != nil {
			return badState("budget at step %d: %v", t+1, err)
		}
	}
	if st.Sensitivity <= 0 || math.IsNaN(st.Sensitivity) || math.IsInf(st.Sensitivity, 0) {
		return badState("sensitivity %v", st.Sensitivity)
	}
	switch release.Noise(st.Noise) {
	case release.LaplaceNoise:
	case release.GeometricNoise:
		if st.Sensitivity != math.Trunc(st.Sensitivity) {
			return badState("geometric noise with non-integral sensitivity %v", st.Sensitivity)
		}
	default:
		return badState("unknown noise kind %d", st.Noise)
	}
	if st.PlanBase < 0 || st.PlanBase > len(st.Budgets) {
		return badState("plan base %d outside [0,%d]", st.PlanBase, len(st.Budgets))
	}
	switch st.RNG.Provenance {
	case NoiseSeeded, NoiseEphemeral, NoiseExternal, NoiseReseeded:
	default:
		return badState("unknown noise provenance %q", st.RNG.Provenance)
	}
	for ci, c := range st.Cohorts {
		if c.Accountant == nil {
			return badState("cohort %d has no accountant state", ci)
		}
		if c.Accountant.T() != len(st.Budgets) {
			return badState("cohort %d accountant covers %d steps, server published %d", ci, c.Accountant.T(), len(st.Budgets))
		}
	}
	return nil
}

// RestoreServer rebuilds a server from a snapshot. The compiled leakage
// engines are re-attached by content: each cohort's chains are
// revalidated, fingerprinted and resolved through the cache, then the
// accountant state is re-bound against the resulting quantifiers'
// content hashes (a mismatch — state captured against one model,
// restored against another — is rejected). The restored server answers
// Report, UserTPLSeries, WEvent and every other read identically to the
// original, bit for bit.
func RestoreServer(st *ServerState, opts RestoreOptions) (*Server, error) {
	if st == nil {
		return nil, badState("nil state")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	if st.HasPlan && opts.Plan == nil {
		return nil, badState("snapshot has an attached plan; RestoreOptions.Plan must supply the rebuilt plan")
	}
	if !st.HasPlan && opts.Plan != nil {
		return nil, badState("snapshot has no plan but RestoreOptions.Plan is set")
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewModelCache()
	}
	s := &Server{
		domain:      st.Domain,
		users:       st.Users,
		workers:     st.Workers,
		sensitivity: st.Sensitivity,
		noise:       release.Noise(st.Noise),
		userCohort:  append([]int(nil), st.UserCohort...),
		budgets:     chunked.FromSlice(st.Budgets),
		planBase:    st.PlanBase,
		plan:        opts.Plan,
	}
	for _, row := range st.Published {
		s.published.Append(append([]float64(nil), row...))
	}
	fps := make(map[*markov.Chain]string)
	restoreChain := func(ci int, dir string, rows [][]float64) (*markov.Chain, string, error) {
		if rows == nil {
			return nil, "-", nil
		}
		c, err := markov.FromRows(rows)
		if err != nil {
			return nil, "", badState("cohort %d %s chain: %v", ci, dir, err)
		}
		if c.N() != st.Domain {
			return nil, "", badState("cohort %d %s chain has %d states, domain is %d", ci, dir, c.N(), st.Domain)
		}
		return c, chainFingerprint(c, fps), nil
	}
	for ci, cs := range st.Cohorts {
		pb, bfp, err := restoreChain(ci, "backward", cs.Backward)
		if err != nil {
			return nil, err
		}
		pf, ffp, err := restoreChain(ci, "forward", cs.Forward)
		if err != nil {
			return nil, err
		}
		acc, err := core.RestoreAccountant(cs.Accountant, cache.quantifier(pb, bfp), cache.quantifier(pf, ffp))
		if err != nil {
			return nil, fmt.Errorf("%w: cohort %d: %v", ErrBadServerState, ci, err)
		}
		s.cohorts = append(s.cohorts, &cohort{acc: acc, firstUser: cs.FirstUser, backward: pb, forward: pf})
	}
	if st.RNG.Provenance == NoiseSeeded {
		s.setNoiseSourceLocked(st.RNG.Seed, NoiseSeeded)
		s.noiseSrc.skip(st.RNG.Draws)
	} else {
		// The snapshot's noise stream cannot be reproduced (its seed was
		// withheld or never known). Re-seed and record that the stream
		// history broke here — the provenance survives into future
		// snapshots so the break stays auditable.
		seed := opts.ReseedSeed
		if seed == 0 {
			var err error
			if seed, err = entropySeed(); err != nil {
				return nil, err
			}
		}
		s.setNoiseSourceLocked(seed, NoiseReseeded)
	}
	return s, nil
}

// StepRecord is the journal form of one published step: everything a
// replay needs to bring a restored server from step T-1 to step T
// without re-drawing noise. It is deliberately free of derived leakage
// values — replay recomputes them through the accountants, so a
// tampered journal cannot assert a leakage the series does not imply.
//
//tplvet:wire v1 schema=95e9cde6239e
type StepRecord struct {
	// T is the 1-based step this record publishes.
	T int
	// Eps is the budget the step charged.
	Eps float64
	// Published is the noisy histogram that was released.
	Published []float64
	// NoiseDraws is the noise-stream position after the step (0 when the
	// stream was untracked).
	NoiseDraws uint64
}

// ApplyStep replays one journal record: it charges the budget to every
// cohort, appends the already-published histogram verbatim, and
// fast-forwards the noise stream to the recorded position. Records must
// arrive in order with no gaps. Used during recovery (snapshot +
// journal tail); live traffic goes through Collect.
func (s *Server) ApplyStep(rec StepRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.T != s.budgets.Len()+1 {
		return badState("step record for t=%d but server is at t=%d", rec.T, s.budgets.Len())
	}
	if err := core.CheckBudget(rec.Eps); err != nil {
		return badState("step %d: %v", rec.T, err)
	}
	if len(rec.Published) != s.domain {
		return badState("step %d publishes %d bins, domain is %d", rec.T, len(rec.Published), s.domain)
	}
	s.observeAll([]float64{rec.Eps})
	s.published.Append(append([]float64(nil), rec.Published...))
	s.budgets.Append(rec.Eps)
	if s.noiseSrc != nil && s.noiseProvenance == NoiseSeeded && rec.NoiseDraws > s.noiseSrc.draws {
		s.noiseSrc.skip(rec.NoiseDraws - s.noiseSrc.draws)
	}
	return nil
}
