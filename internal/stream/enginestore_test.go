package stream

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

// memStore is an in-memory EngineStore recording its traffic, so the
// tests can see exactly when the model cache consults the persistent
// tier and with which keys.
type memStore struct {
	mu     sync.Mutex
	m      map[string]*core.Engine
	loads  []string
	stores []string
}

func newMemStore() *memStore { return &memStore{m: map[string]*core.Engine{}} }

func (s *memStore) Load(hash string, n int) (*core.Engine, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads = append(s.loads, hash)
	e, ok := s.m[hash]
	if !ok || e.N() != n {
		return nil, false
	}
	return e, true
}

func (s *memStore) Store(hash string, e *core.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores = append(s.stores, hash)
	s.m[hash] = e
}

// TestModelCacheEngineStoreRoundTrip pins the two sides of the
// persistent tier: a cold cache compiles and persists through the
// store, and a second cache sharing the store adopts the persisted
// engine instead of compiling — observable because the adopted engine
// is pointer-identical to the stored one.
func TestModelCacheEngineStoreRoundTrip(t *testing.T) {
	pb, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	models := []AdversaryModel{{Backward: pb}}
	store := newMemStore()

	// Cold process: miss on load, compile on first evaluation, persist.
	mc1 := NewModelCache()
	mc1.SetEngineStore(store)
	s1, err := NewServerCached(2, 1, models, nil, mc1)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.loads) != 1 || len(store.stores) != 0 {
		t.Fatalf("construction traffic: loads=%v stores=%v", store.loads, store.stores)
	}
	// Two steps: the first BPL is the bare budget, so the engine only
	// compiles (and persists) when the second step evaluates the
	// backward loss.
	e := 0.1
	twoSteps := []BatchStep{{Counts: []int{1, 0}, Eps: &e}, {Counts: []int{0, 1}, Eps: &e}}
	if _, err := s1.CollectBatch(twoSteps); err != nil {
		t.Fatal(err)
	}
	if len(store.stores) != 1 {
		t.Fatalf("first evaluation did not persist the engine: stores=%v", store.stores)
	}
	wantHash := core.NewQuantifier(pb).ContentHash()
	if store.stores[0] != wantHash {
		t.Fatalf("stored under %s, want the chain's content hash %s", store.stores[0], wantHash)
	}

	// Warm process: the same chain content adopts the persisted engine.
	mc2 := NewModelCache()
	mc2.SetEngineStore(store)
	pb2, err := markov.New(pb.P())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServerCached(2, 1, []AdversaryModel{{Backward: pb2}}, nil, mc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CollectBatch(twoSteps); err != nil {
		t.Fatal(err)
	}
	if len(store.stores) != 1 {
		t.Fatalf("warm start recompiled and re-persisted: stores=%v", store.stores)
	}
	// The cached quantifier must hand back the exact engine object the
	// store holds — adoption, not a fresh compile that happened to agree.
	if got := mc2.quantifier(pb2, chainFingerprint(pb2, map[*markov.Chain]string{})).Engine(); got != store.m[wantHash] {
		t.Fatal("warm server did not adopt the stored engine")
	}
	_ = s2

	// Same-process second sight never re-consults the store: the
	// in-memory map answers first.
	before := len(store.loads)
	if _, err := NewServerCached(2, 1, []AdversaryModel{{Backward: pb}}, nil, mc1); err != nil {
		t.Fatal(err)
	}
	if len(store.loads) != before {
		t.Fatalf("in-memory hit consulted the store: loads=%v", store.loads)
	}
}
