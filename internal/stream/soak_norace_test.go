//go:build !race

package stream

// soakSteps is the release count the chunked-history soak walks. The
// full run is a bit over 1M steps — far past the point where the old
// doubling slices would have re-copied the history eight-plus times —
// and crosses 256 chunk boundaries.
const soakSteps = 1<<20 + 37
