package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
	"repro/internal/release"
	"repro/internal/trace"
)

// TestEndToEndFig1Pipeline exercises the full stack of the paper's
// Fig. 1: road network -> mobility chains -> simulated population ->
// noisy continuous release -> leakage accounting -> replanning, with
// every module talking to its real neighbors (no mocks).
func TestEndToEndFig1Pipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))

	// Build the world.
	net := trace.Fig1Network()
	forward, err := net.UniformChain()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := forward.Stationary(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	backward, err := forward.Reverse(pi)
	if err != nil {
		t.Fatal(err)
	}

	const users, T, eps = 60, 8, 0.25
	pop, err := trace.NewPopulation(forward, users, matrix.Uniform(net.N()), rng)
	if err != nil {
		t.Fatal(err)
	}
	models := make([]AdversaryModel, users)
	for i := range models {
		models[i] = AdversaryModel{Backward: backward, Forward: forward}
	}
	srv, err := NewServer(net.N(), users, models, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Release T steps; every histogram must have one cell per location
	// and be a plausible perturbation of the truth.
	for step := 0; step < T; step++ {
		if step > 0 {
			pop.Advance()
		}
		truth := pop.Counts()
		noisy, err := srv.Collect(pop.Locations(), eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(noisy) != net.N() {
			t.Fatalf("step %d: %d cells", step, len(noisy))
		}
		for i := range noisy {
			// eps=0.25, sensitivity 1: |noise| > 60 has probability
			// e^-15; treat as a correctness failure.
			if math.Abs(noisy[i]-float64(truth[i])) > 60 {
				t.Fatalf("step %d cell %d: noisy %v vs true %d", step, i, noisy[i], truth[i])
			}
		}
	}

	// The server's accounting must agree with the batch quantification.
	rep, err := srv.Report()
	if err != nil {
		t.Fatal(err)
	}
	qb, qf := core.NewQuantifier(backward), core.NewQuantifier(forward)
	want, err := core.MaxTPL(qb, qf, core.UniformBudgets(eps, T))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EventLevelAlpha-want) > 1e-9 {
		t.Errorf("server alpha %v vs batch %v", rep.EventLevelAlpha, want)
	}
	if rep.EventLevelAlpha <= eps {
		t.Error("correlation should amplify the event-level leakage")
	}
	if math.Abs(rep.UserLevel-float64(T)*eps) > 1e-9 {
		t.Errorf("user level %v, want T*eps", rep.UserLevel)
	}

	// Replan with the group baseline (the network's deterministic road
	// makes the correlation strongest, so the fine planners refuse) and
	// confirm the replanned budgets keep every user within eps.
	if _, err := release.Quantified(backward, forward, eps, T); err == nil {
		t.Error("expected the fine planner to refuse the deterministic road network")
	}
	group, err := release.GroupPrivacy(eps, T)
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := group.Budgets(T)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := core.MaxTPL(qb, qf, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst > eps+1e-9 {
		t.Errorf("replanned release leaks %v > %v", worst, eps)
	}
}

// TestEndToEndHeterogeneousPopulation runs the personalized pipeline:
// users with different mobility profiles, per-user adversary models
// built from each profile, and a server whose report identifies the
// user whose correlation hurts most.
func TestEndToEndHeterogeneousPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	sticky, err := markov.Lazy(3, 0.97) // strong temporal correlation
	if err != nil {
		t.Fatal(err)
	}
	roamer, err := markov.Lazy(3, 1.0/3) // exactly uniform: no correlation signal
	if err != nil {
		t.Fatal(err)
	}
	chains := []*markov.Chain{sticky, roamer}
	assignment := []int{0, 1, 1, 0, 1, 1}
	mp, err := trace.NewMixedPopulation(chains, assignment, matrix.Uniform(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	models := make([]AdversaryModel, len(assignment))
	for u := range models {
		c, err := mp.Chain(u)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := c.Stationary(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Reverse(pi)
		if err != nil {
			t.Fatal(err)
		}
		models[u] = AdversaryModel{Backward: back, Forward: c}
	}
	srv, err := NewServer(3, len(assignment), models, rng)
	if err != nil {
		t.Fatal(err)
	}
	const T, eps = 10, 0.2
	for step := 0; step < T; step++ {
		if step > 0 {
			mp.Advance()
		}
		if _, err := srv.Collect(mp.Locations(), eps); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := srv.Report()
	if err != nil {
		t.Fatal(err)
	}
	// The worst user must be one of the sticky profiles.
	if assignment[rep.WorstUser] != 0 {
		t.Errorf("worst user %d has the roaming profile; sticky users should leak more", rep.WorstUser)
	}
	// Sticky users leak much more than eps; uniform users exactly eps.
	stickyTPL, err := srv.UserTPL(0, T/2)
	if err != nil {
		t.Fatal(err)
	}
	roamTPL, err := srv.UserTPL(1, T/2)
	if err != nil {
		t.Fatal(err)
	}
	if stickyTPL <= roamTPL {
		t.Errorf("sticky TPL %v should exceed roamer TPL %v", stickyTPL, roamTPL)
	}
	if math.Abs(roamTPL-eps) > 1e-9 {
		t.Errorf("uniform-profile TPL = %v, want exactly eps", roamTPL)
	}
}

// TestEndToEndLearnedAdversary closes the loop the clickstream example
// demonstrates: simulate trajectories, let the adversary learn the
// chain by MLE, and verify the leakage computed against the learned
// chain approximates the leakage against the truth.
func TestEndToEndLearnedAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	truth := markov.MustNew(matrix.MustFromRows([][]float64{
		{0.7, 0.2, 0.1},
		{0.1, 0.7, 0.2},
		{0.2, 0.1, 0.7},
	}))
	var traces [][]int
	for i := 0; i < 30; i++ {
		w, err := truth.Walk(rng, matrix.Uniform(3), 2000)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, w)
	}
	learned, err := markov.EstimateMLE(3, traces, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	eps := core.UniformBudgets(0.2, 10)
	lkTrue, err := core.MaxTPL(core.NewQuantifier(truth), core.NewQuantifier(truth), eps)
	if err != nil {
		t.Fatal(err)
	}
	lkLearned, err := core.MaxTPL(core.NewQuantifier(learned), core.NewQuantifier(learned), eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lkTrue-lkLearned) > 0.05*lkTrue {
		t.Errorf("learned-chain leakage %v far from truth %v", lkLearned, lkTrue)
	}
}
