package stream

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestServerReportTable(t *testing.T) {
	s, err := NewServer(2, 2, twoUserModels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Collect([]int{0, 1}, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := s.ReportTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("summary table has %d rows, want 2", len(tb.Rows))
	}
	// The table renders in every report format and the JSON lines
	// round-trip.
	for _, f := range report.Formats() {
		var buf bytes.Buffer
		if err := tb.RenderFormat(&buf, f); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %v: empty output", f)
		}
	}
	var buf bytes.Buffer
	if err := tb.JSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := report.ParseJSONLines(&buf)
	if err != nil || len(back) != 1 {
		t.Fatalf("round trip: %v", err)
	}
	var text bytes.Buffer
	if err := tb.Render(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	if !strings.Contains(out, "Leakage summary after 5 releases") {
		t.Errorf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "event-level") || !strings.Contains(out, "user-level") {
		t.Errorf("notion rows missing:\n%s", out)
	}
	if !strings.Contains(out, "worst-case user: 0") {
		t.Errorf("worst-user note missing:\n%s", out)
	}
	// The realized event-level cell must show more leakage than the
	// claimed one (the whole point of the paper).
	if tb.Rows[0][2] <= tb.Rows[0][1] {
		t.Errorf("realized %s should exceed claimed %s", tb.Rows[0][2], tb.Rows[0][1])
	}
}

func TestEmptyServerReportTable(t *testing.T) {
	s, err := NewServer(2, 1, []AdversaryModel{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.ReportTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Notes) != 0 {
		t.Error("empty summary should not claim a worst-case user")
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
