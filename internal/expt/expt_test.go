package expt

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestTableRenderAndCSV(t *testing.T) {
	tb := &report.Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"n1"},
	}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "1", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestEveryFigureTableRendersInAllFormats(t *testing.T) {
	// Every figure table must round through every report format; the
	// JSON-lines output must parse back to the same cells.
	r3, err := Fig3(0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	panels, err := Fig4(20)
	if err != nil {
		t.Fatal(err)
	}
	tables := append(r3.Tables(), Fig4Table(panels))
	for _, tb := range tables {
		for _, f := range report.Formats() {
			var buf bytes.Buffer
			if err := tb.RenderFormat(&buf, f); err != nil {
				t.Fatalf("%s in %v: %v", tb.Title, f, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s in %v: empty output", tb.Title, f)
			}
		}
		var buf bytes.Buffer
		if err := tb.JSONLines(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := report.ParseJSONLines(&buf)
		if err != nil {
			t.Fatalf("%s: JSON round trip: %v", tb.Title, err)
		}
		if len(back) != 1 || len(back[0].Rows) != len(tb.Rows) {
			t.Errorf("%s: JSON round trip lost rows", tb.Title)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	r, err := Fig3(0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Strong correlation: linear growth, BPL(10) = 1.0.
	if math.Abs(r.BPL[0][9]-1.0) > 1e-9 {
		t.Errorf("strong BPL(10) = %v, want 1.0", r.BPL[0][9])
	}
	// Paper's printed moderate values.
	wantBPL := []float64{0.10, 0.18, 0.25, 0.30, 0.35, 0.39, 0.42, 0.45, 0.48, 0.50}
	for i, w := range wantBPL {
		if math.Abs(r.BPL[1][i]-w) > 0.005 {
			t.Errorf("moderate BPL[%d] = %v, paper %v", i+1, r.BPL[1][i], w)
		}
	}
	// No correlation: flat at eps.
	for i, v := range r.TPL[2] {
		if math.Abs(v-0.1) > 1e-12 {
			t.Errorf("uncorrelated TPL[%d] = %v", i+1, v)
		}
	}
	// TPL peaks mid-timeline for the moderate case.
	if r.TPL[1][4] <= r.TPL[1][0] {
		t.Error("moderate TPL should peak mid-timeline")
	}
	if _, err := Fig3(0.1, 0); err == nil {
		t.Error("T=0 should fail")
	}
	tables := r.Tables()
	if len(tables) != 3 {
		t.Fatalf("%d tables", len(tables))
	}
	var buf bytes.Buffer
	if err := tables[2].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.64") {
		t.Error("TPL table should contain the paper's peak value 0.64")
	}
}

func TestFig4Shapes(t *testing.T) {
	panels, err := Fig4(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("%d panels", len(panels))
	}
	// (a) and (c) have suprema; (b) and (d) do not.
	if !panels[0].HasSupremum || !panels[2].HasSupremum {
		t.Error("panels (a), (c) should have suprema")
	}
	if panels[1].HasSupremum || panels[3].HasSupremum {
		t.Error("panels (b), (d) should not have suprema")
	}
	// Paper magnitudes: (a) ~0.8, (c) ~1.2.
	if panels[0].Supremum < 0.7 || panels[0].Supremum > 0.9 {
		t.Errorf("panel (a) supremum = %v, paper ~0.8", panels[0].Supremum)
	}
	if panels[2].Supremum < 1.1 || panels[2].Supremum > 1.3 {
		t.Errorf("panel (c) supremum = %v, paper ~1.2", panels[2].Supremum)
	}
	// (d): BPL at t=100 is 100*eps = 23.
	if math.Abs(panels[3].BPL[99]-23) > 1e-9 {
		t.Errorf("panel (d) BPL(100) = %v, want 23", panels[3].BPL[99])
	}
	if v := Fig4Verify(panels); v > 1e-6 {
		t.Errorf("Fig4Verify worst violation = %v", v)
	}
	tb := Fig4Table(panels)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "none") {
		t.Error("table should mark missing suprema")
	}
	if _, err := Fig4(0); err == nil {
		t.Error("T=0 should fail")
	}
}

func TestFig5SolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, n := range []int{3, 5, 8} {
		diff, err := Fig5AgreementCheck(rng, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-6 {
			t.Errorf("n=%d: solvers disagree by %v", n, diff)
		}
	}
}

func TestFig5NShape(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	pts, err := Fig5N(rng, []int{10, 20}, []int{4, 6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Each Algorithm-1 size also yields a compiled-engine point.
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	// Algorithm 1 at n=20 must be far faster than simplex at n=6 per
	// unit problem... at minimum, all measurements are positive and the
	// losses are finite.
	for _, p := range pts {
		if p.Elapsed <= 0 {
			t.Errorf("%s n=%d: non-positive elapsed", p.Solver, p.N)
		}
		if math.IsNaN(p.Loss) || p.Loss < 0 {
			t.Errorf("%s n=%d: bad loss %v", p.Solver, p.N, p.Loss)
		}
	}
	tb := Fig5Table("fig5", pts)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Algorithm 1") {
		t.Error("table missing solver name")
	}
	if !strings.Contains(buf.String(), "compiled-engine") {
		t.Error("table missing compiled-engine column")
	}
}

func TestFig5AlphaRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pts, err := Fig5Alpha(rng, []float64{0.01, 1, 10}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Three solvers per alpha: Algorithm 1, compiled-engine, simplex.
	if len(pts) != 9 {
		t.Fatalf("%d points", len(pts))
	}
}

func TestFig6Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	configs := []Fig6Config{
		{S: 0, N: 20, Eps: 1},
		{S: 0.005, N: 20, Eps: 1},
		{S: 0.05, N: 20, Eps: 1},
	}
	curves, err := Fig6(rng, configs, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Strongest correlation grows linearly: BPL(15) = 15.
	if math.Abs(curves[0].BPL[14]-15) > 1e-9 {
		t.Errorf("s=0 BPL(15) = %v, want 15", curves[0].BPL[14])
	}
	// Stronger correlation leaks more at every time point after the first.
	for t2 := 1; t2 < 15; t2++ {
		if curves[1].BPL[t2] < curves[2].BPL[t2]-1e-9 {
			t.Errorf("t=%d: s=0.005 leak %v below s=0.05 leak %v",
				t2+1, curves[1].BPL[t2], curves[2].BPL[t2])
		}
		if curves[0].BPL[t2] < curves[1].BPL[t2]-1e-9 {
			t.Errorf("t=%d: s=0 leak below s=0.005", t2+1)
		}
	}
	tb := Fig6Table(1, curves)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig6(rng, configs, 0); err == nil {
		t.Error("T=0 should fail")
	}
}

func TestFig6DefaultConfigs(t *testing.T) {
	configs := Fig6DefaultConfigs(0.1)
	if len(configs) != 4 {
		t.Fatalf("%d configs", len(configs))
	}
	for _, c := range configs {
		if c.Eps != 0.1 {
			t.Errorf("config eps = %v", c.Eps)
		}
	}
	// The paper's panel: s=0 strongest, s=0.005 at two sizes, s=0.05.
	if configs[0].S != 0 || configs[2].N != 200 {
		t.Errorf("configs = %+v", configs)
	}
	if got := configs[1].Name(); got != "s=0.005 (n=50)" {
		t.Errorf("Name = %q", got)
	}
}

func TestFig6LargerNLeaksLess(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	curves, err := Fig6(rng, []Fig6Config{
		{S: 0.005, N: 20, Eps: 1},
		{S: 0.005, N: 100, Eps: 1},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Under the same s, larger n means weaker effective correlation.
	last := len(curves[0].BPL) - 1
	if curves[1].BPL[last] >= curves[0].BPL[last] {
		t.Errorf("n=100 leak %v should be below n=20 leak %v",
			curves[1].BPL[last], curves[0].BPL[last])
	}
}

func TestFig6SmallerEpsDelaysGrowth(t *testing.T) {
	// Paper: 0.1-DP delays the growth ~10x vs 1-DP. Compare the time to
	// reach half the (approximate) plateau.
	rng1 := rand.New(rand.NewSource(60))
	c1, err := Fig6(rng1, []Fig6Config{{S: 0.05, N: 20, Eps: 1}}, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(60))
	c2, err := Fig6(rng2, []Fig6Config{{S: 0.05, N: 20, Eps: 0.1}}, 200)
	if err != nil {
		t.Fatal(err)
	}
	reach := func(bpl []float64, level float64) int {
		for i, v := range bpl {
			if v >= level {
				return i + 1
			}
		}
		return len(bpl) + 1
	}
	plateau1 := c1[0].BPL[len(c1[0].BPL)-1]
	t1 := reach(c1[0].BPL, plateau1/2)
	t2 := reach(c2[0].BPL, plateau1/2)
	if t2 <= t1 {
		t.Errorf("eps=0.1 reached half-plateau at t=%d, not later than eps=1 at t=%d", t2, t1)
	}
}

func TestFig7Shapes(t *testing.T) {
	r, err := Fig7(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 3 holds TPL = alpha at every time point.
	for i, v := range r.Alg3TPL {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("alg3 TPL[%d] = %v, want 1", i+1, v)
		}
	}
	// Algorithm 2 never exceeds alpha and stays strictly below early on.
	for i, v := range r.Alg2TPL {
		if v > 1+1e-9 {
			t.Errorf("alg2 TPL[%d] = %v exceeds alpha", i+1, v)
		}
	}
	if r.Alg2TPL[0] >= 1-1e-6 {
		t.Error("alg2 should underspend at t=1 for short horizons")
	}
	// Algorithm 3's first/last budgets exceed its middle budget.
	if r.Alg3Budget[0] <= r.Alg3Budget[1] || r.Alg3Budget[29] <= r.Alg3Budget[15] {
		t.Error("alg3 edge budgets should exceed middle")
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8TShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts, err := Fig8T(rng, 2, 0.001, 20, []int{5, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	// For every T, Algorithm 3 is at least as good (not noisier).
	for i := 0; i+1 < len(pts); i += 2 {
		if pts[i+1].Noise > pts[i].Noise+1e-9 {
			t.Errorf("T=%d: alg3 noise %v exceeds alg2 %v", pts[i].T, pts[i+1].Noise, pts[i].Noise)
		}
	}
	// The gap shrinks as T grows: alg3's advantage at T=5 exceeds at T=50.
	gap5 := pts[0].Noise - pts[1].Noise
	gap50 := pts[4].Noise - pts[5].Noise
	if gap50 > gap5 {
		t.Errorf("advantage should shrink with T: gap5=%v gap50=%v", gap5, gap50)
	}
	tb, err := Fig8Table("fig8a", "T", pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8SShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts, ref, err := Fig8S(rng, 2, 10, 20, []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref-0.5) > 1e-12 {
		t.Errorf("no-correlation reference = %v, want 1/alpha", ref)
	}
	// Noise decays as correlation weakens, approaching the reference.
	alg2 := []float64{pts[0].Noise, pts[2].Noise, pts[4].Noise}
	for i := 1; i < len(alg2); i++ {
		if alg2[i] > alg2[i-1]+1e-9 {
			t.Errorf("alg2 noise should decrease with s: %v", alg2)
		}
	}
	if alg2[2] < ref-1e-9 {
		t.Errorf("noise %v below the no-correlation floor %v", alg2[2], ref)
	}
	tb, err := Fig8Table("fig8b", "s", pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig8Table("x", "bogus", pts); err == nil {
		t.Error("unknown sweep key should fail")
	}
	if _, err := Fig8Table("x", "s", pts[:1]); err == nil {
		t.Error("odd point count should fail")
	}
}

func TestTableIIValues(t *testing.T) {
	r, err := TableII(fig7BackwardForTest(), 0.1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.IndepEvent != 0.1 || math.Abs(r.IndepWEvent-0.3) > 1e-12 || math.Abs(r.IndepUser-1.0) > 1e-12 {
		t.Errorf("independent column wrong: %+v", r)
	}
	if r.CorrEvent <= r.IndepEvent {
		t.Error("correlated event-level should exceed eps")
	}
	if r.CorrWEvent <= r.IndepWEvent {
		t.Error("correlated w-event should exceed w*eps")
	}
	if math.Abs(r.CorrUser-r.IndepUser) > 1e-12 {
		t.Error("user-level must be unchanged by correlation (Corollary 1)")
	}
	var buf bytes.Buffer
	if err := r.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := TableII(fig7BackwardForTest(), 0.1, 5, 9); err == nil {
		t.Error("w > T should fail")
	}
}

func TestPrintPoint(t *testing.T) {
	if !printPoint(1, 100) || !printPoint(10, 100) || !printPoint(100, 100) {
		t.Error("must print early points and the last")
	}
	if printPoint(11, 100) || !printPoint(20, 100) {
		t.Error("should decimate to every 10th after t=10")
	}
	if !printPoint(7, 15) {
		t.Error("short series print everything")
	}
}
