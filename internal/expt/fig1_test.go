package expt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestFig1Consistency(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	r, err := Fig1(rng, 30, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.True) != 5 || len(r.Private) != 5 || len(r.Locations) != 5 {
		t.Fatal("wrong horizon")
	}
	for tm := 0; tm < 5; tm++ {
		total := 0
		for _, c := range r.True[tm] {
			total += c
		}
		if total != 30 {
			t.Errorf("t=%d: counts sum to %d", tm, total)
		}
		if len(r.Private[tm]) != 5 {
			t.Errorf("t=%d: %d private cells", tm, len(r.Private[tm]))
		}
	}
	// The deterministic road: loc5 at t+1 >= loc4 at t.
	for tm := 0; tm+1 < 5; tm++ {
		if r.True[tm+1][4] < r.True[tm][3] {
			t.Errorf("t=%d: road constraint violated", tm)
		}
	}
}

func TestFig1Tables(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	r, err := Fig1(rng, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "loc5") || !strings.Contains(out, "Fig 1(d)") {
		t.Errorf("tables incomplete:\n%s", out)
	}
}

func TestFig1Validation(t *testing.T) {
	if _, err := Fig1(nil, 0, 5, 1); err == nil {
		t.Error("0 users should fail")
	}
	if _, err := Fig1(nil, 5, 0, 1); err == nil {
		t.Error("T=0 should fail")
	}
	if _, err := Fig1(nil, 5, 5, 0); err == nil {
		t.Error("eps=0 should fail")
	}
}
