package expt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestAblationPlannersCrossover(t *testing.T) {
	// The honest version of the paper's Section I comparison. The
	// group-DP bundle (eps = alpha/T uniformly) is sound for any
	// correlation and is actually near-optimal under the strongest
	// ones — there, leakage composes ~linearly and the bundle split is
	// exactly right. The fine planners win where the paper says they
	// do: under *probabilistic* (weaker) correlations and longer
	// horizons, where alpha/T massively over-perturbs while the
	// supremum-aware budgets stay O(1) per step.
	rng := rand.New(rand.NewSource(91))
	const alpha, T = 2.0, 50
	rows, err := AblationPlanners(rng, alpha, T, 10, []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.FinePlanners {
			t.Fatalf("s=%v: fine planners refused unexpectedly", r.S)
		}
		// Soundness: every plan keeps realized leakage within alpha.
		for name, v := range map[string]float64{
			"group": r.GroupMaxTPL, "alg2": r.Alg2MaxTPL, "alg3": r.Alg3MaxTPL,
		} {
			if v > alpha+1e-9 {
				t.Errorf("s=%v: %s leaks %v > alpha", r.S, name, v)
			}
		}
	}
	// Under weak correlation and a long horizon, the bundle baseline
	// over-perturbs badly: group noise = T/alpha = 25, while the fine
	// planners stay near the uncorrelated floor 1/alpha.
	weak := rows[2]
	if weak.Alg3Noise >= weak.GroupNoise {
		t.Errorf("s=1: alg3 noise %v should beat the bundle's %v", weak.Alg3Noise, weak.GroupNoise)
	}
	if weak.GroupNoise/weak.Alg3Noise < 5 {
		t.Errorf("s=1,T=50: expected a large over-perturbation factor, got %vx",
			weak.GroupNoise/weak.Alg3Noise)
	}
	// The optimizer never does worse than Algorithm 3 and stays sound.
	for _, r := range rows {
		if r.OptNoise > r.Alg3Noise+1e-9 {
			t.Errorf("s=%v: optimizer noise %v above alg3 %v", r.S, r.OptNoise, r.Alg3Noise)
		}
		if r.OptMaxTPL > alpha+1e-6 {
			t.Errorf("s=%v: optimizer leaks %v > alpha", r.S, r.OptMaxTPL)
		}
	}
	// The over-perturbation ratio grows as correlation weakens.
	gapStrong := rows[0].GroupNoise / rows[0].Alg3Noise
	gapWeak := rows[2].GroupNoise / rows[2].Alg3Noise
	if gapWeak <= gapStrong {
		t.Errorf("bundle over-perturbation should widen with s: %v vs %v", gapStrong, gapWeak)
	}
}

func TestAblationPlannersStrongestRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	rows, err := AblationPlanners(rng, 1, 5, 8, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FinePlanners {
		t.Error("s=0 (strongest) should refuse the fine planners")
	}
	if rows[0].GroupMaxTPL > 1+1e-9 {
		t.Errorf("bundle baseline leaks %v > alpha even at s=0", rows[0].GroupMaxTPL)
	}
	var buf bytes.Buffer
	if err := AblationPlannersTable(1, 5, rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "refused") {
		t.Error("table should mark the refusal")
	}
}

func TestAblationSolversAgreeAndRender(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	rows, err := AblationSolvers(rng, []int{5, 10, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxDiff > 1e-6 {
			t.Errorf("n=%d: solver routes disagree by %v", r.N, r.MaxDiff)
		}
		if r.Alg1 <= 0 || r.Dinkelbach <= 0 || r.Simplex <= 0 {
			t.Errorf("n=%d: non-positive timing", r.N)
		}
	}
	var buf bytes.Buffer
	if err := AblationSolversTable(3, rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dinkelbach") {
		t.Error("table missing solver column")
	}
}

func TestUtilHelpers(t *testing.T) {
	if logOf(0.5) != 0 {
		t.Error("logOf should clamp sub-1 ratios")
	}
	if got := maxAbsDiff3(1, 4, 2); got != 3 {
		t.Errorf("maxAbsDiff3 = %v", got)
	}
}
