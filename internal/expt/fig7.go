package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/release"
	"repro/internal/report"
)

// Fig7Result holds the per-time-step budgets and realized TPL of the two
// release algorithms at a common target alpha.
type Fig7Result struct {
	Alpha float64
	T     int
	// Budget and realized temporal privacy leakage per time step,
	// 0-indexed, for Algorithm 2 (upper bound) and Algorithm 3
	// (quantification).
	Alg2Budget, Alg2TPL []float64
	Alg3Budget, Alg3TPL []float64
}

// Fig7 reproduces the budget-allocation visualization of Fig. 7 with the
// paper's correlations P^B = (0.8 0.2; 0.2 0.8), P^F = (0.8 0.2; 0.1 0.9)
// and target alpha (1 in the paper), over T time points (30 in the
// paper).
func Fig7(alpha float64, T int) (*Fig7Result, error) {
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	qb, qf := core.NewQuantifier(pb), core.NewQuantifier(pf)

	ub, err := release.UpperBound(pb, pf, alpha)
	if err != nil {
		return nil, err
	}
	qp, err := release.Quantified(pb, pf, alpha, T)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Alpha: alpha, T: T}
	if res.Alg2Budget, err = ub.Budgets(T); err != nil {
		return nil, err
	}
	if res.Alg3Budget, err = qp.Budgets(T); err != nil {
		return nil, err
	}
	if res.Alg2TPL, err = core.TPLSeries(qb, qf, res.Alg2Budget); err != nil {
		return nil, err
	}
	if res.Alg3TPL, err = core.TPLSeries(qb, qf, res.Alg3Budget); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the two panels side by side.
func (r *Fig7Result) Table() *report.Table {
	tb := &report.Table{
		Title: fmt.Sprintf("Fig 7: data release with %g-DP_T (budgets and realized leakage)", r.Alpha),
		Header: []string{"t",
			"alg2 eps", "alg2 TPL",
			"alg3 eps", "alg3 TPL"},
	}
	for t := 0; t < r.T; t++ {
		tb.AddRow(fmt.Sprintf("%d", t+1),
			f(r.Alg2Budget[t]), f(r.Alg2TPL[t]),
			f(r.Alg3Budget[t]), f(r.Alg3TPL[t]))
	}
	tb.Notes = append(tb.Notes,
		"Algorithm 3 pins TPL exactly at alpha at every t; Algorithm 2 only approaches alpha asymptotically")
	return tb
}
