package expt

import "repro/internal/markov"

// fig7BackwardForTest returns a moderate 2-state correlation used by the
// Table II test.
func fig7BackwardForTest() *markov.Chain { return markov.Fig7Backward() }
