package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMixingSweepShape(t *testing.T) {
	rows, err := Mixing(0.2, []float64{1.0 / 3, 0.7, 0.95, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Uniform chain: mixes instantly, supremum = eps.
	if rows[0].MixingTime != 1 || rows[0].Supremum != 0.2 {
		t.Errorf("uniform row = %+v", rows[0])
	}
	// Monotone through the mixing regime.
	for i := 1; i < 3; i++ {
		if rows[i].MixingTime <= rows[i-1].MixingTime {
			t.Errorf("mixing time should grow: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].Supremum <= rows[i-1].Supremum {
			t.Errorf("supremum should grow: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	// Identity: never mixes, no supremum, BPL(10) = 10*eps.
	last := rows[3]
	if last.MixingTime != -1 || last.Supremum != -1 {
		t.Errorf("identity row = %+v", last)
	}
	if math.Abs(last.BPLAt10-2.0) > 1e-12 {
		t.Errorf("identity BPL(10) = %v, want 2.0", last.BPLAt10)
	}
	var buf bytes.Buffer
	if err := MixingTable(0.2, rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "never") || !strings.Contains(out, "none") {
		t.Errorf("table should mark the identity row:\n%s", out)
	}
}
