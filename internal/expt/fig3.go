package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// Fig3Result holds the three leakage series of Fig. 3 for the three
// correlation settings (i) strong, (ii) moderate, (iii) none.
type Fig3Result struct {
	Eps float64
	T   int
	// Indexed [setting][time]; setting 0 = strong, 1 = moderate, 2 = none.
	BPL, FPL, TPL [3][]float64
}

// Fig3SettingNames are the row labels of the figure.
var Fig3SettingNames = [3]string{"strong", "moderate", "none"}

// Fig3 reproduces Fig. 3: the backward, forward and total temporal
// privacy leakage of an eps-DP Laplace mechanism at each of T time
// points, under (i) the strongest temporal correlation (the identity
// chain of Example 2), (ii) the paper's moderate matrix (0.8 0.2; 0 1),
// and (iii) no temporal correlation. The paper plots eps = 0.1, T = 10.
func Fig3(eps float64, T int) (*Fig3Result, error) {
	if T < 1 {
		return nil, fmt.Errorf("expt: T must be positive, got %d", T)
	}
	id, err := markov.IdentityChain(2)
	if err != nil {
		return nil, err
	}
	chains := []*markov.Chain{id, markov.ModerateExample(), nil}
	res := &Fig3Result{Eps: eps, T: T}
	budgets := core.UniformBudgets(eps, T)
	for i, c := range chains {
		q := core.NewQuantifier(c)
		if res.BPL[i], err = core.BPLSeries(q, budgets); err != nil {
			return nil, err
		}
		if res.FPL[i], err = core.FPLSeries(q, budgets); err != nil {
			return nil, err
		}
		if res.TPL[i], err = core.TPLSeries(q, q, budgets); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Tables renders the three panels (a) BPL, (b) FPL, (c) TPL.
func (r *Fig3Result) Tables() []*report.Table {
	panels := []struct {
		name string
		data *[3][]float64
	}{
		{"Fig 3(a) Backward Privacy Leakage", &r.BPL},
		{"Fig 3(b) Forward Privacy Leakage", &r.FPL},
		{"Fig 3(c) Temporal Privacy Leakage", &r.TPL},
	}
	out := make([]*report.Table, 0, len(panels))
	for _, p := range panels {
		tb := &report.Table{
			Title:  fmt.Sprintf("%s of Lap(1/%g) at each time point", p.name, r.Eps),
			Header: []string{"t"},
		}
		for _, name := range Fig3SettingNames {
			tb.Header = append(tb.Header, name)
		}
		for t := 0; t < r.T; t++ {
			row := []string{fmt.Sprintf("%d", t+1)}
			for s := 0; s < 3; s++ {
				row = append(row, f2(p.data[s][t]))
			}
			tb.AddRow(row...)
		}
		out = append(out, tb)
	}
	return out
}
