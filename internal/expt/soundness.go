package expt

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// SoundnessRow compares the exact leakage of a concrete eps-DP
// randomized-response release (computed by exhaustive output
// enumeration) with the analytical Algorithm-1 bound, for one
// correlation setting.
type SoundnessRow struct {
	Setting string
	Eps     float64
	Steps   int
	Exact   float64 // true leakage of randomized response
	Bound   float64 // Algorithm 1's BPL at the final step
}

// Soundness runs the semantic validation behind the framework: for
// several correlations, the exact backward leakage of a real mechanism
// must never exceed the analytical bound, and must meet it in the
// extremal cases. eps is the per-step budget, steps the release length
// (enumeration is outputs^steps; keep steps small).
func Soundness(eps float64, steps int) ([]SoundnessRow, error) {
	if steps < 1 {
		return nil, fmt.Errorf("expt: steps must be positive, got %d", steps)
	}
	id, err := markov.IdentityChain(2)
	if err != nil {
		return nil, err
	}
	uni, err := markov.UniformChain(2)
	if err != nil {
		return nil, err
	}
	settings := []struct {
		name  string
		chain *markov.Chain
	}{
		{"identity (strongest)", id},
		{"moderate (0.8 0.2; 0 1)", markov.ModerateExample()},
		{"fig4a (0.8 0.2; 0.1 0.9)", markov.Fig4aExample()},
		{"uniform (none)", uni},
	}
	var out []SoundnessRow
	for _, s := range settings {
		mech, err := adversary.RandomizedResponse(eps, s.chain.N())
		if err != nil {
			return nil, err
		}
		mechs := make([]*adversary.DiscreteMechanism, steps)
		for i := range mechs {
			mechs[i] = mech
		}
		exact, err := adversary.ExactBPL(s.chain, mechs)
		if err != nil {
			return nil, err
		}
		bound, err := core.BPLSeries(core.NewQuantifier(s.chain), core.UniformBudgets(eps, steps))
		if err != nil {
			return nil, err
		}
		out = append(out, SoundnessRow{
			Setting: s.name, Eps: eps, Steps: steps,
			Exact: exact, Bound: bound[steps-1],
		})
	}
	return out, nil
}

// SoundnessTable renders the comparison.
func SoundnessTable(rows []SoundnessRow) *report.Table {
	tb := &report.Table{
		Title:  "Soundness: exact randomized-response leakage vs Algorithm-1 BPL bound",
		Header: []string{"correlation", "eps", "t", "exact leakage", "analytical bound"},
	}
	for _, r := range rows {
		tb.AddRow(r.Setting, fmt.Sprintf("%g", r.Eps), fmt.Sprintf("%d", r.Steps),
			f(r.Exact), f(r.Bound))
	}
	tb.Notes = append(tb.Notes,
		"the bound is the supremum over all mechanisms with the per-step budget;",
		"it is met with equality under the strongest and the empty correlation")
	return tb
}
