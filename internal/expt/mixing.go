package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// MixingRow relates a chain's structural memory (mixing time) to its
// privacy cost (leakage supremum) — the mechanism behind the paper's
// Fig. 6 observation that stronger correlations produce steeper, longer,
// higher leakage growth.
type MixingRow struct {
	Stay       float64 // self-loop probability of the Lazy(n, stay) chain
	MixingTime int     // steps to forget the starting point (L1 tol 1e-3)
	Supremum   float64 // infinite-horizon BPL limit at the given eps
	BPLAt10    float64 // BPL after 10 releases
}

// Mixing sweeps the stay probability of a 3-state lazy chain and
// reports mixing time, leakage supremum and 10-step BPL at per-step
// budget eps.
func Mixing(eps float64, stays []float64) ([]MixingRow, error) {
	var out []MixingRow
	for _, stay := range stays {
		c, err := markov.Lazy(3, stay)
		if err != nil {
			return nil, err
		}
		row := MixingRow{Stay: stay}
		mix, ok := c.MixingTime(1e-3, 1000000)
		if !ok {
			row.MixingTime = -1 // never mixes
		} else {
			row.MixingTime = mix
		}
		qt := core.NewQuantifier(c)
		if sup, ok := core.Supremum(qt, eps); ok {
			row.Supremum = sup
		} else {
			row.Supremum = -1
		}
		bpl, err := core.BPLSeries(qt, core.UniformBudgets(eps, 10))
		if err != nil {
			return nil, err
		}
		row.BPLAt10 = bpl[9]
		out = append(out, row)
	}
	return out, nil
}

// MixingTable renders the sweep.
func MixingTable(eps float64, rows []MixingRow) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("Structure vs privacy: mixing time against leakage (eps=%g per step, 3-state lazy chains)", eps),
		Header: []string{"stay prob", "mixing steps", "BPL supremum", "BPL(10)"},
	}
	for _, r := range rows {
		mix := fmt.Sprintf("%d", r.MixingTime)
		if r.MixingTime < 0 {
			mix = "never"
		}
		sup := f(r.Supremum)
		if r.Supremum < 0 {
			sup = "none"
		}
		tb.AddRow(fmt.Sprintf("%g", r.Stay), mix, sup, f(r.BPLAt10))
	}
	tb.Notes = append(tb.Notes,
		"slower mixing = longer structural memory = higher and later-saturating leakage",
		"stay=1 is the identity chain: never mixes, leakage unbounded (Theorem 5)")
	return tb
}
