package expt

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/lfp"
	"repro/internal/markov"
	"repro/internal/mechanism"
	"repro/internal/release"
	"repro/internal/report"
)

// AblationPlannersRow compares the three ways of guaranteeing
// alpha-DP_T for one correlation strength: the group-DP bundle baseline
// the paper argues against in Section I, Algorithm 2 (supremum bound)
// and Algorithm 3 (exact quantification).
type AblationPlannersRow struct {
	S            float64
	GroupNoise   float64 // E|noise| of the alpha/T bundle baseline
	Alg2Noise    float64
	Alg3Noise    float64
	OptNoise     float64 // the local-search noise optimizer (beyond the paper)
	GroupMaxTPL  float64 // realized worst-case leakage of each plan
	Alg2MaxTPL   float64
	Alg3MaxTPL   float64
	OptMaxTPL    float64
	FinePlanners bool // false when the correlation is too strong for Alg 2/3
}

// AblationPlanners sweeps correlation strength s and reports noise and
// realized leakage for all three planners at target alpha over horizon
// T. It quantifies the paper's Section I claim that the bundle approach
// "may over-perturb the data" under probabilistic correlations: the
// weaker the correlation, the larger the gap.
func AblationPlanners(rng *rand.Rand, alpha float64, T, n int, ss []float64) ([]AblationPlannersRow, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var out []AblationPlannersRow
	for _, s := range ss {
		pb, err := markov.Smoothed(rng, n, s)
		if err != nil {
			return nil, err
		}
		pf, err := markov.Smoothed(rng, n, s)
		if err != nil {
			return nil, err
		}
		qb, qf := core.NewQuantifier(pb), core.NewQuantifier(pf)
		row := AblationPlannersRow{S: s}

		group, err := release.GroupPrivacy(alpha, T)
		if err != nil {
			return nil, err
		}
		gBudgets, err := group.Budgets(T)
		if err != nil {
			return nil, err
		}
		if row.GroupNoise, err = mechanism.MeanExpectedAbsNoise(1, gBudgets); err != nil {
			return nil, err
		}
		if row.GroupMaxTPL, err = core.MaxTPL(qb, qf, gBudgets); err != nil {
			return nil, err
		}

		// The noise optimizer applies in every regime (it starts from the
		// group baseline when the fine planners refuse). One sweep keeps
		// the ablation quick; the dedicated optimizer tests use the full
		// budget.
		opt0, err := release.OptimizeNoise(pb, pf, alpha, T, 1)
		if err != nil {
			return nil, err
		}
		opt0Budgets, err := opt0.Budgets(T)
		if err != nil {
			return nil, err
		}
		if row.OptNoise, err = mechanism.MeanExpectedAbsNoise(1, opt0Budgets); err != nil {
			return nil, err
		}
		if row.OptMaxTPL, err = core.MaxTPL(qb, qf, opt0Budgets); err != nil {
			return nil, err
		}

		ub, errUB := release.UpperBound(pb, pf, alpha)
		qp, errQP := release.Quantified(pb, pf, alpha, T)
		if errUB != nil || errQP != nil {
			// Strongest correlation: only the bundle baseline applies.
			out = append(out, row)
			continue
		}
		row.FinePlanners = true
		ubBudgets, err := ub.Budgets(T)
		if err != nil {
			return nil, err
		}
		if row.Alg2Noise, err = mechanism.MeanExpectedAbsNoise(1, ubBudgets); err != nil {
			return nil, err
		}
		if row.Alg2MaxTPL, err = core.MaxTPL(qb, qf, ubBudgets); err != nil {
			return nil, err
		}
		qpBudgets, err := qp.Budgets(T)
		if err != nil {
			return nil, err
		}
		if row.Alg3Noise, err = mechanism.MeanExpectedAbsNoise(1, qpBudgets); err != nil {
			return nil, err
		}
		if row.Alg3MaxTPL, err = core.MaxTPL(qb, qf, qpBudgets); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationPlannersTable renders the sweep.
func AblationPlannersTable(alpha float64, T int, rows []AblationPlannersRow) *report.Table {
	tb := &report.Table{
		Title: fmt.Sprintf("Ablation: group-DP bundle vs Algorithm 2 vs Algorithm 3 vs noise optimizer (alpha=%g, T=%d)", alpha, T),
		Header: []string{"s", "group noise", "alg2 noise", "alg3 noise", "opt noise",
			"group maxTPL", "alg2 maxTPL", "alg3 maxTPL", "opt maxTPL"},
	}
	for _, r := range rows {
		if !r.FinePlanners {
			tb.AddRow(fmt.Sprintf("%g", r.S), f(r.GroupNoise), "refused", "refused", f(r.OptNoise),
				f(r.GroupMaxTPL), "-", "-", f(r.OptMaxTPL))
			continue
		}
		tb.AddRow(fmt.Sprintf("%g", r.S),
			f(r.GroupNoise), f(r.Alg2Noise), f(r.Alg3Noise), f(r.OptNoise),
			f(r.GroupMaxTPL), f(r.Alg2MaxTPL), f(r.Alg3MaxTPL), f(r.OptMaxTPL))
	}
	tb.Notes = append(tb.Notes,
		"the bundle baseline is sound for any correlation and near-optimal under the strongest;",
		"the fine planners win under weaker correlation and longer horizons, where alpha/T over-perturbs",
		"'refused' marks the strongest correlation, where only the bundle approach is sound")
	return tb
}

// AblationSolverRow is one timing/agreement measurement of the three
// LFP solver routes on a single row pair.
type AblationSolverRow struct {
	N          int
	Alpha      float64
	Alg1       time.Duration
	Dinkelbach time.Duration
	Simplex    time.Duration
	MaxDiff    float64 // worst absolute disagreement of the three optima (log scale)
}

// AblationSolvers times Algorithm 1's closed-form filter, Dinkelbach's
// parametric iteration and the Charnes-Cooper simplex on the same
// random row pair per n, and verifies the three agree.
func AblationSolvers(rng *rand.Rand, ns []int, alpha float64) ([]AblationSolverRow, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var out []AblationSolverRow
	for _, n := range ns {
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			return nil, err
		}
		q, d := c.Row(0), c.Row(1)
		row := AblationSolverRow{N: n, Alpha: alpha}

		start := time.Now()
		v1 := core.PairLoss(q, d, alpha).Log
		row.Alg1 = time.Since(start)

		prob := &lfp.Problem{Q: q, D: d, Alpha: alpha}
		start = time.Now()
		v2, err := prob.LogDinkelbach()
		if err != nil {
			return nil, err
		}
		row.Dinkelbach = time.Since(start)

		start = time.Now()
		ratio, err := prob.SolveLP()
		if err != nil {
			return nil, err
		}
		row.Simplex = time.Since(start)
		v3 := logOf(ratio)

		row.MaxDiff = maxAbsDiff3(v1, v2, v3)
		out = append(out, row)
	}
	return out, nil
}

// AblationSolversTable renders the solver comparison.
func AblationSolversTable(alpha float64, rows []AblationSolverRow) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("Ablation: per-pair LFP solver routes (alpha=%g)", alpha),
		Header: []string{"n", "Algorithm 1", "Dinkelbach", "simplex-LP", "max disagreement"},
	}
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d", r.N), r.Alg1.String(), r.Dinkelbach.String(),
			r.Simplex.String(), fmt.Sprintf("%.2e", r.MaxDiff))
	}
	tb.Notes = append(tb.Notes,
		"all three routes solve the same linear-fractional program (18)-(20); Theorem 4's closed form wins by construction")
	return tb
}
