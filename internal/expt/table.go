// Package expt contains one runner per table and figure of the paper's
// evaluation (Section VI) plus the illustrative figures of Section III.
// Each runner returns structured results and can render them as an
// aligned text table (the same rows/series the paper plots) or CSV.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig3      - BPL/FPL/TPL of Lap(1/0.1) over time, three correlation levels
//	Fig4      - max BPL over time for four (P, eps) configs + Theorem 5 suprema
//	Fig5N     - runtime of Algorithm 1 vs the simplex LFP baseline vs n
//	Fig5Alpha - runtime vs the prior leakage alpha
//	Fig6      - BPL growth under graded correlation strength s, eps, n
//	Fig7      - per-time TPL of the Algorithm 2 vs Algorithm 3 release plans
//	Fig8T     - release utility vs T (mean |Laplace noise|)
//	Fig8S     - release utility vs correlation strength s
//	TableII   - privacy guarantees of eps-DP mechanisms on independent vs
//	            temporally correlated data
package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text rendering of the table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as CSV (header row first; notes omitted).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float with 4 decimals for table cells.
func f(x float64) string { return fmt.Sprintf("%.4f", x) }

// f2 formats a float with 2 decimals, matching the paper's figures.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
