// Package expt contains one runner per table and figure of the paper's
// evaluation (Section VI) plus the illustrative figures of Section III.
// Each runner returns structured results and renders them as
// report.Table values, which the report package writes as aligned
// text, CSV, GitHub Markdown, or JSON lines (see cmd/tplbench -format
// and the generated EXPERIMENTS.md).
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig3      - BPL/FPL/TPL of Lap(1/0.1) over time, three correlation levels
//	Fig4      - max BPL over time for four (P, eps) configs + Theorem 5 suprema
//	Fig5N     - runtime of Algorithm 1 vs the simplex LFP baseline vs n
//	Fig5Alpha - runtime vs the prior leakage alpha
//	Fig6      - BPL growth under graded correlation strength s, eps, n
//	Fig7      - per-time TPL of the Algorithm 2 vs Algorithm 3 release plans
//	Fig8T     - release utility vs T (mean |Laplace noise|)
//	Fig8S     - release utility vs correlation strength s
//	TableII   - privacy guarantees of eps-DP mechanisms on independent vs
//	            temporally correlated data
package expt

import "fmt"

// f formats a float with 4 decimals for table cells.
func f(x float64) string { return fmt.Sprintf("%.4f", x) }

// f2 formats a float with 2 decimals, matching the paper's figures.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
