package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// Fig6Config is one curve of Fig. 6: BPL over time under a smoothed
// strongest-correlation matrix with smoothing s and domain size n, for a
// mechanism satisfying eps-DP at each time point.
type Fig6Config struct {
	S   float64 // Laplacian smoothing parameter; 0 = strongest
	N   int     // domain size of the transition matrix
	Eps float64 // per-step budget
}

// Name renders the curve label used in the figure legend.
func (c Fig6Config) Name() string { return fmt.Sprintf("s=%g (n=%d)", c.S, c.N) }

// Fig6Curve is one computed curve.
type Fig6Curve struct {
	Config Fig6Config
	BPL    []float64
}

// Fig6DefaultConfigs returns the paper's curves for one of its two
// panels: s in {0 (strongest), 0.005, 0.05} at n = 50 plus s = 0.005 at
// n = 200, all at the given eps (the paper shows eps = 1 and eps = 0.1).
func Fig6DefaultConfigs(eps float64) []Fig6Config {
	return []Fig6Config{
		{S: 0, N: 50, Eps: eps},
		{S: 0.005, N: 50, Eps: eps},
		{S: 0.005, N: 200, Eps: eps},
		{S: 0.05, N: 50, Eps: eps},
	}
}

// Fig6 computes BPL over T time points for each config. Matrices are
// generated exactly as in Section VI: a strongest-correlation matrix
// smoothed by Eq. (25).
func Fig6(rng *rand.Rand, configs []Fig6Config, T int) ([]Fig6Curve, error) {
	if T < 1 {
		return nil, fmt.Errorf("expt: T must be positive, got %d", T)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var out []Fig6Curve
	for _, cfg := range configs {
		c, err := markov.Smoothed(rng, cfg.N, cfg.S)
		if err != nil {
			return nil, err
		}
		bpl, err := core.BPLSeries(core.NewQuantifier(c), core.UniformBudgets(cfg.Eps, T))
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Curve{Config: cfg, BPL: bpl})
	}
	return out, nil
}

// Fig6Table renders the curves at decimated time points.
func Fig6Table(eps float64, curves []Fig6Curve) *report.Table {
	tb := &report.Table{
		Title:  fmt.Sprintf("Fig 6: BPL over time for eps=%g (log-scale plot in the paper)", eps),
		Header: []string{"t"},
	}
	for _, c := range curves {
		tb.Header = append(tb.Header, c.Config.Name())
	}
	if len(curves) == 0 {
		return tb
	}
	T := len(curves[0].BPL)
	for t := 0; t < T; t++ {
		if !printPoint(t+1, T) {
			continue
		}
		row := []string{fmt.Sprintf("%d", t+1)}
		for _, c := range curves {
			row = append(row, f(c.BPL[t]))
		}
		tb.AddRow(row...)
	}
	tb.Notes = append(tb.Notes,
		"smaller s = stronger correlation = steeper and longer growth",
		"larger n under equal s = effectively weaker correlation = lower leakage")
	return tb
}
