package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSoundnessExactNeverExceedsBound(t *testing.T) {
	rows, err := Soundness(0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Exact > r.Bound+1e-9 {
			t.Errorf("%s: exact %v exceeds bound %v", r.Setting, r.Exact, r.Bound)
		}
	}
}

func TestSoundnessExtremalEquality(t *testing.T) {
	rows, err := Soundness(0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SoundnessRow{}
	for _, r := range rows {
		byName[r.Setting] = r
	}
	// Strongest correlation: equality at t*eps.
	id := byName["identity (strongest)"]
	if math.Abs(id.Exact-1.8) > 1e-9 || math.Abs(id.Bound-1.8) > 1e-9 {
		t.Errorf("identity: exact %v bound %v, want 1.8", id.Exact, id.Bound)
	}
	// No correlation: equality at eps.
	uni := byName["uniform (none)"]
	if math.Abs(uni.Exact-0.3) > 1e-9 || math.Abs(uni.Bound-0.3) > 1e-9 {
		t.Errorf("uniform: exact %v bound %v, want 0.3", uni.Exact, uni.Bound)
	}
}

func TestSoundnessBinaryRRIsExtremal(t *testing.T) {
	// Empirical observation promoted to a regression test: for binary
	// randomized response the exact leakage MEETS the Algorithm-1 bound
	// (RR realizes the extremal likelihood ratios e^{+-eps} at every
	// step, which is exactly the vertex the LFP optimum sits on).
	rows, err := Soundness(0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Exact-r.Bound) > 1e-9 {
			t.Errorf("%s: binary RR should meet the bound: exact %v vs bound %v",
				r.Setting, r.Exact, r.Bound)
		}
	}
}

func TestSoundnessTableRenders(t *testing.T) {
	rows, err := Soundness(0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SoundnessTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "identity (strongest)") {
		t.Error("table missing settings")
	}
	if _, err := Soundness(0.2, 0); err == nil {
		t.Error("steps=0 should fail")
	}
}
