package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// TableIIResult quantifies the privacy guarantee of an eps-DP mechanism
// sequence at the three granularities of Table II, on independent data
// versus data with the given temporal correlations.
type TableIIResult struct {
	Eps   float64
	T, W  int
	Chain *markov.Chain // correlation used for the "temporally correlated" column

	// Independent-data guarantees (classic DP results).
	IndepEvent, IndepWEvent, IndepUser float64
	// Temporally correlated guarantees computed by this framework.
	CorrEvent, CorrWEvent, CorrUser float64
}

// TableII computes both columns for a mechanism satisfying eps-DP at
// each of T time points, with the same chain as backward and forward
// correlation, and window length w for the w-event row.
func TableII(chain *markov.Chain, eps float64, T, w int) (*TableIIResult, error) {
	if T < 1 || w < 1 || w > T {
		return nil, fmt.Errorf("expt: need 1 <= w <= T, got w=%d T=%d", w, T)
	}
	budgets := core.UniformBudgets(eps, T)
	q := core.NewQuantifier(chain)
	bpl, err := core.BPLSeries(q, budgets)
	if err != nil {
		return nil, err
	}
	fpl, err := core.FPLSeries(q, budgets)
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{
		Eps: eps, T: T, W: w, Chain: chain,
		IndepEvent:  eps,
		IndepWEvent: float64(w) * eps,
		IndepUser:   float64(T) * eps,
	}
	res.CorrEvent, err = core.MaxTPL(q, q, budgets)
	if err != nil {
		return nil, err
	}
	res.CorrWEvent, err = core.WEventTPL(bpl, fpl, budgets, w)
	if err != nil {
		return nil, err
	}
	res.CorrUser = core.UserLevelTPL(budgets)
	return res, nil
}

// Table renders the comparison in the layout of the paper's Table II.
func (r *TableIIResult) Table() *report.Table {
	tb := &report.Table{
		Title: fmt.Sprintf("Table II: privacy guarantee of %g-DP mechanisms (T=%d, w=%d)",
			r.Eps, r.T, r.W),
		Header: []string{"privacy notion", "independent", "temporally correlated"},
	}
	tb.AddRow("event-level", f(r.IndepEvent), f(r.CorrEvent))
	tb.AddRow(fmt.Sprintf("w-event (w=%d)", r.W), f(r.IndepWEvent), f(r.CorrWEvent))
	tb.AddRow("user-level", f(r.IndepUser), f(r.CorrUser))
	tb.Notes = append(tb.Notes,
		"event-level alpha >= eps, with equality iff the data are uncorrelated",
		"user-level is T*eps regardless of correlation (Corollary 1)")
	return tb
}
