package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/report"
)

// Fig4Config is one panel of Fig. 4: a backward correlation matrix and a
// per-step budget.
type Fig4Config struct {
	Name  string
	Chain *markov.Chain
	Eps   float64
}

// Fig4Panel is the computed series and supremum of one panel.
type Fig4Panel struct {
	Config      Fig4Config
	BPL         []float64
	Supremum    float64
	HasSupremum bool
}

// Fig4Configs returns the paper's four panels:
//
//	(a) P = (0.8 0.2; 0.1 0.9), eps = 0.23 - supremum exists (d != 0)
//	(b) P = (0.8 0.2; 0 1),     eps = 0.23 - no supremum (eps > log(1/q))
//	(c) P = (0.8 0.2; 0 1),     eps = 0.15 - supremum exists (d = 0 case)
//	(d) P = identity,           eps = 0.23 - no supremum (strongest)
func Fig4Configs() []Fig4Config {
	id, err := markov.IdentityChain(2)
	if err != nil {
		panic(err) // 2-state identity cannot fail
	}
	return []Fig4Config{
		{Name: "(a) q=0.8,d=0.1 eps=0.23", Chain: markov.Fig4aExample(), Eps: 0.23},
		{Name: "(b) q=0.8,d=0 eps=0.23", Chain: markov.ModerateExample(), Eps: 0.23},
		{Name: "(c) q=0.8,d=0 eps=0.15", Chain: markov.ModerateExample(), Eps: 0.15},
		{Name: "(d) q=1,d=0 eps=0.23", Chain: id, Eps: 0.23},
	}
}

// Fig4 computes the maximum BPL over t = 1..T for each config and the
// Theorem 5 supremum where it exists. The paper plots T = 100.
func Fig4(T int) ([]Fig4Panel, error) {
	if T < 1 {
		return nil, fmt.Errorf("expt: T must be positive, got %d", T)
	}
	var out []Fig4Panel
	for _, cfg := range Fig4Configs() {
		q := core.NewQuantifier(cfg.Chain)
		bpl, err := core.BPLSeries(q, core.UniformBudgets(cfg.Eps, T))
		if err != nil {
			return nil, err
		}
		sup, ok := core.Supremum(q, cfg.Eps)
		out = append(out, Fig4Panel{Config: cfg, BPL: bpl, Supremum: sup, HasSupremum: ok})
	}
	return out, nil
}

// Fig4Table renders the panels at a decimated set of time points plus
// the supremum line.
func Fig4Table(panels []Fig4Panel) *report.Table {
	tb := &report.Table{
		Title:  "Fig 4: maximum BPL over time and Theorem-5 suprema",
		Header: []string{"t"},
	}
	for _, p := range panels {
		tb.Header = append(tb.Header, p.Config.Name)
	}
	T := len(panels[0].BPL)
	for t := 0; t < T; t++ {
		// Decimate long series: print powers-of-two-ish checkpoints.
		if !printPoint(t+1, T) {
			continue
		}
		row := []string{fmt.Sprintf("%d", t+1)}
		for _, p := range panels {
			row = append(row, f2(p.BPL[t]))
		}
		tb.AddRow(row...)
	}
	row := []string{"sup"}
	for _, p := range panels {
		if p.HasSupremum {
			row = append(row, f2(p.Supremum))
		} else {
			row = append(row, "none")
		}
	}
	tb.AddRow(row...)
	tb.Notes = append(tb.Notes,
		"panels (a) and (c) saturate at the supremum; (b) and (d) grow without bound")
	return tb
}

// printPoint decides which time points to print for long series: all of
// the first 10, then every 10th, plus the last.
func printPoint(t, T int) bool {
	if T <= 20 || t <= 10 || t == T {
		return true
	}
	return t%10 == 0
}

// Fig4Verify cross-checks each panel: the recurrence never exceeds an
// existing supremum and approaches it within tol by time T. It returns
// the worst violation (0 when all good).
func Fig4Verify(panels []Fig4Panel) float64 {
	worst := 0.0
	for _, p := range panels {
		if !p.HasSupremum {
			continue
		}
		last := p.BPL[len(p.BPL)-1]
		if over := last - p.Supremum; over > worst {
			worst = over
		}
		if gap := p.Supremum - last; gap > 0.02 && gap > worst {
			worst = gap
		}
	}
	return math.Max(worst, 0)
}
