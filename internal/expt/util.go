package expt

import "math"

// logOf is a checked log for solver outputs that are mathematically >= 1.
func logOf(ratio float64) float64 {
	if ratio < 1 {
		ratio = 1
	}
	return math.Log(ratio)
}

// maxAbsDiff3 returns the largest pairwise absolute difference of three
// values.
func maxAbsDiff3(a, b, c float64) float64 {
	m := math.Abs(a - b)
	if d := math.Abs(a - c); d > m {
		m = d
	}
	if d := math.Abs(b - c); d > m {
		m = d
	}
	return m
}
