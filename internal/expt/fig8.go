package expt

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/markov"
	"repro/internal/mechanism"
	"repro/internal/release"
	"repro/internal/report"
)

// Fig8Point is one bar of Fig. 8: the mean expected absolute Laplace
// noise of a release plan (lower is better).
type Fig8Point struct {
	Algorithm string // "Algorithm 2" or "Algorithm 3"
	T         int
	S         float64
	Noise     float64
}

// fig8Chains generates the backward and forward correlations for one
// Fig. 8 cell: two independent smoothed strongest matrices with the same
// smoothing parameter s (Section VI-C tests "backward and forward
// temporal correlation both with parameter s").
func fig8Chains(rng *rand.Rand, n int, s float64) (pb, pf *markov.Chain, err error) {
	if pb, err = markov.Smoothed(rng, n, s); err != nil {
		return nil, nil, err
	}
	if pf, err = markov.Smoothed(rng, n, s); err != nil {
		return nil, nil, err
	}
	return pb, pf, nil
}

// Fig8T reproduces Fig. 8(a): utility of the two algorithms at target
// alpha under strong correlation (the paper: alpha = 2, s = 0.001,
// n = 50) as the release length T varies over {5, 10, 50}.
func Fig8T(rng *rand.Rand, alpha, s float64, n int, Ts []int) ([]Fig8Point, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pb, pf, err := fig8Chains(rng, n, s)
	if err != nil {
		return nil, err
	}
	ub, err := release.UpperBound(pb, pf, alpha)
	if err != nil {
		return nil, err
	}
	var out []Fig8Point
	for _, T := range Ts {
		// Algorithm 2 ignores T: constant budget, constant noise.
		noise2 := 1 / ub.Eps
		out = append(out, Fig8Point{Algorithm: "Algorithm 2", T: T, S: s, Noise: noise2})

		qp, err := release.Quantified(pb, pf, alpha, T)
		if err != nil {
			return nil, err
		}
		budgets, err := qp.Budgets(T)
		if err != nil {
			return nil, err
		}
		noise3, err := mechanism.MeanExpectedAbsNoise(1, budgets)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Point{Algorithm: "Algorithm 3", T: T, S: s, Noise: noise3})
	}
	return out, nil
}

// Fig8S reproduces Fig. 8(b): utility at fixed T (10 in the paper) as
// the correlation strength s varies over {0.01, 0.1, 1}, plus the
// no-correlation reference noise 1/alpha.
func Fig8S(rng *rand.Rand, alpha float64, T, n int, ss []float64) ([]Fig8Point, float64, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var out []Fig8Point
	for _, s := range ss {
		pb, pf, err := fig8Chains(rng, n, s)
		if err != nil {
			return nil, 0, err
		}
		ub, err := release.UpperBound(pb, pf, alpha)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, Fig8Point{Algorithm: "Algorithm 2", T: T, S: s, Noise: 1 / ub.Eps})

		qp, err := release.Quantified(pb, pf, alpha, T)
		if err != nil {
			return nil, 0, err
		}
		budgets, err := qp.Budgets(T)
		if err != nil {
			return nil, 0, err
		}
		noise3, err := mechanism.MeanExpectedAbsNoise(1, budgets)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, Fig8Point{Algorithm: "Algorithm 3", T: T, S: s, Noise: noise3})
	}
	// Dashed reference line: Laplace noise with no temporal correlation.
	return out, 1 / alpha, nil
}

// Fig8Table renders points keyed by the sweep variable.
func Fig8Table(title, key string, points []Fig8Point) (*report.Table, error) {
	tb := &report.Table{
		Title:  title,
		Header: []string{key, "Algorithm 2", "Algorithm 3"},
	}
	// Points arrive in pairs (alg2, alg3) per sweep value.
	if len(points)%2 != 0 {
		return nil, errors.New("expt: expected alg2/alg3 point pairs")
	}
	for i := 0; i+1 < len(points); i += 2 {
		var label string
		switch key {
		case "T":
			label = fmt.Sprintf("%d", points[i].T)
		case "s":
			label = fmt.Sprintf("%g", points[i].S)
		default:
			return nil, fmt.Errorf("expt: unknown sweep key %q", key)
		}
		tb.AddRow(label, f(points[i].Noise), f(points[i+1].Noise))
	}
	tb.Notes = append(tb.Notes,
		"cells are mean E|Laplace noise| per released count; lower is better")
	return tb, nil
}
