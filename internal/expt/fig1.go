package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/mechanism"
	"repro/internal/report"
	"repro/internal/trace"
)

// Fig1Result materializes the paper's opening figure: users walking the
// Fig. 1(b) road network, their per-location true counts (Fig. 1(c)),
// the Laplace-perturbed private counts (Fig. 1(d)), and the leakage
// the deterministic road implies.
type Fig1Result struct {
	Users, T int
	Eps      float64
	// Locations[t][u] is user u's location at time t (Fig. 1(a)).
	Locations [][]int
	// True[t] and Private[t] are the count histograms (Fig. 1(c), (d)).
	True    [][]int
	Private [][]float64
}

// Fig1 simulates the scenario: users users walking the road network for
// T steps, counts released with Lap(1/eps) per location.
func Fig1(rng *rand.Rand, users, T int, eps float64) (*Fig1Result, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if users < 1 || T < 1 {
		return nil, fmt.Errorf("expt: need positive users and T, got %d, %d", users, T)
	}
	net := trace.Fig1Network()
	chain, err := net.UniformChain()
	if err != nil {
		return nil, err
	}
	pop, err := trace.NewPopulation(chain, users, matrix.Uniform(net.N()), rng)
	if err != nil {
		return nil, err
	}
	locs, counts, err := pop.Run(T)
	if err != nil {
		return nil, err
	}
	lap, err := mechanism.NewLaplace(eps, mechanism.CountSensitivity, rng)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Users: users, T: T, Eps: eps, Locations: locs, True: counts}
	for t := 0; t < T; t++ {
		res.Private = append(res.Private, lap.ReleaseCounts(counts[t]))
	}
	return res, nil
}

// Tables renders the true-counts and private-counts panels.
func (r *Fig1Result) Tables() []*report.Table {
	locNames := []string{"loc1", "loc2", "loc3", "loc4", "loc5"}
	trueTb := &report.Table{
		Title:  fmt.Sprintf("Fig 1(c): true counts (%d users on the road network)", r.Users),
		Header: []string{"location"},
	}
	privTb := &report.Table{
		Title:  fmt.Sprintf("Fig 1(d): private counts (Laplace, eps=%g per count)", r.Eps),
		Header: []string{"location"},
	}
	for t := 1; t <= r.T; t++ {
		trueTb.Header = append(trueTb.Header, fmt.Sprintf("t=%d", t))
		privTb.Header = append(privTb.Header, fmt.Sprintf("t=%d", t))
	}
	for l := 0; l < 5; l++ {
		rowT := []string{locNames[l]}
		rowP := []string{locNames[l]}
		for t := 0; t < r.T; t++ {
			rowT = append(rowT, fmt.Sprintf("%d", r.True[t][l]))
			rowP = append(rowP, fmt.Sprintf("%.1f", r.Private[t][l]))
		}
		trueTb.AddRow(rowT...)
		privTb.AddRow(rowP...)
	}
	trueTb.Notes = append(trueTb.Notes,
		"everyone at loc4 is at loc5 next step: the pattern an adversary exploits (Example 1)")
	return []*report.Table{trueTb, privTb}
}
