package expt

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/lfp"
	"repro/internal/markov"
	"repro/internal/report"
)

// SolverName identifies the quantification route being timed.
type SolverName string

// The three routes of the Fig. 5 comparison. SolverSimplex is this
// reproduction's stand-in for the external LP solvers (Gurobi,
// lp_solve): the same linear-fractional program reduced by
// Charnes-Cooper and solved with a dense two-phase simplex.
// SolverCompiled is the compiled leakage engine: the pair structure is
// precompiled once per matrix (a cost reported in the Compile column)
// and each Loss(alpha) evaluation is then a binary search over the
// precomputed envelope — the route every production path uses.
const (
	SolverAlgorithm1 SolverName = "Algorithm 1"
	SolverSimplex    SolverName = "simplex-LP"
	SolverCompiled   SolverName = "compiled-engine"
)

// Fig5Point is one timed measurement: quantifying the privacy-loss
// increment for a full n x n random transition matrix (max over all
// ordered row pairs) at prior leakage alpha.
type Fig5Point struct {
	Solver  SolverName
	N       int
	Alpha   float64
	Elapsed time.Duration
	// Compile is the one-time compilation cost for the compiled-engine
	// route (zero for the per-evaluation solvers).
	Compile time.Duration
	// Loss is the computed increment, reported so tests can verify the
	// solvers agree ("we verified that the optimal solution returned
	// by the three algorithms are the same").
	Loss float64
}

// quantifyAlg1 runs Algorithm 1 over all ordered row pairs — the
// paper's original per-evaluation route, via the retained naive scan.
func quantifyAlg1(c *markov.Chain, alpha float64) float64 {
	return core.NewQuantifier(c).LossNaive(alpha).Log
}

// compileQuantifier builds and compiles the engine for a chain, timing
// the one-time compilation.
func compileQuantifier(c *markov.Chain) (*core.Quantifier, time.Duration) {
	qt := core.NewQuantifier(c)
	start := time.Now()
	qt.Engine()
	return qt, time.Since(start)
}

// compiledPoint measures the compiled-engine route's per-evaluation
// cost on an already-compiled quantifier. compile is the matrix's
// one-time compilation cost, reported alongside so the amortization is
// visible in the table.
func compiledPoint(qt *core.Quantifier, compile time.Duration, n int, alpha float64) Fig5Point {
	// Evaluations are sub-microsecond; average over a batch so the
	// measurement rises above timer resolution.
	const evals = 1000
	start := time.Now()
	var loss float64
	for i := 0; i < evals; i++ {
		loss = qt.LossValue(alpha)
	}
	per := time.Since(start) / evals
	if per <= 0 {
		per = 1 // clamp to the timer tick so "elapsed > 0" invariants hold
	}
	return Fig5Point{Solver: SolverCompiled, N: n, Alpha: alpha, Elapsed: per, Compile: compile, Loss: loss}
}

// quantifySimplex solves one Charnes-Cooper LP per ordered row pair and
// takes the max, mirroring what an external LP solver has to do.
func quantifySimplex(c *markov.Chain, alpha float64) (float64, error) {
	n := c.N()
	best := 0.0
	for i := 0; i < n; i++ {
		qi := c.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ratio, err := (&lfp.Problem{Q: qi, D: c.Row(j), Alpha: alpha}).SolveLP()
			if err != nil {
				return 0, fmt.Errorf("expt: pair (%d,%d): %w", i, j, err)
			}
			if lg := math.Log(ratio); lg > best {
				best = lg
			}
		}
	}
	return best, nil
}

// Fig5Reps is the number of timed repetitions averaged per measurement,
// mirroring the paper's protocol ("we run our privacy quantification
// algorithm 30 times, and run Gurobi and lp_solve 5 times ... and then
// calculate the average runtime" — scaled down to keep the quick mode
// quick; the testing.B benchmarks provide statistically solid numbers).
const Fig5Reps = 3

// timeIt runs fn Fig5Reps times and returns the mean duration and the
// last result.
func timeIt(fn func() (float64, error)) (time.Duration, float64, error) {
	var total time.Duration
	var loss float64
	for r := 0; r < Fig5Reps; r++ {
		start := time.Now()
		v, err := fn()
		if err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		loss = v
	}
	return total / Fig5Reps, loss, nil
}

// Fig5N times both solvers across domain sizes at fixed alpha, the
// paper's Fig. 5(a) (alpha = 10 there). Because the dense simplex
// baseline grows so quickly, callers pass it a separate (smaller) size
// grid — exactly the situation the paper reports, where lp_solve needed
// 38 hours at n = 150 while Algorithm 1 took 11 seconds.
func Fig5N(rng *rand.Rand, alg1Sizes, simplexSizes []int, alpha float64) ([]Fig5Point, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var out []Fig5Point
	for _, n := range alg1Sizes {
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			return nil, err
		}
		mean, loss, err := timeIt(func() (float64, error) { return quantifyAlg1(c, alpha), nil })
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Point{Solver: SolverAlgorithm1, N: n, Alpha: alpha, Elapsed: mean, Loss: loss})
		qt, compile := compileQuantifier(c)
		out = append(out, compiledPoint(qt, compile, n, alpha))
	}
	for _, n := range simplexSizes {
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			return nil, err
		}
		mean, loss, err := timeIt(func() (float64, error) { return quantifySimplex(c, alpha) })
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Point{Solver: SolverSimplex, N: n, Alpha: alpha, Elapsed: mean, Loss: loss})
	}
	return out, nil
}

// Fig5Alpha times both solvers across prior-leakage values at fixed
// domain sizes, the paper's Fig. 5(b) (n = 50 there; the simplex
// baseline runs at its own, smaller n).
func Fig5Alpha(rng *rand.Rand, alphas []float64, alg1N, simplexN int) ([]Fig5Point, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	c1, err := markov.UniformRandom(rng, alg1N)
	if err != nil {
		return nil, err
	}
	c2, err := markov.UniformRandom(rng, simplexN)
	if err != nil {
		return nil, err
	}
	// One matrix, many alphas: compile once, amortized across the whole
	// sweep — exactly the access pattern the engine exists for.
	qt1, compile := compileQuantifier(c1)
	var out []Fig5Point
	for _, a := range alphas {
		a := a
		mean, loss, err := timeIt(func() (float64, error) { return quantifyAlg1(c1, a), nil })
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Point{Solver: SolverAlgorithm1, N: alg1N, Alpha: a, Elapsed: mean, Loss: loss})

		out = append(out, compiledPoint(qt1, compile, alg1N, a))

		mean2, loss2, err := timeIt(func() (float64, error) { return quantifySimplex(c2, a) })
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Point{Solver: SolverSimplex, N: simplexN, Alpha: a, Elapsed: mean2, Loss: loss2})
	}
	return out, nil
}

// Fig5AgreementCheck quantifies one random matrix through all three
// routes (Algorithm 1, simplex-LP, compiled engine) and returns the
// largest pairwise absolute difference of the computed losses. The
// paper verified all solvers return the same optimum; tests assert this
// is ~0.
func Fig5AgreementCheck(rng *rand.Rand, n int, alpha float64) (float64, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	c, err := markov.UniformRandom(rng, n)
	if err != nil {
		return 0, err
	}
	a := quantifyAlg1(c, alpha)
	b, err := quantifySimplex(c, alpha)
	if err != nil {
		return 0, err
	}
	e := core.NewQuantifier(c).LossValue(alpha)
	return math.Max(math.Abs(a-b), math.Max(math.Abs(a-e), math.Abs(b-e))), nil
}

// Fig5Table renders timing points grouped by solver. The time column is
// the per-evaluation cost; compile is the compiled-engine route's
// one-time cost, amortized over every later evaluation of the same
// matrix.
func Fig5Table(title string, points []Fig5Point) *report.Table {
	tb := &report.Table{
		Title:  title,
		Header: []string{"solver", "n", "alpha", "time", "compile", "loss"},
	}
	for _, p := range points {
		compile := "-"
		if p.Compile > 0 {
			compile = p.Compile.String()
		}
		tb.AddRow(string(p.Solver), fmt.Sprintf("%d", p.N), fmt.Sprintf("%g", p.Alpha),
			p.Elapsed.String(), compile, f(p.Loss))
	}
	tb.Notes = append(tb.Notes,
		"simplex-LP substitutes for Gurobi/lp_solve (see DESIGN.md); compare growth shapes, not absolute times",
		"compiled-engine rows amortize the one-time compile over per-eval lookups (DESIGN.md §5)")
	return tb
}
