package enginecache

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/persist"
)

// FuzzLoad feeds arbitrary bytes to the cache's read path as a cache
// entry file. The contract under fuzzing: Load never panics, and it
// either refuses (the overwhelmingly common case — the envelope
// checksum rejects random mutations) or produces a structurally valid
// engine of the requested size. Seeds include a pristine entry, a
// version-skewed envelope, truncations and raw garbage, so the fuzzer
// starts from every interesting region of the format.
func FuzzLoad(f *testing.F) {
	rng := rand.New(rand.NewSource(931))
	c, err := markov.UniformRandom(rng, 6)
	if err != nil {
		f.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	body, err := qt.Engine().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	var pristine bytes.Buffer
	if err := persist.EncodeEnvelope(&pristine, envelopeVersion, body); err != nil {
		f.Fatal(err)
	}
	f.Add(pristine.Bytes(), 6)
	var skewed bytes.Buffer
	if err := persist.EncodeEnvelope(&skewed, envelopeVersion+7, body); err != nil {
		f.Fatal(err)
	}
	f.Add(skewed.Bytes(), 6)
	f.Add(pristine.Bytes()[:pristine.Len()/2], 6)
	f.Add([]byte{}, 0)
	f.Add([]byte("not an envelope at all"), 3)

	hash := strings.Repeat("ab", 32)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		dir := t.TempDir()
		cache, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, hash+fileExt), data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, ok := cache.Load(hash, n)
		if ok {
			if e == nil {
				t.Fatal("Load reported ok with a nil engine")
			}
			if e.N() != n {
				t.Fatalf("loaded engine has n=%d, requested %d", e.N(), n)
			}
			// A loaded engine must be evaluable without panicking.
			_ = e.EvalValue(0.5)
		} else if e != nil {
			t.Fatal("Load reported !ok with a non-nil engine")
		}
	})
}
