// Package enginecache persists compiled leakage engines
// (core.Engine) on disk, keyed by the content hash of the transition
// matrix they were compiled from. Compilation is a deterministic
// function of chain content, so a cache hit is bit-identical to a
// fresh compile — the cache turns every process restart (deploys,
// crash recovery, bundle re-activation) from "recompile every model
// the fleet has ever seen" into "read a few hundred bytes per model".
//
// Layout: one file per engine, named <hex sha-256 of the chain
// content>.eng, each a checksummed persist envelope wrapping the
// engine's versioned wire form. Writes are atomic
// (write-temp, fsync, rename) so a crash mid-store leaves either the
// old entry or none. Reads re-validate everything: envelope checksum,
// envelope version, engine wire version, and the engine's structural
// invariants. Any failure — truncation, bit flips, version skew, a
// hand-edited file — is a cache miss that falls back to compilation;
// the cache can never make a result wrong, only cold.
package enginecache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// envelopeVersion is the persist-envelope version tag for engine cache
// entries. Distinct from the engine wire version inside the body: the
// envelope version says "this file is an engine cache entry of this
// framing", the body version says how the engine itself is encoded.
const envelopeVersion = 1

// fileExt suffixes every cache entry; temp files use a different
// suffix so a crash mid-write never leaves a file Load would open.
const fileExt = ".eng"

// DefaultMaxEntries bounds the cache directory by default. Entries are
// a few hundred bytes to a few tens of KB each, so the default bound
// keeps even a pathological chain-churning workload under ~100 MB of
// disk while holding vastly more models than any real fleet ships.
const DefaultMaxEntries = 4096

// Cache is an on-disk, content-addressed store of compiled engines.
// All methods are safe for concurrent use; the counters are plain
// atomics so the hot path (Load on session construction) never takes a
// lock.
type Cache struct {
	dir        string
	maxEntries int

	hits      atomic.Int64
	misses    atomic.Int64
	loads     atomic.Int64
	loadNs    atomic.Int64
	stores    atomic.Int64
	writeNs   atomic.Int64
	evictions atomic.Int64
}

// Stats is a point-in-time snapshot of cache effectiveness, shaped for
// the healthz engine_cache block.
type Stats struct {
	// Hits counts Loads answered from disk; Misses counts Loads that
	// fell back to compilation (absent, corrupt, or version-skewed
	// entries all count here — the caller compiles either way).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Loads counts successful engine deserializations (== Hits) and
	// LoadNs their cumulative wall time, so load_ns/loads is the mean
	// cost of a warm start per model.
	Loads  int64 `json:"loads"`
	LoadNs int64 `json:"load_ns"`
	// Stores counts engines persisted and WriteNs their cumulative
	// wall time (marshal + write + fsync + rename).
	Stores  int64 `json:"stores"`
	WriteNs int64 `json:"write_ns"`
	// Evictions counts entries removed to hold the entry bound.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the directory right now.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Open creates (if needed) the cache directory and returns a cache
// bounded by DefaultMaxEntries.
func Open(dir string) (*Cache, error) {
	return OpenLimit(dir, DefaultMaxEntries)
}

// OpenLimit is Open with an explicit entry bound; maxEntries <= 0
// means unbounded.
func OpenLimit(dir string, maxEntries int) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("enginecache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("enginecache: %w", err)
	}
	return &Cache{dir: dir, maxEntries: maxEntries}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// validHash reports whether key is a plausible content hash: exactly
// the 64 lowercase hex characters hex-encoded SHA-256 produces. This
// is also the path-traversal guard — the key becomes a file name, so
// nothing outside this alphabet may pass.
func validHash(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		ch := key[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Load returns the cached engine for the given content hash, if a
// valid entry exists and its state-space size matches n. Every failure
// mode — absent file, bad checksum, truncated body, version skew,
// structural invalidity, size mismatch — returns (nil, false) and
// counts as a miss; corrupt entries are additionally removed so the
// next Store rewrites them cleanly. Load never returns an error: the
// caller's fallback is always "compile fresh".
func (c *Cache) Load(hash string, n int) (*core.Engine, bool) {
	if c == nil || !validHash(hash) {
		return nil, false
	}
	start := time.Now()
	path := filepath.Join(c.dir, hash+fileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	version, body, err := persist.DecodeEnvelope(bytes.NewReader(data))
	if err != nil || version != envelopeVersion {
		c.misses.Add(1)
		os.Remove(path) // corrupt or skewed: clear so Store can rewrite
		return nil, false
	}
	e, err := core.UnmarshalEngine(body)
	if err != nil || e.N() != n {
		c.misses.Add(1)
		os.Remove(path)
		return nil, false
	}
	c.hits.Add(1)
	c.loads.Add(1)
	c.loadNs.Add(time.Since(start).Nanoseconds())
	return e, true
}

// Store persists a compiled engine under the given content hash,
// atomically: the envelope is written to a temp file in the same
// directory, fsynced, and renamed over the final name. Failures are
// silently dropped — a cache that cannot write is merely cold, and the
// hot path this runs on (first compile of a model) must not grow an
// error branch callers would have to thread upward.
func (c *Cache) Store(hash string, e *core.Engine) {
	if c == nil || e == nil || !validHash(hash) {
		return
	}
	start := time.Now()
	body, err := e.MarshalBinary()
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := persist.EncodeEnvelope(&buf, envelopeVersion, body); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*.part")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, hash+fileExt)); err != nil {
		return
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(c.dir); err == nil {
		d.Sync()
		d.Close()
	}
	c.stores.Add(1)
	c.writeNs.Add(time.Since(start).Nanoseconds())
	c.evict()
}

// evict trims the directory to the entry bound, oldest
// modification time first. It scans on every store; stores are rare
// (one per distinct model per process lifetime) and directories are
// small, so the scan is cheaper than maintaining an index file that
// could itself go stale.
func (c *Cache) evict() {
	if c.maxEntries <= 0 {
		return
	}
	entries, err := c.entryInfos()
	if err != nil || len(entries) <= c.maxEntries {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, ent := range entries[:len(entries)-c.maxEntries] {
		if os.Remove(filepath.Join(c.dir, ent.name)) == nil {
			c.evictions.Add(1)
		}
	}
}

type entryInfo struct {
	name  string
	size  int64
	mtime time.Time
}

// entryInfos lists the cache entries (ignoring temp files and anything
// that is not a well-formed entry name).
func (c *Cache) entryInfos() ([]entryInfo, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	out := make([]entryInfo, 0, len(dirents))
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || filepath.Ext(name) != fileExt || !validHash(name[:len(name)-len(fileExt)]) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, entryInfo{name: name, size: info.Size(), mtime: info.ModTime()})
	}
	return out, nil
}

// Stats snapshots the counters and scans the directory for the entry
// count and byte size. A nil cache reports zeros, so callers surface
// the block unconditionally.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Loads:     c.loads.Load(),
		LoadNs:    c.loadNs.Load(),
		Stores:    c.stores.Load(),
		WriteNs:   c.writeNs.Load(),
		Evictions: c.evictions.Load(),
	}
	if entries, err := c.entryInfos(); err == nil {
		s.Entries = len(entries)
		for _, e := range entries {
			s.Bytes += e.size
		}
	}
	return s
}
