package enginecache

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
)

// engineAlphas mirrors the differential grid of the core engine tests.
var engineAlphas = []float64{1e-9, 1e-3, 0.05, 0.3, 1, 2.5, 7, 20, 80, 400}

// corpusChains builds the representative shapes of the core
// differential corpus: dense random, sparse road-network-style,
// identity-like, zero-column and point-mass chains.
func corpusChains(t *testing.T) map[string]*markov.Chain {
	t.Helper()
	rng := rand.New(rand.NewSource(921))
	chains := map[string]*markov.Chain{}
	for i := 0; i < 5; i++ {
		c, err := markov.UniformRandom(rng, 2+rng.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		chains["dense-"+string(rune('a'+i))] = c
	}
	for i := 0; i < 5; i++ {
		n := 4 + rng.Intn(24)
		m := matrix.New(n, n)
		for r := 0; r < n; r++ {
			k := 1 + rng.Intn(3)
			for _, j := range rng.Perm(n)[:k] {
				m.Set(r, j, rng.Float64()+0.05)
			}
		}
		if err := m.NormalizeRows(); err != nil {
			t.Fatal(err)
		}
		c, err := markov.New(m)
		if err != nil {
			t.Fatal(err)
		}
		chains["sparse-"+string(rune('a'+i))] = c
	}
	id, err := markov.IdentityChain(5)
	if err != nil {
		t.Fatal(err)
	}
	chains["identity"] = id
	zeroCol, err := markov.FromRows([][]float64{
		{0.5, 0.5, 0},
		{0.3, 0.7, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	chains["zero-column"] = zeroCol
	pointMass, err := markov.FromRows([][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	chains["point-mass"] = pointMass
	return chains
}

// TestDiskLoadedEngineBitIdentical is the cache's differential test:
// an engine stored to disk, loaded back, and adopted by a fresh
// quantifier must evaluate Loss bit-identically — exact equality on
// every LossResult field — to an independent fresh compile, across the
// whole corpus.
func TestDiskLoadedEngineBitIdentical(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for label, c := range corpusChains(t) {
		fresh := core.NewQuantifier(c)
		hash := fresh.ContentHash()
		cache.Store(hash, fresh.Engine())
		loaded, ok := cache.Load(hash, c.N())
		if !ok {
			t.Fatalf("%s: stored engine did not load", label)
		}
		adopted := core.NewQuantifier(c)
		if !adopted.AdoptEngine(loaded) {
			t.Fatalf("%s: adoption refused", label)
		}
		for _, alpha := range engineAlphas {
			if got, want := adopted.Loss(alpha), fresh.Loss(alpha); got != want {
				t.Fatalf("%s alpha=%g: disk-loaded %+v, fresh %+v", label, alpha, got, want)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Stores == 0 || st.Misses != 0 {
		t.Fatalf("unexpected stats after clean round trips: %+v", st)
	}
	if st.Loads != st.Hits {
		t.Fatalf("loads %d != hits %d", st.Loads, st.Hits)
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("directory empty after %d stores: %+v", st.Stores, st)
	}
}

func storeOne(t *testing.T, cache *Cache, seed int64) (hash string, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, err := markov.UniformRandom(rng, 6)
	if err != nil {
		t.Fatal(err)
	}
	qt := core.NewQuantifier(c)
	cache.Store(qt.ContentHash(), qt.Engine())
	return qt.ContentHash(), c.N()
}

func TestLoadCorruptEntriesNeverLoad(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, n := storeOne(t, cache, 1)
	path := filepath.Join(dir, hash+fileExt)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reset := func(mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Truncation at every prefix length.
	for cut := 0; cut < len(pristine); cut += 7 {
		reset(func(b []byte) []byte { return b[:cut] })
		if _, ok := cache.Load(hash, n); ok {
			t.Fatalf("truncation to %d bytes loaded", cut)
		}
	}
	// Single bit flips across the file (the envelope checksum must
	// catch every one).
	for pos := 0; pos < len(pristine); pos += 11 {
		reset(func(b []byte) []byte { b[pos] ^= 0x10; return b })
		if _, ok := cache.Load(hash, n); ok {
			t.Fatalf("bit flip at byte %d loaded", pos)
		}
	}
	// Wrong state-space size must refuse even a pristine entry.
	reset(func(b []byte) []byte { return b })
	if _, ok := cache.Load(hash, n+1); ok {
		t.Fatal("entry loaded for the wrong state-space size")
	}
	// Corrupt entries are removed so a rewrite can heal them.
	reset(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	if _, ok := cache.Load(hash, n); ok {
		t.Fatal("corrupt tail loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	if st := cache.Stats(); st.Misses == 0 {
		t.Fatalf("corruption did not count as misses: %+v", st)
	}
}

func TestInvalidHashRefused(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := markov.UniformChain(3)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewQuantifier(c).Engine()
	for _, bad := range []string{
		"",
		"short",
		"../../../../tmp/escape",
		strings.Repeat("g", 64),       // not hex
		strings.Repeat("A", 64),       // wrong case
		strings.Repeat("0", 63) + "/", // separator
		strings.Repeat("0", 32) + ".." + "00000000" + strings.Repeat("0", 22),
	} {
		cache.Store(bad, e)
		if _, ok := cache.Load(bad, 3); ok {
			t.Fatalf("hash %q loaded", bad)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("invalid hashes created %d files", len(ents))
	}
}

func TestEvictionHoldsEntryBound(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenLimit(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		storeOne(t, cache, seed)
	}
	st := cache.Stats()
	if st.Entries > 2 {
		t.Fatalf("bound 2 but %d entries remain", st.Entries)
	}
	if st.Evictions < 2 {
		t.Fatalf("expected >= 2 evictions, got %d", st.Evictions)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Load(strings.Repeat("0", 64), 3); ok {
		t.Fatal("nil cache loaded")
	}
	c.Store(strings.Repeat("0", 64), nil)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}
