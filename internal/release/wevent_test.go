package release

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

func TestWEventHoldsEveryWindow(t *testing.T) {
	pb, pf := fig7Chains()
	const alpha = 1.0
	for _, w := range []int{1, 2, 3, 5} {
		plan, err := WEvent(pb, pf, alpha, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		// Verify over a long horizon through the exact series machinery.
		const T = 120
		eps, err := plan.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		qb, qf := core.NewQuantifier(pb), core.NewQuantifier(pf)
		bpl, err := core.BPLSeries(qb, eps)
		if err != nil {
			t.Fatal(err)
		}
		fpl, err := core.FPLSeries(qf, eps)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := core.WEventTPL(bpl, fpl, eps, w)
		if err != nil {
			t.Fatal(err)
		}
		if worst > alpha+1e-6 {
			t.Errorf("w=%d: worst window leakage %v exceeds alpha", w, worst)
		}
	}
}

func TestWEventW1MatchesUpperBound(t *testing.T) {
	// w = 1 is event level: the budget should match Algorithm 2's.
	pb, pf := fig7Chains()
	we, err := WEvent(pb, pf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(we.Eps-ub.Eps) > 1e-6 {
		t.Errorf("w=1 eps %v vs Algorithm 2 eps %v", we.Eps, ub.Eps)
	}
}

func TestWEventBudgetShrinksWithW(t *testing.T) {
	pb, pf := fig7Chains()
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8, 16} {
		plan, err := WEvent(pb, pf, 2, w)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Eps >= prev {
			t.Errorf("w=%d: eps %v did not shrink from %v", w, plan.Eps, prev)
		}
		prev = plan.Eps
	}
}

func TestWEventApproachesGroupForLargeW(t *testing.T) {
	// As w grows the per-step budget approaches alpha/w from below
	// (the middle-sum term dominates).
	pb, pf := fig7Chains()
	const alpha = 2.0
	plan, err := WEvent(pb, pf, alpha, 50)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eps > alpha/50 {
		t.Errorf("eps %v exceeds alpha/w", plan.Eps)
	}
	if plan.Eps < 0.5*alpha/50 {
		t.Errorf("eps %v implausibly small vs alpha/w = %v", plan.Eps, alpha/50)
	}
}

func TestWEventStrongestRefused(t *testing.T) {
	id, _ := markov.IdentityChain(2)
	if _, err := WEvent(id, nil, 1, 3); !errors.Is(err, ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
}

func TestWEventNoCorrelation(t *testing.T) {
	// Without correlations the constraint is w*eps <= alpha.
	plan, err := WEvent(nil, nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Eps-0.25) > 1e-6 {
		t.Errorf("eps = %v, want alpha/w = 0.25", plan.Eps)
	}
}

func TestWEventValidation(t *testing.T) {
	pb, pf := fig7Chains()
	if _, err := WEvent(pb, pf, 0, 3); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := WEvent(pb, pf, 1, 0); err == nil {
		t.Error("w=0 should fail")
	}
	plan, err := WEvent(pb, pf, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Horizon() != 0 || plan.Alpha() != 1 {
		t.Error("metadata wrong")
	}
	if _, err := plan.BudgetAt(0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := plan.Budgets(0); err == nil {
		t.Error("T=0 should fail")
	}
}
