package release

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

func fig7Chains() (*markov.Chain, *markov.Chain) {
	return markov.Fig7Backward(), markov.Fig7Forward()
}

func TestUpperBoundBudgetsBalance(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eps <= 0 || plan.Eps > 1 {
		t.Errorf("eps = %v out of (0, alpha]", plan.Eps)
	}
	// The accounting identity alpha = alphaB + alphaF - eps must hold.
	if got := plan.AlphaB + plan.AlphaF - plan.Eps; math.Abs(got-1) > 1e-9 {
		t.Errorf("alphaB+alphaF-eps = %v, want 1", got)
	}
	// The supremum of BPL under eps must be alphaB, and of FPL alphaF.
	supB, ok := core.Supremum(core.NewQuantifier(pb), plan.Eps)
	if !ok {
		t.Fatal("BPL supremum should exist")
	}
	if math.Abs(supB-plan.AlphaB) > 1e-6 {
		t.Errorf("BPL supremum %v != alphaB %v", supB, plan.AlphaB)
	}
	supF, ok := core.Supremum(core.NewQuantifier(pf), plan.Eps)
	if !ok {
		t.Fatal("FPL supremum should exist")
	}
	if math.Abs(supF-plan.AlphaF) > 1e-6 {
		t.Errorf("FPL supremum %v != alphaF %v", supF, plan.AlphaF)
	}
}

func TestUpperBoundHoldsForAnyHorizon(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int{1, 2, 5, 30, 200} {
		worst, err := plan.VerifyHorizon(pb, pf, T)
		if err != nil {
			t.Fatal(err)
		}
		if worst > 1+1e-9 {
			t.Errorf("T=%d: max TPL %v exceeds alpha 1", T, worst)
		}
	}
}

func TestUpperBoundApproachesAlphaAsymptotically(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := plan.VerifyHorizon(pb, pf, 500)
	if err != nil {
		t.Fatal(err)
	}
	if worst < 0.99 {
		t.Errorf("long-run max TPL %v should approach alpha 1 (budget is wasted otherwise)", worst)
	}
}

func TestUpperBoundNoCorrelation(t *testing.T) {
	// Without correlations the whole budget goes to each step: eps = alpha.
	plan, err := UpperBound(nil, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Eps-0.8) > 1e-9 {
		t.Errorf("eps = %v, want 0.8", plan.Eps)
	}
}

func TestUpperBoundStrongestCorrelationFails(t *testing.T) {
	id, _ := markov.IdentityChain(2)
	if _, err := UpperBound(id, nil, 1); !errors.Is(err, ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
	if _, err := UpperBound(nil, id, 1); !errors.Is(err, ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
}

func TestUpperBoundValidation(t *testing.T) {
	pb, pf := fig7Chains()
	for _, alpha := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := UpperBound(pb, pf, alpha); err == nil {
			t.Errorf("alpha=%v should fail", alpha)
		}
	}
}

func TestUpperBoundPlanInterface(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alpha() != 2 || plan.Horizon() != 0 {
		t.Error("plan metadata wrong")
	}
	e, err := plan.BudgetAt(99)
	if err != nil || e != plan.Eps {
		t.Error("BudgetAt should return the uniform budget at any t")
	}
	if _, err := plan.BudgetAt(0); err == nil {
		t.Error("t=0 should fail")
	}
	bs, err := plan.Budgets(4)
	if err != nil || len(bs) != 4 {
		t.Error("Budgets(4) failed")
	}
	if _, err := plan.Budgets(0); err == nil {
		t.Error("Budgets(0) should fail")
	}
}

func TestQuantifiedExactAtEveryTimePoint(t *testing.T) {
	pb, pf := fig7Chains()
	for _, T := range []int{2, 3, 5, 10, 30} {
		plan, err := Quantified(pb, pf, 1, T)
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		dev, err := plan.VerifyExact(pb, pf)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 1e-9 {
			t.Errorf("T=%d: max |TPL - alpha| = %v, want ~0", T, dev)
		}
	}
}

func TestQuantifiedT1(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := Quantified(pb, pf, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eps1 != 0.7 {
		t.Errorf("T=1 budget = %v, want alpha", plan.Eps1)
	}
	dev, err := plan.VerifyExact(pb, pf)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 1e-12 {
		t.Errorf("T=1 deviation %v", dev)
	}
}

func TestQuantifiedEdgeBudgetsLarger(t *testing.T) {
	// "The DP mechanisms at the first and last time points should be
	// allocated more budgets" (Section V).
	pb, pf := fig7Chains()
	plan, err := Quantified(pb, pf, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eps1 <= plan.EpsM || plan.EpsT <= plan.EpsM {
		t.Errorf("edge budgets should exceed middle: eps1=%v epsM=%v epsT=%v",
			plan.Eps1, plan.EpsM, plan.EpsT)
	}
}

func TestQuantifiedBeatsUpperBoundForShortT(t *testing.T) {
	// Fig. 8(a): for short T Algorithm 3 spends more budget per step
	// (less noise) than Algorithm 2.
	pb, pf := fig7Chains()
	ub, err := UpperBound(pb, pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int{2, 5, 10} {
		qp, err := Quantified(pb, pf, 2, T)
		if err != nil {
			t.Fatal(err)
		}
		// Compare average noise 1/eps across the horizon.
		ubNoise := 1 / ub.Eps
		qpBudgets, err := qp.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		qpNoise := 0.0
		for _, e := range qpBudgets {
			qpNoise += 1 / e
		}
		qpNoise /= float64(T)
		if qpNoise > ubNoise+1e-9 {
			t.Errorf("T=%d: quantified noise %v exceeds upper-bound noise %v", T, qpNoise, ubNoise)
		}
	}
}

func TestQuantifiedMiddleConvergesToUpperBoundEps(t *testing.T) {
	// As T grows the middle budget approaches Algorithm 2's uniform
	// budget (both pin the same fixed point).
	pb, pf := fig7Chains()
	ub, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := Quantified(pb, pf, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qp.EpsM-ub.Eps) > 0.05 {
		t.Errorf("middle budget %v far from upper-bound eps %v", qp.EpsM, ub.Eps)
	}
}

func TestQuantifiedNoCorrelation(t *testing.T) {
	plan, err := Quantified(nil, nil, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 1; tm <= 5; tm++ {
		e, err := plan.BudgetAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-0.9) > 1e-9 {
			t.Errorf("t=%d: eps = %v, want alpha (no correlation)", tm, e)
		}
	}
}

func TestQuantifiedStrongestCorrelationFails(t *testing.T) {
	id, _ := markov.IdentityChain(2)
	if _, err := Quantified(id, id, 1, 5); !errors.Is(err, ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
}

func TestQuantifiedValidation(t *testing.T) {
	pb, pf := fig7Chains()
	if _, err := Quantified(pb, pf, 0, 5); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := Quantified(pb, pf, 1, 0); err == nil {
		t.Error("T=0 should fail")
	}
}

func TestQuantifiedPlanInterface(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := Quantified(pb, pf, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alpha() != 1 || plan.Horizon() != 4 {
		t.Error("plan metadata wrong")
	}
	if _, err := plan.BudgetAt(5); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("beyond horizon should fail with ErrHorizonExceeded")
	}
	if _, err := plan.Budgets(3); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("wrong horizon should fail")
	}
	bs, err := plan.Budgets(4)
	if err != nil {
		t.Fatal(err)
	}
	if bs[0] != plan.Eps1 || bs[1] != plan.EpsM || bs[3] != plan.EpsT {
		t.Errorf("budgets = %v", bs)
	}
}

func TestAsymmetricCorrelations(t *testing.T) {
	// Backward-only and forward-only adversaries.
	pb, pf := fig7Chains()
	planB, err := Quantified(pb, nil, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dev, _ := planB.VerifyExact(pb, nil); dev > 1e-9 {
		t.Errorf("backward-only deviation %v", dev)
	}
	planF, err := Quantified(nil, pf, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dev, _ := planF.VerifyExact(nil, pf); dev > 1e-9 {
		t.Errorf("forward-only deviation %v", dev)
	}
}
