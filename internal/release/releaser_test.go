package release

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mechanism"
)

func TestNewReleaserValidation(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReleaser(nil, 1, nil); err == nil {
		t.Error("nil plan should fail")
	}
	if _, err := NewReleaser(plan, 0, nil); err == nil {
		t.Error("zero sensitivity should fail")
	}
	r, err := NewReleaser(plan, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != 1 {
		t.Errorf("initial T = %d", r.T())
	}
}

func TestReleaserAdvancesTime(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReleaser(plan, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := mechanism.NewSnapshot(3, []int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, err := r.Release(snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 {
			t.Fatalf("histogram length %d", len(out))
		}
	}
	if r.T() != 6 {
		t.Errorf("T = %d after 5 releases", r.T())
	}
}

func TestReleaserHonorsFiniteHorizon(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := Quantified(pb, pf, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReleaser(plan, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := mechanism.NewSnapshot(2, []int{0, 1})
	for i := 0; i < 2; i++ {
		if _, err := r.Release(snap); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Release(snap); !errors.Is(err, ErrHorizonExceeded) {
		t.Errorf("err = %v, want ErrHorizonExceeded", err)
	}
	if _, err := r.ReleaseValue(3); !errors.Is(err, ErrHorizonExceeded) {
		t.Errorf("scalar err = %v, want ErrHorizonExceeded", err)
	}
}

func TestReleaserGeometricNoise(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReleaserWithNoise(plan, 1, GeometricNoise, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := mechanism.NewSnapshot(3, []int{0, 1, 1, 2})
	out, err := r.Release(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != math.Trunc(v) {
			t.Errorf("cell %d: geometric release %v not integral", i, v)
		}
	}
	v, err := r.ReleaseValue(7)
	if err != nil {
		t.Fatal(err)
	}
	if v != math.Trunc(v) {
		t.Errorf("scalar geometric release %v not integral", v)
	}
}

func TestReleaserWithNoiseValidation(t *testing.T) {
	pb, pf := fig7Chains()
	plan, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReleaserWithNoise(plan, 1.5, GeometricNoise, nil); err == nil {
		t.Error("fractional sensitivity with geometric noise should fail")
	}
	if _, err := NewReleaserWithNoise(plan, 1, Noise(99), nil); err == nil {
		t.Error("unknown noise kind should fail")
	}
	if _, err := NewReleaserWithNoise(plan, 2, GeometricNoise, nil); err != nil {
		t.Errorf("integral sensitivity rejected: %v", err)
	}
}

func TestReleaserNoiseScaleTracksBudgets(t *testing.T) {
	// The first step of a quantified plan has a larger budget, hence
	// less noise, than the middle steps. Verify empirically.
	pb, pf := fig7Chains()
	plan, err := Quantified(pb, pf, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 20000
	absFirst, absMiddle := 0.0, 0.0
	for i := 0; i < trials; i++ {
		r, err := NewReleaser(plan, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := r.ReleaseValue(0)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := r.ReleaseValue(0)
		if err != nil {
			t.Fatal(err)
		}
		absFirst += math.Abs(v1)
		absMiddle += math.Abs(v2)
	}
	absFirst /= trials
	absMiddle /= trials
	wantFirst := 1 / plan.Eps1
	wantMiddle := 1 / plan.EpsM
	if math.Abs(absFirst-wantFirst) > 0.1*wantFirst {
		t.Errorf("first-step E|noise| = %v, want ~%v", absFirst, wantFirst)
	}
	if math.Abs(absMiddle-wantMiddle) > 0.1*wantMiddle {
		t.Errorf("middle-step E|noise| = %v, want ~%v", absMiddle, wantMiddle)
	}
	if absFirst >= absMiddle {
		t.Errorf("first step should be less noisy: %v vs %v", absFirst, absMiddle)
	}
}
