package release

import (
	"fmt"

	"repro/internal/core"
)

// GroupPrivacyPlan is the baseline the paper argues against in Section I:
// protect all temporally correlated data "in a bundle" via group
// differential privacy, i.e. split the target alpha uniformly across the
// whole horizon (eps = alpha/T per step, noise scale T/alpha).
//
// It is safe against ANY temporal correlation — including the strongest,
// where the fine-grained planners must refuse — because
// TPL(t) = BPL(t) + FPL(t) - eps_t <= t*eps + (T-t+1)*eps - eps = T*eps
// = alpha. But it cannot exploit weak correlations: "regardless of
// whether Pr(...) is 1 or 0.1, it always protects the correlated data in
// a bundle", over-perturbing the release. The ablation benchmark
// BenchmarkAblationPlanners quantifies exactly that gap.
type GroupPrivacyPlan struct {
	TargetAlpha float64
	T           int
	Eps         float64
}

// GroupPrivacy builds the group-DP baseline plan for a horizon of T
// steps.
func GroupPrivacy(alpha float64, T int) (*GroupPrivacyPlan, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if T < 1 {
		return nil, fmt.Errorf("release: horizon must be at least 1, got %d", T)
	}
	return &GroupPrivacyPlan{TargetAlpha: alpha, T: T, Eps: alpha / float64(T)}, nil
}

// Alpha implements Plan.
func (p *GroupPrivacyPlan) Alpha() float64 { return p.TargetAlpha }

// Horizon implements Plan.
func (p *GroupPrivacyPlan) Horizon() int { return p.T }

// BudgetAt implements Plan.
func (p *GroupPrivacyPlan) BudgetAt(t int) (float64, error) {
	if t < 1 || t > p.T {
		return 0, fmt.Errorf("release: time %d outside plan horizon [1,%d]: %w", t, p.T, ErrHorizonExceeded)
	}
	return p.Eps, nil
}

// Budgets implements Plan. T must equal the plan horizon.
func (p *GroupPrivacyPlan) Budgets(T int) ([]float64, error) {
	if T != p.T {
		return nil, fmt.Errorf("release: group plan covers exactly T=%d, asked for %d: %w", p.T, T, ErrHorizonExceeded)
	}
	return core.UniformBudgets(p.Eps, T), nil
}
