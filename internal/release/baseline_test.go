package release

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

func TestGroupPrivacySafeUnderAnyCorrelation(t *testing.T) {
	// The group-DP baseline must hold alpha even under the strongest
	// correlation, where the fine planners refuse.
	id, _ := markov.IdentityChain(2)
	plan, err := GroupPrivacy(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := plan.Budgets(10)
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQuantifier(id)
	worst, err := core.MaxTPL(q, q, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1+1e-9 {
		t.Errorf("group baseline leaks %v > alpha under identity correlation", worst)
	}
	// And for a random weaker correlation too.
	pb, pf := fig7Chains()
	worst2, err := core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf), budgets)
	if err != nil {
		t.Fatal(err)
	}
	if worst2 > 1+1e-9 {
		t.Errorf("group baseline leaks %v > alpha", worst2)
	}
}

func TestGroupPrivacyOverPerturbsWeakCorrelation(t *testing.T) {
	// Section I's criticism: under weak (non-strongest) correlation the
	// bundle approach wastes budget relative to Algorithm 3.
	pb, pf := fig7Chains()
	const alpha, T = 1.0, 10
	group, err := GroupPrivacy(alpha, T)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Quantified(pb, pf, alpha, T)
	if err != nil {
		t.Fatal(err)
	}
	fineBudgets, err := fine.Budgets(T)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm < T; tm++ {
		if fineBudgets[tm] <= group.Eps {
			t.Errorf("t=%d: Algorithm 3 budget %v not above group baseline %v",
				tm+1, fineBudgets[tm], group.Eps)
		}
	}
}

func TestGroupPrivacyPlanInterface(t *testing.T) {
	plan, err := GroupPrivacy(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alpha() != 2 || plan.Horizon() != 4 {
		t.Error("metadata wrong")
	}
	e, err := plan.BudgetAt(3)
	if err != nil || math.Abs(e-0.5) > 1e-12 {
		t.Errorf("BudgetAt = %v/%v", e, err)
	}
	if _, err := plan.BudgetAt(5); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("beyond horizon should fail")
	}
	if _, err := plan.Budgets(3); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("wrong horizon should fail")
	}
	if _, err := GroupPrivacy(0, 5); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := GroupPrivacy(1, 0); err == nil {
		t.Error("T=0 should fail")
	}
}

func TestUpperBoundMultiWorstUserDominates(t *testing.T) {
	pb, pf := fig7Chains()
	weakB, err := markov.Lazy(2, 0.55) // nearly uniform
	if err != nil {
		t.Fatal(err)
	}
	users := []UserModel{
		{Backward: pb, Forward: pf},
		{Backward: weakB, Forward: weakB},
	}
	mp, err := UpperBoundMulti(users, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Combined budget = min over users at each step; the strongly
	// correlated user should be the binding one.
	strong := mp.Users[0].(*UpperBoundPlan)
	weak := mp.Users[1].(*UpperBoundPlan)
	if strong.Eps >= weak.Eps {
		t.Fatalf("expected the strong user to need the smaller budget: %v vs %v", strong.Eps, weak.Eps)
	}
	for tm := 1; tm <= 10; tm++ {
		e, err := mp.BudgetAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-strong.Eps) > 1e-12 {
			t.Errorf("t=%d: combined %v, want %v", tm, e, strong.Eps)
		}
	}
}

func TestQuantifiedMultiEveryUserWithinTarget(t *testing.T) {
	pb, pf := fig7Chains()
	weak, err := markov.Lazy(2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	users := []UserModel{
		{Backward: pb, Forward: pf},
		{Backward: weak, Forward: weak},
	}
	const alpha, T = 1.0, 8
	mp, err := QuantifiedMulti(users, alpha, T)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		worst, err := core.MaxTPL(core.NewQuantifier(u.Backward), core.NewQuantifier(u.Forward), mp.Combined)
		if err != nil {
			t.Fatal(err)
		}
		if worst > alpha+1e-9 {
			t.Errorf("user %d leaks %v > alpha under the combined budgets", i, worst)
		}
	}
}

func TestMultiPersonalizedTargets(t *testing.T) {
	pb, pf := fig7Chains()
	users := []UserModel{
		{Backward: pb, Forward: pf, Alpha: 0.5}, // stricter personal target
		{Backward: pb, Forward: pf},             // global target
	}
	mp, err := QuantifiedMulti(users, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The strict user's leakage under the combined budgets must respect
	// their personal 0.5.
	worst, err := core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf), mp.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.5+1e-9 {
		t.Errorf("strict user leaks %v > personal alpha 0.5", worst)
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := UpperBoundMulti(nil, 1, 5); err == nil {
		t.Error("no users should fail")
	}
	pb, pf := fig7Chains()
	users := []UserModel{{Backward: pb, Forward: pf}}
	if _, err := UpperBoundMulti(users, 1, 0); err == nil {
		t.Error("T=0 should fail")
	}
	if _, err := QuantifiedMulti(nil, 1, 5); err == nil {
		t.Error("no users should fail")
	}
	if _, err := QuantifiedMulti(users, 1, 0); err == nil {
		t.Error("T=0 should fail")
	}
	id, _ := markov.IdentityChain(2)
	bad := []UserModel{{Backward: id}}
	if _, err := UpperBoundMulti(bad, 1, 5); !errors.Is(err, ErrStrongestCorrelation) {
		t.Errorf("err = %v, want ErrStrongestCorrelation", err)
	}
	mp, err := QuantifiedMulti(users, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.BudgetAt(6); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("beyond horizon should fail")
	}
}
