package release

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
)

func TestPlannersMonotoneInAlpha(t *testing.T) {
	// A looser leakage target must never produce smaller per-step
	// budgets (more privacy tolerance = less noise).
	pb, pf := fig7Chains()
	var prevUB, prevQPMid float64
	for i, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		ub, err := UpperBound(pb, pf, alpha)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := Quantified(pb, pf, alpha, 10)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if ub.Eps < prevUB-1e-9 {
				t.Errorf("alpha=%v: Algorithm 2 budget decreased: %v < %v", alpha, ub.Eps, prevUB)
			}
			if qp.EpsM < prevQPMid-1e-9 {
				t.Errorf("alpha=%v: Algorithm 3 middle budget decreased: %v < %v", alpha, qp.EpsM, prevQPMid)
			}
		}
		prevUB = ub.Eps
		prevQPMid = qp.EpsM
	}
}

func TestPlannersMonotoneInCorrelationStrength(t *testing.T) {
	// Stronger correlation (smaller smoothing s) must never allow larger
	// budgets at the same alpha.
	const alpha = 1.0
	var prev float64
	first := true
	for _, s := range []float64{0.005, 0.05, 0.5, 5} {
		rng := rand.New(rand.NewSource(7)) // same permutation every s
		pb, err := markov.Smoothed(rng, 10, s)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := markov.Smoothed(rng, 10, s)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := UpperBound(pb, pf, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !first && ub.Eps < prev-1e-9 {
			t.Errorf("s=%v: budget decreased with weaker correlation: %v < %v", s, ub.Eps, prev)
		}
		prev = ub.Eps
		first = false
	}
}

func TestQuantifiedRandomChainsStayExact(t *testing.T) {
	// Algorithm 3's exactness is not special to the Fig. 7 fixtures:
	// random smoothed chains must also pin TPL at alpha.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(6)
		s := 0.01 + rng.Float64()
		pb, err := markov.Smoothed(rng, n, s)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := markov.Smoothed(rng, n, s)
		if err != nil {
			t.Fatal(err)
		}
		alpha := 0.2 + rng.Float64()*3
		T := 2 + rng.Intn(12)
		qp, err := Quantified(pb, pf, alpha, T)
		if err != nil {
			t.Fatalf("trial %d (n=%d s=%v alpha=%v T=%d): %v", trial, n, s, alpha, T, err)
		}
		dev, err := qp.VerifyExact(pb, pf)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 1e-8 {
			t.Errorf("trial %d: deviation %v (n=%d s=%v alpha=%v T=%d)", trial, dev, n, s, alpha, T)
		}
	}
}

func TestUpperBoundRandomChainsStaySound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(6)
		s := 0.01 + rng.Float64()
		pb, err := markov.Smoothed(rng, n, s)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := markov.Smoothed(rng, n, s)
		if err != nil {
			t.Fatal(err)
		}
		alpha := 0.2 + rng.Float64()*3
		ub, err := UpperBound(pb, pf, alpha)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf),
			core.UniformBudgets(ub.Eps, 150))
		if err != nil {
			t.Fatal(err)
		}
		if worst > alpha+1e-7 {
			t.Errorf("trial %d: leakage %v > alpha %v", trial, worst, alpha)
		}
		// The budget should not be absurdly conservative either: the
		// long-run leakage should approach the target.
		if worst < alpha*0.9 {
			t.Errorf("trial %d: long-run leakage %v far below alpha %v (wasted budget)", trial, worst, alpha)
		}
	}
}

func TestPlanBudgetsAlwaysPositive(t *testing.T) {
	pb, pf := fig7Chains()
	plans := []Plan{}
	ub, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, ub)
	qp, err := Quantified(pb, pf, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, qp)
	gp, err := GroupPrivacy(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, gp)
	we, err := WEvent(pb, pf, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, we)
	for _, p := range plans {
		budgets, err := p.Budgets(9)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range budgets {
			if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				t.Errorf("%T: budget %d = %v", p, i, e)
			}
		}
	}
}
