package release

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
)

// WEventPlan guarantees alpha-DP_T for every sliding window of w time
// steps (the w-event privacy notion of Kellaris et al., upgraded to
// account for temporal correlations per the paper's Theorem 2 and
// Table II). It allocates one constant per-step budget such that
//
//	BPLsup + FPLsup + (w-2)*eps <= alpha      (w >= 2)
//	BPLsup + FPLsup - eps       <= alpha      (w == 1, event level)
//
// where the suprema are the infinite-horizon limits of Theorem 5 under
// the constant budget — so the guarantee holds for any window position
// in a release of any length.
type WEventPlan struct {
	TargetAlpha float64
	W           int
	Eps         float64
	AlphaB      float64 // supremum of BPL under Eps
	AlphaF      float64 // supremum of FPL under Eps
}

// Alpha implements Plan.
func (p *WEventPlan) Alpha() float64 { return p.TargetAlpha }

// Horizon implements Plan: unbounded.
func (p *WEventPlan) Horizon() int { return 0 }

// BudgetAt implements Plan.
func (p *WEventPlan) BudgetAt(t int) (float64, error) {
	if t < 1 {
		return 0, fmt.Errorf("release: time %d out of range", t)
	}
	return p.Eps, nil
}

// Budgets implements Plan.
func (p *WEventPlan) Budgets(T int) ([]float64, error) {
	if T < 1 {
		return nil, fmt.Errorf("release: horizon %d out of range", T)
	}
	return core.UniformBudgets(p.Eps, T), nil
}

// WEvent plans a constant per-step budget bounding the temporal privacy
// leakage of every w-length window by alpha, for releases of unbounded
// length. w = 1 degenerates to the event-level Algorithm 2.
func WEvent(pb, pf *markov.Chain, alpha float64, w int) (*WEventPlan, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if w < 1 {
		return nil, fmt.Errorf("release: window must be at least 1, got %d", w)
	}
	qb := core.NewQuantifier(pb)
	qf := core.NewQuantifier(pf)
	if qb.IsIdentityLike() || qf.IsIdentityLike() {
		return nil, ErrStrongestCorrelation
	}
	// The window leakage under constant eps, as a function of eps, using
	// the infinite-horizon suprema (monotone increasing in eps).
	window := func(eps float64) float64 {
		supB, okB := core.Supremum(qb, eps)
		supF, okF := core.Supremum(qf, eps)
		if !okB || !okF {
			return alpha + 1 // over budget: shrink eps
		}
		if w == 1 {
			return supB + supF - eps
		}
		return supB + supF + float64(w-2)*eps
	}
	// Bisect the largest eps with window(eps) <= alpha. window(eps) >=
	// max(eps, (w-1)*eps)... an upper bracket: eps = alpha always has
	// window >= alpha (supB, supF >= eps); eps -> 0 has window -> 0.
	lo, hi := 0.0, alpha
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if window(mid) <= alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	eps := lo
	if eps <= 1e-12 {
		return nil, ErrStrongestCorrelation
	}
	supB, _ := core.Supremum(qb, eps)
	supF, _ := core.Supremum(qf, eps)
	return &WEventPlan{TargetAlpha: alpha, W: w, Eps: eps, AlphaB: supB, AlphaF: supF}, nil
}
