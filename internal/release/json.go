package release

import (
	"encoding/json"
	"errors"
	"fmt"
)

// planJSON is the self-describing wire format shared by all plan kinds,
// so saved plans can be reloaded without knowing their type up front.
type planJSON struct {
	Kind        string  `json:"kind"`
	TargetAlpha float64 `json:"alpha"`
	T           int     `json:"t,omitempty"`
	W           int     `json:"w,omitempty"`
	Eps         float64 `json:"eps,omitempty"`
	Eps1        float64 `json:"eps1,omitempty"`
	EpsM        float64 `json:"epsM,omitempty"`
	EpsT        float64 `json:"epsT,omitempty"`
	AlphaB      float64 `json:"alphaB,omitempty"`
	AlphaF      float64 `json:"alphaF,omitempty"`
}

// Plan kind tags used in the JSON encoding.
const (
	kindUpperBound   = "upper-bound"   // Algorithm 2
	kindQuantified   = "quantified"    // Algorithm 3
	kindGroupPrivacy = "group-privacy" // Section I bundle baseline
	kindWEvent       = "w-event"       // Theorem 2 window planner
)

// MarshalJSON encodes an Algorithm 2 plan.
func (p *UpperBoundPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Kind: kindUpperBound, TargetAlpha: p.TargetAlpha,
		Eps: p.Eps, AlphaB: p.AlphaB, AlphaF: p.AlphaF,
	})
}

// MarshalJSON encodes an Algorithm 3 plan.
func (p *QuantifiedPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Kind: kindQuantified, TargetAlpha: p.TargetAlpha, T: p.T,
		Eps1: p.Eps1, EpsM: p.EpsM, EpsT: p.EpsT,
		AlphaB: p.AlphaB, AlphaF: p.AlphaF,
	})
}

// MarshalJSON encodes the bundle baseline.
func (p *GroupPrivacyPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Kind: kindGroupPrivacy, TargetAlpha: p.TargetAlpha, T: p.T, Eps: p.Eps,
	})
}

// MarshalJSON encodes a w-event plan.
func (p *WEventPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Kind: kindWEvent, TargetAlpha: p.TargetAlpha, W: p.W,
		Eps: p.Eps, AlphaB: p.AlphaB, AlphaF: p.AlphaF,
	})
}

// ErrUnknownPlanKind is returned by UnmarshalPlan for unrecognized kind
// tags.
var ErrUnknownPlanKind = errors.New("release: unknown plan kind")

// UnmarshalPlan decodes any plan previously encoded by the MarshalJSON
// methods above, dispatching on the kind tag.
func UnmarshalPlan(data []byte) (Plan, error) {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("release: decoding plan: %w", err)
	}
	if err := checkAlpha(in.TargetAlpha); err != nil {
		return nil, err
	}
	switch in.Kind {
	case kindUpperBound:
		if in.Eps <= 0 {
			return nil, fmt.Errorf("release: decoding plan: non-positive eps %v", in.Eps)
		}
		return &UpperBoundPlan{TargetAlpha: in.TargetAlpha, Eps: in.Eps, AlphaB: in.AlphaB, AlphaF: in.AlphaF}, nil
	case kindQuantified:
		if in.T < 1 || in.Eps1 <= 0 || in.EpsM <= 0 || in.EpsT <= 0 {
			return nil, fmt.Errorf("release: decoding plan: invalid quantified parameters")
		}
		return &QuantifiedPlan{
			TargetAlpha: in.TargetAlpha, T: in.T,
			Eps1: in.Eps1, EpsM: in.EpsM, EpsT: in.EpsT,
			AlphaB: in.AlphaB, AlphaF: in.AlphaF,
		}, nil
	case kindGroupPrivacy:
		if in.T < 1 || in.Eps <= 0 {
			return nil, fmt.Errorf("release: decoding plan: invalid group parameters")
		}
		return &GroupPrivacyPlan{TargetAlpha: in.TargetAlpha, T: in.T, Eps: in.Eps}, nil
	case kindWEvent:
		if in.W < 1 || in.Eps <= 0 {
			return nil, fmt.Errorf("release: decoding plan: invalid w-event parameters")
		}
		return &WEventPlan{TargetAlpha: in.TargetAlpha, W: in.W, Eps: in.Eps, AlphaB: in.AlphaB, AlphaF: in.AlphaF}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlanKind, in.Kind)
	}
}
