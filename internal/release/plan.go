// Package release implements the paper's private data release algorithms
// (Section V): converting a traditional eps-DP mechanism into one that
// satisfies alpha-DP_T against adversaries with temporal correlations.
//
// Two planners are provided, matching the paper's Algorithms 2 and 3:
//
//   - UpperBound (Algorithm 2) allocates one constant per-step budget
//     such that the *supremum* of BPL and FPL over infinite time stays
//     within the target alpha. It works for any release length, including
//     unknown/infinite T, but under-spends when T is short.
//   - Quantified (Algorithm 3) exploits a known, finite T: it gives the
//     first and last mechanisms larger budgets and holds the temporal
//     privacy leakage exactly at alpha at every time point.
//
// A Releaser combines a plan with the Laplace mechanism to publish noisy
// histograms step by step.
package release

import (
	"errors"
	"fmt"
	"math"
)

// ErrStrongestCorrelation is returned when no positive per-step budget
// can bound the leakage because the adversary's correlation is the
// strongest possible (q = 1, d = 0; Theorem 5's "not exist" cases).
var ErrStrongestCorrelation = errors.New("release: leakage supremum does not exist under the strongest correlation; no positive budget can achieve the target")

// ErrHorizonExceeded is returned by a Releaser asked to publish more
// steps than its finite plan covers.
var ErrHorizonExceeded = errors.New("release: plan horizon exceeded")

// Plan is a per-time-step privacy budget allocation guaranteeing
// alpha-DP_T.
type Plan interface {
	// Alpha returns the temporal-privacy-leakage target the plan was
	// built for.
	Alpha() float64
	// BudgetAt returns the per-step budget for 1-based time t.
	BudgetAt(t int) (float64, error)
	// Horizon returns the number of steps the plan covers, or 0 for an
	// unbounded plan.
	Horizon() int
	// Budgets materializes the budgets for the first T steps.
	Budgets(T int) ([]float64, error)
}

// checkAlpha validates a leakage target.
func checkAlpha(alpha float64) error {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return fmt.Errorf("release: target alpha must be finite and positive, got %v", alpha)
	}
	return nil
}

// bisect finds a root of f on (lo, hi] assuming f(lo+) <= 0 <= f(hi).
// It is robust to f being merely continuous (no derivative needed) and
// stops once the bracket is below ~1e-13 relative width — each
// iteration costs two full Algorithm-1 quantifications inside the
// planners, so the tolerance-based stop matters at paper-scale domain
// sizes.
func bisect(f func(float64) float64, lo, hi float64) float64 {
	for i := 0; i < 200 && hi-lo > 1e-13*math.Max(1, hi); i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
