package release

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
)

// UpperBoundPlan is the output of Algorithm 2: a single constant
// per-step budget Eps such that BPL never exceeds AlphaB, FPL never
// exceeds AlphaF, and hence TPL = BPL + FPL - eps never exceeds the
// target alpha = AlphaB + AlphaF - Eps, no matter how long the release
// runs.
type UpperBoundPlan struct {
	TargetAlpha float64
	Eps         float64 // the constant per-step budget
	AlphaB      float64 // supremum of backward privacy leakage
	AlphaF      float64 // supremum of forward privacy leakage
}

// Alpha implements Plan.
func (p *UpperBoundPlan) Alpha() float64 { return p.TargetAlpha }

// Horizon implements Plan: 0, the plan is unbounded.
func (p *UpperBoundPlan) Horizon() int { return 0 }

// BudgetAt implements Plan: the same budget at every step.
func (p *UpperBoundPlan) BudgetAt(t int) (float64, error) {
	if t < 1 {
		return 0, fmt.Errorf("release: time %d out of range", t)
	}
	return p.Eps, nil
}

// Budgets implements Plan.
func (p *UpperBoundPlan) Budgets(T int) ([]float64, error) {
	if T < 1 {
		return nil, fmt.Errorf("release: horizon %d out of range", T)
	}
	return core.UniformBudgets(p.Eps, T), nil
}

// UpperBound runs Algorithm 2: it finds the split of the target alpha
// into a BPL supremum alphaB and an FPL supremum alphaF (with the
// per-step budget counted once, alpha = alphaB + alphaF - eps) such that
// the per-step budgets implied by the two suprema coincide. The search
// is a bisection on alphaB, following the paper's loop of enlarging
// alphaB while epsB < epsF and shrinking it while epsB > epsF.
//
// Either chain may be nil (adversary without that correlation). When the
// relevant correlation is the strongest possible the supremum does not
// exist (Theorem 5) and ErrStrongestCorrelation is returned.
func UpperBound(pb, pf *markov.Chain, alpha float64) (*UpperBoundPlan, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	qb := core.NewQuantifier(pb)
	qf := core.NewQuantifier(pf)
	return upperBound(qb, qf, alpha)
}

// upperBound is UpperBound on pre-built quantifiers.
func upperBound(qb, qf *core.Quantifier, alpha float64) (*UpperBoundPlan, error) {
	if qb.IsIdentityLike() || qf.IsIdentityLike() {
		return nil, ErrStrongestCorrelation
	}
	// epsFor(alphaX) is the per-step budget whose infinite-time leakage
	// supremum is exactly alphaX: from the fixed point alphaX =
	// L(alphaX) + eps (Theorem 5 inverted through Algorithm 1's loss).
	epsB := func(aB float64) float64 { return aB - qb.LossValue(aB) }
	epsF := func(aF float64) float64 { return aF - qf.LossValue(aF) }

	f := func(aB float64) float64 {
		eB := epsB(aB)
		aF := alpha - aB + eB
		if aF <= 0 {
			return 1 // aB too large; shrink
		}
		return eB - epsF(aF)
	}
	aB := bisect(f, 0, alpha)
	eps := epsB(aB)
	if eps <= 1e-12 {
		return nil, ErrStrongestCorrelation
	}
	aF := alpha - aB + eps
	return &UpperBoundPlan{TargetAlpha: alpha, Eps: eps, AlphaB: aB, AlphaF: aF}, nil
}

// VerifyHorizon recomputes the exact TPL series for the first T steps of
// the plan through the quantification machinery and returns its maximum.
// Tests use it to confirm max TPL <= alpha for any T.
func (p *UpperBoundPlan) VerifyHorizon(pb, pf *markov.Chain, T int) (float64, error) {
	eps, err := p.Budgets(T)
	if err != nil {
		return 0, err
	}
	return core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf), eps)
}
