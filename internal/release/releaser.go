package release

import (
	"fmt"
	"math/rand"

	"repro/internal/mechanism"
)

// Noise selects the perturbation primitive a Releaser applies.
type Noise int

// Supported noise kinds.
const (
	// LaplaceNoise is the paper's mechanism: continuous Lap(Delta/eps).
	LaplaceNoise Noise = iota
	// GeometricNoise is the discrete analogue: integral two-sided
	// geometric noise, exactly eps-DP for integer-valued queries.
	GeometricNoise
)

// Releaser publishes noisy histograms step by step under a Plan,
// instantiating a fresh mechanism with the planned budget at each time
// point. It is the executable form of the paper's "-DP data at each
// time point" output of Algorithms 2 and 3.
//
// A Releaser is not safe for concurrent use.
type Releaser struct {
	plan        Plan
	sensitivity float64
	noise       Noise
	rng         *rand.Rand
	t           int // 1-based time of the *next* release
}

// NewReleaser builds a Laplace-noise Releaser for the given plan and
// query sensitivity. rng may be nil for a deterministic default source.
func NewReleaser(plan Plan, sensitivity float64, rng *rand.Rand) (*Releaser, error) {
	return NewReleaserWithNoise(plan, sensitivity, LaplaceNoise, rng)
}

// NewReleaserWithNoise is NewReleaser with an explicit noise kind.
// GeometricNoise requires an integral sensitivity >= 1.
func NewReleaserWithNoise(plan Plan, sensitivity float64, noise Noise, rng *rand.Rand) (*Releaser, error) {
	if plan == nil {
		return nil, fmt.Errorf("release: nil plan")
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("release: sensitivity must be positive, got %v", sensitivity)
	}
	switch noise {
	case LaplaceNoise:
	case GeometricNoise:
		if sensitivity != float64(int(sensitivity)) {
			return nil, fmt.Errorf("release: geometric noise needs integral sensitivity, got %v", sensitivity)
		}
	default:
		return nil, fmt.Errorf("release: unknown noise kind %d", int(noise))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Releaser{plan: plan, sensitivity: sensitivity, noise: noise, rng: rng, t: 1}, nil
}

// T returns the 1-based time of the next release.
func (r *Releaser) T() int { return r.t }

// step checks the horizon and fetches the current step's budget,
// advancing time on success.
func (r *Releaser) step() (float64, error) {
	if h := r.plan.Horizon(); h > 0 && r.t > h {
		return 0, fmt.Errorf("release: step %d beyond plan horizon %d: %w", r.t, h, ErrHorizonExceeded)
	}
	eps, err := r.plan.BudgetAt(r.t)
	if err != nil {
		return 0, err
	}
	r.t++
	return eps, nil
}

// Release publishes the noisy histogram of one snapshot, consuming the
// budget planned for the current time step.
func (r *Releaser) Release(snap *mechanism.Snapshot) ([]float64, error) {
	eps, err := r.step()
	if err != nil {
		return nil, err
	}
	counts := snap.Histogram()
	switch r.noise {
	case GeometricNoise:
		geo, err := mechanism.NewGeometric(eps, int(r.sensitivity), r.rng)
		if err != nil {
			return nil, err
		}
		ints := geo.ReleaseCounts(counts)
		out := make([]float64, len(ints))
		for i, v := range ints {
			out[i] = float64(v)
		}
		return out, nil
	default:
		lap, err := mechanism.NewLaplace(eps, r.sensitivity, r.rng)
		if err != nil {
			return nil, err
		}
		return lap.ReleaseCounts(counts), nil
	}
}

// ReleaseValue publishes a single noisy scalar (e.g. one count) under
// the current step's budget. With GeometricNoise the true value is
// rounded to the nearest integer before perturbation.
func (r *Releaser) ReleaseValue(trueValue float64) (float64, error) {
	eps, err := r.step()
	if err != nil {
		return 0, err
	}
	switch r.noise {
	case GeometricNoise:
		geo, err := mechanism.NewGeometric(eps, int(r.sensitivity), r.rng)
		if err != nil {
			return 0, err
		}
		return float64(geo.Release(int(trueValue + 0.5))), nil
	default:
		lap, err := mechanism.NewLaplace(eps, r.sensitivity, r.rng)
		if err != nil {
			return 0, err
		}
		return lap.Release(trueValue), nil
	}
}
