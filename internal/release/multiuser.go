package release

import (
	"fmt"

	"repro/internal/markov"
)

// UserModel is one user's adversary correlations plus an optional
// personalized leakage target (Section III-D: the framework is
// compatible with personalized differential privacy). Alpha <= 0 means
// "use the global target".
type UserModel struct {
	Backward *markov.Chain
	Forward  *markov.Chain
	Alpha    float64
}

// MultiPlan is the outcome of planning for a whole user population:
// per-user plans plus the combined budgets that satisfy every user
// simultaneously (the element-wise minimum, the paper's Algorithms 2 and
// 3 line 11: "eps <- min{eps_i, i in U}").
type MultiPlan struct {
	Users    []Plan
	Combined []float64 // per-step budgets, length T
	T        int
}

// BudgetAt returns the combined budget for 1-based time t.
func (m *MultiPlan) BudgetAt(t int) (float64, error) {
	if t < 1 || t > m.T {
		return 0, fmt.Errorf("release: time %d outside [1,%d]: %w", t, m.T, ErrHorizonExceeded)
	}
	return m.Combined[t-1], nil
}

// UpperBoundMulti runs Algorithm 2 for every user and combines the
// plans: the released mechanism uses the minimum per-step budget across
// users, which bounds every user's leakage by their target (a smaller
// budget never increases leakage — the loss functions are monotone).
// T materializes the combined budgets for that many steps (the
// underlying plans are horizon-free).
func UpperBoundMulti(users []UserModel, globalAlpha float64, T int) (*MultiPlan, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("release: need at least one user")
	}
	if T < 1 {
		return nil, fmt.Errorf("release: horizon must be at least 1, got %d", T)
	}
	mp := &MultiPlan{T: T}
	for i, u := range users {
		alpha := u.Alpha
		if alpha <= 0 {
			alpha = globalAlpha
		}
		p, err := UpperBound(u.Backward, u.Forward, alpha)
		if err != nil {
			return nil, fmt.Errorf("release: user %d: %w", i, err)
		}
		mp.Users = append(mp.Users, p)
	}
	mp.Combined = combineMin(mp.Users, T)
	return mp, nil
}

// QuantifiedMulti runs Algorithm 3 for every user over a common horizon
// T and combines by element-wise minimum.
func QuantifiedMulti(users []UserModel, globalAlpha float64, T int) (*MultiPlan, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("release: need at least one user")
	}
	if T < 1 {
		return nil, fmt.Errorf("release: horizon must be at least 1, got %d", T)
	}
	mp := &MultiPlan{T: T}
	for i, u := range users {
		alpha := u.Alpha
		if alpha <= 0 {
			alpha = globalAlpha
		}
		p, err := Quantified(u.Backward, u.Forward, alpha, T)
		if err != nil {
			return nil, fmt.Errorf("release: user %d: %w", i, err)
		}
		mp.Users = append(mp.Users, p)
	}
	mp.Combined = combineMin(mp.Users, T)
	return mp, nil
}

// combineMin materializes every plan over T steps and takes the
// element-wise minimum.
func combineMin(plans []Plan, T int) []float64 {
	out := make([]float64, T)
	for t := 1; t <= T; t++ {
		best := 0.0
		for i, p := range plans {
			e, err := p.BudgetAt(t)
			if err != nil {
				continue // finite plans were built with horizon T; cannot happen
			}
			if i == 0 || e < best {
				best = e
			}
		}
		out[t-1] = best
	}
	return out
}
