package release

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/mechanism"
)

func TestOptimizeNoiseFeasible(t *testing.T) {
	pb, pf := fig7Chains()
	const alpha = 1.0
	for _, T := range []int{2, 5, 10} {
		plan, err := OptimizeNoise(pb, pf, alpha, T, 0)
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		eps, err := plan.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := core.MaxTPL(core.NewQuantifier(pb), core.NewQuantifier(pf), eps)
		if err != nil {
			t.Fatal(err)
		}
		if worst > alpha+1e-9 {
			t.Errorf("T=%d: optimized plan leaks %v > alpha", T, worst)
		}
	}
}

func TestOptimizeNoiseNeverWorseThanAlgorithm3(t *testing.T) {
	pb, pf := fig7Chains()
	const alpha = 1.0
	for _, T := range []int{2, 4, 8, 12} {
		qp, err := Quantified(pb, pf, alpha, T)
		if err != nil {
			t.Fatal(err)
		}
		qpBudgets, err := qp.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		base, err := mechanism.MeanExpectedAbsNoise(1, qpBudgets)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimizeNoise(pb, pf, alpha, T, 0)
		if err != nil {
			t.Fatal(err)
		}
		optBudgets, err := opt.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mechanism.MeanExpectedAbsNoise(1, optBudgets)
		if err != nil {
			t.Fatal(err)
		}
		if got > base+1e-9 {
			t.Errorf("T=%d: optimizer made noise worse: %v vs %v", T, got, base)
		}
	}
}

func TestOptimizeNoiseImprovesShortHorizons(t *testing.T) {
	// The finding this extension documents: Algorithm 3's exact pinning
	// is NOT mean-noise optimal at short horizons — trading edge budget
	// into the middle measurably reduces noise.
	pb, pf := fig7Chains()
	const alpha, T = 1.0, 5
	qp, err := Quantified(pb, pf, alpha, T)
	if err != nil {
		t.Fatal(err)
	}
	qpBudgets, err := qp.Budgets(T)
	if err != nil {
		t.Fatal(err)
	}
	base, err := mechanism.MeanExpectedAbsNoise(1, qpBudgets)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimizeNoise(pb, pf, alpha, T, 0)
	if err != nil {
		t.Fatal(err)
	}
	optBudgets, err := opt.Budgets(T)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mechanism.MeanExpectedAbsNoise(1, optBudgets)
	if err != nil {
		t.Fatal(err)
	}
	if got >= base {
		t.Errorf("expected strict improvement at T=%d: optimized %v vs Algorithm 3 %v", T, got, base)
	}
	t.Logf("T=%d: Algorithm 3 noise %.4f -> optimized %.4f (%.1f%% better)",
		T, base, got, 100*(base-got)/base)
}

func TestOptimizeNoiseStrongestFallsBackToGroup(t *testing.T) {
	// Under the strongest correlation the optimizer starts from the
	// group baseline, which is already optimal there (every coordinate
	// is tight in the user-level constraint).
	id, _ := markov.IdentityChain(2)
	const alpha, T = 1.0, 4
	plan, err := OptimizeNoise(id, id, alpha, T, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := plan.Budgets(T)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := core.MaxTPL(core.NewQuantifier(id), core.NewQuantifier(id), eps)
	if err != nil {
		t.Fatal(err)
	}
	if worst > alpha+1e-9 {
		t.Errorf("leaks %v > alpha", worst)
	}
	// Group optimality: sum of budgets cannot exceed alpha under the
	// identity chain (TPL = sum), so mean noise >= T/alpha... up to
	// boundary slack from bisection.
	sum := 0.0
	for _, e := range eps {
		sum += e
	}
	if sum > alpha+1e-6 {
		t.Errorf("budget sum %v exceeds alpha under identity chain", sum)
	}
}

func TestOptimizeNoiseValidation(t *testing.T) {
	pb, pf := fig7Chains()
	if _, err := OptimizeNoise(pb, pf, 0, 5, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := OptimizeNoise(pb, pf, 1, 0, 0); err == nil {
		t.Error("T=0 should fail")
	}
	plan, err := OptimizeNoise(pb, pf, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alpha() != 1 || plan.Horizon() != 3 {
		t.Error("metadata wrong")
	}
	if _, err := plan.BudgetAt(4); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("beyond horizon should fail")
	}
	if _, err := plan.Budgets(2); !errors.Is(err, ErrHorizonExceeded) {
		t.Error("wrong horizon should fail")
	}
}
