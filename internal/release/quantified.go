package release

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
)

// QuantifiedPlan is the output of Algorithm 3 for a known, finite
// release length T: budget Eps1 at the first step, EpsM at every middle
// step, and EpsT at the last step, chosen so the temporal privacy
// leakage equals the target alpha at *every* time point.
type QuantifiedPlan struct {
	TargetAlpha      float64
	T                int
	Eps1, EpsM, EpsT float64
	// AlphaB and AlphaF are the constant BPL and FPL levels the plan
	// holds across the timeline (AlphaB = Eps1, AlphaF = EpsT).
	AlphaB, AlphaF float64
}

// Alpha implements Plan.
func (p *QuantifiedPlan) Alpha() float64 { return p.TargetAlpha }

// Horizon implements Plan.
func (p *QuantifiedPlan) Horizon() int { return p.T }

// BudgetAt implements Plan.
func (p *QuantifiedPlan) BudgetAt(t int) (float64, error) {
	switch {
	case t < 1 || t > p.T:
		return 0, fmt.Errorf("release: time %d outside plan horizon [1,%d]: %w", t, p.T, ErrHorizonExceeded)
	case t == 1:
		return p.Eps1, nil
	case t == p.T:
		return p.EpsT, nil
	default:
		return p.EpsM, nil
	}
}

// Budgets implements Plan. T must equal the plan horizon.
func (p *QuantifiedPlan) Budgets(T int) ([]float64, error) {
	if T != p.T {
		return nil, fmt.Errorf("release: quantified plan covers exactly T=%d, asked for %d: %w", p.T, T, ErrHorizonExceeded)
	}
	out := make([]float64, T)
	for t := 1; t <= T; t++ {
		out[t-1], _ = p.BudgetAt(t)
	}
	return out, nil
}

// Quantified runs Algorithm 3: allocate budgets for a release of known
// length T so that TPL(t) = alpha exactly for every t in [1, T].
//
// The construction (Section V): pick alphaB and set eps_1 = alphaB so
// BPL(1) = alphaB; choose the middle budget eps_m = alphaB - L^B(alphaB)
// so BPL stays pinned at alphaB; set eps_T = alpha - eps_1 + eps_m (from
// TPL = BPL + FPL - eps) so FPL(T) = eps_T =: alphaF; the forward
// middle budget that pins FPL at alphaF is eps^F_m = alphaF -
// L^F(alphaF). Bisect alphaB until the backward and forward middle
// budgets coincide.
//
// T = 1 degenerates to eps_1 = alpha (a single release leaks exactly its
// budget); T = 2 is solved by a direct bisection on eps_1 (there is no
// middle step).
func Quantified(pb, pf *markov.Chain, alpha float64, T int) (*QuantifiedPlan, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if T < 1 {
		return nil, fmt.Errorf("release: horizon must be at least 1, got %d", T)
	}
	qb := core.NewQuantifier(pb)
	qf := core.NewQuantifier(pf)
	return quantified(qb, qf, alpha, T)
}

func quantified(qb, qf *core.Quantifier, alpha float64, T int) (*QuantifiedPlan, error) {
	if T == 1 {
		return &QuantifiedPlan{TargetAlpha: alpha, T: 1, Eps1: alpha, EpsM: alpha, EpsT: alpha, AlphaB: alpha, AlphaF: alpha}, nil
	}
	if qb.IsIdentityLike() || qf.IsIdentityLike() {
		// With the strongest correlation the middle budget collapses to
		// zero: no finite-T allocation holds TPL at alpha beyond the
		// composition bound.
		return nil, ErrStrongestCorrelation
	}
	if T == 2 {
		// TPL(1) = eps1 + L^F(eps2), TPL(2) = L^B(eps1) + eps2; set both
		// to alpha: eps2 = alpha - L^B(eps1), then bisect
		// f(eps1) = eps1 + L^F(alpha - L^B(eps1)) - alpha.
		f := func(e1 float64) float64 {
			e2 := alpha - qb.LossValue(e1)
			return e1 + qf.LossValue(e2) - alpha
		}
		e1 := bisect(f, 0, alpha)
		e2 := alpha - qb.LossValue(e1)
		return &QuantifiedPlan{TargetAlpha: alpha, T: 2, Eps1: e1, EpsM: e1, EpsT: e2, AlphaB: e1, AlphaF: e2}, nil
	}
	// General case T >= 3 (Algorithm 3's loop, as a bisection on alphaB).
	f := func(aB float64) float64 {
		eBm := aB - qb.LossValue(aB)
		eT := alpha - aB + eBm
		if eT <= 0 {
			return 1 // aB too large
		}
		eFm := eT - qf.LossValue(eT)
		return eBm - eFm
	}
	aB := bisect(f, 0, alpha)
	eps1 := aB
	epsM := aB - qb.LossValue(aB)
	epsT := alpha - eps1 + epsM
	if epsM <= 1e-12 || epsT <= 0 || eps1 <= 0 {
		return nil, ErrStrongestCorrelation
	}
	return &QuantifiedPlan{
		TargetAlpha: alpha, T: T,
		Eps1: eps1, EpsM: epsM, EpsT: epsT,
		AlphaB: eps1, AlphaF: epsT,
	}, nil
}

// VerifyExact recomputes the exact TPL series of the plan and returns
// its maximum deviation from the target alpha. Tests assert it is ~0 for
// T >= 2 (every time point sits exactly at alpha).
func (p *QuantifiedPlan) VerifyExact(pb, pf *markov.Chain) (float64, error) {
	eps, err := p.Budgets(p.T)
	if err != nil {
		return 0, err
	}
	tpl, err := core.TPLSeries(core.NewQuantifier(pb), core.NewQuantifier(pf), eps)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, v := range tpl {
		if d := v - p.TargetAlpha; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst, nil
}
