package release

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
)

// OptimizedPlan is a per-step budget vector produced by local search:
// feasible for the target alpha, with mean expected absolute noise no
// worse than its starting point (Algorithm 3's allocation).
//
// Motivation: Algorithm 3 pins TPL(t) = alpha at every t, which is the
// paper's notion of "taking full advantage of the privacy budgets" —
// but pinning is not the same as minimizing the mean Laplace noise
// mean_t(1/eps_t). Because TPL is monotone in every budget, the
// feasible set {eps : max TPL <= alpha} is downward closed, and there
// is room to trade budget between edge and middle steps. This optimizer
// quantifies how much utility exactness leaves on the table (typically
// a few percent at small T, vanishing as T grows; see
// TestOptimizeNoiseImprovesShortHorizons).
type OptimizedPlan struct {
	TargetAlpha float64
	T           int
	Eps         []float64
}

// Alpha implements Plan.
func (p *OptimizedPlan) Alpha() float64 { return p.TargetAlpha }

// Horizon implements Plan.
func (p *OptimizedPlan) Horizon() int { return p.T }

// BudgetAt implements Plan.
func (p *OptimizedPlan) BudgetAt(t int) (float64, error) {
	if t < 1 || t > p.T {
		return 0, fmt.Errorf("release: time %d outside plan horizon [1,%d]: %w", t, p.T, ErrHorizonExceeded)
	}
	return p.Eps[t-1], nil
}

// Budgets implements Plan.
func (p *OptimizedPlan) Budgets(T int) ([]float64, error) {
	if T != p.T {
		return nil, fmt.Errorf("release: optimized plan covers exactly T=%d, asked for %d: %w", p.T, T, ErrHorizonExceeded)
	}
	return append([]float64(nil), p.Eps...), nil
}

// meanNoise is the objective: mean of 1/eps_t (expected |Laplace noise|
// at sensitivity 1).
func meanNoise(eps []float64) float64 {
	s := 0.0
	for _, e := range eps {
		s += 1 / e
	}
	return s / float64(len(eps))
}

// OptimizeNoise searches for a budget vector minimizing the mean
// expected absolute noise subject to max TPL <= alpha over the horizon.
// It starts from Algorithm 3's allocation (or the group baseline when
// the fine planners refuse) and alternates
//
//  1. coordinate maximization: push each eps_t to its largest feasible
//     value holding the others fixed (always improves the objective;
//     the feasible set is downward closed), and
//  2. pairwise trades: shrink one coordinate by a small factor and
//     re-maximize another, keeping the move only if the objective
//     improves.
//
// sweeps bounds the outer iterations (4 is plenty in practice; pass 0
// for the default). The result is feasible by construction.
func OptimizeNoise(pb, pf *markov.Chain, alpha float64, T, sweeps int) (*OptimizedPlan, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if T < 1 {
		return nil, fmt.Errorf("release: horizon must be at least 1, got %d", T)
	}
	if sweeps <= 0 {
		sweeps = 4
	}
	qb, qf := core.NewQuantifier(pb), core.NewQuantifier(pf)
	feasible := func(eps []float64) bool {
		worst, err := core.MaxTPL(qb, qf, eps)
		return err == nil && worst <= alpha+1e-12
	}

	// Starting point.
	var eps []float64
	if qp, err := Quantified(pb, pf, alpha, T); err == nil {
		if eps, err = qp.Budgets(T); err != nil {
			return nil, err
		}
	} else {
		gp, err := GroupPrivacy(alpha, T)
		if err != nil {
			return nil, err
		}
		if eps, err = gp.Budgets(T); err != nil {
			return nil, err
		}
	}
	if !feasible(eps) {
		return nil, fmt.Errorf("release: starting allocation infeasible (max TPL above %v)", alpha)
	}

	// maximize eps[t] holding others fixed, by bisection on the largest
	// feasible value in [eps[t], alpha]. The 1e-6 relative tolerance
	// keeps the cost bounded: every probe is a full-series feasibility
	// check, which dominates the optimizer's runtime.
	maximize := func(eps []float64, t int) {
		lo, hi := eps[t], alpha
		if func() bool { old := eps[t]; eps[t] = hi; ok := feasible(eps); eps[t] = old; return ok }() {
			// alpha itself is feasible for this coordinate.
			eps[t] = alpha
			return
		}
		for i := 0; i < 40 && hi-lo > 1e-6*hi; i++ {
			mid := 0.5 * (lo + hi)
			old := eps[t]
			eps[t] = mid
			if feasible(eps) {
				lo = mid
			} else {
				eps[t] = old
				hi = mid
			}
			eps[t] = lo
		}
		eps[t] = lo
	}

	// Pairwise trades are quadratic-ish in T; restrict them to short
	// horizons, where they matter (the edge/middle imbalance fades as T
	// grows and phase 1 alone converges).
	const tradeHorizon = 16
	for sweep := 0; sweep < sweeps; sweep++ {
		before := meanNoise(eps)
		// Phase 1: coordinate maximization.
		for t := 0; t < T; t++ {
			maximize(eps, t)
		}
		// Phase 2: pairwise trades edge -> middle (the promising
		// direction: Algorithm 3 over-spends on the edges relative to
		// the mean-noise objective).
		if T <= tradeHorizon {
			for _, shrink := range []float64{0.9, 0.75} {
				for i := 0; i < T; i++ {
					for _, j := range []int{0, T - 1} {
						if i == j {
							continue
						}
						trial := append([]float64(nil), eps...)
						trial[j] *= shrink
						maximize(trial, i)
						if feasible(trial) && meanNoise(trial) < meanNoise(eps)-1e-12 {
							eps = trial
						}
					}
				}
			}
		}
		if before-meanNoise(eps) < 1e-10 {
			break
		}
	}
	return &OptimizedPlan{TargetAlpha: alpha, T: T, Eps: eps}, nil
}
