package release

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

func roundTrip(t *testing.T, p Plan) Plan {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	return back
}

func TestPlanJSONRoundTrips(t *testing.T) {
	pb, pf := fig7Chains()
	ub, err := UpperBound(pb, pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := Quantified(pb, pf, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GroupPrivacy(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	we, err := WEvent(pb, pf, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Plan{ub, qp, gp, we} {
		back := roundTrip(t, p)
		if back.Alpha() != p.Alpha() || back.Horizon() != p.Horizon() {
			t.Errorf("%T: metadata changed: %v/%d vs %v/%d",
				p, back.Alpha(), back.Horizon(), p.Alpha(), p.Horizon())
		}
		T := p.Horizon()
		if T == 0 {
			T = 6
		}
		orig, err := p.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := back.Budgets(T)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if math.Abs(orig[i]-dec[i]) > 1e-15 {
				t.Errorf("%T: budget %d changed: %v vs %v", p, i, dec[i], orig[i])
			}
		}
	}
}

func TestUnmarshalPlanErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":     `{`,
		"unknown kind": `{"kind":"mystery","alpha":1}`,
		"bad alpha":    `{"kind":"upper-bound","alpha":0,"eps":0.1}`,
		"bad eps":      `{"kind":"upper-bound","alpha":1,"eps":0}`,
		"bad T":        `{"kind":"quantified","alpha":1,"t":0,"eps1":1,"epsM":1,"epsT":1}`,
		"bad epsM":     `{"kind":"quantified","alpha":1,"t":3,"eps1":1,"epsM":0,"epsT":1}`,
		"bad group":    `{"kind":"group-privacy","alpha":1,"t":0,"eps":0.1}`,
		"bad w":        `{"kind":"w-event","alpha":1,"w":0,"eps":0.1}`,
	}
	for name, data := range cases {
		if _, err := UnmarshalPlan([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := UnmarshalPlan([]byte(`{"kind":"nope","alpha":1}`)); !errors.Is(err, ErrUnknownPlanKind) {
		t.Errorf("err = %v, want ErrUnknownPlanKind", err)
	}
}
