package mechanism

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewGeometricValidation(t *testing.T) {
	if _, err := NewGeometric(0, 1, nil); !errors.Is(err, ErrBudget) {
		t.Error("eps=0 should fail")
	}
	if _, err := NewGeometric(math.NaN(), 1, nil); !errors.Is(err, ErrBudget) {
		t.Error("NaN eps should fail")
	}
	if _, err := NewGeometric(1, 0, nil); !errors.Is(err, ErrSensitivity) {
		t.Error("zero sensitivity should fail")
	}
	g, err := NewGeometric(0.5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epsilon() != 0.5 || g.Sensitivity() != 2 || g.LogRatioBound() != 0.5 {
		t.Error("accessors wrong")
	}
}

func TestGeometricNoiseDistribution(t *testing.T) {
	g, err := NewGeometric(1, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	a := math.Exp(-1.0)
	p0want := (1 - a) / (1 + a)
	const n = 400000
	zero, pos, neg := 0, 0, 0
	sumAbs := 0.0
	for i := 0; i < n; i++ {
		x := g.SampleNoise()
		switch {
		case x == 0:
			zero++
		case x > 0:
			pos++
		default:
			neg++
		}
		sumAbs += math.Abs(float64(x))
	}
	if got := float64(zero) / n; math.Abs(got-p0want) > 0.005 {
		t.Errorf("Pr(0) = %v, want %v", got, p0want)
	}
	if math.Abs(float64(pos-neg))/n > 0.01 {
		t.Errorf("asymmetric tails: %d vs %d", pos, neg)
	}
	if got, want := sumAbs/n, g.ExpectedAbsNoise(); math.Abs(got-want) > 0.02 {
		t.Errorf("E|X| = %v, want %v", got, want)
	}
}

func TestGeometricDPRatioEmpirical(t *testing.T) {
	// Empirically verify the eps-DP property: for neighboring true
	// values v and v+1, the output distributions differ by at most e^eps
	// pointwise (within sampling error on well-populated outputs).
	eps := 0.8
	g1, _ := NewGeometric(eps, 1, rand.New(rand.NewSource(2)))
	g2, _ := NewGeometric(eps, 1, rand.New(rand.NewSource(3)))
	const n = 500000
	h1 := map[int]int{}
	h2 := map[int]int{}
	for i := 0; i < n; i++ {
		h1[g1.Release(0)]++
		h2[g2.Release(1)]++
	}
	for out, c1 := range h1 {
		c2 := h2[out]
		if c1 < 2000 || c2 < 2000 {
			continue // skip sparsely populated outputs
		}
		ratio := float64(c1) / float64(c2)
		if ratio > math.Exp(eps)*1.1 || ratio < math.Exp(-eps)/1.1 {
			t.Errorf("output %d: ratio %v outside e^+-%v", out, ratio, eps)
		}
	}
}

func TestGeometricReleaseCounts(t *testing.T) {
	g, err := NewGeometric(5, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	out := g.ReleaseCounts([]int{10, 0, 7})
	if len(out) != 3 {
		t.Fatalf("len %d", len(out))
	}
	for i, want := range []int{10, 0, 7} {
		if int(math.Abs(float64(out[i]-want))) > 10 {
			t.Errorf("count %d drifted implausibly: %d vs %d", i, out[i], want)
		}
	}
}

func TestGeometricVsLaplaceUtility(t *testing.T) {
	// At the same eps the geometric mechanism's expected absolute noise
	// is below the Laplace scale (discrete noise is tighter), and both
	// decrease as eps grows.
	for _, eps := range []float64{0.2, 0.5, 1, 2} {
		g, err := NewGeometric(eps, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLaplace(eps, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if g.ExpectedAbsNoise() >= l.ExpectedAbsNoise() {
			t.Errorf("eps=%v: geometric noise %v not below Laplace %v",
				eps, g.ExpectedAbsNoise(), l.ExpectedAbsNoise())
		}
	}
}
