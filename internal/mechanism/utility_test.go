package mechanism

import (
	"math"
	"testing"
)

func TestMeanAbsError(t *testing.T) {
	got, err := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MeanAbsError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MeanAbsError(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestRootMeanSquaredError(t *testing.T) {
	got, err := RootMeanSquaredError([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RootMeanSquaredError([]float64{1}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := RootMeanSquaredError(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestMeanExpectedAbsNoise(t *testing.T) {
	got, err := MeanExpectedAbsNoise(1, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-12 { // (2 + 1)/2
		t.Errorf("mean noise = %v, want 1.5", got)
	}
	if _, err := MeanExpectedAbsNoise(0, []float64{1}); err == nil {
		t.Error("zero sensitivity should fail")
	}
	if _, err := MeanExpectedAbsNoise(1, nil); err == nil {
		t.Error("empty budgets should fail")
	}
	if _, err := MeanExpectedAbsNoise(1, []float64{1, 0}); err == nil {
		t.Error("zero budget should fail")
	}
}
