package mechanism

import (
	"fmt"
	"math"
	"math/rand"
)

// Geometric is the eps-DP geometric mechanism (the discrete analogue of
// the Laplace mechanism) for integer-valued queries with integer L1
// sensitivity: it adds two-sided geometric noise with
// Pr(noise = k) proportional to exp(-eps*|k|/Delta).
//
// For count release it avoids the post-processing question the Laplace
// mechanism raises (non-integer, possibly negative outputs still need
// rounding); noise here is integral by construction.
type Geometric struct {
	eps         float64
	sensitivity int
	rng         *rand.Rand
}

// NewGeometric builds a geometric mechanism. rng may be nil for a
// deterministic default source.
func NewGeometric(eps float64, sensitivity int, rng *rand.Rand) (*Geometric, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBudget, eps)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrSensitivity, sensitivity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Geometric{eps: eps, sensitivity: sensitivity, rng: rng}, nil
}

// Epsilon returns the privacy budget.
func (g *Geometric) Epsilon() float64 { return g.eps }

// Sensitivity returns the integer L1 sensitivity.
func (g *Geometric) Sensitivity() int { return g.sensitivity }

// alphaParam returns the geometric decay parameter
// a = exp(-eps/Delta) in (0, 1).
func (g *Geometric) alphaParam() float64 {
	return math.Exp(-g.eps / float64(g.sensitivity))
}

// SampleNoise draws one two-sided geometric noise value: 0 with
// probability (1-a)/(1+a), and +-k (k >= 1) each with probability
// (1-a)/(1+a) * a^k, where a = exp(-eps/Delta).
func (g *Geometric) SampleNoise() int {
	a := g.alphaParam()
	u := g.rng.Float64()
	// Invert the CDF of |noise|: Pr(|X| <= k) = 1 - 2a^{k+1}/(1+a).
	// Draw magnitude first, then a sign for non-zero values.
	p0 := (1 - a) / (1 + a)
	if u < p0 {
		return 0
	}
	// Remaining mass is split in two symmetric geometric tails:
	// Pr(X = k) = p0 * a^k for k >= 1 on each side.
	v := g.rng.Float64()
	k := 1 + int(math.Floor(math.Log(1-v)/math.Log(a)))
	if k < 1 {
		k = 1
	}
	if g.rng.Float64() < 0.5 {
		return -k
	}
	return k
}

// Release perturbs one true integer answer.
func (g *Geometric) Release(trueValue int) int {
	return trueValue + g.SampleNoise()
}

// ReleaseCounts perturbs a histogram of integer counts.
func (g *Geometric) ReleaseCounts(counts []int) []int {
	out := make([]int, len(counts))
	for i, v := range counts {
		out[i] = v + g.SampleNoise()
	}
	return out
}

// ExpectedAbsNoise returns E|noise| = 2a / (1 - a^2), the utility figure
// comparable to the Laplace mechanism's Delta/eps.
func (g *Geometric) ExpectedAbsNoise() float64 {
	a := g.alphaParam()
	return 2 * a / (1 - a*a)
}

// LogRatioBound returns the worst-case log-probability ratio between
// neighboring inputs — the mechanism's PL0, which equals eps exactly.
func (g *Geometric) LogRatioBound() float64 { return g.eps }
