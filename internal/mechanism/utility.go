package mechanism

import (
	"fmt"
	"math"
)

// MeanAbsError returns the mean absolute difference between true and
// noisy releases — the empirical counterpart of ExpectedAbsNoise.
func MeanAbsError(truth, noisy []float64) (float64, error) {
	if len(truth) != len(noisy) {
		return 0, fmt.Errorf("mechanism: length mismatch %d vs %d", len(truth), len(noisy))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("mechanism: empty series")
	}
	s := 0.0
	for i := range truth {
		s += math.Abs(truth[i] - noisy[i])
	}
	return s / float64(len(truth)), nil
}

// RootMeanSquaredError returns the RMSE between true and noisy releases.
func RootMeanSquaredError(truth, noisy []float64) (float64, error) {
	if len(truth) != len(noisy) {
		return 0, fmt.Errorf("mechanism: length mismatch %d vs %d", len(truth), len(noisy))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("mechanism: empty series")
	}
	s := 0.0
	for i := range truth {
		d := truth[i] - noisy[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth))), nil
}

// MeanExpectedAbsNoise returns the average of Delta/eps_t over a budget
// sequence — the analytic utility figure reported for a whole release
// plan in Fig. 8 (lower is better).
func MeanExpectedAbsNoise(sensitivity float64, eps []float64) (float64, error) {
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return 0, fmt.Errorf("%w: got %v", ErrSensitivity, sensitivity)
	}
	if len(eps) == 0 {
		return 0, fmt.Errorf("mechanism: empty budget sequence")
	}
	s := 0.0
	for t, e := range eps {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return 0, fmt.Errorf("%w: step %d has %v", ErrBudget, t, e)
		}
		s += sensitivity / e
	}
	return s / float64(len(eps)), nil
}
