package mechanism

import (
	"math"
	"math/rand"
	"testing"
)

func TestClampNonNegative(t *testing.T) {
	out := ClampNonNegative([]float64{-1.5, 0, 2.5})
	if out[0] != 0 || out[1] != 0 || out[2] != 2.5 {
		t.Errorf("clamp = %v", out)
	}
}

func TestProjectToSum(t *testing.T) {
	out, err := ProjectToSum([]float64{1, 2, 3}, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := out[0] + out[1] + out[2]
	if math.Abs(s-12) > 1e-12 {
		t.Errorf("sum = %v", s)
	}
	// Uniform shift preserves differences.
	if math.Abs((out[1]-out[0])-1) > 1e-12 {
		t.Errorf("differences changed: %v", out)
	}
	if _, err := ProjectToSum(nil, 5); err == nil {
		t.Error("empty should fail")
	}
	if _, err := ProjectToSum([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN total should fail")
	}
}

func TestProjectToSimplexBasics(t *testing.T) {
	out, err := ProjectToSimplex([]float64{3, -1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, v := range out {
		if v < 0 {
			t.Errorf("negative cell %v", v)
		}
		s += v
	}
	if math.Abs(s-4) > 1e-9 {
		t.Errorf("sum = %v, want 4", s)
	}
	if _, err := ProjectToSimplex(nil, 1); err == nil {
		t.Error("empty should fail")
	}
	if _, err := ProjectToSimplex([]float64{1}, -1); err == nil {
		t.Error("negative total should fail")
	}
}

func TestProjectToSimplexZeroTotal(t *testing.T) {
	out, err := ProjectToSimplex([]float64{-2, -3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestProjectToSimplexIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		total := rng.Float64() * 20
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		once, err := ProjectToSimplex(append([]float64(nil), x...), total)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := ProjectToSimplex(append([]float64(nil), once...), total)
		if err != nil {
			t.Fatal(err)
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9 {
				t.Fatalf("not idempotent at %d: %v vs %v", i, once[i], twice[i])
			}
		}
	}
}

func TestProjectToSimplexIsClosestPoint(t *testing.T) {
	// The projection must be at least as close (L2) as naive
	// clamp-then-rescale and as any random feasible point.
	rng := rand.New(rand.NewSource(2))
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		total := 1 + rng.Float64()*10
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
		}
		proj, err := ProjectToSimplex(append([]float64(nil), x...), total)
		if err != nil {
			t.Fatal(err)
		}
		dProj := dist(x, proj)
		for probe := 0; probe < 20; probe++ {
			// Random feasible point: Dirichlet-ish draw scaled to total.
			y := make([]float64, n)
			s := 0.0
			for i := range y {
				y[i] = rng.ExpFloat64()
				s += y[i]
			}
			for i := range y {
				y[i] *= total / s
			}
			if dy := dist(x, y); dy < dProj-1e-9 {
				t.Fatalf("trial %d: found feasible point closer than projection: %v < %v", trial, dy, dProj)
			}
		}
	}
}

func TestPostProcessingImprovesUtility(t *testing.T) {
	// Knowing the population size and non-negativity strictly helps:
	// projected noisy histograms have lower MAE than raw ones, averaged
	// over many releases.
	rng := rand.New(rand.NewSource(3))
	truth := []float64{40, 0, 3, 57, 0}
	total := 100.0
	lap, err := NewLaplace(0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, projErr float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		noisy := lap.ReleaseVec(truth)
		raw, err := MeanAbsError(truth, noisy)
		if err != nil {
			t.Fatal(err)
		}
		rawErr += raw
		proj, err := ProjectToSimplex(append([]float64(nil), noisy...), total)
		if err != nil {
			t.Fatal(err)
		}
		p, err := MeanAbsError(truth, proj)
		if err != nil {
			t.Fatal(err)
		}
		projErr += p
	}
	if projErr >= rawErr {
		t.Errorf("projection did not improve MAE: %v vs %v", projErr/trials, rawErr/trials)
	}
}

func TestRoundCounts(t *testing.T) {
	out := RoundCounts([]float64{-0.4, 0.5, 2.49, 2.51})
	want := []int{0, 1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("RoundCounts[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}
