// Package mechanism provides the differential-privacy primitives the
// paper builds on: the Laplace mechanism (Theorem 1), privacy budgets,
// count/histogram queries over snapshot databases, and the utility
// metrics reported in Fig. 8.
//
// The reproduction follows the paper's convention from Example 1: each
// released count is perturbed with Lap(Delta/eps) noise, where Delta is
// the L1 sensitivity of the query (1 for a single location count).
package mechanism

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBudget is returned for non-positive or non-finite privacy budgets.
var ErrBudget = errors.New("mechanism: privacy budget must be finite and positive")

// ErrSensitivity is returned for non-positive or non-finite query
// sensitivities.
var ErrSensitivity = errors.New("mechanism: sensitivity must be finite and positive")

// SampleLaplace draws one sample from the Laplace distribution with
// mean zero and the given scale b (density exp(-|x|/b)/(2b)), as a
// fair-signed exponential: |X| ~ Exp(1/b) and the sign is an
// independent coin, which is exactly Laplace(b). The ziggurat
// exponential replaces the inverse-CDF form's math.Log — at histogram
// release rates the log was the single largest CPU cost of the ingest
// hot path. Draw counts per sample differ from the inverse-CDF form,
// which is fine: journal replay restores recorded noisy values
// verbatim and fast-forwards the stream to recorded positions, never
// re-deriving either.
func SampleLaplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("mechanism: Laplace scale must be finite and positive, got %v", scale))
	}
	e := rng.ExpFloat64()
	if rng.Int63()&1 == 0 {
		return -scale * e
	}
	return scale * e
}

// Laplace is the eps-DP Laplace mechanism for queries with a fixed L1
// sensitivity: it adds Lap(Sensitivity/Epsilon) noise to each released
// value (Theorem 1 of the paper).
type Laplace struct {
	eps         float64
	sensitivity float64
	rng         *rand.Rand
}

// NewLaplace builds a Laplace mechanism. rng may be nil, in which case a
// deterministic source seeded with 1 is used (handy in tests; production
// callers should pass their own source).
func NewLaplace(eps, sensitivity float64, rng *rand.Rand) (*Laplace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBudget, eps)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrSensitivity, sensitivity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Laplace{eps: eps, sensitivity: sensitivity, rng: rng}, nil
}

// Epsilon returns the mechanism's privacy budget: its privacy leakage
// PL0 in the sense of Definition 2.
func (l *Laplace) Epsilon() float64 { return l.eps }

// Sensitivity returns the query sensitivity the mechanism is calibrated
// for.
func (l *Laplace) Sensitivity() float64 { return l.sensitivity }

// Scale returns the Laplace noise scale b = Sensitivity/Epsilon.
func (l *Laplace) Scale() float64 { return l.sensitivity / l.eps }

// ExpectedAbsNoise returns E|noise| = Scale, the utility metric plotted
// in Fig. 8 ("absolute value of Laplace noise").
func (l *Laplace) ExpectedAbsNoise() float64 { return l.Scale() }

// Release perturbs one true query answer.
func (l *Laplace) Release(trueValue float64) float64 {
	return trueValue + SampleLaplace(l.rng, l.Scale())
}

// ReleaseVec perturbs a vector of true answers (e.g. one count per
// location), adding independent noise to each element. The paper's
// Example 1 releases location histograms this way with per-count
// sensitivity 1.
func (l *Laplace) ReleaseVec(trueValues []float64) []float64 {
	out := make([]float64, len(trueValues))
	scale := l.Scale()
	for i, v := range trueValues {
		out[i] = v + SampleLaplace(l.rng, scale)
	}
	return out
}

// ReleaseCounts perturbs integer counts and returns float64 noisy
// counts. Negative noisy counts are possible and preserved: rounding or
// clamping is a post-processing choice left to the caller (both preserve
// DP).
func (l *Laplace) ReleaseCounts(counts []int) []float64 {
	return l.AppendReleaseCounts(make([]float64, 0, len(counts)), counts)
}

// AppendReleaseCounts is ReleaseCounts appending to dst — the batched
// release path carves many steps' outputs from one slab instead of
// allocating per step. Noise draws are identical to ReleaseCounts.
func (l *Laplace) AppendReleaseCounts(dst []float64, counts []int) []float64 {
	scale := l.Scale()
	for _, v := range counts {
		dst = append(dst, float64(v)+SampleLaplace(l.rng, scale))
	}
	return dst
}
