package mechanism

import (
	"fmt"
	"math"
	"sort"
)

// Post-processing helpers for released histograms. Differential privacy
// is closed under post-processing, so none of these affect the privacy
// guarantee; they restore structural facts the consumer knows anyway
// (counts are non-negative; the histogram sums to the population size)
// and typically reduce error.

// ClampNonNegative replaces negative noisy counts with zero, in place,
// and returns the slice.
func ClampNonNegative(noisy []float64) []float64 {
	for i, v := range noisy {
		if v < 0 {
			noisy[i] = 0
		}
	}
	return noisy
}

// ProjectToSum shifts the histogram uniformly so it sums to total (the
// L2 projection onto the sum-constraint hyperplane), in place, and
// returns the slice. Use when the population size is public knowledge.
func ProjectToSum(noisy []float64, total float64) ([]float64, error) {
	if len(noisy) == 0 {
		return nil, fmt.Errorf("mechanism: empty histogram")
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("mechanism: non-finite total %v", total)
	}
	s := 0.0
	for _, v := range noisy {
		s += v
	}
	shift := (total - s) / float64(len(noisy))
	for i := range noisy {
		noisy[i] += shift
	}
	return noisy, nil
}

// ProjectToSimplex projects the histogram onto the scaled probability
// simplex {x : x >= 0, sum x = total} in L2, in place, and returns the
// slice. This is the standard simplex-projection algorithm (sort,
// running threshold); it combines non-negativity and the sum constraint
// optimally rather than applying them one after the other.
func ProjectToSimplex(noisy []float64, total float64) ([]float64, error) {
	n := len(noisy)
	if n == 0 {
		return nil, fmt.Errorf("mechanism: empty histogram")
	}
	if total < 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("mechanism: total must be finite and non-negative, got %v", total)
	}
	sorted := append([]float64(nil), noisy...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	cum := 0.0
	theta := 0.0
	k := 0
	for i, v := range sorted {
		cum += v
		t := (cum - total) / float64(i+1)
		if v-t > 0 {
			theta = t
			k = i + 1
		}
	}
	if k == 0 {
		// All mass at one corner: distribute total over... this happens
		// only when total = 0 and all entries non-positive; zero out.
		for i := range noisy {
			noisy[i] = 0
		}
		return noisy, nil
	}
	for i, v := range noisy {
		noisy[i] = math.Max(v-theta, 0)
	}
	return noisy, nil
}

// RoundCounts rounds each cell to the nearest non-negative integer, in
// place (as ints in a new slice). Appropriate for presentation; for
// downstream numeric use prefer the unrounded projections.
func RoundCounts(noisy []float64) []int {
	out := make([]int, len(noisy))
	for i, v := range noisy {
		r := math.Round(v)
		if r < 0 {
			r = 0
		}
		out[i] = int(r)
	}
	return out
}
