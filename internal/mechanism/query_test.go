package mechanism

import (
	"math"
	"testing"
)

func TestNewSnapshotValidation(t *testing.T) {
	if _, err := NewSnapshot(0, nil); err == nil {
		t.Error("domain 0 should fail")
	}
	if _, err := NewSnapshot(3, []int{0, 3}); err == nil {
		t.Error("out-of-range value should fail")
	}
	if _, err := NewSnapshot(3, []int{0, -1}); err == nil {
		t.Error("negative value should fail")
	}
	s, err := NewSnapshot(3, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Users() != 3 {
		t.Errorf("Users = %d", s.Users())
	}
}

func TestSnapshotCopiesInput(t *testing.T) {
	vals := []int{0, 1}
	s, err := NewSnapshot(2, vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 1
	if s.Values[0] != 0 {
		t.Error("snapshot aliases caller slice")
	}
}

func TestHistogramMatchesFig1(t *testing.T) {
	// Fig. 1(a) column t=1: u1 at loc3, u2 at loc2, u3 at loc2, u4 at loc4
	// -> counts (0, 2, 1, 1, 0), Fig. 1(c) column t=1.
	s, err := NewSnapshot(5, []int{2, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Histogram()
	want := []int{0, 2, 1, 1, 0}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestCount(t *testing.T) {
	s, _ := NewSnapshot(3, []int{0, 1, 1, 2, 1})
	c, err := s.Count(1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Errorf("Count(1) = %d", c)
	}
	if _, err := s.Count(5); err == nil {
		t.Error("out-of-range count should fail")
	}
}

func TestNeighbor(t *testing.T) {
	s, _ := NewSnapshot(3, []int{0, 1})
	n, err := s.Neighbor(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Values[0] != 2 || s.Values[0] != 0 {
		t.Error("Neighbor should copy and modify")
	}
	if _, err := s.Neighbor(5, 0); err == nil {
		t.Error("bad user should fail")
	}
	if _, err := s.Neighbor(0, 9); err == nil {
		t.Error("bad value should fail")
	}
}

func TestNeighborCountSensitivity(t *testing.T) {
	// A single-count query changes by at most CountSensitivity across
	// neighbors; the full histogram by at most HistogramL1Sensitivity.
	s, _ := NewSnapshot(4, []int{0, 1, 2, 3, 0})
	for u := 0; u < s.Users(); u++ {
		for v := 0; v < 4; v++ {
			n, err := s.Neighbor(u, v)
			if err != nil {
				t.Fatal(err)
			}
			h1, h2 := s.Histogram(), n.Histogram()
			l1 := 0.0
			for i := range h1 {
				d := math.Abs(float64(h1[i] - h2[i]))
				if d > CountSensitivity {
					t.Fatalf("count sensitivity violated at cell %d: %v", i, d)
				}
				l1 += d
			}
			if l1 > HistogramL1Sensitivity {
				t.Fatalf("histogram L1 sensitivity violated: %v", l1)
			}
		}
	}
}
