package mechanism

import (
	"fmt"
)

// Snapshot is one time step's database D^t: Values[i] is the value
// (location index in [0, Domain)) of user i. It matches the paper's
// setting where each user contributes exactly one tuple per time step.
type Snapshot struct {
	Domain int
	Values []int
}

// NewSnapshot validates and wraps one column of the continuous database.
func NewSnapshot(domain int, values []int) (*Snapshot, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("mechanism: domain must be positive, got %d", domain)
	}
	for i, v := range values {
		if v < 0 || v >= domain {
			return nil, fmt.Errorf("mechanism: user %d has value %d outside [0,%d)", i, v, domain)
		}
	}
	return &Snapshot{Domain: domain, Values: append([]int(nil), values...)}, nil
}

// Users returns the number of users in the snapshot.
func (s *Snapshot) Users() int { return len(s.Values) }

// Histogram returns the count of users at each value — the true
// aggregate of Fig. 1(c).
func (s *Snapshot) Histogram() []int {
	counts := make([]int, s.Domain)
	for _, v := range s.Values {
		counts[v]++
	}
	return counts
}

// Count returns the number of users at one value.
func (s *Snapshot) Count(value int) (int, error) {
	if value < 0 || value >= s.Domain {
		return 0, fmt.Errorf("mechanism: value %d outside [0,%d)", value, s.Domain)
	}
	c := 0
	for _, v := range s.Values {
		if v == value {
			c++
		}
	}
	return c, nil
}

// Neighbor returns a copy of the snapshot with user i's value replaced,
// i.e. a neighboring database D^t' in the sense of event-level DP.
func (s *Snapshot) Neighbor(user, newValue int) (*Snapshot, error) {
	if user < 0 || user >= len(s.Values) {
		return nil, fmt.Errorf("mechanism: user %d outside [0,%d)", user, len(s.Values))
	}
	if newValue < 0 || newValue >= s.Domain {
		return nil, fmt.Errorf("mechanism: value %d outside [0,%d)", newValue, s.Domain)
	}
	out := &Snapshot{Domain: s.Domain, Values: append([]int(nil), s.Values...)}
	out.Values[user] = newValue
	return out, nil
}

// CountSensitivity is the L1 sensitivity of a single location count
// under the modification of one user's tuple: the count changes by at
// most 1. This is the paper's Example 1 calibration (Lap(1/eps) per
// count).
const CountSensitivity = 1.0

// HistogramL1Sensitivity is the L1 sensitivity of the full histogram
// under one tuple modification: the user leaves one cell and enters
// another, changing the histogram by 2 in L1. Provided for callers who
// want the strict joint-release calibration instead of the paper's
// per-count convention.
const HistogramL1Sensitivity = 2.0
