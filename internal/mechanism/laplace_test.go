package mechanism

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSampleLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 500000
	scale := 2.0
	sum, sumAbs, sumSq := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		x := SampleLaplace(rng, scale)
		sum += x
		sumAbs += math.Abs(x)
		sumSq += x * x
	}
	mean := sum / n
	meanAbs := sumAbs / n
	variance := sumSq / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(meanAbs-scale) > 0.02 {
		t.Errorf("E|X| = %v, want %v", meanAbs, scale)
	}
	if math.Abs(variance-2*scale*scale) > 0.15 {
		t.Errorf("Var = %v, want %v", variance, 2*scale*scale)
	}
}

func TestSampleLaplaceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	pos := 0
	for i := 0; i < n; i++ {
		if SampleLaplace(rng, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("positive fraction = %v, want ~0.5", frac)
	}
}

func TestSampleLaplaceTailProbability(t *testing.T) {
	// Pr(|X| > b*k) = e^{-k}.
	rng := rand.New(rand.NewSource(3))
	const n = 300000
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(SampleLaplace(rng, 1)) > 2 {
			exceed++
		}
	}
	frac := float64(exceed) / n
	want := math.Exp(-2)
	if math.Abs(frac-want) > 0.005 {
		t.Errorf("tail fraction = %v, want ~%v", frac, want)
	}
}

func TestSampleLaplacePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v: expected panic", bad)
				}
			}()
			SampleLaplace(rng, bad)
		}()
	}
}

func TestNewLaplaceValidation(t *testing.T) {
	if _, err := NewLaplace(0, 1, nil); !errors.Is(err, ErrBudget) {
		t.Errorf("eps=0: err = %v", err)
	}
	if _, err := NewLaplace(math.Inf(1), 1, nil); !errors.Is(err, ErrBudget) {
		t.Error("inf eps should fail")
	}
	if _, err := NewLaplace(1, 0, nil); !errors.Is(err, ErrSensitivity) {
		t.Error("zero sensitivity should fail")
	}
	if _, err := NewLaplace(1, math.NaN(), nil); !errors.Is(err, ErrSensitivity) {
		t.Error("NaN sensitivity should fail")
	}
}

func TestLaplaceAccessors(t *testing.T) {
	l, err := NewLaplace(0.5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epsilon() != 0.5 || l.Sensitivity() != 2 {
		t.Error("accessors wrong")
	}
	if l.Scale() != 4 {
		t.Errorf("Scale = %v, want 4", l.Scale())
	}
	if l.ExpectedAbsNoise() != 4 {
		t.Errorf("ExpectedAbsNoise = %v", l.ExpectedAbsNoise())
	}
}

func TestReleaseUnbiased(t *testing.T) {
	l, err := NewLaplace(1, 1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += l.Release(10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.02 {
		t.Errorf("mean release = %v, want ~10", mean)
	}
}

func TestReleaseVecShapeAndIndependence(t *testing.T) {
	l, err := NewLaplace(1, 1, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{1, 2, 3}
	out := l.ReleaseVec(truth)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// Overwhelmingly unlikely that two noises coincide.
	if out[0]-truth[0] == out[1]-truth[1] {
		t.Error("noise looks repeated across elements")
	}
}

func TestReleaseCounts(t *testing.T) {
	l, err := NewLaplace(10, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	out := l.ReleaseCounts([]int{5, 0, 100})
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for i, want := range []float64{5, 0, 100} {
		if math.Abs(out[i]-want) > 5 {
			t.Errorf("count %d drifted implausibly: %v vs %v", i, out[i], want)
		}
	}
}

func TestEmpiricalAbsNoiseMatchesScale(t *testing.T) {
	// E|noisy - true| should approach Sensitivity/eps (the Fig. 8 metric).
	l, err := NewLaplace(0.5, 1, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(l.Release(0))
	}
	if got, want := sum/n, 2.0; math.Abs(got-want) > 0.03 {
		t.Errorf("empirical E|noise| = %v, want ~%v", got, want)
	}
}

func TestNilRNGDeterministic(t *testing.T) {
	a, _ := NewLaplace(1, 1, nil)
	b, _ := NewLaplace(1, 1, nil)
	if a.Release(0) != b.Release(0) {
		t.Error("nil-rng mechanisms should be reproducible")
	}
}
