// Package bundle implements signed model bundles: named sets of
// transition-matrix adversary models distributed to tplserved fleets
// the way OPA distributes policy — content-addressed, signature-
// verified artifacts that activate atomically into the running
// service's model cache. A bundle's revision IS its content hash, so
// caching, long-polling and audit trails all key off one value, and a
// tampered bundle cannot keep its revision.
package bundle

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/markov"
	"repro/internal/stream"
)

// Model is one named adversary model: the backward/forward transition
// matrices of the paper's Markov correlation adversary. Either may be
// absent; both absent is the traditional DP adversary.
type Model struct {
	Backward *markov.Chain `json:"backward,omitempty"`
	Forward  *markov.Chain `json:"forward,omitempty"`
}

// Bundle is the wire artifact: the models, the content-hash revision,
// and an optional detached signature over the revision.
type Bundle struct {
	// Revision is the lowercase hex SHA-256 of the canonical JSON
	// encoding of Models. It is recomputed and checked on every load —
	// a bundle whose content does not hash to its revision is rejected
	// before any signature check.
	Revision string `json:"revision"`
	// Models is the named model set.
	Models map[string]Model `json:"models"`
	// Signature is the hex Ed25519 signature over the revision's raw
	// digest bytes (not the hex string), when the bundle is signed.
	Signature string `json:"signature,omitempty"`
}

// Revision computes the content-hash revision of a model set: SHA-256
// over the canonical JSON encoding (Go marshals map keys sorted, so
// the encoding is deterministic for a given content).
func Revision(models map[string]Model) (string, error) {
	digest, err := revisionDigest(models)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(digest), nil
}

// revisionDigest returns the raw digest the signature covers.
func revisionDigest(models map[string]Model) ([]byte, error) {
	canonical, err := json.Marshal(models)
	if err != nil {
		return nil, fmt.Errorf("bundle: encoding models: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return sum[:], nil
}

// Build assembles a bundle from a model set, computing the revision
// and, when priv is non-nil, signing it.
func Build(models map[string]Model, priv ed25519.PrivateKey) (*Bundle, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("bundle: empty model set")
	}
	digest, err := revisionDigest(models)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Revision: hex.EncodeToString(digest), Models: models}
	if priv != nil {
		b.Signature = hex.EncodeToString(ed25519.Sign(priv, digest))
	}
	return b, nil
}

// Verify checks the bundle's integrity: the revision must equal the
// content hash, and — when pub is non-nil — the signature must verify
// under it. A consumer configured with a public key therefore rejects
// unsigned bundles; a consumer without one checks content integrity
// only.
func (b *Bundle) Verify(pub ed25519.PublicKey) error {
	if len(b.Models) == 0 {
		return fmt.Errorf("bundle: empty model set")
	}
	digest, err := revisionDigest(b.Models)
	if err != nil {
		return err
	}
	if got := hex.EncodeToString(digest); got != b.Revision {
		return fmt.Errorf("bundle: revision %s does not match content hash %s", b.Revision, got)
	}
	if pub == nil {
		return nil
	}
	if b.Signature == "" {
		return fmt.Errorf("bundle: revision %s is unsigned but a verification key is configured", b.Revision)
	}
	sig, err := hex.DecodeString(b.Signature)
	if err != nil {
		return fmt.Errorf("bundle: decoding signature: %w", err)
	}
	if !ed25519.Verify(pub, digest, sig) {
		return fmt.Errorf("bundle: revision %s signature does not verify", b.Revision)
	}
	return nil
}

// AdversaryModels converts the bundle's models to the stream package's
// form, ready for ModelCache.ActivateNamed.
func (b *Bundle) AdversaryModels() map[string]stream.AdversaryModel {
	out := make(map[string]stream.AdversaryModel, len(b.Models))
	for name, m := range b.Models {
		out[name] = stream.AdversaryModel{Backward: m.Backward, Forward: m.Forward}
	}
	return out
}

// Parse decodes and integrity-checks a bundle (signature checked only
// when pub is non-nil).
func Parse(data []byte, pub ed25519.PublicKey) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bundle: decoding: %w", err)
	}
	if err := b.Verify(pub); err != nil {
		return nil, err
	}
	return &b, nil
}
