package bundle

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/markov"
	"repro/internal/stream"
)

func testModels(t *testing.T) map[string]Model {
	t.Helper()
	pb, pf := markov.Fig7Backward(), markov.Fig7Forward()
	return map[string]Model{
		"road": {Backward: pb, Forward: pf},
		"none": {},
	}
}

func TestBuildVerifySign(t *testing.T) {
	models := testModels(t)
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(models, priv)
	if err != nil {
		t.Fatal(err)
	}
	wantRev, err := Revision(models)
	if err != nil {
		t.Fatal(err)
	}
	if b.Revision != wantRev {
		t.Fatalf("revision %s, want %s", b.Revision, wantRev)
	}
	if err := b.Verify(pub); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(nil); err != nil {
		t.Fatal(err) // content check alone also passes
	}
	// Wrong key fails.
	otherPub, _, _ := ed25519.GenerateKey(nil)
	if err := b.Verify(otherPub); err == nil {
		t.Fatal("wrong key verified")
	}
	// Unsigned bundle with a configured key fails.
	unsigned, err := Build(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unsigned.Signature != "" {
		t.Fatal("unsigned bundle carries a signature")
	}
	if err := unsigned.Verify(pub); err == nil {
		t.Fatal("unsigned bundle verified under a key")
	}
	if err := unsigned.Verify(nil); err != nil {
		t.Fatal(err)
	}
	// Content tampering changes the hash: verification fails even
	// without a key.
	raw, _ := json.Marshal(b)
	var tampered Bundle
	json.Unmarshal(raw, &tampered)
	delete(tampered.Models, "none")
	if err := tampered.Verify(nil); err == nil {
		t.Fatal("tampered bundle verified")
	}
	// Parse round-trips.
	if _, err := Parse(raw, pub); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse([]byte("{"), nil); err == nil {
		t.Fatal("garbage parsed")
	}
	// Revision is content-stable: rebuilding the same set yields the
	// same revision regardless of signing.
	again, _ := Build(testModels(t), nil)
	if again.Revision != b.Revision {
		t.Fatalf("revision unstable: %s vs %s", again.Revision, b.Revision)
	}
}

func TestServerETagAndLongPoll(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// No bundle yet: 404.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty server returned %d", resp.StatusCode)
	}

	b1, _ := Build(testModels(t), nil)
	if err := srv.SetBundle(b1); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != b1.Revision {
		t.Fatalf("status %d etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	got, err := Parse(mustRead(t, resp), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Revision != b1.Revision {
		t.Fatalf("served revision %s", got.Revision)
	}

	// Matching If-None-Match without a timeout: immediate 304.
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("If-None-Match", b1.Revision)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET returned %d", resp.StatusCode)
	}

	// Long-poll: a held request completes with the *new* bundle when
	// one is published mid-hold.
	type result struct {
		rev  string
		code int
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"?timeout=30s", nil)
		req.Header.Set("If-None-Match", b1.Revision)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- result{code: resp.StatusCode}
			return
		}
		b, err := Parse(mustRead(t, resp), nil)
		if err != nil {
			done <- result{}
			return
		}
		done <- result{rev: b.Revision, code: resp.StatusCode}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll arrive and block
	b2, _ := Build(map[string]Model{"road": {Backward: markov.Fig7Forward()}}, nil)
	if err := srv.SetBundle(b2); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.code != http.StatusOK || r.rev != b2.Revision {
			t.Fatalf("long-poll result %+v, want 200/%s", r, b2.Revision)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never completed")
	}

	// Short timeout with no change: 304 after the hold.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"?timeout=50ms", nil)
	req.Header.Set("If-None-Match", b2.Revision)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("timed-out long-poll returned %d", resp.StatusCode)
	}
}

func mustRead(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			return buf
		}
	}
}

// TestPluginHotSwap runs the real poller against a real bundle server:
// the first bundle activates promptly, a revision flip mid-long-poll
// activates the new set, and the shared cache's named table follows.
func TestPluginHotSwap(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	b1, _ := Build(testModels(t), priv)
	if err := srv.SetBundle(b1); err != nil {
		t.Fatal(err)
	}

	cache := stream.NewModelCache()
	p, err := NewPlugin(cache, Config{URL: ts.URL, PublicKey: pub, Poll: 10 * time.Second, MinBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop(ctx)

	waitRevision := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cache.NamedRevision() == want && p.Revision() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("revision never reached %s (cache %s, plugin %s)", want, cache.NamedRevision(), p.Revision())
	}
	waitRevision(b1.Revision)
	if _, _, missing := cache.ResolveNamed([]string{"road", "none"}); missing != nil {
		t.Fatalf("missing %v after activation", missing)
	}

	// Flip the revision: the long-polling plugin must pick it up fast.
	b2, _ := Build(map[string]Model{"road": {Backward: markov.Fig7Forward()}}, priv)
	if err := srv.SetBundle(b2); err != nil {
		t.Fatal(err)
	}
	waitRevision(b2.Revision)
	if _, _, missing := cache.ResolveNamed([]string{"none"}); missing == nil {
		t.Fatal("old revision's model still resolves after the swap")
	}
	st := p.Status()
	if st.State != "running" || st.Detail["activations"].(int) != 2 {
		t.Fatalf("plugin status %+v", st)
	}
}

// TestPluginRejectsBadBundles keeps a tampered or wrongly-signed
// bundle out of the cache: the plugin reports the error and the cache
// keeps whatever was active.
func TestPluginRejectsBadBundles(t *testing.T) {
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, wrongPriv, _ := ed25519.GenerateKey(nil)
	bad, _ := Build(testModels(t), wrongPriv)
	raw, _ := json.Marshal(bad)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", bad.Revision)
		w.Write(raw)
	}))
	defer ts.Close()

	cache := stream.NewModelCache()
	p, err := NewPlugin(cache, Config{URL: ts.URL, PublicKey: pub, MinBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := p.Status(); st.State == "error" && st.Message != "" {
			if cache.NamedRevision() != "" {
				t.Fatalf("bad bundle activated revision %s", cache.NamedRevision())
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("plugin never reported the bad bundle")
}
