package bundle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// maxLongPoll caps how long the server holds a long-poll request open.
const maxLongPoll = 60 * time.Second

// Server serves one bundle over HTTP with ETag caching and long-poll:
// the distribution side of the management plane, used by cmd/tplbundle
// and by tests. GET returns the bundle with `ETag: <revision>`; a
// request carrying `If-None-Match: <revision>` gets 304 immediately —
// or, with `?timeout=<duration>`, is held open until the bundle
// changes or the timeout lapses, which is what lets pollers pick up a
// new revision in milliseconds without hammering the endpoint.
type Server struct {
	mu     sync.Mutex
	raw    []byte // marshaled bundle
	rev    string
	change chan struct{} // closed when the bundle changes; then replaced
}

// NewServer creates a server with no bundle (GET returns 404 until
// SetBundle).
func NewServer() *Server {
	return &Server{change: make(chan struct{})}
}

// SetBundle publishes a bundle, waking every held long-poll. The
// bundle is integrity-checked first so a serving mistake cannot
// distribute a bundle consumers would reject.
func (s *Server) SetBundle(b *Bundle) error {
	if err := b.Verify(nil); err != nil {
		return err
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("bundle: encoding: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Revision == s.rev {
		return nil // same content; don't wake pollers for nothing
	}
	s.raw, s.rev = raw, b.Revision
	close(s.change)
	s.change = make(chan struct{})
	return nil
}

// Revision returns the served revision ("" before the first SetBundle).
func (s *Server) Revision() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// snapshot returns the current payload and the channel that signals
// the next change.
func (s *Server) snapshot() (raw []byte, rev string, change chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raw, s.rev, s.change
}

// ServeHTTP implements the bundle endpoint.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	raw, rev, change := s.snapshot()
	// Long-poll: the client already has this revision and asked to wait
	// for the next one.
	if match := r.Header.Get("If-None-Match"); match != "" && match == rev {
		wait := time.Duration(0)
		if v := r.URL.Query().Get("timeout"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				if secs, serr := strconv.Atoi(v); serr == nil {
					d, err = time.Duration(secs)*time.Second, nil
				}
			}
			if err != nil || d < 0 {
				http.Error(w, "bad timeout", http.StatusBadRequest)
				return
			}
			wait = min(d, maxLongPoll)
		}
		if wait > 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-change:
				raw, rev, _ = s.snapshot()
			case <-timer.C:
			case <-r.Context().Done():
				return
			}
		}
		if rev == match {
			w.Header().Set("ETag", rev)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if rev == "" {
		http.Error(w, "no bundle published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", rev)
	w.Write(raw)
}
