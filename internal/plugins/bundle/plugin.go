package bundle

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/plugins/manager"
	"repro/internal/stream"
)

// maxBundleBytes bounds a fetched bundle (64 MiB: thousands of
// moderate transition matrices; anything bigger is a config mistake,
// not a model set).
const maxBundleBytes = 64 << 20

// Config drives the polling plugin.
type Config struct {
	// URL is the bundle endpoint (required).
	URL string
	// PublicKey, when non-nil, requires every fetched bundle to carry a
	// valid Ed25519 signature. Without it only content hashes are
	// checked.
	PublicKey ed25519.PublicKey
	// Poll is the long-poll hold time sent as ?timeout= once a revision
	// is cached (default 30s).
	Poll time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential backoff
	// after fetch failures (defaults 500ms / 30s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Client overrides the HTTP client (tests; default has a timeout
	// comfortably above Poll).
	Client *http.Client
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Poll <= 0 {
		c.Poll = 30 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Poll + 30*time.Second}
	}
	return c
}

// Plugin polls a bundle server and activates verified bundles into the
// shared model cache. Activation is atomic (ModelCache.ActivateNamed):
// sessions created before a swap keep the engines they resolved,
// sessions created after resolve against the new revision, and no
// request ever sees half a bundle.
type Plugin struct {
	cache *stream.ModelCache

	mu          sync.Mutex
	cfg         Config
	state       string
	lastErr     string
	revision    string // last revision this plugin activated
	activations int
	lastSuccess time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

// NewPlugin creates the bundle plugin activating into cache.
func NewPlugin(cache *stream.ModelCache, cfg Config) (*Plugin, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("bundle: plugin needs a bundle URL")
	}
	return &Plugin{cache: cache, cfg: cfg.withDefaults(), state: "registered"}, nil
}

// Name implements manager.Plugin.
func (p *Plugin) Name() string { return "bundle" }

// Start launches the polling loop.
func (p *Plugin) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return fmt.Errorf("bundle: already started")
	}
	ctx, p.cancel = context.WithCancel(ctx)
	p.done = make(chan struct{})
	p.state = "running"
	go p.loop(ctx, p.done)
	return nil
}

// Stop ends the polling loop, waiting for it (bounded by ctx).
func (p *Plugin) Stop(ctx context.Context) {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	if p.state == "running" {
		p.state = "stopped"
	}
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Reconfigure accepts a new Config (URL, key, intervals) and applies
// it to the next poll. Implements manager.Reconfigurable.
func (p *Plugin) Reconfigure(cfg any) error {
	c, ok := cfg.(Config)
	if !ok {
		return fmt.Errorf("bundle: reconfigure wants a bundle.Config, got %T", cfg)
	}
	if c.URL == "" {
		return fmt.Errorf("bundle: plugin needs a bundle URL")
	}
	p.mu.Lock()
	p.cfg = c.withDefaults()
	p.mu.Unlock()
	return nil
}

// Status implements manager.Plugin.
func (p *Plugin) Status() manager.Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := manager.Status{State: p.state, Message: p.lastErr, Detail: map[string]any{
		"url":         p.cfg.URL,
		"revision":    p.revision,
		"activations": p.activations,
		"signed":      p.cfg.PublicKey != nil,
	}}
	if !p.lastSuccess.IsZero() {
		st.Detail["last_success"] = p.lastSuccess.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// Revision returns the last revision the plugin activated.
func (p *Plugin) Revision() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.revision
}

// loop is the polling goroutine: fetch (long-polling once a revision
// is cached), verify, activate; jittered exponential backoff on any
// failure so a broken bundle server sees a trickle, not a stampede.
func (p *Plugin) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	backoff := time.Duration(0)
	for {
		p.mu.Lock()
		cfg, etag := p.cfg, p.revision
		p.mu.Unlock()
		changed, err := p.fetchOnce(ctx, cfg, etag)
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			if backoff == 0 {
				backoff = cfg.MinBackoff
			} else {
				backoff = min(backoff*2, cfg.MaxBackoff)
			}
			p.mu.Lock()
			p.lastErr = err.Error()
			p.state = "error"
			p.mu.Unlock()
			// Full jitter: sleep U(0, backoff]. Decorrelates a fleet of
			// pollers recovering from one server outage.
			sleep := time.Duration(rand.Int63n(int64(backoff))) + time.Millisecond
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return
			}
		default:
			backoff = 0
			p.mu.Lock()
			p.lastErr = ""
			p.state = "running"
			p.lastSuccess = time.Now()
			p.mu.Unlock()
			if !changed && etag == "" {
				// Nothing published yet and no long-poll hold happened
				// (no ETag to wait on): pace the retry.
				select {
				case <-time.After(cfg.MinBackoff):
				case <-ctx.Done():
					return
				}
			}
		}
	}
}

// fetchOnce performs one conditional GET. With a cached revision it
// long-polls (the server holds the request until the bundle changes or
// cfg.Poll lapses); a 200 verifies and activates. changed reports
// whether a new revision was activated.
func (p *Plugin) fetchOnce(ctx context.Context, cfg Config, etag string) (changed bool, err error) {
	url := cfg.URL
	if etag != "" {
		sep := "?"
		if containsQuery(url) {
			sep = "&"
		}
		url += sep + "timeout=" + cfg.Poll.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return false, nil
	case http.StatusNotFound:
		// The server is up but has no bundle yet — not an error worth
		// backing off hard for; treated as "no change".
		return false, nil
	case http.StatusOK:
	default:
		return false, fmt.Errorf("bundle: %s returned %s", cfg.URL, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBundleBytes+1))
	if err != nil {
		return false, err
	}
	if len(body) > maxBundleBytes {
		return false, fmt.Errorf("bundle: payload exceeds %d bytes", maxBundleBytes)
	}
	b, err := Parse(body, cfg.PublicKey)
	if err != nil {
		return false, err
	}
	if b.Revision == etag {
		return false, nil
	}
	// Activation compiles new chains through the content cache here, on
	// the plugin goroutine, then swaps the table atomically.
	p.cache.ActivateNamed(b.Revision, b.AdversaryModels())
	p.mu.Lock()
	p.revision = b.Revision
	p.activations++
	p.mu.Unlock()
	return true, nil
}

// containsQuery reports whether a URL already carries a query string.
func containsQuery(url string) bool {
	for i := 0; i < len(url); i++ {
		if url[i] == '?' {
			return true
		}
	}
	return false
}
