// Package plugincfg is the declarative configuration of tplserved's
// management plane: the schema of the -config file, its validation
// (usable standalone via -validate-config), the single place where
// flag-vs-config precedence is enforced, and the factory that turns a
// parsed file into a running plugin manager. It is the only package
// that imports both the service and every plugin — the service itself
// stays ignorant of plugins, and plugins stay ignorant of each other.
package plugincfg

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/plugins/bundle"
	"repro/internal/plugins/logs"
	"repro/internal/plugins/manager"
	"repro/internal/plugins/status"
	"repro/internal/service"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("2s", "500ms") — the config file's only duration spelling; bare
// numbers are rejected so a config can never be ambiguous about units.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("durations are strings like \"30s\" or \"500ms\", got %s", b)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// File is the tplserved config file. Every server flag has a
// counterpart here; flags set explicitly on the command line override
// the file (ApplyFlags), and the file overrides the built-in defaults
// (Default) — that one sentence is the whole precedence story.
type File struct {
	// Addr is the listen address.
	Addr string `json:"addr,omitempty"`
	// Quiet suppresses serving logs.
	Quiet bool `json:"quiet,omitempty"`
	// StateDir enables durable accounting (empty = ephemeral).
	StateDir string `json:"state_dir,omitempty"`
	// SnapshotEvery is the snapshot coalescing interval in steps.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// JournalSync is "none", "group" or "step".
	JournalSync string `json:"journal_sync,omitempty"`
	// JournalWindow bounds the group-commit latency window.
	JournalWindow Duration `json:"journal_window,omitempty"`
	// EngineCacheDir enables the on-disk compiled-engine cache
	// (empty = compile fresh every process).
	EngineCacheDir string `json:"engine_cache_dir,omitempty"`
	// Role selects the process role: "serve" (default — one ingest
	// shard) or "router" (the cluster front door: no sessions of its
	// own, proxies traffic to the shards by consistent hashing).
	Role string `json:"role,omitempty"`
	// Shards lists the shard base URLs a router proxies to (router role
	// only; order fixes shard IDs, so keep it stable across restarts).
	Shards []string `json:"shards,omitempty"`
	// RingSize is the consistent-hash ring's slot count (router role
	// only; 0 = the cluster package default).
	RingSize int `json:"ring_size,omitempty"`
	// Plugins configures the management-plane plugins; a section that
	// is absent leaves that plugin off.
	Plugins Plugins `json:"plugins,omitempty"`
}

// Plugins is the per-plugin configuration block.
type Plugins struct {
	Bundle       *Bundle       `json:"bundle,omitempty"`
	DecisionLogs *DecisionLogs `json:"decision_logs,omitempty"`
	Status       *Status       `json:"status,omitempty"`
}

// Bundle configures the bundle-polling plugin.
type Bundle struct {
	// URL is the bundle endpoint (required).
	URL string `json:"url"`
	// PublicKey is the hex Ed25519 verification key; when set, every
	// bundle must carry a valid signature.
	PublicKey string `json:"public_key,omitempty"`
	// Poll is the long-poll hold time.
	Poll Duration `json:"poll,omitempty"`
	// MinBackoff/MaxBackoff bound the failure backoff.
	MinBackoff Duration `json:"min_backoff,omitempty"`
	MaxBackoff Duration `json:"max_backoff,omitempty"`
}

// DecisionLogs configures the decision-log plugin.
type DecisionLogs struct {
	// UploadURL and SpoolPath are the two sink destinations; exactly
	// one must be set.
	UploadURL string `json:"upload_url,omitempty"`
	SpoolPath string `json:"spool_path,omitempty"`
	// Buffer is the in-flight record capacity.
	Buffer int `json:"buffer,omitempty"`
	// Batch is the flush threshold in records.
	Batch int `json:"batch,omitempty"`
	// FlushInterval bounds how long a partial batch waits.
	FlushInterval Duration `json:"flush_interval,omitempty"`
}

// Status configures the status plugin.
type Status struct {
	// Interval is the reporting period.
	Interval Duration `json:"interval,omitempty"`
	// UploadURL, when set, receives each report as JSON.
	UploadURL string `json:"upload_url,omitempty"`
}

// Default returns the built-in configuration — the single source of
// every tplserved default (the flag declarations take theirs from
// here).
func Default() File {
	return File{
		Addr:        ":8344",
		JournalSync: string(service.JournalSyncGroup),
	}
}

// Load reads a config file over the defaults: absent keys keep their
// Default values, unknown keys are errors (a typoed key silently doing
// nothing is the worst failure mode a config can have).
func Load(path string) (File, error) {
	f := Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	if dec.More() {
		return f, fmt.Errorf("parsing %s: trailing data after the config object", path)
	}
	return f, nil
}

// Validate checks the configuration and returns every problem found
// (nil means valid). The -validate-config mode prints this list.
func (f *File) Validate() []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if f.Addr == "" {
		bad("addr: must not be empty")
	}
	if f.SnapshotEvery < 0 {
		bad("snapshot_every: must not be negative, got %d", f.SnapshotEvery)
	}
	if f.JournalSync != "" {
		if _, err := service.ParseJournalSyncMode(f.JournalSync); err != nil {
			bad("journal_sync: %v", err)
		}
	}
	if f.JournalWindow < 0 {
		bad("journal_window: must not be negative")
	}
	switch f.Role {
	case "", "serve":
		if len(f.Shards) > 0 {
			bad("shards: only meaningful with role \"router\"")
		}
		if f.RingSize != 0 {
			bad("ring_size: only meaningful with role \"router\"")
		}
	case "router":
		if len(f.Shards) == 0 {
			bad("shards: role \"router\" needs at least one shard base URL")
		}
		if _, err := f.Topology(); err != nil && len(f.Shards) > 0 {
			bad("shards: %v", err)
		}
		if f.RingSize < 0 {
			bad("ring_size: must not be negative, got %d", f.RingSize)
		}
		// A router holds no sessions, so per-shard durability knobs are
		// misconfigurations rather than silent no-ops.
		if f.StateDir != "" {
			bad("state_dir: a router holds no session state; configure it on the shards")
		}
		if f.EngineCacheDir != "" {
			bad("engine_cache_dir: a router compiles no engines; configure it on the shards")
		}
		if f.Plugins != (Plugins{}) {
			bad("plugins: the management plane runs on the shards, not the router")
		}
	default:
		bad("role: %q is not a role (want \"serve\" or \"router\")", f.Role)
	}
	if b := f.Plugins.Bundle; b != nil {
		if b.URL == "" {
			bad("plugins.bundle.url: required")
		}
		if b.PublicKey != "" {
			if _, err := parsePublicKey(b.PublicKey); err != nil {
				bad("plugins.bundle.public_key: %v", err)
			}
		}
		for name, d := range map[string]Duration{"poll": b.Poll, "min_backoff": b.MinBackoff, "max_backoff": b.MaxBackoff} {
			if d < 0 {
				bad("plugins.bundle.%s: must not be negative", name)
			}
		}
	}
	if l := f.Plugins.DecisionLogs; l != nil {
		if (l.UploadURL == "") == (l.SpoolPath == "") {
			bad("plugins.decision_logs: exactly one of upload_url and spool_path must be set")
		}
		if l.Buffer < 0 || l.Batch < 0 {
			bad("plugins.decision_logs: buffer and batch must not be negative")
		}
		if l.FlushInterval < 0 {
			bad("plugins.decision_logs.flush_interval: must not be negative")
		}
	}
	if s := f.Plugins.Status; s != nil {
		if s.Interval < 0 {
			bad("plugins.status.interval: must not be negative")
		}
	}
	return problems
}

// parsePublicKey decodes a hex Ed25519 public key.
func parsePublicKey(s string) (ed25519.PublicKey, error) {
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("not hex: %v", err)
	}
	if len(key) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("want %d bytes, got %d", ed25519.PublicKeySize, len(key))
	}
	return ed25519.PublicKey(key), nil
}

// ApplyFlags overlays explicitly-set command-line flags onto the file:
// the one place flag-vs-config precedence lives. Only flags the user
// actually passed win (fs.Visit enumerates exactly those); defaults
// never shadow the file.
func (f *File) ApplyFlags(fs *flag.FlagSet, addr *string, quiet *bool, stateDir *string, snapshotEvery *int, journalSync *string, journalWindow *time.Duration, engineCacheDir *string, role *string, shards *string, ringSize *int) {
	fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "addr":
			f.Addr = *addr
		case "quiet":
			f.Quiet = *quiet
		case "state-dir":
			f.StateDir = *stateDir
		case "snapshot-every":
			f.SnapshotEvery = *snapshotEvery
		case "journal-sync":
			f.JournalSync = *journalSync
		case "journal-window":
			f.JournalWindow = Duration(*journalWindow)
		case "engine-cache-dir":
			f.EngineCacheDir = *engineCacheDir
		case "role":
			f.Role = *role
		case "shards":
			f.Shards = splitShards(*shards)
		case "ring-size":
			f.RingSize = *ringSize
		}
	})
}

// splitShards parses the -shards flag's comma-separated address list.
func splitShards(list string) []string {
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// Topology builds the router's placement document (router role only).
// Entries are bare addresses (positional shard-N IDs, stable as long
// as the order is) or explicit "id=addr" pairs.
func (f *File) Topology() (*cluster.Topology, error) {
	shards, err := cluster.ParseShardList(f.Shards)
	if err != nil {
		return nil, err
	}
	return cluster.New(shards, f.RingSize)
}

// Options converts the file to the service's serving options.
func (f *File) Options() service.Options {
	return service.Options{
		StateDir:       f.StateDir,
		SnapshotEvery:  f.SnapshotEvery,
		JournalSync:    f.JournalSync,
		JournalWindow:  time.Duration(f.JournalWindow),
		EngineCacheDir: f.EngineCacheDir,
	}
}

// BuildPlugins constructs the configured plugins into a manager wired
// to the registry: the bundle plugin activates into the registry's
// model cache, the decision-log plugin is attached as the registry's
// decision sink, and the status plugin reads the registry. Plugins
// start in registration order — bundle first, so models are available
// as early as possible; status last, so its first report sees the
// rest. A file configuring no plugins yields an empty (still
// startable) manager.
func (f *File) BuildPlugins(reg *service.Registry) (*manager.Manager, error) {
	m := manager.New()
	if bc := f.Plugins.Bundle; bc != nil {
		cfg := bundle.Config{
			URL:        bc.URL,
			Poll:       time.Duration(bc.Poll),
			MinBackoff: time.Duration(bc.MinBackoff),
			MaxBackoff: time.Duration(bc.MaxBackoff),
		}
		if bc.PublicKey != "" {
			key, err := parsePublicKey(bc.PublicKey)
			if err != nil {
				return nil, fmt.Errorf("plugincfg: plugins.bundle.public_key: %w", err)
			}
			cfg.PublicKey = key
		}
		p, err := bundle.NewPlugin(reg.ModelCache(), cfg)
		if err != nil {
			return nil, err
		}
		if err := m.Register(p); err != nil {
			return nil, err
		}
	}
	if lc := f.Plugins.DecisionLogs; lc != nil {
		p, err := logs.NewPlugin(logs.Config{
			UploadURL:     lc.UploadURL,
			SpoolPath:     lc.SpoolPath,
			Buffer:        lc.Buffer,
			Batch:         lc.Batch,
			FlushInterval: time.Duration(lc.FlushInterval),
		})
		if err != nil {
			return nil, err
		}
		if err := m.Register(p); err != nil {
			return nil, err
		}
		reg.SetDecisionSink(p)
	}
	if sc := f.Plugins.Status; sc != nil {
		p := status.NewPlugin(reg, status.Config{
			Interval:  time.Duration(sc.Interval),
			UploadURL: sc.UploadURL,
		})
		if err := m.Register(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}
