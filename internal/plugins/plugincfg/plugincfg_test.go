package plugincfg

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/stream"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadOverDefaults(t *testing.T) {
	path := writeConfig(t, `{
		"state_dir": "/var/lib/tplserved",
		"journal_window": "3ms",
		"plugins": {
			"bundle": {"url": "http://bundles/", "poll": "45s"},
			"decision_logs": {"spool_path": "/tmp/dec.gz", "batch": 512},
			"status": {"interval": "1m"}
		}
	}`)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Absent keys keep their defaults.
	if f.Addr != ":8344" || f.JournalSync != "group" {
		t.Fatalf("defaults not preserved: %+v", f)
	}
	if f.StateDir != "/var/lib/tplserved" || time.Duration(f.JournalWindow) != 3*time.Millisecond {
		t.Fatalf("file values not applied: %+v", f)
	}
	if f.Plugins.Bundle == nil || f.Plugins.Bundle.URL != "http://bundles/" || time.Duration(f.Plugins.Bundle.Poll) != 45*time.Second {
		t.Fatalf("bundle block %+v", f.Plugins.Bundle)
	}
	if f.Plugins.DecisionLogs == nil || f.Plugins.DecisionLogs.Batch != 512 {
		t.Fatalf("decision_logs block %+v", f.Plugins.DecisionLogs)
	}
	if f.Plugins.Status == nil || time.Duration(f.Plugins.Status.Interval) != time.Minute {
		t.Fatalf("status block %+v", f.Plugins.Status)
	}
	if problems := f.Validate(); problems != nil {
		t.Fatalf("valid config rejected: %v", problems)
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"unknown key":   `{"adr": ":1"}`,
		"typoed nested": `{"plugins": {"bundle": {"uri": "http://x"}}}`,
		"bare number":   `{"journal_window": 5}`,
		"bad duration":  `{"journal_window": "5 sec"}`,
		"trailing data": `{"addr": ":1"} {"addr": ":2"}`,
	}
	for name, body := range cases {
		if _, err := Load(writeConfig(t, body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidateCollectsEveryProblem(t *testing.T) {
	f := Default()
	f.Addr = ""
	f.SnapshotEvery = -1
	f.JournalSync = "sometimes"
	f.Plugins.Bundle = &Bundle{PublicKey: "zz"}
	f.Plugins.DecisionLogs = &DecisionLogs{UploadURL: "http://x", SpoolPath: "/y"}
	f.Plugins.Status = &Status{Interval: Duration(-time.Second)}
	problems := f.Validate()
	for _, want := range []string{
		"addr:", "snapshot_every:", "journal_sync:",
		"plugins.bundle.url:", "plugins.bundle.public_key:",
		"plugins.decision_logs:", "plugins.status.interval:",
	} {
		found := false
		for _, p := range problems {
			if strings.HasPrefix(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no problem reported for %s (got %v)", want, problems)
		}
	}
	// Zero decision-log destinations is as invalid as two.
	g := Default()
	g.Plugins.DecisionLogs = &DecisionLogs{}
	if g.Validate() == nil {
		t.Error("destination-less decision_logs validated")
	}
	d := Default()
	if problems := d.Validate(); problems != nil {
		t.Errorf("defaults invalid: %v", problems)
	}
}

// TestApplyFlagsPrecedence is the regression test for the precedence
// contract: defaults < config file < explicitly-set flags. A flag left
// at its default must NOT shadow the file's value, even when the two
// differ.
func TestApplyFlagsPrecedence(t *testing.T) {
	def := Default()
	fs := flag.NewFlagSet("tplserved", flag.ContinueOnError)
	addr := fs.String("addr", def.Addr, "")
	quiet := fs.Bool("quiet", def.Quiet, "")
	stateDir := fs.String("state-dir", def.StateDir, "")
	snapshotEvery := fs.Int("snapshot-every", def.SnapshotEvery, "")
	journalSync := fs.String("journal-sync", def.JournalSync, "")
	journalWindow := fs.Duration("journal-window", time.Duration(def.JournalWindow), "")
	engineCacheDir := fs.String("engine-cache-dir", def.EngineCacheDir, "")
	role := fs.String("role", def.Role, "")
	shards := fs.String("shards", "", "")
	ringSize := fs.Int("ring-size", def.RingSize, "")
	// The user passes exactly three flags.
	if err := fs.Parse([]string{"-addr", ":9999", "-snapshot-every", "7", "-engine-cache-dir", "/flagcache"}); err != nil {
		t.Fatal(err)
	}

	f, err := Load(writeConfig(t, `{
		"addr": ":1111",
		"state_dir": "/data",
		"journal_sync": "step",
		"journal_window": "9ms",
		"engine_cache_dir": "/filecache"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyFlags(fs, addr, quiet, stateDir, snapshotEvery, journalSync, journalWindow, engineCacheDir, role, shards, ringSize)

	// Explicit flags win over the file.
	if f.Addr != ":9999" || f.SnapshotEvery != 7 || f.EngineCacheDir != "/flagcache" {
		t.Fatalf("explicit flags did not win: %+v", f)
	}
	// Unset flags must not drag the file's values back to the flag
	// defaults ("group" is journal-sync's default, the file says
	// "step").
	if f.StateDir != "/data" || f.JournalSync != "step" || time.Duration(f.JournalWindow) != 9*time.Millisecond {
		t.Fatalf("flag defaults shadowed the file: %+v", f)
	}
	opts := f.Options()
	if opts.StateDir != "/data" || opts.JournalSync != "step" || opts.SnapshotEvery != 7 || opts.EngineCacheDir != "/flagcache" {
		t.Fatalf("options %+v", opts)
	}
}

func TestBuildPlugins(t *testing.T) {
	f := Default()
	f.Plugins.Bundle = &Bundle{URL: "http://bundles/"}
	f.Plugins.DecisionLogs = &DecisionLogs{SpoolPath: filepath.Join(t.TempDir(), "dec.gz")}
	f.Plugins.Status = &Status{}
	reg := service.NewRegistry()
	m, err := f.BuildPlugins(reg)
	if err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	if len(names) != 3 || names[0] != "bundle" || names[1] != "decision_logs" || names[2] != "status" {
		t.Fatalf("registered plugins %v", names)
	}

	// The decision-log plugin is attached as the registry's sink: an
	// accounting decision reaches it without the plugin even running.
	if _, err := reg.Create(&service.SessionConfig{Name: "s", Domain: 2, Users: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := reg.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.5
	if _, _, err := s.CollectBatch("", []stream.BatchStep{{Values: []int{0}, Eps: &eps}}); err != nil {
		t.Fatal(err)
	}
	lp, ok := m.Plugin("decision_logs")
	if !ok {
		t.Fatal("decision_logs not registered")
	}
	if got := lp.Status().Detail["recorded"].(int64); got != 1 {
		t.Fatalf("sink recorded %d decisions, want 1", got)
	}

	// An empty plugins block still yields a startable (empty) manager.
	empty := Default()
	if m, err = empty.BuildPlugins(service.NewRegistry()); err != nil {
		t.Fatal(err)
	} else if len(m.Names()) != 0 {
		t.Fatalf("empty config registered %v", m.Names())
	}

	// A bad public key surfaces at build time.
	bad := Default()
	bad.Plugins.Bundle = &Bundle{URL: "http://x", PublicKey: "nothex"}
	if _, err := bad.BuildPlugins(service.NewRegistry()); err == nil {
		t.Fatal("bad public key accepted")
	}
}
