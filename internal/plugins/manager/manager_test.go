package manager

import (
	"context"
	"fmt"
	"testing"
)

// fakePlugin records lifecycle calls into a shared trace.
type fakePlugin struct {
	name     string
	trace    *[]string
	startErr error
	cfg      any
}

func (f *fakePlugin) Name() string { return f.name }
func (f *fakePlugin) Start(ctx context.Context) error {
	*f.trace = append(*f.trace, "start:"+f.name)
	return f.startErr
}
func (f *fakePlugin) Stop(ctx context.Context) { *f.trace = append(*f.trace, "stop:"+f.name) }
func (f *fakePlugin) Status() Status           { return Status{State: "running"} }
func (f *fakePlugin) Reconfigure(cfg any) error {
	f.cfg = cfg
	return nil
}

func TestManagerLifecycle(t *testing.T) {
	var trace []string
	m := New()
	for _, name := range []string{"a", "b", "c"} {
		if err := m.Register(&fakePlugin{name: name, trace: &trace}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Register(&fakePlugin{name: "b", trace: &trace}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	ctx := context.Background()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err == nil {
		t.Fatal("double start accepted")
	}
	if err := m.Register(&fakePlugin{name: "d", trace: &trace}); err == nil {
		t.Fatal("registration after start accepted")
	}
	st := m.StatusAll()
	if len(st) != 3 || st["a"].State != "running" {
		t.Fatalf("StatusAll %+v", st)
	}
	m.Stop(ctx)
	m.Stop(ctx) // idempotent
	want := []string{"start:a", "start:b", "start:c", "stop:c", "stop:b", "stop:a"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
}

func TestManagerStartFailureUnwinds(t *testing.T) {
	var trace []string
	m := New()
	m.Register(&fakePlugin{name: "a", trace: &trace})
	m.Register(&fakePlugin{name: "b", trace: &trace, startErr: fmt.Errorf("boom")})
	m.Register(&fakePlugin{name: "c", trace: &trace})
	err := m.Start(context.Background())
	if err == nil {
		t.Fatal("start succeeded past a failing plugin")
	}
	// a started and was unwound; c never started.
	want := []string{"start:a", "start:b", "stop:a"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	// The manager is restartable after the failure is fixed.
	trace = trace[:0]
	p, _ := m.Plugin("b")
	p.(*fakePlugin).startErr = nil
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Stop(context.Background())
}

func TestManagerReconfigure(t *testing.T) {
	var trace []string
	m := New()
	p := &fakePlugin{name: "a", trace: &trace}
	m.Register(p)
	if err := m.Reconfigure("a", 42); err != nil {
		t.Fatal(err)
	}
	if p.cfg != 42 {
		t.Fatalf("cfg %v", p.cfg)
	}
	if err := m.Reconfigure("ghost", 1); err == nil {
		t.Fatal("unknown plugin reconfigured")
	}
}
