// Package manager hosts the service's management-plane plugins: small
// background components (bundle polling, decision logging, status
// reporting) with a shared lifecycle — init → start → reconfigure →
// graceful stop — driven by the declarative config file tplserved
// loads at boot. The manager is deliberately ignorant of what a plugin
// does; it owns ordering, failure unwinding, and the aggregated status
// the healthz endpoint reports.
package manager

import (
	"context"
	"fmt"
	"sync"
)

// Plugin is one managed component. Implementations must make Start
// non-blocking (spawn goroutines, return), Stop idempotent and bounded
// by the context, and Status safe to call from any goroutine at any
// lifecycle stage.
type Plugin interface {
	// Name identifies the plugin in status reports and reconfiguration.
	Name() string
	// Start begins background work. An error fails the whole manager
	// start (already-started plugins are stopped).
	Start(ctx context.Context) error
	// Stop gracefully ends background work, flushing whatever the
	// plugin buffers, bounded by ctx.
	Stop(ctx context.Context)
	// Status reports the plugin's current state.
	Status() Status
}

// Reconfigurable is implemented by plugins that accept runtime
// reconfiguration. The config value's concrete type is plugin-specific;
// a plugin rejects types it does not understand.
type Reconfigurable interface {
	Reconfigure(cfg any) error
}

// Status is one plugin's health digest, embedded in the healthz
// "plugins" block.
type Status struct {
	// State is "registered", "running", "stopped" or "error".
	State string `json:"state"`
	// Message carries the last error in state "error".
	Message string `json:"message,omitempty"`
	// Detail is plugin-specific (bundle revision, dropped decisions,
	// last report time, ...).
	Detail map[string]any `json:"detail,omitempty"`
}

// Manager owns an ordered set of plugins. Registration happens before
// Start; Start and Stop bracket the serving lifetime; StatusAll is safe
// throughout.
type Manager struct {
	mu      sync.Mutex
	order   []Plugin
	byName  map[string]Plugin
	started bool
}

// New creates an empty manager.
func New() *Manager {
	return &Manager{byName: make(map[string]Plugin)}
}

// Register adds a plugin. Registration order is start order (and the
// reverse is stop order, so later plugins may depend on earlier ones).
// Duplicate names and registration after Start are errors.
func (m *Manager) Register(p Plugin) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("plugins: cannot register %q after start", p.Name())
	}
	if _, dup := m.byName[p.Name()]; dup {
		return fmt.Errorf("plugins: duplicate plugin %q", p.Name())
	}
	m.byName[p.Name()] = p
	m.order = append(m.order, p)
	return nil
}

// Plugin returns a registered plugin by name.
func (m *Manager) Plugin(name string) (Plugin, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.byName[name]
	return p, ok
}

// Names lists the registered plugins in start order.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.order))
	for i, p := range m.order {
		out[i] = p.Name()
	}
	return out
}

// Start starts every plugin in registration order. The first failure
// stops the already-started plugins in reverse order and reports which
// plugin failed; the manager is then restartable.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("plugins: already started")
	}
	for i, p := range m.order {
		if err := p.Start(ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				m.order[j].Stop(ctx)
			}
			return fmt.Errorf("plugins: starting %q: %w", p.Name(), err)
		}
	}
	m.started = true
	return nil
}

// Stop stops every plugin in reverse registration order, bounded by
// ctx. Idempotent.
func (m *Manager) Stop(ctx context.Context) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return
	}
	for i := len(m.order) - 1; i >= 0; i-- {
		m.order[i].Stop(ctx)
	}
	m.started = false
}

// Reconfigure hands a new config value to the named plugin. Unknown
// names and plugins without runtime reconfiguration are errors.
func (m *Manager) Reconfigure(name string, cfg any) error {
	p, ok := m.Plugin(name)
	if !ok {
		return fmt.Errorf("plugins: no plugin %q", name)
	}
	rc, ok := p.(Reconfigurable)
	if !ok {
		return fmt.Errorf("plugins: plugin %q does not support reconfiguration", name)
	}
	return rc.Reconfigure(cfg)
}

// StatusAll aggregates every plugin's status, keyed by name — the
// healthz "plugins" block.
func (m *Manager) StatusAll() map[string]Status {
	m.mu.Lock()
	plugins := append([]Plugin(nil), m.order...)
	m.mu.Unlock()
	out := make(map[string]Status, len(plugins))
	for _, p := range plugins {
		out[p.Name()] = p.Status()
	}
	return out
}
