// Package logs implements the decision-log plugin: a bounded, batched,
// gzip'd NDJSON sink for the service's accounting decisions. Every
// ingestion outcome (service.Decision) is one JSON line; lines are
// batched, compressed, and shipped to an upload endpoint or appended
// to a local spool file. The sink never blocks the ingest hot path: a
// full buffer drops the record and counts the drop, because a privacy
// accountant that stalls ingestion to save an audit line has its
// priorities inverted — the drop counter is the honest record of the
// gap.
package logs

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plugins/manager"
	"repro/internal/service"
)

// Config drives the decision-log plugin. Exactly one of UploadURL and
// SpoolPath must be set.
type Config struct {
	// UploadURL receives each batch as a POST with Content-Type
	// application/x-ndjson and Content-Encoding gzip.
	UploadURL string
	// SpoolPath appends each batch to a local file as one gzip member
	// (concatenated members decode as one stream).
	SpoolPath string
	// Buffer is the in-flight record capacity; past it, records are
	// dropped and counted (default 4096).
	Buffer int
	// Batch is the flush threshold in records (default 256).
	Batch int
	// FlushInterval bounds how long a partial batch waits (default 2s).
	FlushInterval time.Duration
	// Client overrides the upload HTTP client (tests).
	Client *http.Client
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Buffer <= 0 {
		c.Buffer = 4096
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// validate checks the sink destination.
func (c Config) validate() error {
	if (c.UploadURL == "") == (c.SpoolPath == "") {
		return fmt.Errorf("logs: exactly one of upload URL and spool path must be set")
	}
	return nil
}

// Plugin is the decision-log sink. It implements service.DecisionSink
// (Record) and manager.Plugin; wire it with Registry.SetDecisionSink.
type Plugin struct {
	ch       chan service.Decision
	recorded atomic.Int64
	dropped  atomic.Int64

	mu       sync.Mutex
	cfg      Config
	state    string
	lastErr  string
	batches  int64 // flushed batches
	shipped  int64 // records in them
	failures int64 // failed flushes (their records are lost and counted dropped)

	cancel context.CancelFunc
	done   chan struct{}
}

// NewPlugin creates the decision-log plugin.
func NewPlugin(cfg Config) (*Plugin, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Plugin{ch: make(chan service.Decision, cfg.Buffer), cfg: cfg, state: "registered"}, nil
}

// Record implements service.DecisionSink: one non-blocking channel
// send; a full buffer drops the record and counts it.
func (p *Plugin) Record(d service.Decision) {
	select {
	case p.ch <- d:
		p.recorded.Add(1)
	default:
		p.dropped.Add(1)
	}
}

// Name implements manager.Plugin.
func (p *Plugin) Name() string { return "decision_logs" }

// Start launches the batching loop.
func (p *Plugin) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return fmt.Errorf("logs: already started")
	}
	ctx, p.cancel = context.WithCancel(ctx)
	p.done = make(chan struct{})
	p.state = "running"
	go p.loop(ctx, p.done)
	return nil
}

// Stop ends the loop, flushing everything already buffered (bounded by
// ctx).
func (p *Plugin) Stop(ctx context.Context) {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	if p.state == "running" {
		p.state = "stopped"
	}
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Status implements manager.Plugin.
func (p *Plugin) Status() manager.Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	detail := map[string]any{
		"recorded":       p.recorded.Load(),
		"dropped":        p.dropped.Load(),
		"batches":        p.batches,
		"shipped":        p.shipped,
		"flush_failures": p.failures,
		"batch_size":     p.cfg.Batch,
	}
	if p.cfg.UploadURL != "" {
		detail["upload_url"] = p.cfg.UploadURL
	}
	if p.cfg.SpoolPath != "" {
		detail["spool_path"] = p.cfg.SpoolPath
	}
	return manager.Status{State: p.state, Message: p.lastErr, Detail: detail}
}

// Dropped returns the count of decisions lost to a full buffer.
func (p *Plugin) Dropped() int64 { return p.dropped.Load() }

// Reconfigure accepts a new Config. The buffer capacity is fixed at
// construction (records in flight must not be lost to a resize);
// destination, batch size and flush interval apply to the next flush.
func (p *Plugin) Reconfigure(cfg any) error {
	c, ok := cfg.(Config)
	if !ok {
		return fmt.Errorf("logs: reconfigure wants a logs.Config, got %T", cfg)
	}
	if err := c.validate(); err != nil {
		return err
	}
	c = c.withDefaults()
	p.mu.Lock()
	c.Buffer = p.cfg.Buffer
	p.cfg = c
	p.mu.Unlock()
	return nil
}

// loop drains the channel into batches and flushes on size or timer.
// On cancellation it drains whatever is already buffered and flushes
// once more, so a graceful stop loses nothing that Record accepted.
func (p *Plugin) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	var batch []service.Decision
	p.mu.Lock()
	interval := p.cfg.FlushInterval
	p.mu.Unlock()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		p.flush(batch)
		batch = batch[:0]
	}
	for {
		p.mu.Lock()
		size := p.cfg.Batch
		p.mu.Unlock()
		select {
		case d := <-p.ch:
			batch = append(batch, d)
			if len(batch) >= size {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-ctx.Done():
			for {
				select {
				case d := <-p.ch:
					batch = append(batch, d)
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// flush encodes one batch as gzip'd NDJSON and ships it. A failed
// flush loses the batch: its records move to the dropped count so the
// totals stay honest.
func (p *Plugin) flush(batch []service.Decision) {
	p.mu.Lock()
	cfg := p.cfg
	p.mu.Unlock()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	enc := json.NewEncoder(zw) // Encode appends the newline: NDJSON
	var err error
	for _, d := range batch {
		if err = enc.Encode(d); err != nil {
			break
		}
	}
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		if cfg.UploadURL != "" {
			err = upload(cfg, buf.Bytes())
		} else {
			err = spool(cfg.SpoolPath, buf.Bytes())
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.failures++
		p.lastErr = err.Error()
		p.dropped.Add(int64(len(batch)))
		return
	}
	p.lastErr = ""
	p.batches++
	p.shipped += int64(len(batch))
}

// upload POSTs one compressed batch.
func upload(cfg Config, gz []byte) error {
	req, err := http.NewRequest(http.MethodPost, cfg.UploadURL, bytes.NewReader(gz))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("logs: upload to %s returned %s", cfg.UploadURL, resp.Status)
	}
	return nil
}

// spool appends one gzip member to the spool file.
func spool(path string, gz []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(gz)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
