package logs

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// readSpool decodes a spool file's concatenated gzip members into
// decisions.
func readSpool(t *testing.T, path string) []service.Decision {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f) // multistream: reads every member
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	var out []service.Decision
	sc := bufio.NewScanner(zr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var d service.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpoolFlushOnStopAndBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.ndjson.gz")
	p, err := NewPlugin(Config{SpoolPath: path, Batch: 3, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Three records hit the batch threshold and flush without waiting
	// for the (hour-long) timer.
	for i := 1; i <= 3; i++ {
		p.Record(service.Decision{Session: "s", Kind: "steps", FirstT: i, LastT: i, Steps: 1})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch threshold never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Two more stay buffered until the graceful stop flushes them.
	p.Record(service.Decision{Session: "s", Kind: "refusal", Code: "budget_exhausted"})
	p.Record(service.Decision{Session: "s", Kind: "replay", FirstT: 1, LastT: 1})
	p.Stop(ctx)
	recs := readSpool(t, path)
	if len(recs) != 5 {
		t.Fatalf("%d spooled decisions, want 5", len(recs))
	}
	if recs[0].FirstT != 1 || recs[2].FirstT != 3 {
		t.Fatalf("spool order wrong: %+v", recs[:3])
	}
	if recs[3].Kind != "refusal" || recs[3].Code != "budget_exhausted" || recs[4].Kind != "replay" {
		t.Fatalf("stop-flushed records %+v", recs[3:])
	}
	if p.Dropped() != 0 {
		t.Fatalf("dropped %d", p.Dropped())
	}
}

func TestUploadEndpoint(t *testing.T) {
	var mu sync.Mutex
	var got []service.Decision
	var encodings []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		encodings = append(encodings, r.Header.Get("Content-Encoding"))
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		data, _ := io.ReadAll(zr)
		for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
			var d service.Decision
			if err := json.Unmarshal(line, &d); err != nil {
				t.Errorf("bad line %q: %v", line, err)
				continue
			}
			got = append(got, d)
		}
	}))
	defer ts.Close()
	p, err := NewPlugin(Config{UploadURL: ts.URL, Batch: 2, FlushInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		p.Record(service.Decision{Session: "u", Kind: "steps", FirstT: i})
	}
	p.Stop(ctx)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("%d uploaded decisions, want 5", len(got))
	}
	for _, enc := range encodings {
		if enc != "gzip" {
			t.Fatalf("upload encoding %q", enc)
		}
	}
	st := p.Status()
	if st.Detail["shipped"].(int64) != 5 || st.Detail["dropped"].(int64) != 0 {
		t.Fatalf("status detail %+v", st.Detail)
	}
}

func TestOverflowDropsAndCounts(t *testing.T) {
	// Unstarted plugin: nothing drains the buffer, so records past the
	// capacity must drop without blocking.
	p, err := NewPlugin(Config{SpoolPath: filepath.Join(t.TempDir(), "s.gz"), Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			p.Record(service.Decision{Kind: "steps", FirstT: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a full buffer")
	}
	if d := p.Dropped(); d != 96 {
		t.Fatalf("dropped %d, want 96", d)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewPlugin(Config{}); err == nil {
		t.Fatal("no destination accepted")
	}
	if _, err := NewPlugin(Config{UploadURL: "http://x", SpoolPath: "/tmp/y"}); err == nil {
		t.Fatal("two destinations accepted")
	}
	p, err := NewPlugin(Config{SpoolPath: filepath.Join(t.TempDir(), "s.gz")})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Reconfigure(42); err == nil {
		t.Fatal("bad reconfigure type accepted")
	}
	if err := p.Reconfigure(Config{}); err == nil {
		t.Fatal("bad reconfigure config accepted")
	}
	if err := p.Reconfigure(Config{UploadURL: "http://x"}); err != nil {
		t.Fatal(err)
	}
}
