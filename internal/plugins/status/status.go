// Package status implements the status plugin: periodic digests of
// the management plane's vital signs — active bundle revision,
// snapshot ages and journal health, and per-session budget pressure —
// kept for the healthz endpoint and optionally POSTed to a collection
// endpoint, so a fleet operator sees every instance's accounting
// health without scraping each one.
package status

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/plugins/manager"
	"repro/internal/service"
)

// Config drives the status plugin.
type Config struct {
	// Interval is the reporting period (default 30s).
	Interval time.Duration
	// UploadURL, when set, receives each report as a POST of JSON.
	UploadURL string
	// Client overrides the upload HTTP client (tests).
	Client *http.Client
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 15 * time.Second}
	}
	return c
}

// BudgetPressure is one planned session's budget position.
type BudgetPressure struct {
	Session string `json:"session"`
	// PlanStep/PlanHorizon locate the session inside its finite plan;
	// Pressure is their ratio (0 for horizonless plans).
	PlanStep    int     `json:"plan_step"`
	PlanHorizon int     `json:"plan_horizon,omitempty"`
	Pressure    float64 `json:"pressure,omitempty"`
}

// Report is one periodic status digest.
type Report struct {
	Time time.Time `json:"time"`
	// BundleRevision is the active named-model revision ("" when no
	// bundle has activated).
	BundleRevision string `json:"bundle_revision,omitempty"`
	// BundleModels lists the active revision's model names.
	BundleModels []string `json:"bundle_models,omitempty"`
	Sessions     int      `json:"sessions"`
	Users        int      `json:"users"`
	// Persistence is the same durability digest healthz reports:
	// snapshot staleness is the recovery window.
	Persistence service.PersistenceHealth `json:"persistence"`
	// Budgets lists every planned session's budget pressure, the
	// operator's early warning before refusals start.
	Budgets []BudgetPressure `json:"budgets,omitempty"`
}

// Plugin periodically builds and (optionally) uploads reports.
type Plugin struct {
	reg *service.Registry

	mu      sync.Mutex
	cfg     Config
	state   string
	lastErr string
	last    *Report
	reports int64

	cancel context.CancelFunc
	done   chan struct{}
}

// NewPlugin creates the status plugin over a registry.
func NewPlugin(reg *service.Registry, cfg Config) *Plugin {
	return &Plugin{reg: reg, cfg: cfg.withDefaults(), state: "registered"}
}

// Name implements manager.Plugin.
func (p *Plugin) Name() string { return "status" }

// Start launches the reporting loop.
func (p *Plugin) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return fmt.Errorf("status: already started")
	}
	ctx, p.cancel = context.WithCancel(ctx)
	p.done = make(chan struct{})
	p.state = "running"
	go p.loop(ctx, p.done)
	return nil
}

// Stop ends the loop (bounded by ctx).
func (p *Plugin) Stop(ctx context.Context) {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	if p.state == "running" {
		p.state = "stopped"
	}
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Reconfigure accepts a new Config; the interval applies from the next
// tick. Implements manager.Reconfigurable.
func (p *Plugin) Reconfigure(cfg any) error {
	c, ok := cfg.(Config)
	if !ok {
		return fmt.Errorf("status: reconfigure wants a status.Config, got %T", cfg)
	}
	p.mu.Lock()
	p.cfg = c.withDefaults()
	p.mu.Unlock()
	return nil
}

// Status implements manager.Plugin: the latest report is the detail.
func (p *Plugin) Status() manager.Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	detail := map[string]any{"reports": p.reports, "interval": p.cfg.Interval.String()}
	if p.last != nil {
		detail["last_report"] = p.last
	}
	if p.cfg.UploadURL != "" {
		detail["upload_url"] = p.cfg.UploadURL
	}
	return manager.Status{State: p.state, Message: p.lastErr, Detail: detail}
}

// Last returns the most recent report (nil before the first tick).
func (p *Plugin) Last() *Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// loop emits one report immediately (so healthz shows data right after
// boot) and then one per interval.
func (p *Plugin) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	p.report()
	for {
		p.mu.Lock()
		interval := p.cfg.Interval
		p.mu.Unlock()
		select {
		case <-time.After(interval):
			p.report()
		case <-ctx.Done():
			return
		}
	}
}

// report builds one digest and uploads it when configured.
func (p *Plugin) report() {
	cache := p.reg.ModelCache()
	rep := &Report{
		Time:           time.Now().UTC(),
		BundleRevision: cache.NamedRevision(),
		BundleModels:   cache.NamedModels(),
		Sessions:       p.reg.Len(),
		Users:          p.reg.Users(),
		Persistence:    p.reg.PersistenceHealth(),
	}
	for _, s := range p.reg.List() {
		sum := s.Summary()
		if !sum.HasPlan {
			continue
		}
		bp := BudgetPressure{Session: sum.Name, PlanStep: sum.PlanStep, PlanHorizon: sum.PlanHorizon}
		if sum.PlanHorizon > 0 {
			// PlanStep is the *next* step's index, so pressure hits 1.0
			// exactly when the plan has nothing left to charge.
			bp.Pressure = float64(sum.PlanStep-1) / float64(sum.PlanHorizon)
		}
		rep.Budgets = append(rep.Budgets, bp)
	}
	p.mu.Lock()
	cfg := p.cfg
	p.last = rep
	p.reports++
	p.mu.Unlock()
	if cfg.UploadURL == "" {
		return
	}
	var errStr string
	if err := uploadReport(cfg, rep); err != nil {
		errStr = err.Error()
	}
	p.mu.Lock()
	p.lastErr = errStr
	p.mu.Unlock()
}

// uploadReport POSTs one report as JSON.
func uploadReport(cfg Config, rep *Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, cfg.UploadURL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("status: upload to %s returned %s", cfg.UploadURL, resp.Status)
	}
	return nil
}
