package status

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/markov"
	"repro/internal/service"
	"repro/internal/stream"
)

func TestReportContents(t *testing.T) {
	reg := service.NewRegistry()
	chain, err := markov.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	reg.ModelCache().ActivateNamed("rev1", map[string]stream.AdversaryModel{
		"road": {Backward: chain, Forward: chain},
	})
	s, err := reg.Create(&service.SessionConfig{
		Name:   "planned",
		Domain: 2,
		Users:  2,
		Plan:   &service.PlanConfig{Kind: "quantified", Alpha: 1.0, Horizon: 4, Model: &service.ModelConfig{Ref: "road"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.CollectPlanned([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(&service.SessionConfig{Name: "plain", Domain: 2, Users: 1}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var uploaded []Report
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var rep Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		uploaded = append(uploaded, rep)
		mu.Unlock()
	}))
	defer ts.Close()

	p := NewPlugin(reg, Config{Interval: time.Hour, UploadURL: ts.URL})
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop(ctx)

	// The first report fires immediately on start.
	deadline := time.Now().Add(5 * time.Second)
	for p.Last() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rep := p.Last()
	if rep == nil {
		t.Fatal("no report after start")
	}
	if rep.BundleRevision != "rev1" || len(rep.BundleModels) != 1 || rep.BundleModels[0] != "road" {
		t.Fatalf("bundle block %+v", rep)
	}
	if rep.Sessions != 2 || rep.Users != 3 {
		t.Fatalf("population %+v", rep)
	}
	if rep.Persistence.Mode != "ephemeral" {
		t.Fatalf("persistence %+v", rep.Persistence)
	}
	// Only the planned session reports budget pressure: one of four
	// steps spent.
	if len(rep.Budgets) != 1 {
		t.Fatalf("budgets %+v", rep.Budgets)
	}
	bp := rep.Budgets[0]
	if bp.Session != "planned" || bp.PlanStep != 2 || bp.PlanHorizon != 4 || bp.Pressure != 0.25 {
		t.Fatalf("budget pressure %+v", bp)
	}

	mu.Lock()
	n := len(uploaded)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("%d uploads, want 1", n)
	}
	st := p.Status()
	if st.State != "running" || st.Detail["reports"].(int64) != 1 {
		t.Fatalf("status %+v", st)
	}
}
