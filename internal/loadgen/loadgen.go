// Package loadgen builds synthetic multi-cohort session configs for
// the load generator (cmd/tplload) and the wire-API benchmark
// (tplbench -fig api), so the two tools exercise the service with the
// same population shape instead of drifting copies.
package loadgen

import (
	"fmt"

	"repro/internal/markov"
	"repro/tpl/client"
)

// SessionConfig declares users split over `cohorts` distinct
// adversary-model cohorts: cohort 0 is the traditional DP population
// (no correlations), the rest are lazy chains with stay probability
// graded up to 0.5+staySpread — distinct content, so the server's
// cohort sharding is exercised like a real mixed fleet. seed (0 =
// none) makes the session's noise stream reproducible.
func SessionConfig(name string, users, domain, cohorts int, staySpread float64, seed int64) (client.SessionConfig, error) {
	if users < 1 || domain < 1 {
		return client.SessionConfig{}, fmt.Errorf("loadgen: need positive users and domain, got %d, %d", users, domain)
	}
	if cohorts < 1 {
		cohorts = 1
	}
	if cohorts > users {
		cohorts = users
	}
	cfg := client.SessionConfig{Name: name, Domain: domain, Seed: seed}
	per := users / cohorts
	left := users
	for k := 0; k < cohorts; k++ {
		n := per
		if k == cohorts-1 {
			n = left
		}
		left -= n
		var m client.Model
		if k > 0 {
			chain, err := markov.Lazy(domain, 0.5+staySpread*float64(k)/float64(cohorts))
			if err != nil {
				return client.SessionConfig{}, err
			}
			m.Backward = &client.Chain{Rows: chain.Rows()}
		}
		cfg.Cohorts = append(cfg.Cohorts, client.Cohort{Users: n, Model: m})
	}
	return cfg, nil
}
