package core

import (
	"math"
	"testing"

	"repro/internal/lfp"
)

// FuzzPairLossOracle fuzzes Algorithm 1's pair kernel against the exact
// 2^n vertex-enumeration oracle. The seed corpus runs in ordinary
// `go test`; `go test -fuzz=FuzzPairLossOracle ./internal/core` explores
// further. Raw bytes are decoded into two stochastic rows and a prior
// leakage, so every input is a valid instance.
func FuzzPairLossOracle(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60}, uint16(100))
	f.Add([]byte{0, 0, 1, 255, 1, 0, 3, 9}, uint16(2000))
	f.Add([]byte{255, 255}, uint16(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint16(65535))
	f.Fuzz(func(t *testing.T, raw []byte, alphaRaw uint16) {
		if len(raw) < 4 || len(raw) > 2*lfp.BruteForceLimit {
			return
		}
		n := len(raw) / 2
		q := make([]float64, n)
		d := make([]float64, n)
		var sq, sd float64
		for i := 0; i < n; i++ {
			q[i] = float64(raw[i])
			d[i] = float64(raw[n+i])
			sq += q[i]
			sd += d[i]
		}
		if sq == 0 || sd == 0 {
			return
		}
		for i := 0; i < n; i++ {
			q[i] /= sq
			d[i] /= sd
		}
		alpha := float64(alphaRaw) / 1000 // up to 65.5
		got := PairLoss(q, d, alpha).Log
		want, err := (&lfp.Problem{Q: q, D: d, Alpha: alpha}).LogBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("PairLoss=%v oracle=%v (alpha=%v)\nq=%v\nd=%v", got, want, alpha, q, d)
		}
		// Invariants regardless of the oracle.
		if got < 0 || got > alpha+1e-9 || math.IsNaN(got) {
			t.Fatalf("PairLoss=%v violates [0, alpha]", got)
		}
	})
}

// FuzzTheorem5RoundTrip fuzzes the supremum closed form against its
// inverse.
func FuzzTheorem5RoundTrip(f *testing.F) {
	f.Add(uint8(200), uint8(30), uint16(500))
	f.Add(uint8(255), uint8(0), uint16(100))
	f.Add(uint8(1), uint8(1), uint16(9000))
	f.Fuzz(func(t *testing.T, qRaw, dRaw uint8, epsRaw uint16) {
		q := float64(qRaw) / 255
		d := float64(dRaw) / 255
		if d > q { // keep d <= q: the regime Theorem 5 addresses
			q, d = d, q
		}
		eps := float64(epsRaw)/1000 + 1e-4
		sup, ok := Theorem5(q, d, eps)
		if !ok {
			return
		}
		if sup < eps-1e-9 {
			t.Fatalf("supremum %v below eps %v (q=%v d=%v)", sup, eps, q, d)
		}
		back, err := BudgetForSupremum(q, d, sup)
		if err != nil {
			return
		}
		if math.Abs(back-eps) > 1e-5*(1+eps) {
			t.Fatalf("round trip: eps %v -> sup %v -> eps %v (q=%v d=%v)", eps, sup, back, q, d)
		}
	})
}
