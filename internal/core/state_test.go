package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
)

// stateTestChain builds a small correlated chain for accountant tests.
func stateTestChain(t testing.TB, rows [][]float64) *markov.Chain {
	t.Helper()
	c, err := markov.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func observedAccountant(t testing.TB, pb, pf *markov.Chain, budgets []float64) *Accountant {
	t.Helper()
	a := NewAccountant(pb, pf)
	for _, e := range budgets {
		if _, err := a.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestSnapshotRestoreDifferential proves the restore contract: a
// restored accountant answers every query bit-identically to the
// original, both at the snapshot point and after both continue with the
// same observations.
func TestSnapshotRestoreDifferential(t *testing.T) {
	pb := stateTestChain(t, [][]float64{{0.8, 0.2}, {0.3, 0.7}})
	pf := stateTestChain(t, [][]float64{{0.6, 0.4}, {0.1, 0.9}})
	cases := []struct {
		name   string
		pb, pf *markov.Chain
	}{
		{"both-directions", pb, pf},
		{"backward-only", pb, nil},
		{"forward-only", nil, pf},
		{"no-correlation", nil, nil},
	}
	rng := rand.New(rand.NewSource(7))
	budgets := make([]float64, 20)
	for i := range budgets {
		budgets[i] = 0.05 + rng.Float64()
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := observedAccountant(t, tc.pb, tc.pf, budgets[:12])
			// Force a partially stale FPL cache: query at 12, then observe more.
			if _, err := orig.TPL(5); err != nil {
				t.Fatal(err)
			}
			for _, e := range budgets[12:15] {
				if _, err := orig.Observe(e); err != nil {
					t.Fatal(err)
				}
			}
			st := orig.Snapshot()
			qb, qf := NewQuantifier(tc.pb), NewQuantifier(tc.pf)
			restored, err := RestoreAccountant(st, qb, qf)
			if err != nil {
				t.Fatal(err)
			}
			compare := func() {
				t.Helper()
				for tt := 1; tt <= orig.T(); tt++ {
					for name, f := range map[string]func(int) (float64, error){
						"BPL": orig.BPL, "FPL": orig.FPL, "TPL": orig.TPL,
					} {
						want, err := f(tt)
						if err != nil {
							t.Fatal(err)
						}
						var got float64
						switch name {
						case "BPL":
							got, err = restored.BPL(tt)
						case "FPL":
							got, err = restored.FPL(tt)
						case "TPL":
							got, err = restored.TPL(tt)
						}
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("%s(%d): restored %v != original %v", name, tt, got, want)
						}
					}
				}
				wantMax, err := orig.MaxTPL()
				if err != nil {
					t.Fatal(err)
				}
				gotMax, err := restored.MaxTPL()
				if err != nil {
					t.Fatal(err)
				}
				if gotMax != wantMax {
					t.Fatalf("MaxTPL: restored %v != original %v", gotMax, wantMax)
				}
				wantW, err := orig.WEvent(3)
				if err != nil {
					t.Fatal(err)
				}
				gotW, err := restored.WEvent(3)
				if err != nil {
					t.Fatal(err)
				}
				if gotW != wantW {
					t.Fatalf("WEvent(3): restored %v != original %v", gotW, wantW)
				}
			}
			compare()
			// Both continue: the incremental refresh must stay in lockstep.
			for _, e := range budgets[15:] {
				if _, err := orig.Observe(e); err != nil {
					t.Fatal(err)
				}
				if _, err := restored.Observe(e); err != nil {
					t.Fatal(err)
				}
			}
			compare()
		})
	}
}

// TestSnapshotIsDeepCopy ensures mutating a snapshot cannot corrupt the
// live accountant.
func TestSnapshotIsDeepCopy(t *testing.T) {
	a := observedAccountant(t, nil, nil, []float64{0.1, 0.2, 0.3})
	st := a.Snapshot()
	st.Eps[0] = 99
	st.BPL[0] = 99
	if got, _ := a.BPL(1); got != 0.1 {
		t.Fatalf("mutating the snapshot changed the accountant: BPL(1) = %v", got)
	}
}

// TestStateWireRoundTrip checks the binary encoding is bit-identical,
// including negative zero and subnormal values that text formats tend to
// mangle.
func TestStateWireRoundTrip(t *testing.T) {
	st := &AccountantState{
		BackwardHash: "abc123",
		ForwardHash:  "",
		Eps:          []float64{0.1, math.Nextafter(0.1, 1), 5e-324, 1e308},
		BPL:          []float64{0.1, 0.3, math.Copysign(0, -1), 7},
		FPL:          []float64{0.25, 0.5},
		FPLT:         2,
	}
	wire, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back AccountantState
	if err := back.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if back.BackwardHash != st.BackwardHash || back.ForwardHash != st.ForwardHash || back.FPLT != st.FPLT {
		t.Fatalf("scalar fields mangled: %+v", back)
	}
	for name, pair := range map[string][2][]float64{
		"eps": {st.Eps, back.Eps}, "bpl": {st.BPL, back.BPL}, "fpl": {st.FPL, back.FPL},
	} {
		want, got := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s: length %d != %d", name, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s[%d]: bits %x != %x", name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestWireRejectsCorruption: truncations, version bumps and trailing
// garbage all fail with the typed error and never panic.
func TestWireRejectsCorruption(t *testing.T) {
	st := observedAccountant(t, nil, nil, []float64{0.1, 0.2, 0.3}).Snapshot()
	wire, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var invalid *InvalidStateError
	for cut := 0; cut < len(wire); cut++ {
		var back AccountantState
		if err := back.UnmarshalBinary(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(wire))
		} else if !errors.As(err, &invalid) {
			t.Fatalf("truncation at %d: error not typed: %v", cut, err)
		}
	}
	var back AccountantState
	if err := back.UnmarshalBinary(append(append([]byte(nil), wire...), 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	bumped := append([]byte(nil), wire...)
	bumped[0] = 99
	if err := back.UnmarshalBinary(bumped); err == nil {
		t.Fatal("unknown version decoded successfully")
	}
}

// TestRestoreRejectsInvalidState is the satellite fix: structurally
// inconsistent state must never restore.
func TestRestoreRejectsInvalidState(t *testing.T) {
	good := observedAccountant(t, nil, nil, []float64{0.1, 0.2, 0.3}).Snapshot()
	mutations := map[string]func(st *AccountantState){
		"bpl-shorter-than-eps": func(st *AccountantState) { st.BPL = st.BPL[:2] },
		"bpl-longer-than-eps":  func(st *AccountantState) { st.BPL = append(st.BPL, 1) },
		"fplt-beyond-eps":      func(st *AccountantState) { st.FPLT = len(st.Eps) + 1; st.FPL = make([]float64, st.FPLT) },
		"fplt-negative":        func(st *AccountantState) { st.FPLT = -1 },
		"fpl-length-mismatch":  func(st *AccountantState) { st.FPL = []float64{1} },
		"eps-zero":             func(st *AccountantState) { st.Eps[1] = 0 },
		"eps-nan":              func(st *AccountantState) { st.Eps[1] = math.NaN() },
		"eps-negative":         func(st *AccountantState) { st.Eps[1] = -0.5 },
		"bpl-nan":              func(st *AccountantState) { st.BPL[1] = math.NaN() },
		"bpl-below-budget":     func(st *AccountantState) { st.BPL[1] = st.Eps[1] / 2 },
		"bpl-first-not-budget": func(st *AccountantState) { st.BPL[0] = st.Eps[0] + 1 },
		"fpl-cache-tail-broken": func(st *AccountantState) {
			st.FPLT = len(st.Eps)
			st.FPL = append([]float64(nil), st.BPL...)
			st.FPL[len(st.FPL)-1] = st.Eps[len(st.Eps)-1] + 1
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			st := &AccountantState{
				Eps:  append([]float64(nil), good.Eps...),
				BPL:  append([]float64(nil), good.BPL...),
				FPL:  append([]float64(nil), good.FPL...),
				FPLT: good.FPLT,
			}
			mutate(st)
			_, err := RestoreAccountant(st, nil, nil)
			if err == nil {
				t.Fatal("corrupt state restored successfully")
			}
			var invalid *InvalidStateError
			if !errors.As(err, &invalid) {
				t.Fatalf("error not a *InvalidStateError: %v", err)
			}
		})
	}
	if _, err := RestoreAccountant(nil, nil, nil); err == nil {
		t.Fatal("nil state restored successfully")
	}
}

// TestRestoreRejectsWrongModel: re-binding onto a different correlation
// model must fail by content hash.
func TestRestoreRejectsWrongModel(t *testing.T) {
	pb := stateTestChain(t, [][]float64{{0.8, 0.2}, {0.3, 0.7}})
	other := stateTestChain(t, [][]float64{{0.5, 0.5}, {0.5, 0.5}})
	st := observedAccountant(t, pb, nil, []float64{0.1, 0.2}).Snapshot()
	var invalid *InvalidStateError
	if _, err := RestoreAccountant(st, NewQuantifier(other), nil); !errors.As(err, &invalid) {
		t.Fatalf("wrong backward model: want *InvalidStateError, got %v", err)
	}
	if _, err := RestoreAccountant(st, nil, nil); !errors.As(err, &invalid) {
		t.Fatalf("dropped backward model: want *InvalidStateError, got %v", err)
	}
	if _, err := RestoreAccountant(st, NewQuantifier(pb), NewQuantifier(pb)); !errors.As(err, &invalid) {
		t.Fatalf("added forward model: want *InvalidStateError, got %v", err)
	}
	if _, err := RestoreAccountant(st, NewQuantifier(pb), nil); err != nil {
		t.Fatalf("correct model rejected: %v", err)
	}
}

// TestContentHash pins the re-binding key's semantics: equal content
// gives equal hashes, different content different ones, nil hashes to "".
func TestContentHash(t *testing.T) {
	rows := [][]float64{{0.8, 0.2}, {0.3, 0.7}}
	a := NewQuantifier(stateTestChain(t, rows))
	b := NewQuantifier(stateTestChain(t, rows))
	c := NewQuantifier(stateTestChain(t, [][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("content-equal chains hash differently")
	}
	if a.ContentHash() == c.ContentHash() {
		t.Fatal("different chains share a hash")
	}
	var nilQ *Quantifier
	if nilQ.ContentHash() != "" {
		t.Fatal("nil quantifier must hash to empty")
	}
	if len(a.ContentHash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a.ContentHash()))
	}
}
