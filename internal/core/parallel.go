package core

import (
	"runtime"
	"sync"
)

// LossParallel evaluates the loss function like Loss. Before the
// compiled engine existed this was a hand-picked alternative that
// fanned the pair scan over worker goroutines, and series/supremum
// callers chose between Loss and LossParallel by matrix size; both
// entry points now evaluate through the same compiled engine, whose
// one-time compilation parallelizes automatically above the
// compile-time size threshold (engine.go). The workers argument is
// retained for API compatibility and ignored.
//
// The pre-refactor fan-out survives as LossParallelNaive, the parallel
// counterpart of the LossNaive reference scan.
func (qt *Quantifier) LossParallel(alpha float64, workers int) LossResult {
	_ = workers
	return qt.Loss(alpha)
}

// LossParallelNaive evaluates the loss function like LossNaive but fans
// the ordered row pairs out over the given number of workers (0 means
// GOMAXPROCS). The result is deterministic and identical to LossNaive:
// ties between equal-loss pairs are broken toward the smallest
// (RowQ, RowD), which is also the order the sequential scan discovers
// them in.
//
// Like LossNaive this is a reference implementation, kept for
// differential tests and for the benchmarks that document what the
// compiled engine replaced (BenchmarkLossParallel,
// BenchmarkEngineNaiveLoss).
func (qt *Quantifier) LossParallelNaive(alpha float64, workers int) LossResult {
	res := LossResult{RowQ: -1, RowD: -1}
	if qt == nil || alpha == 0 {
		return res
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || qt.n < 4 {
		return qt.LossNaive(alpha)
	}

	results := make([]LossResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := LossResult{RowQ: -1, RowD: -1}
			scratch := make([]int, 0, qt.n) // per-worker buffer
			// Stripe rows across workers; each worker scans all d-rows
			// for its q-rows, so pair ownership is disjoint.
			for i := w; i < qt.n; i += workers {
				for j := 0; j < qt.n; j++ {
					if i == j {
						continue
					}
					pr := pairLoss(qt.rows[i], qt.rows[j], alpha, scratch)
					if better(pr.Log, i, j, &local) {
						local.Log = pr.Log
						local.QSum = pr.QSum
						local.DSum = pr.DSum
						local.RowQ = i
						local.RowD = j
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	for _, r := range results {
		if r.RowQ < 0 {
			continue
		}
		if better(r.Log, r.RowQ, r.RowD, &res) {
			res = r
		}
	}
	return res
}

// better reports whether a candidate (log, rowQ, rowD) improves on the
// current best, with deterministic lexicographic tie-breaking.
func better(log float64, rowQ, rowD int, cur *LossResult) bool {
	if log > cur.Log {
		return true
	}
	if log < cur.Log || log == 0 {
		return false
	}
	if cur.RowQ < 0 {
		return true
	}
	if rowQ != cur.RowQ {
		return rowQ < cur.RowQ
	}
	return rowD < cur.RowD
}
