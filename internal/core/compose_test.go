package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

func TestComposeTPLArithmetic(t *testing.T) {
	if got := ComposeTPL(0.5, 0.3, nil); got != 0.8 {
		t.Errorf("j=1 composition = %v, want 0.8", got)
	}
	if got := ComposeTPL(0.5, 0.3, []float64{0.1, 0.2}); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("j=3 composition = %v, want 1.1", got)
	}
}

func TestEventLevelTPL(t *testing.T) {
	if got := EventLevelTPL(0.5, 0.4, 0.1); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("event-level = %v, want 0.8", got)
	}
}

func TestUserLevelTPL(t *testing.T) {
	if got := UserLevelTPL([]float64{0.1, 0.2, 0.3}); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("user-level = %v, want 0.6", got)
	}
	if got := UserLevelTPL(nil); got != 0 {
		t.Errorf("empty user-level = %v", got)
	}
}

func TestCorollary1FullWindowEqualsBudgetSum(t *testing.T) {
	// Theorem 2 with t=1, j=T-1 must equal sum of budgets because
	// alphaB_1 = eps_1 and alphaF_T = eps_T (Corollary 1): temporal
	// correlations do not change user-level privacy.
	q := NewQuantifier(markov.ModerateExample())
	eps := []float64{0.1, 0.25, 0.05, 0.3}
	bpl, err := BPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	fpl, err := FPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	composed := ComposeTPL(bpl[0], fpl[len(fpl)-1], eps[1:len(eps)-1])
	if math.Abs(composed-UserLevelTPL(eps)) > 1e-12 {
		t.Errorf("full-window composition %v != budget sum %v", composed, UserLevelTPL(eps))
	}
}

func TestWEventTPL(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	eps := UniformBudgets(0.1, 6)
	bpl, _ := BPLSeries(q, eps)
	fpl, _ := FPLSeries(q, eps)

	// w = 1 equals the max event-level TPL.
	w1, err := WEventTPL(bpl, fpl, eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxEvent := 0.0
	for i := range eps {
		maxEvent = math.Max(maxEvent, EventLevelTPL(bpl[i], fpl[i], eps[i]))
	}
	if math.Abs(w1-maxEvent) > 1e-12 {
		t.Errorf("w=1: %v, want %v", w1, maxEvent)
	}

	// w = T equals user-level (Corollary 1).
	wT, err := WEventTPL(bpl, fpl, eps, len(eps))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wT-UserLevelTPL(eps)) > 1e-12 {
		t.Errorf("w=T: %v, want %v", wT, UserLevelTPL(eps))
	}

	// Monotone in w: wider windows leak at least as much.
	prev := 0.0
	for w := 1; w <= len(eps); w++ {
		v, err := WEventTPL(bpl, fpl, eps, w)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Errorf("w-event leakage decreased at w=%d: %v < %v", w, v, prev)
		}
		prev = v
	}
}

func TestWEventTPLWExceedsIndependentBound(t *testing.T) {
	// Under correlation, a w-window leaks at least w*eps (the
	// independent-data w-event guarantee is optimistic; Table II).
	q := NewQuantifier(markov.ModerateExample())
	eps := UniformBudgets(0.1, 8)
	bpl, _ := BPLSeries(q, eps)
	fpl, _ := FPLSeries(q, eps)
	for w := 1; w <= 8; w++ {
		v, err := WEventTPL(bpl, fpl, eps, w)
		if err != nil {
			t.Fatal(err)
		}
		if v < float64(w)*0.1-1e-12 {
			t.Errorf("w=%d: leakage %v below independent bound %v", w, v, float64(w)*0.1)
		}
	}
}

func TestWEventTPLErrors(t *testing.T) {
	eps := UniformBudgets(0.1, 3)
	if _, err := WEventTPL([]float64{1}, eps, eps, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := WEventTPL(eps, eps, eps, 0); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := WEventTPL(eps, eps, eps, 4); err == nil {
		t.Error("w>T should fail")
	}
}
