package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

func TestTheorem5DNonZeroFixedPoint(t *testing.T) {
	// For any (q, d) with d != 0 the returned value must satisfy the
	// fixed-point equation alpha = log((q(e^a-1)+1)/(d(e^a-1)+1)) + eps.
	cases := []struct{ q, d, eps float64 }{
		{0.8, 0.1, 0.23},
		{0.9, 0.5, 1},
		{0.3, 0.2, 0.05},
		{1, 0.1, 2},
	}
	for _, c := range cases {
		sup, ok := Theorem5(c.q, c.d, c.eps)
		if !ok {
			t.Fatalf("q=%v d=%v: no supremum", c.q, c.d)
		}
		e := math.Exp(sup) - 1
		lhs := sup
		rhs := math.Log((c.q*e+1)/(c.d*e+1)) + c.eps
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("q=%v d=%v eps=%v: fixed point violated: %v vs %v", c.q, c.d, c.eps, lhs, rhs)
		}
	}
}

func TestTheorem5DZeroBranch(t *testing.T) {
	// d = 0, q*e^eps < 1: closed form log((1-q)e^eps / (1-q e^eps)).
	q, eps := 0.8, 0.15
	sup, ok := Theorem5(q, 0, eps)
	if !ok {
		t.Fatal("supremum should exist (0.8*e^0.15 < 1)")
	}
	want := math.Log((1 - q) * math.Exp(eps) / (1 - q*math.Exp(eps)))
	if math.Abs(sup-want) > 1e-12 {
		t.Errorf("sup = %v, want %v", sup, want)
	}
}

func TestTheorem5NoSupremumCases(t *testing.T) {
	// d = 0, q != 1, eps > log(1/q): log(1/0.8) ~= 0.223 < 0.23.
	if _, ok := Theorem5(0.8, 0, 0.23); ok {
		t.Error("supremum should not exist for q=0.8, eps=0.23")
	}
	// d = 0, q = 1 (strongest correlation).
	if _, ok := Theorem5(1, 0, 0.1); ok {
		t.Error("supremum should not exist for q=1, d=0")
	}
}

func TestTheorem5ZeroPair(t *testing.T) {
	sup, ok := Theorem5(0, 0, 0.4)
	if !ok || sup != 0.4 {
		t.Errorf("zero pair sup = %v/%v, want (0.4, true)", sup, ok)
	}
}

func TestTheorem5EqualQD(t *testing.T) {
	// q = d: increment is zero, supremum is eps.
	sup, ok := Theorem5(0.5, 0.5, 0.3)
	if !ok || math.Abs(sup-0.3) > 1e-12 {
		t.Errorf("q=d sup = %v/%v, want (0.3, true)", sup, ok)
	}
}

func TestTheorem5Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero eps":     func() { Theorem5(0.5, 0.1, 0) },
		"negative eps": func() { Theorem5(0.5, 0.1, -1) },
		"q > 1":        func() { Theorem5(1.5, 0.1, 0.1) },
		"negative d":   func() { Theorem5(0.5, -0.1, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSupremumMatchesPaperFig4(t *testing.T) {
	// Fig. 4(c): P^B = (0.8 0.2; 0 1), eps = 0.15: plateau ~1.2.
	sup, ok := Supremum(NewQuantifier(markov.ModerateExample()), 0.15)
	if !ok {
		t.Fatal("Fig 4(c) supremum should exist")
	}
	want := math.Log((1 - 0.8) * math.Exp(0.15) / (1 - 0.8*math.Exp(0.15)))
	if math.Abs(sup-want) > 1e-6 {
		t.Errorf("sup = %v, want %v (paper plots ~1.2)", sup, want)
	}
	// Fig. 4(b): same matrix, eps = 0.23: unbounded.
	if _, ok := Supremum(NewQuantifier(markov.ModerateExample()), 0.23); ok {
		t.Error("Fig 4(b) supremum should not exist")
	}
	// Fig. 4(d): identity, eps = 0.23: unbounded (linear growth).
	id, _ := markov.IdentityChain(2)
	if _, ok := Supremum(NewQuantifier(id), 0.23); ok {
		t.Error("Fig 4(d) supremum should not exist")
	}
	// Fig. 4(a): (0.8 0.2; 0.1 0.9), eps = 0.23: plateau ~0.8.
	sup4a, ok := Supremum(NewQuantifier(markov.Fig4aExample()), 0.23)
	if !ok {
		t.Fatal("Fig 4(a) supremum should exist")
	}
	if sup4a < 0.7 || sup4a > 0.9 {
		t.Errorf("Fig 4(a) sup = %v, paper plots ~0.8", sup4a)
	}
}

func TestSupremumAgreesWithLongRecurrence(t *testing.T) {
	// "The results are in line with the ones from computing BPL step by
	// step at each time point using Algorithm 1" (Example 4).
	qb := NewQuantifier(markov.Fig4aExample())
	eps := 0.23
	sup, ok := Supremum(qb, eps)
	if !ok {
		t.Fatal("supremum should exist")
	}
	bpl, err := BPLSeries(qb, UniformBudgets(eps, 2000))
	if err != nil {
		t.Fatal(err)
	}
	last := bpl[len(bpl)-1]
	if last > sup+1e-9 {
		t.Errorf("recurrence exceeded supremum: %v > %v", last, sup)
	}
	if sup-last > 1e-6 {
		t.Errorf("recurrence did not approach supremum: %v vs %v", last, sup)
	}
}

func TestSupremumSeriesNeverExceeds(t *testing.T) {
	// The whole BPL series must stay below the supremum.
	for _, eps := range []float64{0.05, 0.15, 0.5, 1} {
		qb := NewQuantifier(markov.Fig4aExample())
		sup, ok := Supremum(qb, eps)
		if !ok {
			t.Fatalf("eps=%v: no supremum", eps)
		}
		bpl, err := BPLSeries(qb, UniformBudgets(eps, 300))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range bpl {
			if v > sup+1e-9 {
				t.Fatalf("eps=%v: BPL[%d] = %v exceeds sup %v", eps, i, v, sup)
			}
		}
	}
}

func TestSupremumNoCorrelation(t *testing.T) {
	sup, ok := Supremum(nil, 0.4)
	if !ok || sup != 0.4 {
		t.Errorf("nil quantifier sup = %v/%v", sup, ok)
	}
	uni, _ := markov.UniformChain(4)
	sup, ok = Supremum(NewQuantifier(uni), 0.4)
	if !ok || math.Abs(sup-0.4) > 1e-12 {
		t.Errorf("uniform chain sup = %v/%v, want 0.4", sup, ok)
	}
}

func TestSupremumPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Supremum(nil, -0.1)
}

func TestBudgetForSupremumInverse(t *testing.T) {
	// BudgetForSupremum must invert Theorem5: for random (q, d, eps),
	// eps == BudgetForSupremum(q, d, Theorem5(q, d, eps)).
	cases := []struct{ q, d, eps float64 }{
		{0.8, 0.1, 0.23},
		{0.8, 0, 0.15},
		{0.9, 0.3, 1.5},
		{0.5, 0.2, 0.01},
	}
	for _, c := range cases {
		sup, ok := Theorem5(c.q, c.d, c.eps)
		if !ok {
			t.Fatalf("no supremum for %+v", c)
		}
		eps, err := BudgetForSupremum(c.q, c.d, sup)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(eps-c.eps) > 1e-9 {
			t.Errorf("%+v: recovered eps = %v", c, eps)
		}
	}
}

func TestBudgetForSupremumStrongest(t *testing.T) {
	if _, err := BudgetForSupremum(1, 0, 1); err == nil {
		t.Error("strongest correlation should have no positive budget")
	}
}

func TestBudgetForSupremumValidation(t *testing.T) {
	if _, err := BudgetForSupremum(0.5, 0.1, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := BudgetForSupremum(0.5, 0.1, math.NaN()); err == nil {
		t.Error("NaN alpha should fail")
	}
	if _, err := BudgetForSupremum(-0.5, 0.1, 1); err == nil {
		t.Error("negative q should fail")
	}
}

func TestBudgetForSupremumMatchesLossFixedPoint(t *testing.T) {
	// Using the maximizing pair at the target alpha, eps =
	// alpha - L(alpha) and the supremum search at that eps returns alpha.
	qb := NewQuantifier(markov.Fig4aExample())
	alpha := 0.9
	res := qb.Loss(alpha)
	eps, err := BudgetForSupremum(res.QSum, res.DSum, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-(alpha-res.Log)) > 1e-9 {
		t.Errorf("eps = %v, want alpha - L(alpha) = %v", eps, alpha-res.Log)
	}
	sup, ok := Supremum(qb, eps)
	if !ok {
		t.Fatal("supremum should exist")
	}
	if math.Abs(sup-alpha) > 1e-6 {
		t.Errorf("round-trip supremum = %v, want %v", sup, alpha)
	}
}
