package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/markov"
)

// TestAccountantLongHorizonSoak exercises the online accountant over a
// long release (T = 3000, n = 20 chain): the incremental BPL update must
// stay O(Loss) per step, the lazy FPL refresh must stay O(T * Loss) per
// query, and the whole run must finish promptly. Guarded by -short.
func TestAccountantLongHorizonSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(9))
	c, err := markov.Smoothed(rng, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccountant(c, c)
	const T = 3000
	start := time.Now()
	for i := 0; i < T; i++ {
		if _, err := acc.Observe(0.05); err != nil {
			t.Fatal(err)
		}
	}
	observeTime := time.Since(start)

	start = time.Now()
	worst, err := acc.MaxTPL()
	if err != nil {
		t.Fatal(err)
	}
	queryTime := time.Since(start)

	if worst <= 0.05 {
		t.Errorf("MaxTPL = %v, should exceed eps", worst)
	}
	// The supremum bound must hold across the whole horizon.
	if sup, ok := Supremum(NewQuantifier(c), 0.05); ok {
		for tm := 1; tm <= T; tm += 97 {
			b, err := acc.BPL(tm)
			if err != nil {
				t.Fatal(err)
			}
			if b > sup+1e-6 {
				t.Fatalf("BPL(%d) = %v exceeds supremum %v", tm, b, sup)
			}
		}
	}
	// Generous wall-clock guards: the run takes well under a second on
	// any modern machine; these trip only on complexity regressions.
	if observeTime > 30*time.Second {
		t.Errorf("observing %d steps took %v", T, observeTime)
	}
	if queryTime > 30*time.Second {
		t.Errorf("MaxTPL query took %v", queryTime)
	}
	t.Logf("T=%d: observe %v total (%v/step), MaxTPL query %v",
		T, observeTime, observeTime/T, queryTime)
}
