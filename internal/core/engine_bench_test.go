package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// benchChain builds the benchmark chains: dense uniform-random up to
// n = 128, road-network-style sparse (8 successors per state) at
// n = 1024 — the regime the sparse-aware candidate extraction targets.
func benchChain(b *testing.B, n int) *markov.Chain {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	if n < 1024 {
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 8; k++ {
			m.Set(i, (i+1+rng.Intn(n-1))%n, rng.Float64()+0.05)
		}
		m.Set(i, i, rng.Float64()+0.05)
	}
	if err := m.NormalizeRows(); err != nil {
		b.Fatal(err)
	}
	c, err := markov.New(m)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

var engineBenchSizes = []int{16, 128, 1024}

// BenchmarkEngineLoss times one Loss(alpha) evaluation through the
// compiled engine (compilation excluded — it is a one-time cost, timed
// by BenchmarkEngineCompile). The acceptance bar of the compiled-engine
// refactor: at n = 128 this must be >= 10x faster per evaluation than
// BenchmarkEngineNaiveLoss, the pre-refactor pair scan.
func BenchmarkEngineLoss(b *testing.B) {
	for _, n := range engineBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			qt := NewQuantifier(benchChain(b, n))
			qt.Engine() // compile outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = qt.LossValue(10)
			}
		})
	}
}

// BenchmarkEngineCompile times the one-time compilation: sparse
// candidate extraction, per-pair ratio sort + prefix sums, Pareto
// dominance pruning and the envelope sweep.
func BenchmarkEngineCompile(b *testing.B) {
	for _, n := range engineBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := benchChain(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = NewQuantifier(c).Engine()
			}
		})
	}
}

// BenchmarkEngineNaiveLoss times the pre-refactor evaluation path the
// engine replaced: Algorithm 1's full ordered-pair scan per Loss call.
// Kept in-tree so the speedup claim stays measurable.
func BenchmarkEngineNaiveLoss(b *testing.B) {
	for _, n := range engineBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			qt := NewQuantifier(benchChain(b, n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = qt.LossNaive(10)
			}
		})
	}
}

// BenchmarkEngineAccountant times the end-to-end hot path the engine
// feeds: Observe + TPL read on an accountant over an n = 128 chain,
// incremental FPL refresh included.
func BenchmarkEngineAccountant(b *testing.B) {
	qt := NewQuantifier(benchChain(b, 128))
	acc := NewAccountantFromQuantifiers(qt, qt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			b.Fatal(err)
		}
		if _, err := acc.TPL(1 + i%acc.T()); err != nil {
			b.Fatal(err)
		}
	}
}
