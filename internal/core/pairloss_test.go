package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lfp"
)

func randomStochasticRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	s := 0.0
	for i := range row {
		row[i] = rng.Float64()
		s += row[i]
	}
	for i := range row {
		row[i] /= s
	}
	return row
}

func TestPairLossZeroAlpha(t *testing.T) {
	res := PairLoss([]float64{1, 0}, []float64{0, 1}, 0)
	if res.Log != 0 || res.Subset != nil {
		t.Errorf("alpha=0 should give zero loss, got %+v", res)
	}
}

func TestPairLossEqualRows(t *testing.T) {
	q := []float64{0.3, 0.7}
	res := PairLoss(q, q, 1.5)
	if res.Log != 0 {
		t.Errorf("equal rows loss = %v, want 0", res.Log)
	}
}

func TestPairLossStrongestCorrelation(t *testing.T) {
	// q=(1,0), d=(0,1): the increment equals alpha (upper bound of
	// Remark 1; leakage accumulates 1:1).
	for _, alpha := range []float64{0.1, 1, 5, 20} {
		res := PairLoss([]float64{1, 0}, []float64{0, 1}, alpha)
		if math.Abs(res.Log-alpha) > 1e-12 {
			t.Errorf("alpha=%v: loss = %v, want alpha", alpha, res.Log)
		}
		if res.QSum != 1 || res.DSum != 0 {
			t.Errorf("alpha=%v: pair sums q=%v d=%v", alpha, res.QSum, res.DSum)
		}
	}
}

func TestPairLossModerateExampleHandValue(t *testing.T) {
	// Rows of the paper's (0.8 0.2; 0 1): q=(0.8,0.2), d=(0,1) selects
	// {0}: log(0.8(e^a-1)+1).
	alpha := 0.1
	res := PairLoss([]float64{0.8, 0.2}, []float64{0, 1}, alpha)
	want := math.Log(0.8*(math.Exp(alpha)-1) + 1)
	if math.Abs(res.Log-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", res.Log, want)
	}
	if len(res.Subset) != 1 || res.Subset[0] != 0 {
		t.Errorf("subset = %v, want [0]", res.Subset)
	}
}

func TestPairLossMatchesBruteForceOracle(t *testing.T) {
	// The centerpiece correctness property: Algorithm 1's O(n^2) filter
	// must agree with exhaustive 2^n vertex enumeration (Lemma 3) on
	// random stochastic row pairs across a wide alpha range.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(9) // up to 10 states
		alpha := []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 20}[rng.Intn(9)]
		q := randomStochasticRow(rng, n)
		d := randomStochasticRow(rng, n)
		got := PairLoss(q, d, alpha).Log
		want, err := (&lfp.Problem{Q: q, D: d, Alpha: alpha}).LogBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("trial %d (n=%d alpha=%v): PairLoss=%v brute=%v\nq=%v\nd=%v",
				trial, n, alpha, got, want, q, d)
		}
	}
}

func TestPairLossMatchesBruteForceSparseRows(t *testing.T) {
	// Rows with many exact zeros exercise the d_j = 0 branch of the
	// filter predicate.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		q := randomStochasticRow(rng, n)
		d := randomStochasticRow(rng, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				q[i] = 0
			}
			if rng.Float64() < 0.4 {
				d[i] = 0
			}
		}
		// Renormalize, skipping degenerate all-zero draws.
		qs, ds := 0.0, 0.0
		for i := 0; i < n; i++ {
			qs += q[i]
			ds += d[i]
		}
		if qs == 0 || ds == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			q[i] /= qs
			d[i] /= ds
		}
		alpha := 0.01 + rng.Float64()*5
		got := PairLoss(q, d, alpha).Log
		want, err := (&lfp.Problem{Q: q, D: d, Alpha: alpha}).LogBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("trial %d: PairLoss=%v brute=%v (alpha=%v)\nq=%v\nd=%v", trial, got, want, alpha, q, d)
		}
	}
}

func TestPairLossMatchesSimplexLP(t *testing.T) {
	// Cross-check against the Charnes-Cooper + simplex route (the
	// "external solver" path the paper benchmarks against).
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		alpha := 0.05 + rng.Float64()*3
		q := randomStochasticRow(rng, n)
		d := randomStochasticRow(rng, n)
		got := PairLoss(q, d, alpha).Log
		ratio, err := (&lfp.Problem{Q: q, D: d, Alpha: alpha}).SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		want := math.Log(ratio)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("trial %d: PairLoss=%v simplex=%v", trial, got, want)
		}
	}
}

func TestPairLossRemark1Bounds(t *testing.T) {
	// 0 <= L(alpha) <= alpha for all stochastic row pairs (Remark 1).
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(10)
		alpha := rng.Float64() * 30
		q := randomStochasticRow(rng, n)
		d := randomStochasticRow(rng, n)
		got := PairLoss(q, d, alpha).Log
		if got < 0 {
			t.Fatalf("negative loss %v", got)
		}
		if got > alpha+1e-9 {
			t.Fatalf("loss %v exceeds alpha %v", got, alpha)
		}
	}
}

func TestPairLossMonotoneInAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	q := randomStochasticRow(rng, 6)
	d := randomStochasticRow(rng, 6)
	prev := -1.0
	for _, alpha := range []float64{0, 0.01, 0.1, 0.5, 1, 2, 5, 10, 50, 200} {
		got := PairLoss(q, d, alpha).Log
		if got < prev-1e-12 {
			t.Errorf("loss decreased at alpha=%v: %v < %v", alpha, got, prev)
		}
		prev = got
	}
}

func TestPairLossHugeAlphaNoOverflow(t *testing.T) {
	// The log-space formulation must survive alpha far beyond e^alpha
	// overflow territory.
	q := []float64{0.6, 0.4}
	d := []float64{0.1, 0.9}
	got := PairLoss(q, d, 2000).Log
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("loss = %v", got)
	}
	// As alpha -> inf with the subset {0}: ratio -> q0/d0 = 6, so the
	// loss saturates at log 6.
	if math.Abs(got-math.Log(6)) > 1e-9 {
		t.Errorf("saturated loss = %v, want log 6 = %v", got, math.Log(6))
	}
}

func TestPairLossHugeAlphaWithZeroD(t *testing.T) {
	// With d-support disjoint from some q mass the loss grows like
	// alpha + log(q) for large alpha.
	q := []float64{0.5, 0.5}
	d := []float64{0, 1}
	alpha := 1000.0
	got := PairLoss(q, d, alpha).Log
	want := alpha + math.Log(0.5)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("loss = %v, want ~%v", got, want)
	}
}

func TestPairLossPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { PairLoss([]float64{1}, []float64{0.5, 0.5}, 1) },
		"negative alpha":  func() { PairLoss([]float64{1}, []float64{1}, -1) },
		"NaN alpha":       func() { PairLoss([]float64{1}, []float64{1}, math.NaN()) },
		"negative coeff":  func() { PairLoss([]float64{-0.5, 1.5}, []float64{0.5, 0.5}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPairLossSubsetSatisfiesTheorem4(t *testing.T) {
	// Verify the returned subset satisfies Inequalities (21) and (22):
	// every kept index has q_j/d_j strictly above the achieved ratio and
	// every dropped index at most the ratio.
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		alpha := 0.05 + rng.Float64()*4
		q := randomStochasticRow(rng, n)
		d := randomStochasticRow(rng, n)
		res := PairLoss(q, d, alpha)
		if res.Log == 0 {
			continue
		}
		e := math.Exp(alpha) - 1
		ratio := (res.QSum*e + 1) / (res.DSum*e + 1)
		in := make(map[int]bool, len(res.Subset))
		for _, j := range res.Subset {
			in[j] = true
			if q[j] <= ratio*d[j]-1e-12 {
				t.Fatalf("trial %d: kept index %d violates Inequality (21)", trial, j)
			}
		}
		for j := 0; j < n; j++ {
			if in[j] {
				continue
			}
			if q[j] > ratio*d[j]+1e-9 {
				t.Fatalf("trial %d: dropped index %d violates Inequality (22): q=%v d=%v ratio=%v",
					trial, j, q[j], d[j], ratio)
			}
		}
	}
}

func TestLogAffineExp(t *testing.T) {
	cases := []struct {
		c, total, a, want float64
	}{
		{0, 1, 5, 0},
		{1, 1, 5, 5},
		{0.5, 1, 0, 0},
		{0.5, 1, 1, math.Log(0.5*(math.E-1) + 1)},
		{1.0000001, 1, 3, 3},                    // clamped to total
		{0.5, 2, 1, math.Log(0.5*math.E + 1.5)}, // unnormalized total
		{0, 2, 4, math.Log(2)},                  // zero mass, total 2
		{2, 2, 4, 4 + math.Log(2)},              // full mass at total 2
	}
	for _, cse := range cases {
		if got := logAffineExp(cse.c, cse.total, cse.a); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("logAffineExp(%v,%v,%v) = %v, want %v", cse.c, cse.total, cse.a, got, cse.want)
		}
	}
}
