package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// permuteChain relabels the states of a chain by the permutation perm:
// new state perm[i] plays the role of old state i.
func permuteChain(t *testing.T, c *markov.Chain, perm []int) *markov.Chain {
	t.Helper()
	n := c.N()
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(perm[i], perm[j], c.Prob(i, j))
		}
	}
	out, err := markov.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Metamorphic property: privacy leakage is invariant under relabeling
// of the value domain — the adversary's knowledge doesn't depend on
// which value is called "loc1".
func TestLossInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		pc := permuteChain(t, c, perm)
		for _, alpha := range []float64{0.1, 1, 5} {
			a := NewQuantifier(c).LossValue(alpha)
			b := NewQuantifier(pc).LossValue(alpha)
			if math.Abs(a-b) > 1e-12*(1+a) {
				t.Fatalf("trial %d alpha=%v: loss changed under relabeling: %v vs %v", trial, alpha, a, b)
			}
		}
	}
}

// Metamorphic property: the whole TPL series is invariant under
// relabeling, applied consistently to both chains.
func TestTPLSeriesInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		pb, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		eps := []float64{0.1, 0.3, 0.2, 0.15}
		orig, err := TPLSeries(NewQuantifier(pb), NewQuantifier(pf), eps)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := TPLSeries(NewQuantifier(permuteChain(t, pb, perm)),
			NewQuantifier(permuteChain(t, pf, perm)), eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if math.Abs(orig[i]-rel[i]) > 1e-12*(1+orig[i]) {
				t.Fatalf("trial %d: TPL[%d] changed: %v vs %v", trial, i, orig[i], rel[i])
			}
		}
	}
}

// Metamorphic property: adding a fresh unreachable-and-never-left state
// (self-loop) can only raise or preserve the leakage bound — it adds
// the identity pair (point mass vs point mass elsewhere) only if other
// rows put zero mass there, so in fact the loss with an appended
// uniform-visiting state never DECREASES the leakage of the original
// adversary. We assert the weaker, always-true direction: leakage on
// the extended chain is at least the original when the new state is a
// pure self-loop and other rows are untouched modulo renormalization
// by zero (i.e. padded with zero probability).
func TestLossMonotoneUnderStatePadding(t *testing.T) {
	rng := rand.New(rand.NewSource(507))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		// Pad with a self-loop state: old rows get zero in the new
		// column, new row is a point mass on itself.
		m := matrix.New(n+1, n+1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, c.Prob(i, j))
			}
		}
		m.Set(n, n, 1)
		padded, err := markov.New(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.2, 1, 4} {
			orig := NewQuantifier(c).LossValue(alpha)
			ext := NewQuantifier(padded).LossValue(alpha)
			if ext < orig-1e-12 {
				t.Fatalf("trial %d alpha=%v: padding reduced loss: %v -> %v", trial, alpha, orig, ext)
			}
		}
	}
}
