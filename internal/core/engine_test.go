package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// engineAlphas is the prior-leakage probe grid of the differential
// tests: tiny, moderate, large and huge values, including the Fig. 5(b)
// range and the divergent-BPL regime far beyond it.
var engineAlphas = []float64{1e-9, 1e-3, 0.05, 0.3, 1, 2.5, 7, 20, 80, 400}

// diffLoss asserts that the compiled engine and the naive pair scan
// agree on a chain across the alpha grid: the loss values to within
// 1e-12 relative, and the reported maximizing pair must reproduce its
// own loss through the independent PairLoss kernel.
func diffLoss(t *testing.T, c *markov.Chain, label string) {
	t.Helper()
	qt := NewQuantifier(c)
	for _, alpha := range engineAlphas {
		naive := qt.LossNaive(alpha)
		eng := qt.Loss(alpha)
		if math.Abs(eng.Log-naive.Log) > 1e-12*(1+naive.Log) {
			t.Fatalf("%s alpha=%g: engine loss %v, naive %v (diff %g)",
				label, alpha, eng.Log, naive.Log, eng.Log-naive.Log)
		}
		if (eng.RowQ < 0) != (naive.RowQ < 0) {
			t.Fatalf("%s alpha=%g: engine pair (%d,%d), naive (%d,%d)",
				label, alpha, eng.RowQ, eng.RowD, naive.RowQ, naive.RowD)
		}
		if eng.RowQ >= 0 {
			// The engine may report a different maximizing pair than the
			// scan when several pairs tie, but whatever pair it reports
			// must attain the maximum and carry that pair's true sums.
			pr := PairLoss(c.Row(eng.RowQ), c.Row(eng.RowD), alpha)
			if math.Abs(pr.Log-eng.Log) > 1e-12*(1+eng.Log) {
				t.Fatalf("%s alpha=%g: reported pair (%d,%d) recomputes to %v, engine says %v",
					label, alpha, eng.RowQ, eng.RowD, pr.Log, eng.Log)
			}
			if math.Abs(pr.QSum-eng.QSum) > 1e-9 || math.Abs(pr.DSum-eng.DSum) > 1e-9 {
				t.Fatalf("%s alpha=%g: pair sums (%v,%v) vs recomputed (%v,%v)",
					label, alpha, eng.QSum, eng.DSum, pr.QSum, pr.DSum)
			}
		}
	}
}

func TestEngineMatchesNaiveDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(24)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		diffLoss(t, c, "dense")
	}
}

// sparseChain builds a road-network-style chain: each state transitions
// to at most deg random successors, everything else exactly zero.
func sparseChain(t *testing.T, rng *rand.Rand, n, deg int) *markov.Chain {
	t.Helper()
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(deg)
		for _, j := range rng.Perm(n)[:k] {
			m.Set(i, j, rng.Float64()+0.05)
		}
	}
	if err := m.NormalizeRows(); err != nil {
		t.Fatal(err)
	}
	c, err := markov.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEngineMatchesNaiveSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(30)
		c := sparseChain(t, rng, n, 3)
		diffLoss(t, c, "sparse")
	}
}

func TestEngineMatchesNaiveStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	id, err := markov.IdentityChain(5)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := markov.UniformChain(5)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := markov.Strongest(rng, 7)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := markov.Lazy(6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-column chains: some states are never entered, so whole
	// columns of the transition matrix vanish.
	zeroCol, err := markov.FromRows([][]float64{
		{0.5, 0.5, 0},
		{0.3, 0.7, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pointMass, err := markov.FromRows([][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		label string
		chain *markov.Chain
	}{
		{"identity", id},
		{"uniform", uni},
		{"permutation", perm},
		{"lazy", lazy},
		{"zero-column", zeroCol},
		{"point-mass", pointMass},
		{"fig2", markov.Fig2Forward()},
		{"fig4a", markov.Fig4aExample()},
		{"fig7", markov.Fig7Backward()},
		{"moderate", markov.ModerateExample()},
	} {
		diffLoss(t, tc.chain, tc.label)
	}
}

// TestEngineDeterministicAcrossCompiles pins the property the cohort
// and session caches rely on: compiling the same chain content twice —
// even from distinct Chain values — yields bit-identical loss results.
func TestEngineDeterministicAcrossCompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(905))
	for trial := 0; trial < 10; trial++ {
		c, err := markov.UniformRandom(rng, 3+rng.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		clone, err := markov.New(c.P())
		if err != nil {
			t.Fatal(err)
		}
		a, b := NewQuantifier(c), NewQuantifier(clone)
		for _, alpha := range engineAlphas {
			ra, rb := a.Loss(alpha), b.Loss(alpha)
			if ra != rb {
				t.Fatalf("trial %d alpha=%g: %+v vs %+v from content-equal chains", trial, alpha, ra, rb)
			}
		}
	}
}

// TestEngineEnvelopeMonotone checks structural invariants of the
// compiled form: segment start points strictly increase from 0, and the
// evaluated loss is non-decreasing in alpha (Remark 1's monotonicity,
// which the binary-searched envelope must preserve across breakpoints).
func TestEngineEnvelopeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(906))
	for trial := 0; trial < 15; trial++ {
		c, err := markov.UniformRandom(rng, 2+rng.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		e := NewQuantifier(c).Engine()
		segs := e.segs
		if len(segs) == 0 {
			continue
		}
		if segs[0].alpha != 0 {
			t.Fatalf("first segment starts at %v, want 0", segs[0].alpha)
		}
		for i := 1; i < len(segs); i++ {
			if !(segs[i].alpha > segs[i-1].alpha) {
				t.Fatalf("segment starts not increasing: %v then %v", segs[i-1].alpha, segs[i].alpha)
			}
		}
		prev := 0.0
		for alpha := 0.01; alpha < 50; alpha *= 1.37 {
			v := e.EvalValue(alpha)
			if v < prev-1e-12 {
				t.Fatalf("loss not monotone: L(%v)=%v after %v", alpha, v, prev)
			}
			if v > alpha+1e-9 {
				t.Fatalf("loss %v exceeds alpha %v", v, alpha)
			}
			prev = v
		}
	}
}

func TestEngineStats(t *testing.T) {
	qt := NewQuantifier(markov.ModerateExample())
	st := qt.Engine().Stats()
	if st.N != 2 || st.Pairs == 0 || st.Curves == 0 || st.Segments == 0 {
		t.Fatalf("implausible stats %+v", st)
	}
	if st.Frontier > st.Curves || st.Segments > st.Frontier {
		t.Fatalf("pruning stats out of order: %+v", st)
	}
	var nilEng *Engine
	if nilEng.Stats() != (EngineStats{}) || nilEng.N() != 0 {
		t.Fatal("nil engine should report zero stats")
	}
	if r := nilEng.Eval(2); r.Log != 0 || r.RowQ != -1 {
		t.Fatalf("nil engine Eval = %+v", r)
	}
}

func TestEngineDominancePruning(t *testing.T) {
	// A strongly structured chain has many dominated pairs; the frontier
	// and envelope must be (much) smaller than the raw curve count.
	rng := rand.New(rand.NewSource(907))
	c, err := markov.Smoothed(rng, 30, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := NewQuantifier(c).Engine().Stats()
	if st.Frontier >= st.Curves {
		t.Fatalf("no dominance pruning happened: %+v", st)
	}
	if st.Segments > st.Frontier {
		t.Fatalf("envelope larger than frontier: %+v", st)
	}
}

// TestEngineSharedConcurrent races many goroutines over one lazily
// compiled quantifier — the sharing pattern of cohort-deduplicated
// accountants and the session registry (run under -race in CI).
func TestEngineSharedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(908))
	c, err := markov.UniformRandom(rng, 12)
	if err != nil {
		t.Fatal(err)
	}
	qt := NewQuantifier(c) // not compiled yet: first Loss calls race to compile
	want := NewQuantifier(c).Loss(1.5)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix direct evaluations with accountants sharing the same
			// quantifier, as cohorts do.
			acc := NewAccountantFromQuantifiers(qt, qt)
			for i := 0; i < 50; i++ {
				if got := qt.Loss(1.5); got != want {
					t.Errorf("goroutine %d: %+v != %+v", g, got, want)
					return
				}
				if _, err := acc.Observe(0.1); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := acc.MaxTPL(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestLossNaiveParallelMatchesSequential keeps the reference fan-out
// honest against the reference scan (the engine-backed Loss and
// LossParallel are compared in TestLossParallelMatchesSequential).
func TestLossNaiveParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 10; trial++ {
		c, err := markov.UniformRandom(rng, 2+rng.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		qt := NewQuantifier(c)
		alpha := 0.05 + rng.Float64()*5
		seq := qt.LossNaive(alpha)
		for _, workers := range []int{0, 2, 5} {
			if par := qt.LossParallelNaive(alpha, workers); par != seq {
				t.Fatalf("trial %d workers=%d: %+v != %+v", trial, workers, par, seq)
			}
		}
	}
}
