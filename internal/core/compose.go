package core

import "fmt"

// ComposeTPL evaluates Theorem 2, the sequential composition of a window
// of DP mechanisms {M_t, ..., M_{t+j}} under temporal correlations:
//
//	j = 1:  alphaB_t + alphaF_{t+1}
//	j >= 2: alphaB_t + alphaF_{t+j} + sum of the middle budgets
//	        eps_{t+1} .. eps_{t+j-1}
//
// alphaBFirst is the backward leakage of the first mechanism in the
// window, alphaFLast the forward leakage of the last, and middleEps the
// j-1 budgets strictly between them (empty for j = 1).
func ComposeTPL(alphaBFirst, alphaFLast float64, middleEps []float64) float64 {
	total := alphaBFirst + alphaFLast
	for _, e := range middleEps {
		total += e
	}
	return total
}

// EventLevelTPL is the j = 0 case: the leakage of a single mechanism in
// the sequence, TPL(t) = BPL(t) + FPL(t) - eps_t (Eq. (10)).
func EventLevelTPL(alphaB, alphaF, eps float64) float64 {
	return alphaB + alphaF - eps
}

// UserLevelTPL is Corollary 1: the temporal privacy leakage of the whole
// combined mechanism {M_1, ..., M_T} equals the plain sequential
// composition sum of the per-step budgets — temporal correlations do not
// change user-level privacy.
func UserLevelTPL(eps []float64) float64 {
	total := 0.0
	for _, e := range eps {
		total += e
	}
	return total
}

// WEventTPL evaluates the leakage of every length-w window of the
// sequence under Theorem 2 and returns the worst one. It needs the full
// BPL and FPL series plus the per-step budgets; all three must have
// equal length T, and 1 <= w <= T.
//
// This is the quantity that replaces the "w*eps" guarantee of w-event
// privacy (Kellaris et al.) once temporal correlations are present
// (Table II, middle row).
func WEventTPL(bpl, fpl, eps []float64, w int) (float64, error) {
	T := len(eps)
	if len(bpl) != T || len(fpl) != T {
		return 0, fmt.Errorf("core: series length mismatch: bpl=%d fpl=%d eps=%d", len(bpl), len(fpl), T)
	}
	if w < 1 || w > T {
		return 0, fmt.Errorf("core: window w=%d out of range [1,%d]", w, T)
	}
	worst := 0.0
	for start := 0; start+w <= T; start++ {
		var v float64
		if w == 1 {
			v = EventLevelTPL(bpl[start], fpl[start], eps[start])
		} else {
			v = ComposeTPL(bpl[start], fpl[start+w-1], eps[start+1:start+w-1])
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}
