package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/chunked"
)

// This file makes the accountant's state an explicit, serializable
// value. The leakage series an Accountant accumulates is the privacy
// guarantee itself: if it dies with the process, an operator can reset
// every user's budget by bouncing the server. Snapshot/RestoreAccountant
// turn the unexported incremental caches into a versioned schema that
// round-trips bit-identically, while the compiled loss engines — pure
// functions of chain content — are deliberately *not* serialized: a
// restore re-binds the state to quantifiers resolved by content hash
// (see stream.ModelCache), so a fleet restoring a thousand sessions
// still compiles each distinct transition matrix once.

// InvalidStateError reports an AccountantState that cannot have come
// from a well-formed accountant: corrupt or truncated state must never
// restore into a lenient accountant, so every structural invariant is
// checked before any field is adopted.
type InvalidStateError struct {
	Field  string // the offending field
	Reason string // what is wrong with it
}

func (e *InvalidStateError) Error() string {
	return fmt.Sprintf("core: invalid accountant state: %s: %s", e.Field, e.Reason)
}

// ContentHash returns a stable hex SHA-256 of the quantifier's
// transition-matrix content (row-major little-endian float64 bits), or
// "" for the nil (no-correlation) quantifier. Two quantifiers with equal
// hashes compile to identical engines, so the hash is the re-binding key
// that lets serialized accountant state re-attach to a compiled engine
// without serializing the engine itself.
func (qt *Quantifier) ContentHash() string {
	if qt == nil {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	for _, row := range qt.rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// contentHashed is implemented by quantifiers that can report a content
// identity; test stubs that do not implement it snapshot with an empty
// hash and restore only against an empty hash.
type contentHashed interface{ ContentHash() string }

// AccountantState is the explicit value of an Accountant: the budget and
// leakage series plus the content hashes of the correlation models they
// were computed against. It is a deep copy — mutating it never touches
// the accountant it came from — and round-trips bit-identically through
// MarshalBinary/UnmarshalBinary.
//
//tplvet:wire v2 schema=f21af116e89a
type AccountantState struct {
	// BackwardHash, ForwardHash identify the correlation models
	// (Quantifier.ContentHash); "" means no correlation in that
	// direction.
	BackwardHash string
	ForwardHash  string
	// Eps is the per-step budget sequence; BPL the backward leakage
	// series (always len(Eps)); FPL the cached forward series, valid for
	// the first FPLT observations (len(FPL) == FPLT <= len(Eps)).
	Eps  []float64
	BPL  []float64
	FPL  []float64
	FPLT int
}

// T returns the number of observations the state covers.
func (st *AccountantState) T() int { return len(st.Eps) }

// quantifierHash extracts the content hash from a lossQuantifier seam
// value, tolerating typed-nil *Quantifier and hash-less test stubs.
func quantifierHash(q lossQuantifier) string {
	if q == nil {
		return ""
	}
	if qt, ok := q.(*Quantifier); ok {
		return qt.ContentHash() // nil-receiver safe
	}
	if h, ok := q.(contentHashed); ok {
		return h.ContentHash()
	}
	return ""
}

// Snapshot captures the accountant's state as an explicit value. The
// forward-series cache is captured as-is (not refreshed first): the
// refresh is a deterministic function of the state, so a restored
// accountant lazily recomputes exactly what the original would have.
func (a *Accountant) Snapshot() *AccountantState {
	return &AccountantState{
		BackwardHash: quantifierHash(a.qb),
		ForwardHash:  quantifierHash(a.qf),
		Eps:          a.eps.CopyAll(),
		BPL:          a.bpl.CopyAll(),
		FPL:          append([]float64(nil), a.fpl...),
		FPLT:         a.fplT,
	}
}

// Validate checks every structural invariant a well-formed accountant
// maintains. It returns a *InvalidStateError describing the first
// violation, or nil. Restores always validate: a lenient restore would
// let truncated or bit-flipped state masquerade as a smaller leakage
// than was actually accumulated.
func (st *AccountantState) Validate() error {
	if len(st.BPL) != len(st.Eps) {
		return &InvalidStateError{Field: "bpl", Reason: fmt.Sprintf("length %d does not match %d budgets", len(st.BPL), len(st.Eps))}
	}
	if st.FPLT < 0 {
		return &InvalidStateError{Field: "fpl_t", Reason: fmt.Sprintf("negative cache horizon %d", st.FPLT)}
	}
	if st.FPLT > len(st.Eps) {
		return &InvalidStateError{Field: "fpl_t", Reason: fmt.Sprintf("cache horizon %d beyond %d observations", st.FPLT, len(st.Eps))}
	}
	if len(st.FPL) != st.FPLT {
		return &InvalidStateError{Field: "fpl", Reason: fmt.Sprintf("length %d does not match cache horizon %d", len(st.FPL), st.FPLT)}
	}
	for t, e := range st.Eps {
		if err := CheckBudget(e); err != nil {
			return &InvalidStateError{Field: "eps", Reason: fmt.Sprintf("step %d: %v", t+1, err)}
		}
	}
	for t, v := range st.BPL {
		// The loss increment is non-negative, so BPL(t) >= eps_t always;
		// BPL(1) has no prior leakage and equals eps_1 exactly.
		if math.IsNaN(v) || math.IsInf(v, 0) || v < st.Eps[t] {
			return &InvalidStateError{Field: "bpl", Reason: fmt.Sprintf("step %d: %v inconsistent with budget %v", t+1, v, st.Eps[t])}
		}
	}
	if len(st.BPL) > 0 && st.BPL[0] != st.Eps[0] {
		return &InvalidStateError{Field: "bpl", Reason: fmt.Sprintf("first step %v must equal first budget %v", st.BPL[0], st.Eps[0])}
	}
	for t, v := range st.FPL {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < st.Eps[t] {
			return &InvalidStateError{Field: "fpl", Reason: fmt.Sprintf("step %d: %v inconsistent with budget %v", t+1, v, st.Eps[t])}
		}
	}
	// A cache computed at horizon FPLT ends with FPL(FPLT) = eps_FPLT
	// (the newest observation leaks only its own budget forward).
	if st.FPLT > 0 && st.FPL[st.FPLT-1] != st.Eps[st.FPLT-1] {
		return &InvalidStateError{Field: "fpl", Reason: fmt.Sprintf("cache tail %v must equal budget %v at horizon %d", st.FPL[st.FPLT-1], st.Eps[st.FPLT-1], st.FPLT)}
	}
	return nil
}

// RestoreAccountant rebuilds an accountant from a snapshot, re-binding
// it to the given quantifiers (either may be nil for no correlation).
// The state is validated structurally and the quantifiers' content
// hashes must match the ones the state was captured against — restoring
// a leakage series onto a different correlation model would silently
// change what the series means. The restored accountant produces
// bit-identical results to the original for every query.
func RestoreAccountant(st *AccountantState, qb, qf *Quantifier) (*Accountant, error) {
	if st == nil {
		return nil, &InvalidStateError{Field: "state", Reason: "nil"}
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if h := qb.ContentHash(); h != st.BackwardHash {
		return nil, &InvalidStateError{Field: "backward_hash", Reason: fmt.Sprintf("state was captured against %q, restoring against %q", abbrevHash(st.BackwardHash), abbrevHash(h))}
	}
	if h := qf.ContentHash(); h != st.ForwardHash {
		return nil, &InvalidStateError{Field: "forward_hash", Reason: fmt.Sprintf("state was captured against %q, restoring against %q", abbrevHash(st.ForwardHash), abbrevHash(h))}
	}
	return &Accountant{
		qb:   qb,
		qf:   qf,
		eps:  chunked.FromSlice(st.Eps),
		bpl:  chunked.FromSlice(st.BPL),
		fpl:  append([]float64(nil), st.FPL...),
		fplT: st.FPLT,
	}, nil
}

// abbrevHash keeps error messages readable: content hashes are 64 hex
// chars, of which the first 12 identify the model beyond doubt in
// practice.
func abbrevHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "(none)"
	}
	return h
}

// Wire encoding. The format is deliberately dumb and stable: a version
// byte, length-prefixed hash strings, length-prefixed float64 slices as
// raw little-endian bits (bit-identical round-trip, including the
// distinction between 0.0 and -0.0), and the cache horizon. Callers
// wanting integrity protection wrap this in a checksummed envelope
// (internal/persist); this layer only guarantees exactness.

// accountantStateVersion is the wire version of AccountantState's
// binary encoding. Bump on any layout change; UnmarshalBinary rejects
// versions it does not know.
const accountantStateVersion = 1

// maxStateElems bounds slice lengths accepted by UnmarshalBinary so a
// corrupt length prefix cannot trigger a huge allocation before the
// truncation is noticed.
const maxStateElems = 1 << 32

// MarshalBinary encodes the state in the stable wire format.
func (st *AccountantState) MarshalBinary() ([]byte, error) {
	if len(st.BackwardHash) > 255 || len(st.ForwardHash) > 255 {
		return nil, &InvalidStateError{Field: "hash", Reason: "content hash longer than 255 bytes"}
	}
	n := 1 + 2 + len(st.BackwardHash) + len(st.ForwardHash) +
		8*3 + 8*(len(st.Eps)+len(st.BPL)+len(st.FPL)) + 8
	out := make([]byte, 0, n)
	out = append(out, accountantStateVersion)
	out = append(out, byte(len(st.BackwardHash)))
	out = append(out, st.BackwardHash...)
	out = append(out, byte(len(st.ForwardHash)))
	out = append(out, st.ForwardHash...)
	for _, s := range [][]float64{st.Eps, st.BPL, st.FPL} {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s)))
		for _, v := range s {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(st.FPLT))
	return out, nil
}

// UnmarshalBinary decodes the stable wire format, rejecting truncated
// input, trailing garbage and unknown versions with *InvalidStateError.
// It only decodes — call Validate (or RestoreAccountant, which does) to
// check the semantic invariants.
func (st *AccountantState) UnmarshalBinary(data []byte) error {
	bad := func(reason string) error {
		return &InvalidStateError{Field: "wire", Reason: reason}
	}
	if len(data) < 1 {
		return bad("empty input")
	}
	if data[0] != accountantStateVersion {
		return bad(fmt.Sprintf("unknown wire version %d (want %d)", data[0], accountantStateVersion))
	}
	data = data[1:]
	readStr := func() (string, error) {
		if len(data) < 1 {
			return "", bad("truncated hash length")
		}
		n := int(data[0])
		data = data[1:]
		if len(data) < n {
			return "", bad("truncated hash")
		}
		s := string(data[:n])
		data = data[n:]
		return s, nil
	}
	readFloats := func() ([]float64, error) {
		if len(data) < 8 {
			return nil, bad("truncated slice length")
		}
		n := binary.LittleEndian.Uint64(data)
		data = data[8:]
		if n > maxStateElems || int(n)*8 > len(data) {
			return nil, bad(fmt.Sprintf("slice length %d exceeds remaining input", n))
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		data = data[8*n:]
		return out, nil
	}
	var decoded AccountantState
	var err error
	if decoded.BackwardHash, err = readStr(); err != nil {
		return err
	}
	if decoded.ForwardHash, err = readStr(); err != nil {
		return err
	}
	if decoded.Eps, err = readFloats(); err != nil {
		return err
	}
	if decoded.BPL, err = readFloats(); err != nil {
		return err
	}
	if decoded.FPL, err = readFloats(); err != nil {
		return err
	}
	if len(data) < 8 {
		return bad("truncated cache horizon")
	}
	fplT := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if fplT > maxStateElems {
		return bad(fmt.Sprintf("cache horizon %d out of range", fplT))
	}
	decoded.FPLT = int(fplT)
	if len(data) != 0 {
		return bad(fmt.Sprintf("%d bytes of trailing garbage", len(data)))
	}
	*st = decoded
	return nil
}
