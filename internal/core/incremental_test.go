package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

// countingLoss is a call-counting loss stub: a saturating loss function
// (L(alpha) = min(alpha/2, 1)) whose fixed point the FPL recurrence
// reaches after a few steps, so the incremental refresh has a cached
// prefix to reuse. It stands in for a quantifier through the
// accountant's lossQuantifier seam.
type countingLoss struct {
	calls int
}

func (c *countingLoss) LossValue(alpha float64) float64 {
	c.calls++
	return math.Min(alpha/2, 1)
}

// TestAccountantFPLRefreshIncremental is the regression test for the
// O(T)-per-read refresh: after the first full computation, an Observe
// append must cost O(appends + saturation tail) loss evaluations on the
// next read, not a full O(T) series recompute.
func TestAccountantFPLRefreshIncremental(t *testing.T) {
	const T = 500
	stub := &countingLoss{}
	acc := &Accountant{qb: &countingLoss{}, qf: stub}
	for i := 0; i < T; i++ {
		if _, err := acc.Observe(2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acc.TPL(1); err != nil { // first read: full backward sweep
		t.Fatal(err)
	}
	full := stub.calls
	if full < T-2 {
		t.Fatalf("first refresh made %d loss calls, expected ~%d (sanity)", full, T-1)
	}

	// One append + read: the recurrence saturates (L caps at 1, so
	// fpl[t] = 3 for every t at least two steps from the tail) and the
	// refresh must stop as soon as it reproduces a cached value.
	stub.calls = 0
	if _, err := acc.Observe(2); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.TPL(1); err != nil {
		t.Fatal(err)
	}
	if stub.calls > 8 {
		t.Fatalf("refresh after one append made %d loss calls, want O(1), not O(T)=%d", stub.calls, T)
	}

	// A batch of appends costs O(batch), not O(T).
	stub.calls = 0
	for i := 0; i < 10; i++ {
		if _, err := acc.Observe(2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acc.MaxTPL(); err != nil {
		t.Fatal(err)
	}
	if stub.calls > 24 {
		t.Fatalf("refresh after 10 appends made %d loss calls, want O(10), not O(T)", stub.calls)
	}

	// Reads with no intervening append must not evaluate at all.
	stub.calls = 0
	for tm := 1; tm <= acc.T(); tm++ {
		if _, err := acc.FPL(tm); err != nil {
			t.Fatal(err)
		}
	}
	if stub.calls != 0 {
		t.Fatalf("clean reads made %d loss calls, want 0", stub.calls)
	}
}

// TestAccountantIncrementalMatchesBatch drives a real correlated
// accountant through interleaved appends and reads and checks every
// intermediate FPL value against a from-scratch batch recompute — the
// incremental refresh is an optimization, not an approximation.
func TestAccountantIncrementalMatchesBatch(t *testing.T) {
	pf := markov.Fig7Forward()
	acc := NewAccountant(markov.Fig7Backward(), pf)
	qf := NewQuantifier(pf)
	var eps []float64
	budget := []float64{0.1, 0.3, 0.05, 0.2, 0.15}
	for i := 0; i < 40; i++ {
		e := budget[i%len(budget)]
		eps = append(eps, e)
		if _, err := acc.Observe(e); err != nil {
			t.Fatal(err)
		}
		if i%3 != 0 { // interleave reads to exercise partial caches
			continue
		}
		want, err := FPLSeries(qf, eps)
		if err != nil {
			t.Fatal(err)
		}
		for tm := 1; tm <= len(eps); tm++ {
			got, err := acc.FPL(tm)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[tm-1] {
				t.Fatalf("T=%d: FPL(%d) = %v, batch %v", len(eps), tm, got, want[tm-1])
			}
		}
	}
}

// TestAccountantLongHorizonSaturates demonstrates why the incremental
// refresh pays: under a bounded-supremum correlation the FPL series
// saturates, so per-append refresh cost is flat in T.
func TestAccountantLongHorizonSaturates(t *testing.T) {
	stub := &countingLoss{}
	acc := &Accountant{qb: &countingLoss{}, qf: stub}
	const T = 2000
	worstDelta := 0
	for i := 0; i < T; i++ {
		if _, err := acc.Observe(2); err != nil {
			t.Fatal(err)
		}
		stub.calls = 0
		if _, err := acc.FPL(1); err != nil {
			t.Fatal(err)
		}
		if i >= 10 { // skip the initial sweeps while the cache warms up
			if stub.calls > worstDelta {
				worstDelta = stub.calls
			}
		}
	}
	if worstDelta > 8 {
		t.Fatalf("worst per-append refresh cost %d loss calls, want flat in T", worstDelta)
	}
}
