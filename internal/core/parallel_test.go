package core

import (
	"math/rand"
	"testing"

	"repro/internal/markov"
)

func TestLossParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		qt := NewQuantifier(c)
		alpha := 0.05 + rng.Float64()*5
		seq := qt.Loss(alpha)
		for _, workers := range []int{0, 1, 2, 3, 8} {
			par := qt.LossParallel(alpha, workers)
			if par.Log != seq.Log || par.RowQ != seq.RowQ || par.RowD != seq.RowD ||
				par.QSum != seq.QSum || par.DSum != seq.DSum {
				t.Fatalf("trial %d workers=%d: parallel %+v != sequential %+v",
					trial, workers, par, seq)
			}
		}
	}
}

func TestLossParallelNilAndZero(t *testing.T) {
	var qt *Quantifier
	if r := qt.LossParallel(1, 4); r.Log != 0 || r.RowQ != -1 {
		t.Errorf("nil quantifier: %+v", r)
	}
	q := NewQuantifier(markov.ModerateExample())
	if r := q.LossParallel(0, 4); r.Log != 0 {
		t.Errorf("alpha=0: %+v", r)
	}
}

func TestLossParallelDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	c, err := markov.UniformRandom(rng, 25)
	if err != nil {
		t.Fatal(err)
	}
	qt := NewQuantifier(c)
	first := qt.LossParallel(2, 4)
	for i := 0; i < 10; i++ {
		again := qt.LossParallel(2, 4)
		if again != first {
			t.Fatalf("run %d: nondeterministic result %+v vs %+v", i, again, first)
		}
	}
}

func TestBetterTieBreak(t *testing.T) {
	cur := LossResult{Log: 1, RowQ: 3, RowD: 5}
	if !better(1, 2, 9, &cur) {
		t.Error("smaller RowQ should win ties")
	}
	if better(1, 3, 6, &cur) {
		t.Error("larger RowD should lose ties")
	}
	if !better(1, 3, 4, &cur) {
		t.Error("smaller RowD should win ties at equal RowQ")
	}
	if better(0.5, 0, 0, &cur) {
		t.Error("smaller loss should lose")
	}
	if !better(2, 9, 9, &cur) {
		t.Error("larger loss should win")
	}
	empty := LossResult{RowQ: -1, RowD: -1}
	if !better(0.5, 7, 8, &empty) {
		t.Error("any positive loss should beat the empty result")
	}
	if better(0, 0, 1, &empty) {
		t.Error("zero loss should not install a pair")
	}
}
