package core

import (
	"testing"

	"repro/internal/markov"
)

// TestMixingTimeTracksLeakage ties the structural and privacy views of
// temporal correlation together: chains that mix more slowly (carry
// information across more steps) must accumulate strictly more backward
// privacy leakage and saturate at a higher supremum.
func TestMixingTimeTracksLeakage(t *testing.T) {
	const eps = 0.2
	type point struct {
		stay   float64
		mixing int
		sup    float64
	}
	var pts []point
	for _, stay := range []float64{0.4, 0.6, 0.8, 0.9} {
		c, err := markov.Lazy(3, stay)
		if err != nil {
			t.Fatal(err)
		}
		mix, ok := c.MixingTime(1e-3, 100000)
		if !ok {
			t.Fatalf("stay=%v: chain should mix", stay)
		}
		sup, ok := Supremum(NewQuantifier(c), eps)
		if !ok {
			t.Fatalf("stay=%v: supremum should exist", stay)
		}
		pts = append(pts, point{stay, mix, sup})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].mixing < pts[i-1].mixing {
			t.Errorf("mixing time should grow with stickiness: %+v -> %+v", pts[i-1], pts[i])
		}
		if pts[i].sup <= pts[i-1].sup {
			t.Errorf("leakage supremum should grow with stickiness: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	// The fastest-mixing chain stays close to the uncorrelated floor.
	if pts[0].sup > 3*eps {
		t.Errorf("fast-mixing chain supremum %v implausibly high", pts[0].sup)
	}
}
