package core

import (
	"math"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// LossResult is the outcome of evaluating the temporal privacy loss
// function L^B or L^F (Eq. (23) or (24)) on a whole transition matrix:
// the maximum PairLoss over all ordered row pairs, together with the
// maximizing pair.
type LossResult struct {
	// Log is the loss increment L(alpha): max over ordered row pairs of
	// the pair log-ratio. Always >= 0.
	Log float64
	// QSum, DSum identify the maximizing pair for Theorem 5 (the q and d
	// scalars of the paper).
	QSum, DSum float64
	// RowQ, RowD are the indices of the maximizing rows (q is row RowQ,
	// d is row RowD). Both are -1 when every pair yields zero loss.
	RowQ, RowD int
}

// Quantifier computes temporal privacy loss functions for a fixed
// transition matrix. It pre-extracts the rows once so repeated
// evaluations (the per-time-step recurrences, supremum searches and
// release planners) avoid re-cloning the matrix.
//
// A nil *Quantifier is valid and represents "no correlation known to the
// adversary" (the paper's empty matrix ∅): its loss function is
// identically zero, so BPL/FPL reduce to the per-step leakage PL0.
type Quantifier struct {
	rows []matrix.Vector
	n    int
}

// NewQuantifier builds a Quantifier from a Markov chain describing the
// adversary's backward or forward temporal correlation. A nil chain
// yields a nil Quantifier, meaning no correlation.
func NewQuantifier(c *markov.Chain) *Quantifier {
	if c == nil {
		return nil
	}
	p := c.P()
	rows := make([]matrix.Vector, p.Rows())
	for i := range rows {
		rows[i] = p.Row(i)
	}
	return &Quantifier{rows: rows, n: p.Rows()}
}

// N returns the state-space size, or 0 for the nil (no-correlation)
// quantifier.
func (qt *Quantifier) N() int {
	if qt == nil {
		return 0
	}
	return qt.n
}

// Loss evaluates the loss function at prior leakage alpha: Algorithm 1's
// outer loop over every ordered pair of distinct rows. For the nil
// quantifier it returns a zero LossResult.
func (qt *Quantifier) Loss(alpha float64) LossResult {
	res := LossResult{RowQ: -1, RowD: -1}
	if qt == nil || alpha == 0 {
		return res
	}
	scratch := make([]int, 0, qt.n) // one buffer for the whole scan
	for i := 0; i < qt.n; i++ {
		for j := 0; j < qt.n; j++ {
			if i == j {
				continue
			}
			pr := pairLoss(qt.rows[i], qt.rows[j], alpha, scratch)
			if pr.Log > res.Log {
				res.Log = pr.Log
				res.QSum = pr.QSum
				res.DSum = pr.DSum
				res.RowQ = i
				res.RowD = j
			}
		}
	}
	return res
}

// LossValue is Loss but returns only the increment, for call sites that
// do not need the maximizing pair.
func (qt *Quantifier) LossValue(alpha float64) float64 { return qt.Loss(alpha).Log }

// IsIdentityLike reports whether the loss function is the identity map
// (L(alpha) = alpha for alpha > 0), which happens exactly under the
// strongest correlation (some pair with q = 1, d = 0). Under such
// correlation leakage accumulates linearly without bound and no
// supremum exists (Theorem 5, fourth case).
func (qt *Quantifier) IsIdentityLike() bool {
	if qt == nil {
		return false
	}
	const probe = 1.0
	res := qt.Loss(probe)
	return math.Abs(res.Log-probe) < 1e-12
}
