package core

import (
	"math"
	"sync"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// LossResult is the outcome of evaluating the temporal privacy loss
// function L^B or L^F (Eq. (23) or (24)) on a whole transition matrix:
// the maximum PairLoss over all ordered row pairs, together with the
// maximizing pair.
type LossResult struct {
	// Log is the loss increment L(alpha): max over ordered row pairs of
	// the pair log-ratio. Always >= 0.
	Log float64
	// QSum, DSum identify the maximizing pair for Theorem 5 (the q and d
	// scalars of the paper).
	QSum, DSum float64
	// RowQ, RowD are the indices of the maximizing rows (q is row RowQ,
	// d is row RowD). Both are -1 when every pair yields zero loss.
	RowQ, RowD int
}

// Quantifier computes temporal privacy loss functions for a fixed
// transition matrix. On first evaluation it compiles the matrix into an
// Engine (see engine.go): the pair structure — candidate sets, ratio
// orders, dominance-pruned prefix curves, the upper envelope over all
// pairs — is precomputed once, and every Loss(alpha) afterwards is a
// binary search plus one closed-form lookup. The recurrences (series
// over T, supremum probes, accountants) evaluate the same matrix
// thousands of times with only alpha changing, which is exactly the
// access pattern the compilation amortizes against.
//
// A Quantifier is safe for concurrent use once constructed: compilation
// is guarded by a sync.Once and the engine is immutable, so one
// quantifier can back any number of accountants, cohorts and sessions.
//
// A nil *Quantifier is valid and represents "no correlation known to the
// adversary" (the paper's empty matrix ∅): its loss function is
// identically zero, so BPL/FPL reduce to the per-step leakage PL0.
type Quantifier struct {
	rows []matrix.Vector
	n    int

	compileOnce sync.Once
	eng         *Engine

	// onCompile, when set, runs inside the compile Once right after
	// compileRows — the persistence hook the on-disk engine cache uses
	// to capture freshly compiled engines. It must be set before the
	// quantifier is shared (SetOnCompile documents the contract); it is
	// never called for adopted engines.
	onCompile func(*Engine)
}

// NewQuantifier builds a Quantifier from a Markov chain describing the
// adversary's backward or forward temporal correlation. A nil chain
// yields a nil Quantifier, meaning no correlation. Compilation is lazy:
// it runs on the first Loss evaluation, not here, so building
// quantifiers stays cheap for callers that never evaluate.
func NewQuantifier(c *markov.Chain) *Quantifier {
	if c == nil {
		return nil
	}
	p := c.P()
	rows := make([]matrix.Vector, p.Rows())
	for i := range rows {
		rows[i] = p.Row(i)
	}
	return &Quantifier{rows: rows, n: p.Rows()}
}

// N returns the state-space size, or 0 for the nil (no-correlation)
// quantifier.
func (qt *Quantifier) N() int {
	if qt == nil {
		return 0
	}
	return qt.n
}

// Engine returns the compiled loss function, compiling it on first use.
// It returns nil for the nil quantifier. Compilation parallelizes
// across cores above the compile-time size threshold (see engine.go);
// callers never choose sequential vs parallel by hand.
func (qt *Quantifier) Engine() *Engine {
	if qt == nil {
		return nil
	}
	qt.compileOnce.Do(func() {
		qt.eng = compileRows(qt.rows)
		if qt.onCompile != nil {
			qt.onCompile(qt.eng)
		}
	})
	return qt.eng
}

// AdoptEngine pre-seeds the quantifier with an already compiled engine
// (deserialized from the on-disk cache), consuming the compile Once so
// no compilation ever runs. It reports whether the engine was adopted:
// a nil quantifier, a nil engine, a state-space mismatch, or a
// quantifier that already compiled all refuse. Compilation is a
// deterministic function of chain content, so adopting an engine that
// was compiled (by any process) from the same content is
// indistinguishable from compiling here.
func (qt *Quantifier) AdoptEngine(e *Engine) bool {
	if qt == nil || e == nil || e.n != qt.n {
		return false
	}
	adopted := false
	qt.compileOnce.Do(func() {
		qt.eng = e
		adopted = true
	})
	return adopted
}

// SetOnCompile registers f to run with the freshly compiled engine if
// and when this quantifier compiles one itself (adopted engines do not
// fire it — they were already persisted). It must be called before the
// quantifier escapes to other goroutines: the field write is
// unsynchronized by design, ordered only by whatever publishes the
// quantifier (the model cache sets it under its own lock, before the
// quantifier is returned to any caller).
func (qt *Quantifier) SetOnCompile(f func(*Engine)) {
	if qt == nil {
		return
	}
	qt.onCompile = f
}

// Loss evaluates the loss function at prior leakage alpha through the
// compiled engine: a binary search over the precomputed envelope
// instead of Algorithm 1's scan over every ordered pair of distinct
// rows. For the nil quantifier it returns a zero LossResult. The result
// agrees with LossNaive (the direct Algorithm 1 scan, kept as the
// reference implementation) to within floating-point rounding for
// unit-sum rows — see the numerical contract in engine.go; the
// differential tests in engine_test.go pin this down.
func (qt *Quantifier) Loss(alpha float64) LossResult {
	if qt == nil || alpha == 0 {
		return LossResult{RowQ: -1, RowD: -1}
	}
	return qt.Engine().Eval(alpha)
}

// LossNaive evaluates the loss function with the pre-compilation pair
// scan: Algorithm 1's outer loop over every ordered pair of distinct
// rows, each pair re-deriving its optimal subset by iterative pruning.
// It is retained as the differential-testing oracle for the compiled
// engine and as the honest "Algorithm 1" timing route of the Fig. 5
// runtime comparison; production paths use Loss.
func (qt *Quantifier) LossNaive(alpha float64) LossResult {
	res := LossResult{RowQ: -1, RowD: -1}
	if qt == nil || alpha == 0 {
		return res
	}
	scratch := make([]int, 0, qt.n) // one buffer for the whole scan
	for i := 0; i < qt.n; i++ {
		for j := 0; j < qt.n; j++ {
			if i == j {
				continue
			}
			pr := pairLoss(qt.rows[i], qt.rows[j], alpha, scratch)
			if pr.Log > res.Log {
				res.Log = pr.Log
				res.QSum = pr.QSum
				res.DSum = pr.DSum
				res.RowQ = i
				res.RowD = j
			}
		}
	}
	return res
}

// LossValue is Loss but returns only the increment, for call sites that
// do not need the maximizing pair.
func (qt *Quantifier) LossValue(alpha float64) float64 { return qt.Loss(alpha).Log }

// IsIdentityLike reports whether the loss function is the identity map
// (L(alpha) = alpha for alpha > 0), which happens exactly under the
// strongest correlation (some pair with q = 1, d = 0). Under such
// correlation leakage accumulates linearly without bound and no
// supremum exists (Theorem 5, fourth case).
func (qt *Quantifier) IsIdentityLike() bool {
	if qt == nil {
		return false
	}
	const probe = 1.0
	res := qt.Loss(probe)
	return math.Abs(res.Log-probe) < 1e-12
}
