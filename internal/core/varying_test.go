package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

func TestVaryingReducesToHomogeneous(t *testing.T) {
	// With the same quantifier at every transition, the inhomogeneous
	// series must equal the homogeneous ones.
	q := NewQuantifier(markov.ModerateExample())
	eps := []float64{0.1, 0.2, 0.15, 0.3}
	qs := []*Quantifier{q, q, q}
	bplV, err := BPLSeriesVarying(qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	bpl, err := BPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bpl {
		if math.Abs(bpl[i]-bplV[i]) > 1e-15 {
			t.Errorf("BPL[%d]: %v vs %v", i, bplV[i], bpl[i])
		}
	}
	fplV, err := FPLSeriesVarying(qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	fpl, err := FPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fpl {
		if math.Abs(fpl[i]-fplV[i]) > 1e-15 {
			t.Errorf("FPL[%d]: %v vs %v", i, fplV[i], fpl[i])
		}
	}
	tplV, err := TPLSeriesVarying(qs, qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	tplH, err := TPLSeries(q, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tplH {
		if math.Abs(tplH[i]-tplV[i]) > 1e-15 {
			t.Errorf("TPL[%d]: %v vs %v", i, tplV[i], tplH[i])
		}
	}
}

func TestVaryingMixedCorrelations(t *testing.T) {
	// A correlated transition followed by an uncorrelated one: the
	// uncorrelated transition resets BPL accumulation to eps.
	id, err := markov.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	strong := NewQuantifier(id)
	eps := []float64{0.1, 0.1, 0.1}
	bpl, err := BPLSeriesVarying([]*Quantifier{strong, nil}, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bpl[1]-0.2) > 1e-15 {
		t.Errorf("BPL[2] = %v, want 0.2 (accumulated)", bpl[1])
	}
	if math.Abs(bpl[2]-0.1) > 1e-15 {
		t.Errorf("BPL[3] = %v, want 0.1 (reset by the uncorrelated transition)", bpl[2])
	}
}

func TestVaryingStrengtheningCorrelationMidStream(t *testing.T) {
	// Day/night pattern: weak correlation by day, strong by night. The
	// leakage during the strong segment must exceed the weak segment's.
	weak := NewQuantifier(markov.Fig7Backward()) // moderate
	id, err := markov.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	strong := NewQuantifier(id)
	eps := UniformBudgets(0.1, 6)
	qs := []*Quantifier{weak, weak, strong, strong, strong}
	bpl, err := BPLSeriesVarying(qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	// During the strong segment BPL grows by exactly eps per step.
	for _, i := range []int{3, 4, 5} {
		if math.Abs((bpl[i]-bpl[i-1])-0.1) > 1e-12 {
			t.Errorf("strong segment step %d: increment %v, want 0.1", i, bpl[i]-bpl[i-1])
		}
	}
	// During the weak segment the increment is below eps + full carryover.
	if bpl[1] >= bpl[0]+0.1 {
		t.Errorf("weak segment should not accumulate fully: %v -> %v", bpl[0], bpl[1])
	}
}

func TestVaryingValidation(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	if _, err := BPLSeriesVarying([]*Quantifier{q}, []float64{0.1, 0.1, 0.1}); err == nil {
		t.Error("wrong quantifier count should fail")
	}
	if _, err := FPLSeriesVarying(nil, []float64{0.1, 0.1}); err == nil {
		t.Error("wrong quantifier count should fail")
	}
	if _, err := BPLSeriesVarying(nil, nil); err == nil {
		t.Error("empty budgets should fail")
	}
	if _, err := TPLSeriesVarying([]*Quantifier{q}, []*Quantifier{}, []float64{0.1, 0.1}); err == nil {
		t.Error("mismatched forward quantifiers should fail")
	}
	// Single step needs no quantifiers.
	out, err := TPLSeriesVarying(nil, nil, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.4 {
		t.Errorf("single step TPL = %v", out[0])
	}
}
