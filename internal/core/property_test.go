package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/markov"
)

// stochasticPair is a quick.Generator producing a random pair of
// stochastic rows plus a prior leakage, the input space of PairLoss.
type stochasticPair struct {
	Q, D  []float64
	Alpha float64
}

// Generate implements quick.Generator.
func (stochasticPair) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(8)
	p := stochasticPair{
		Q:     genRow(rng, n),
		D:     genRow(rng, n),
		Alpha: math.Abs(rng.NormFloat64()) * 3,
	}
	return reflect.ValueOf(p)
}

func genRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	s := 0.0
	for i := range row {
		row[i] = rng.Float64()
		if rng.Float64() < 0.25 {
			row[i] = 0 // exercise sparse supports
		}
		s += row[i]
	}
	if s == 0 {
		row[0] = 1
		s = 1
	}
	for i := range row {
		row[i] /= s
	}
	return row
}

var quickCfg = &quick.Config{MaxCount: 300}

// Property (Remark 1): 0 <= L(alpha) <= alpha.
func TestQuickPairLossRange(t *testing.T) {
	f := func(p stochasticPair) bool {
		l := PairLoss(p.Q, p.D, p.Alpha).Log
		return l >= 0 && l <= p.Alpha+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: PairLoss is monotone non-decreasing in alpha.
func TestQuickPairLossMonotone(t *testing.T) {
	f := func(p stochasticPair, bump uint8) bool {
		hi := p.Alpha + float64(bump)/16
		lo := PairLoss(p.Q, p.D, p.Alpha).Log
		hiL := PairLoss(p.Q, p.D, hi).Log
		return hiL >= lo-1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: swapping q and d cannot make both directions positive by
// more than alpha each, and the max of the two directions is positive
// whenever the rows differ on their support.
func TestQuickPairLossSwap(t *testing.T) {
	f := func(p stochasticPair) bool {
		if p.Alpha == 0 {
			return true
		}
		fwd := PairLoss(p.Q, p.D, p.Alpha).Log
		rev := PairLoss(p.D, p.Q, p.Alpha).Log
		return fwd <= p.Alpha+1e-9 && rev <= p.Alpha+1e-9 && fwd >= 0 && rev >= 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: scaling both rows by the same positive constant leaves the
// loss unchanged (the LFP objective is a ratio).
func TestQuickPairLossScaleInvariant(t *testing.T) {
	f := func(p stochasticPair, kRaw uint8) bool {
		k := 0.1 + float64(kRaw)/32
		qs := make([]float64, len(p.Q))
		ds := make([]float64, len(p.D))
		for i := range p.Q {
			qs[i] = p.Q[i] * k
			ds[i] = p.D[i] * k
		}
		a := PairLoss(p.Q, p.D, p.Alpha).Log
		b := PairLoss(qs, ds, p.Alpha).Log
		return math.Abs(a-b) <= 1e-9*(1+a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the BPL recurrence is monotone in its budget sequence —
// increasing any per-step budget cannot decrease any BPL value.
func TestQuickBPLMonotoneInBudgets(t *testing.T) {
	q := NewQuantifier(markov.Fig4aExample())
	f := func(raw [5]uint8, at uint8, bumpRaw uint8) bool {
		eps := make([]float64, 5)
		for i, r := range raw {
			eps[i] = 0.01 + float64(r)/256
		}
		bumped := append([]float64(nil), eps...)
		idx := int(at) % 5
		bumped[idx] += 0.01 + float64(bumpRaw)/256
		a, err := BPLSeries(q, eps)
		if err != nil {
			return false
		}
		b, err := BPLSeries(q, bumped)
		if err != nil {
			return false
		}
		for i := range a {
			if b[i] < a[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: TPL(t) always lies between eps_t and the user-level sum.
func TestQuickTPLBounds(t *testing.T) {
	qb := NewQuantifier(markov.Fig7Backward())
	qf := NewQuantifier(markov.Fig7Forward())
	f := func(raw [6]uint8) bool {
		eps := make([]float64, 6)
		total := 0.0
		for i, r := range raw {
			eps[i] = 0.01 + float64(r)/128
			total += eps[i]
		}
		tpl, err := TPLSeries(qb, qf, eps)
		if err != nil {
			return false
		}
		for i, v := range tpl {
			if v < eps[i]-1e-9 || v > total+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for any chain and budget where a supremum exists, no prefix
// of the recurrence exceeds it.
func TestQuickSupremumIsUpperBound(t *testing.T) {
	f := func(stayRaw, epsRaw uint8) bool {
		stay := 0.3 + 0.6*float64(stayRaw)/256 // in [0.3, 0.9)
		eps := 0.02 + float64(epsRaw)/512
		c, err := markov.Lazy(3, stay)
		if err != nil {
			return false
		}
		q := NewQuantifier(c)
		sup, ok := Supremum(q, eps)
		if !ok {
			return true // divergent configs are fine; nothing to check
		}
		bpl, err := BPLSeries(q, UniformBudgets(eps, 100))
		if err != nil {
			return false
		}
		for _, v := range bpl {
			if v > sup+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 5 round-trips with BudgetForSupremum wherever both
// are defined.
func TestQuickTheorem5RoundTrip(t *testing.T) {
	f := func(qRaw, dRaw, epsRaw uint8) bool {
		q := float64(qRaw) / 256
		d := float64(dRaw) / 256 * q // keep d <= q, the interesting regime
		eps := 0.01 + float64(epsRaw)/256
		sup, ok := Theorem5(q, d, eps)
		if !ok {
			return true
		}
		back, err := BudgetForSupremum(q, d, sup)
		if err != nil {
			// Degenerate corner (e.g. sup tiny); acceptable only when
			// the recovered budget would be non-positive.
			return true
		}
		return math.Abs(back-eps) <= 1e-6*(1+eps)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
