package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file gives the compiled engine a wire form so the compilation
// can be cached across process restarts (internal/enginecache). The
// engine is a pure function of chain content — compileRows is
// deterministic — so a serialized engine keyed by the chain's content
// hash is exactly as trustworthy as a fresh compile, provided the
// decoder never accepts a structurally invalid envelope. Decoding
// therefore re-validates every structural invariant compilation
// guarantees; anything off loses to a recompile, never a panic.

// engineWireVersion is bumped whenever the engine's compiled
// representation changes meaning. Old cache entries then fail the
// version check and fall back to a fresh compile — stale-on-upgrade is
// a cache miss, not a correctness hazard.
const engineWireVersion = 1

// engineSegSize is the encoded size of one envelope segment: five
// float64 (q, d, sumQ, sumD, alpha) plus two uint64 row indices.
const engineSegSize = 7 * 8

// engineHeaderSize is the encoded size before the segments: version
// byte, n, the five stats counters, and the segment count.
const engineHeaderSize = 1 + 7*8

// MarshalBinary encodes the compiled engine: a version byte, the
// state-space size, the compile statistics, and the envelope segments
// as raw little-endian float bits (exact round-trip, no formatting).
// A nil engine (the no-correlation loss) is not encodable — callers
// cache only compiled quantifiers.
func (e *Engine) MarshalBinary() ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("core: cannot marshal nil engine")
	}
	buf := make([]byte, 0, engineHeaderSize+len(e.segs)*engineSegSize)
	buf = append(buf, engineWireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.stats.N))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.stats.Pairs))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.stats.Curves))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.stats.Frontier))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.stats.Segments))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(e.segs)))
	for _, s := range e.segs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.q))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.d))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sumQ))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sumD))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.alpha))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.rowQ))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.rowD))
	}
	return buf, nil
}

// badEngine wraps every UnmarshalEngine rejection so callers can
// distinguish "corrupt cache entry" from other failures with one check.
func badEngine(format string, args ...any) error {
	return fmt.Errorf("core: invalid engine encoding: "+format, args...)
}

// UnmarshalEngine decodes an engine produced by MarshalBinary,
// re-validating every structural invariant compilation guarantees:
// consistent counts, finite non-negative curve scalars, in-range row
// indices, and non-decreasing envelope breakpoints. It never panics on
// arbitrary input and never returns a partially valid engine — a
// corrupt or version-skewed encoding yields an error the caller treats
// as a cache miss.
func UnmarshalEngine(data []byte) (*Engine, error) {
	if len(data) < engineHeaderSize {
		return nil, badEngine("%d bytes, need at least %d", len(data), engineHeaderSize)
	}
	if data[0] != engineWireVersion {
		return nil, badEngine("version %d, support %d", data[0], engineWireVersion)
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(data[1+8*i:]) }
	const maxCount = 1 << 40 // far beyond any compilable matrix; guards the int casts
	n, statsN := u(0), u(1)
	pairs, curves, frontier, segments := u(2), u(3), u(4), u(5)
	segCount := u(6)
	for _, v := range []uint64{n, statsN, pairs, curves, frontier, segments, segCount} {
		if v > maxCount {
			return nil, badEngine("implausible count %d", v)
		}
	}
	if statsN != n {
		return nil, badEngine("stats.N=%d but n=%d", statsN, n)
	}
	if segments != segCount {
		return nil, badEngine("stats.Segments=%d but %d segments encoded", segments, segCount)
	}
	if frontier > curves || segCount > frontier {
		return nil, badEngine("inconsistent counts: curves=%d frontier=%d segments=%d", curves, frontier, segCount)
	}
	want := engineHeaderSize + int(segCount)*engineSegSize
	if len(data) != want {
		return nil, badEngine("%d bytes for %d segments, want %d", len(data), segCount, want)
	}
	e := &Engine{
		n: int(n),
		stats: EngineStats{
			N:        int(statsN),
			Pairs:    int(pairs),
			Curves:   int(curves),
			Frontier: int(frontier),
			Segments: int(segments),
		},
	}
	if segCount == 0 {
		return e, nil
	}
	e.segs = make([]envSeg, segCount)
	off := engineHeaderSize
	prevAlpha := math.Inf(-1)
	for i := range e.segs {
		f := func(k int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*k:])) }
		s := envSeg{
			curve: curve{
				q:    f(0),
				d:    f(1),
				sumQ: f(2),
				sumD: f(3),
				rowQ: int(binary.LittleEndian.Uint64(data[off+8*5:])),
				rowD: int(binary.LittleEndian.Uint64(data[off+8*6:])),
			},
			alpha: f(4),
		}
		for _, v := range []float64{s.q, s.d, s.sumQ, s.sumD, s.alpha} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, badEngine("segment %d has non-finite or negative scalar %v", i, v)
			}
		}
		if s.rowQ < 0 || s.rowQ >= e.n || s.rowD < 0 || s.rowD >= e.n || s.rowQ == s.rowD {
			return nil, badEngine("segment %d rows (%d,%d) out of range for n=%d", i, s.rowQ, s.rowD, e.n)
		}
		if s.alpha < prevAlpha {
			return nil, badEngine("segment %d breakpoint %v decreases from %v", i, s.alpha, prevAlpha)
		}
		prevAlpha = s.alpha
		e.segs[i] = s
		off += engineSegSize
	}
	return e, nil
}
