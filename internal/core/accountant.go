package core

import (
	"fmt"
	"math"

	"repro/internal/chunked"
	"repro/internal/markov"
)

// lossQuantifier is the one capability the accountant needs from a
// quantifier: evaluating the loss increment. It is satisfied by
// *Quantifier (including a nil one — the no-correlation loss) and, in
// tests, by call-counting stubs that pin down the accountant's
// evaluation complexity.
type lossQuantifier interface {
	LossValue(alpha float64) float64
}

// Accountant tracks the temporal privacy leakage of an ongoing
// continuous release against one adversary_T(P^B, P^F). Each call to
// Observe records that an eps-DP mechanism was applied at the next time
// step; the accountant maintains the backward leakage incrementally
// (BPL at time t depends only on the past) and refreshes the forward
// series lazily and incrementally: FPL at every past time point grows
// when new releases happen (Example 3), but the refresh recomputes
// backward from the new tail only until it reproduces a cached value —
// once FPL'(t+1) equals the cached FPL(t+1), every earlier point is
// unchanged too (the recurrence is a deterministic function of the
// successor), so the cached prefix is reused. Saturating series (any
// bounded-supremum correlation) therefore refresh in O(appends + tail)
// evaluations instead of O(T).
//
// The zero value is not usable; construct with NewAccountant.
// An Accountant is not safe for concurrent use.
type Accountant struct {
	qb, qf lossQuantifier
	// eps and bpl live for the session and grow every step; chunked
	// storage makes the append O(1) with no memmove of the settled
	// history (see internal/chunked — the hand-doubled slices they
	// replace re-copied the whole multi-MB history on every doubling).
	eps  chunked.Log[float64]
	bpl  chunked.Log[float64] // bpl[t], maintained incrementally
	fpl  []float64            // cached FPL series for the first fplT observations
	fplT int                  // observation count the fpl cache was computed at

	// Backward-loss memo: the last two (alpha, L(alpha)) evaluations.
	// The BPL recurrence bpl[t] = L(bpl[t-1]) + eps[t] saturates under
	// any bounded-supremum correlation; once it reaches its floating-
	// point fixed point (or a 2-cycle, hence two entries) the argument
	// repeats *exactly*, and the memo answers without touching the
	// engine. This is pure memoization of a deterministic function —
	// bit-identical results, it only skips re-deriving them — and it is
	// what keeps steady-state ingest cost flat: a converged stream pays
	// two float compares per step instead of an envelope search and a
	// log/exp chain.
	memoArg [2]float64
	memoVal [2]float64
	memoN   int // valid entries (0..2); memoArg[0] is most recent
}

// NewAccountant builds an accountant for an adversary with the given
// backward and forward correlations. Either chain may be nil, meaning
// the adversary does not know that direction (the three adversary types
// of Definition 4).
func NewAccountant(pb, pf *markov.Chain) *Accountant {
	return NewAccountantFromQuantifiers(NewQuantifier(pb), NewQuantifier(pf))
}

// NewAccountantFromQuantifiers is NewAccountant for callers that already
// built (and possibly share) Quantifiers. Quantifiers are safe to share:
// the compiled engine is immutable, so cohorts and sessions with
// content-identical models hand the same quantifier to many accountants
// and pay its compilation once.
func NewAccountantFromQuantifiers(qb, qf *Quantifier) *Accountant {
	return &Accountant{qb: qb, qf: qf}
}

// CheckBudget validates a per-step privacy budget: Observe accepts eps
// if and only if CheckBudget(eps) is nil. Callers that must guarantee
// all-or-nothing semantics across many accountants (stream.Server's
// fan-out) validate once up front instead of discovering the error
// mid-update.
func CheckBudget(eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("core: budget must be finite and positive, got %v", eps)
	}
	return nil
}

// Observe records a release with per-step budget eps at the next time
// step and returns the new length of the sequence.
func (a *Accountant) Observe(eps float64) (int, error) {
	if err := CheckBudget(eps); err != nil {
		return 0, err
	}
	// bpl and eps grow in lockstep into chunked tail slots: no append
	// growth factor, no memmove of the settled history ever.
	if n := a.bpl.Len(); n == 0 {
		a.bpl.Append(eps)
	} else {
		a.bpl.Append(a.backwardLoss(a.bpl.At(n-1)) + eps)
	}
	a.eps.Append(eps)
	return a.eps.Len(), nil
}

// backwardLoss evaluates the backward quantifier through the two-entry
// memo (see the field comment on memoArg).
func (a *Accountant) backwardLoss(alpha float64) float64 {
	if a.memoN > 0 && a.memoArg[0] == alpha {
		return a.memoVal[0]
	}
	if a.memoN > 1 && a.memoArg[1] == alpha {
		// Promote so an exact 2-cycle keeps hitting.
		a.memoArg[0], a.memoArg[1] = a.memoArg[1], a.memoArg[0]
		a.memoVal[0], a.memoVal[1] = a.memoVal[1], a.memoVal[0]
		return a.memoVal[0]
	}
	v := a.qb.LossValue(alpha)
	a.memoArg[1], a.memoVal[1] = a.memoArg[0], a.memoVal[0]
	a.memoArg[0], a.memoVal[0] = alpha, v
	if a.memoN < 2 {
		a.memoN++
	}
	return v
}

// T returns the number of releases observed so far.
func (a *Accountant) T() int { return a.eps.Len() }

// BPL returns the backward privacy leakage at 1-based time t.
func (a *Accountant) BPL(t int) (float64, error) {
	if err := a.checkT(t); err != nil {
		return 0, err
	}
	return a.bpl.At(t - 1), nil
}

// FPL returns the forward privacy leakage at 1-based time t, as of the
// releases observed so far.
func (a *Accountant) FPL(t int) (float64, error) {
	if err := a.checkT(t); err != nil {
		return 0, err
	}
	// Tail fast path: Eq. (10)'s forward recursion bottoms out at the
	// newest release — no future observations exist yet, so its forward
	// leakage is exactly its own budget. Skipping the refresh keeps
	// per-step tail queries (the decision-log hook) O(1) instead of
	// re-walking the history.
	if t == a.eps.Len() {
		return a.eps.At(t - 1), nil
	}
	if err := a.refreshFPL(); err != nil {
		return 0, err
	}
	return a.fpl[t-1], nil
}

// TPL returns the total temporal privacy leakage at 1-based time t per
// Eq. (10).
func (a *Accountant) TPL(t int) (float64, error) {
	if err := a.checkT(t); err != nil {
		return 0, err
	}
	// Tail fast path, mirroring FPL: at t == T the forward term equals
	// eps[t-1]. The add-then-subtract is kept (not simplified to bare
	// BPL) so the result stays bit-identical to the general formula and
	// to the batch TPLSeries — x + e - e can differ from x in the last
	// ULP, and every differential test here demands exact equality.
	if t == a.eps.Len() {
		e := a.eps.At(t - 1)
		return a.bpl.At(t-1) + e - e, nil
	}
	if err := a.refreshFPL(); err != nil {
		return 0, err
	}
	return a.bpl.At(t-1) + a.fpl[t-1] - a.eps.At(t-1), nil
}

// MaxTPL returns the worst TPL across all time points so far: the
// smallest alpha for which the release so far satisfies alpha-DP_T.
func (a *Accountant) MaxTPL() (float64, error) {
	T := a.eps.Len()
	if T == 0 {
		return 0, nil
	}
	if err := a.refreshFPL(); err != nil {
		return 0, err
	}
	worst := math.Inf(-1)
	// Walk chunk-by-chunk: one bounds check per chunk instead of three
	// per element, and the arithmetic order matches the pre-chunk scan
	// exactly (t ascending).
	for ci, t := 0, 0; t < T; ci++ {
		bc, ec := a.bpl.Chunk(ci), a.eps.Chunk(ci)
		for i := range ec {
			if v := bc[i] + a.fpl[t] - ec[i]; v > worst {
				worst = v
			}
			t++
		}
	}
	return worst, nil
}

// UserLevel returns the user-level leakage of everything released so far
// (Corollary 1): the plain sequential sum of the budgets, accumulated in
// step order exactly as UserLevelTPL sums a contiguous series.
func (a *Accountant) UserLevel() float64 {
	total := 0.0
	for ci, n := 0, a.eps.Chunks(); ci < n; ci++ {
		for _, e := range a.eps.Chunk(ci) {
			total += e
		}
	}
	return total
}

// WEvent returns the worst w-window leakage so far (Theorem 2). It
// evaluates every length-w window with the same arithmetic WEventTPL
// applies to contiguous series — the chunked walk only changes where
// the loads come from, never the order they are added in.
func (a *Accountant) WEvent(w int) (float64, error) {
	if err := a.refreshFPL(); err != nil {
		return 0, err
	}
	T := a.eps.Len()
	if w < 1 || w > T {
		return 0, fmt.Errorf("core: window w=%d out of range [1,%d]", w, T)
	}
	worst := 0.0
	for start := 0; start+w <= T; start++ {
		var v float64
		if w == 1 {
			v = EventLevelTPL(a.bpl.At(start), a.fpl[start], a.eps.At(start))
		} else {
			v = a.bpl.At(start) + a.fpl[start+w-1]
			for t := start + 1; t < start+w-1; t++ {
				v += a.eps.At(t)
			}
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

// WindowTPL returns the leakage of the specific window {M_from, ...,
// M_to} (1-based, inclusive) under Theorem 2: event-level for from ==
// to, otherwise BPL(from) + FPL(to) + the budgets strictly between.
func (a *Accountant) WindowTPL(from, to int) (float64, error) {
	if err := a.checkT(from); err != nil {
		return 0, err
	}
	if err := a.checkT(to); err != nil {
		return 0, err
	}
	if from > to {
		return 0, fmt.Errorf("core: window [%d,%d] is empty", from, to)
	}
	if err := a.refreshFPL(); err != nil {
		return 0, err
	}
	if from == to {
		return EventLevelTPL(a.bpl.At(from-1), a.fpl[from-1], a.eps.At(from-1)), nil
	}
	// ComposeTPL's arithmetic order: first + last, then the middle
	// budgets in step order.
	total := a.bpl.At(from-1) + a.fpl[to-1]
	for t := from; t < to-1; t++ {
		total += a.eps.At(t)
	}
	return total, nil
}

// Budgets returns a copy of the per-step budgets observed so far.
func (a *Accountant) Budgets() []float64 { return a.eps.CopyAll() }

func (a *Accountant) checkT(t int) error {
	if t < 1 || t > a.eps.Len() {
		return fmt.Errorf("core: time %d out of range [1,%d]", t, a.eps.Len())
	}
	return nil
}

// refreshFPL brings the cached forward series up to date with the
// observations. The recurrence FPL(t) = L^F(FPL(t+1)) + eps_t runs
// backward from the new tail; as soon as a freshly computed FPL(t+1)
// is bit-identical to the cached value for the same t+1, every earlier
// point must agree too (same successor, same budget, same deterministic
// loss function), and the cached prefix is copied over wholesale. Every
// budget was validated by Observe, so unlike the batch FPLSeries there
// is no input to reject; the error return is kept for symmetry with the
// other accessors.
func (a *Accountant) refreshFPL() error {
	T := a.eps.Len()
	if a.fplT == T {
		return nil
	}
	old, oldT := a.fpl, a.fplT
	fpl := make([]float64, T)
	fpl[T-1] = a.eps.At(T - 1)
	for t := T - 2; t >= 0; t-- {
		if t+1 < oldT && fpl[t+1] == old[t+1] {
			copy(fpl[:t+1], old[:t+1])
			break
		}
		fpl[t] = a.qf.LossValue(fpl[t+1]) + a.eps.At(t)
	}
	a.fpl, a.fplT = fpl, T
	return nil
}
