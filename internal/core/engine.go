package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/matrix"
)

// This file implements the compiled leakage engine: a one-time analysis
// of a transition matrix that makes every subsequent Loss(alpha)
// evaluation a binary search plus an O(1) closed-form lookup, instead of
// Algorithm 1's full O(n^2)-pairs-with-pruning rescan.
//
// The compilation rests on the structure Theorem 4 / Corollary 2 give
// the per-pair linear-fractional program. Write x = e^alpha - 1. For an
// ordered row pair (q, d) and a candidate subset S, the objective is
//
//	g_S(x) = (Q_S*x + 1) / (D_S*x + 1),  Q_S = sum_{j in S} q_j, D_S likewise.
//
// At the optimum the kept set is exactly {j : q_j/d_j > g*} — a
// threshold set in the q_j/d_j ratio order (Inequality (21) with the
// optimal ratio g* substituted). Sorting the candidates {j : q_j > d_j}
// by ratio once therefore reduces the pair's whole loss function to
//
//	f_pair(alpha) = max over ratio-order prefixes k of log g_{P_k}(x),
//
// because the optimal threshold set is one of the prefixes P_k and every
// subset's value is dominated by the best prefix. Each prefix is a curve
// determined by just two scalars (Q, D); two distinct curves cross at
// most once on x > 0; and the matrix-level loss L(alpha) = max over
// pairs of f_pair is then the upper envelope of ALL pairs' prefix
// curves. Compilation builds that envelope:
//
//  1. per pair: candidates from the q-row's non-zero support only
//     (q_j > d_j needs q_j > 0 — sparse-row awareness, decisive for
//     road-network chains), ratio sort, prefix sums → curves;
//  2. dominance pruning: a Pareto frontier over (Q, D) drops every
//     curve that is pointwise dominated for all alpha (Q' >= Q with
//     D' <= D implies g' >= g everywhere);
//  3. an upper-envelope sweep over the survivors orders them by their
//     dominance intervals and records the alpha breakpoints.
//
// Eval(alpha) then binary-searches the breakpoints and evaluates one
// closed form — microseconds, independent of how many pairs the matrix
// has. Compile cost is comparable to a small constant number of naive
// Loss evaluations, amortized after a handful of evals; the recurrences
// (series over T, supremum probes, accountants, cohorts, sessions)
// evaluate thousands of times per matrix.
//
// Numerical contract: the dominance and envelope comparisons treat the
// rows as exactly stochastic, while Eval reproduces the naive
// evaluator's arithmetic with the true row sums. For rows that sum to 1
// up to float accumulation (everything the markov generators and
// NormalizeRows produce) engine and naive scan agree to ~1e-15
// relative, as the differential tests pin down. A row may legally be
// off unit sum by up to markov.DefaultTol (1e-9) — e.g. hand-truncated
// JSON input — and near-tied curves can then resolve differently,
// degrading the agreement to the same ~1e-9 order as the input's own
// deviation; the loss value itself is only meaningful to that precision
// for such inputs.

// curve is one candidate prefix of some ordered row pair: the subset
// sums (q, d) over the prefix, the full row sums (exactly the dense
// index-order accumulations, ~1 for stochastic rows, kept so the engine
// reproduces the naive evaluator's arithmetic), and the pair identity.
type curve struct {
	q, d       float64
	sumQ, sumD float64
	rowQ, rowD int
}

// lessPair orders curves by pair identity, the deterministic tie-break
// for content-identical curves discovered by different pairs.
func lessPair(a, b curve) bool {
	if a.rowQ != b.rowQ {
		return a.rowQ < b.rowQ
	}
	return a.rowD < b.rowD
}

// envSeg is one segment of the compiled upper envelope: the curve and
// the prior-leakage value from which it dominates (its dominance
// interval runs to the next segment's alpha).
type envSeg struct {
	curve
	alpha float64
}

// EngineStats describes what compilation found, for benchmarks, the
// Fig. 5 runtime table and capacity planning.
type EngineStats struct {
	// N is the state-space size.
	N int
	// Pairs is the number of ordered row pairs with a non-empty
	// candidate set (pairs contributing at least one curve).
	Pairs int
	// Curves is the total number of prefix curves considered.
	Curves int
	// Frontier is how many curves survived Pareto dominance pruning.
	Frontier int
	// Segments is the final envelope size: the number of distinct
	// (Q, D) optima across all of alpha in (0, inf).
	Segments int
}

// Engine is a compiled loss function for one transition matrix. It is
// immutable after compilation and safe for concurrent use, so one
// engine can back any number of accountants, cohorts and sessions.
//
// A nil *Engine represents the no-correlation (nil quantifier) loss,
// identically zero.
type Engine struct {
	n     int
	segs  []envSeg
	stats EngineStats
}

// compileThreshold is the state-space size at and above which
// compilation fans the pair scan out over all cores. Below it the
// sequential sweep wins on goroutine overhead. This is also the single
// place the parallelism decision lives: callers of Loss never pick
// sequential vs parallel by hand anymore.
const compileThreshold = 64

// compileRows builds the engine for the given rows (the validated
// transition matrix of a markov.Chain). The result is a deterministic
// function of the row contents: worker striping, Pareto insertion order
// and tie-breaks are all content-canonical, so content-equal chains
// compile to bit-identical engines — the property the cohort and
// session caches rely on.
func compileRows(rows []matrix.Vector) *Engine {
	n := len(rows)
	e := &Engine{n: n}
	if n < 2 {
		e.stats.N = n
		return e
	}

	// Sparse supports and exact dense row sums, extracted once.
	sparse := make([]matrix.SparseRow, n)
	for i, r := range rows {
		for j, x := range r {
			if x < 0 || math.IsNaN(x) {
				panic(fmt.Sprintf("core: engine compile: negative coefficient at (%d,%d): %v", i, j, x))
			}
		}
		sparse[i] = matrix.Sparsify(r)
	}

	workers := 1
	if n >= compileThreshold {
		workers = runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
	}

	fronts := make([]*frontier, workers)
	stats := make([]EngineStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := &frontier{}
			st := &stats[w]
			cand := make([]int, 0, n)
			for i := w; i < n; i += workers {
				q := rows[i]
				sp := sparse[i]
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					c, cs := pairCurves(q, rows[j], sp, sparse[j].Sum, i, j, cand, f)
					st.Pairs += c
					st.Curves += cs
				}
			}
			fronts[w] = f
		}(w)
	}
	wg.Wait()

	// Merge worker frontiers. The frontier is canonical (the set of
	// non-dominated curves does not depend on insertion order), so the
	// merge order does not matter for the result.
	front := fronts[0]
	for _, f := range fronts[1:] {
		for _, c := range f.pts {
			front.add(c)
		}
	}
	for _, st := range stats {
		e.stats.Pairs += st.Pairs
		e.stats.Curves += st.Curves
	}
	e.stats.N = n
	e.stats.Frontier = len(front.pts)
	e.segs = envelope(front.pts)
	e.stats.Segments = len(e.segs)
	return e
}

// pairCurves emits the ratio-ordered prefix curves of one ordered row
// pair into the frontier. It returns (1, #curves) when the pair has a
// non-empty candidate set and (0, 0) otherwise. cand is a reusable
// scratch buffer.
func pairCurves(q, d matrix.Vector, sp matrix.SparseRow, sumD float64, rowQ, rowD int, cand []int, f *frontier) (int, int) {
	// Candidates per Corollary 2, restricted to the q-row's support:
	// q_j > d_j needs q_j > 0.
	cand = cand[:0]
	for _, j := range sp.Index {
		if q[j] > d[j] {
			cand = append(cand, j)
		}
	}
	if len(cand) == 0 || sumD == 0 {
		return 0, 0
	}
	// Ratio order: q_j/d_j descending (d_j == 0 means +inf, first),
	// ties by index for determinism. Cross-multiplied to avoid the
	// division: r_a > r_b  <=>  q_a*d_b > q_b*d_a for non-negative rows.
	sort.Slice(cand, func(x, y int) bool {
		a, b := cand[x], cand[y]
		l, r := q[a]*d[b], q[b]*d[a]
		if l != r {
			return l > r
		}
		return a < b
	})
	sumQ := sp.Sum
	curves := 0
	var Q, D float64
	for k, j := range cand {
		Q += q[j]
		D += d[j]
		// Within the leading d == 0 run, D stays 0 while Q grows: every
		// prefix but the last of the run is Pareto-dominated by the
		// run's end, so skip it outright.
		if D == 0 && k+1 < len(cand) && d[cand[k+1]] == 0 {
			continue
		}
		curves++
		f.add(curve{q: Q, d: D, sumQ: sumQ, sumD: sumD, rowQ: rowQ, rowD: rowD})
	}
	return 1, curves
}

// frontier maintains the Pareto-optimal set of curves under (maximize
// Q, minimize D): a curve with Q' >= Q and D' <= D has g' >= g for
// every alpha, so dominated curves can never appear on the envelope.
// Points are kept sorted by strictly increasing q and (consequently)
// strictly increasing d.
type frontier struct {
	pts []curve
}

// add inserts c unless it is dominated, evicting everything c
// dominates. Content-identical curves keep the smallest (rowQ, rowD),
// which makes the final set independent of insertion order.
func (f *frontier) add(c curve) {
	pts := f.pts
	// First point with q >= c.q holds the smallest d among all points
	// that could dominate c.
	i := sort.Search(len(pts), func(k int) bool { return pts[k].q >= c.q })
	if i < len(pts) && pts[i].d <= c.d {
		if pts[i].q == c.q && pts[i].d == c.d && lessPair(c, pts[i]) {
			pts[i] = c
		}
		return
	}
	// Evict points dominated by c: q <= c.q with d >= c.d. Those are a
	// suffix of [0, i) — plus pts[i] itself when it shares c.q (its d
	// is then > c.d). Replace pts[lo:hi] with c.
	hi := i
	if hi < len(pts) && pts[hi].q == c.q {
		hi++
	}
	lo := sort.Search(i, func(k int) bool { return pts[k].d >= c.d })
	if lo < hi {
		pts[lo] = c
		pts = append(pts[:lo+1], pts[hi:]...)
	} else { // lo == hi: nothing evicted, pure insertion at lo
		pts = append(pts, curve{})
		copy(pts[lo+1:], pts[lo:])
		pts[lo] = c
	}
	f.pts = pts
}

// envelope computes the upper envelope of the Pareto frontier: which
// curve attains the maximum on which alpha interval. Curves are sorted
// by dominance order at alpha -> inf (the g -> Q/D limit, with D == 0
// curves last, growing without bound), then swept with a convex-hull
// style stack; distinct curves cross at most once on x > 0, which is
// exactly the property the sweep needs.
func envelope(pts []curve) []envSeg {
	if len(pts) == 0 {
		return nil
	}
	order := append([]curve(nil), pts...)
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		l, r := a.q*b.d, b.q*a.d // a.q/a.d < b.q/b.d, cross-multiplied
		if l != r {
			return l < r
		}
		return a.q < b.q
	})
	var segs []envSeg
	for _, c := range order {
		for {
			if len(segs) == 0 {
				segs = append(segs, envSeg{curve: c, alpha: 0})
				break
			}
			t := segs[len(segs)-1]
			a, everywhere, never := crossover(t.curve, c)
			if never {
				// c never overtakes t (parallel curves, c below): drop c.
				break
			}
			if everywhere || a <= t.alpha {
				// t is dominated by c from before t's own interval
				// starts: t never appears on the envelope.
				segs = segs[:len(segs)-1]
				continue
			}
			segs = append(segs, envSeg{curve: c, alpha: a})
			break
		}
	}
	return segs
}

// crossover locates where curve c (sorted after t, so dominant as
// alpha -> inf) overtakes t. It returns the crossing alpha, or
// everywhere=true when c is above t for all alpha > 0, or never=true
// when c never rises above t (only possible for parallel curves).
//
// In x = e^alpha - 1 the difference of the two ratios has the sign of
//
//	x * [ x*(t.q*c.d - c.q*t.d) + (c.q + t.d - t.q - c.d) ],
//
// so the non-zero root is x* = num/den with num and den as below.
func crossover(t, c curve) (alpha float64, everywhere, never bool) {
	num := c.q + t.d - t.q - c.d
	den := t.q*c.d - c.q*t.d // <= 0 given the sort order
	if den == 0 {
		// Parallel (equal-ratio) curves: the difference is linear in x
		// with slope num.
		if num > 0 {
			return 0, true, false
		}
		return 0, false, true
	}
	if num >= 0 {
		// Root at x* <= 0: on x > 0 the later-sorted curve is above.
		return 0, true, false
	}
	return math.Log1p(num / den), false, false
}

// Eval evaluates the compiled loss function at prior leakage alpha,
// returning the same LossResult the naive pair scan produces: the
// maximal loss increment and the maximizing pair with its subset sums.
// It runs in O(log segments).
func (e *Engine) Eval(alpha float64) LossResult {
	res := LossResult{RowQ: -1, RowD: -1}
	if e == nil || alpha == 0 {
		return res
	}
	if alpha < 0 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("core: engine Eval alpha must be >= 0, got %v", alpha))
	}
	if len(e.segs) == 0 {
		return res
	}
	// Last segment whose interval starts at or before alpha. At an exact
	// breakpoint both neighbors attain the same value; the later segment
	// owns the point, matching the naive scan's strict-inequality
	// subset (the threshold item is excluded at its own threshold).
	i := sort.Search(len(e.segs), func(k int) bool { return e.segs[k].alpha > alpha }) - 1
	if i < 0 {
		i = 0
	}
	s := e.segs[i]
	log := logAffineExp(s.q, s.sumQ, alpha) - logAffineExp(s.d, s.sumD, alpha)
	if log <= 0 || math.IsNaN(log) {
		return res
	}
	return LossResult{Log: log, QSum: s.q, DSum: s.d, RowQ: s.rowQ, RowD: s.rowD}
}

// EvalValue is Eval but returns only the increment.
func (e *Engine) EvalValue(alpha float64) float64 { return e.Eval(alpha).Log }

// Stats returns what compilation found. The zero value is returned for
// a nil engine.
func (e *Engine) Stats() EngineStats {
	if e == nil {
		return EngineStats{}
	}
	return e.stats
}

// N returns the state-space size the engine was compiled for.
func (e *Engine) N() int {
	if e == nil {
		return 0
	}
	return e.n
}
