package core

import (
	"fmt"
	"math"
)

// validateBudgets checks that every per-step privacy budget is finite and
// strictly positive, as required by the recurrences.
func validateBudgets(eps []float64) error {
	if len(eps) == 0 {
		return fmt.Errorf("core: need at least one per-step budget")
	}
	for t, e := range eps {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("core: budget at step %d must be finite and positive, got %v", t, e)
		}
	}
	return nil
}

// BPLSeries computes backward privacy leakage at every time point for a
// mechanism sequence with per-step budgets eps[0..T-1] against an
// adversary with backward correlation quantified by qb (Eq. (13)):
//
//	BPL(1) = eps_1
//	BPL(t) = L^B(BPL(t-1)) + eps_t.
//
// qb == nil means the adversary knows no backward correlation, in which
// case BPL(t) = eps_t.
func BPLSeries(qb *Quantifier, eps []float64) ([]float64, error) {
	if err := validateBudgets(eps); err != nil {
		return nil, err
	}
	out := make([]float64, len(eps))
	out[0] = eps[0]
	for t := 1; t < len(eps); t++ {
		out[t] = qb.LossValue(out[t-1]) + eps[t]
	}
	return out, nil
}

// FPLSeries computes forward privacy leakage at every time point
// (Eq. (15)):
//
//	FPL(T) = eps_T
//	FPL(t) = L^F(FPL(t+1)) + eps_t.
//
// qf == nil means the adversary knows no forward correlation, in which
// case FPL(t) = eps_t.
//
// Note the direction: FPL at time t grows as *future* releases happen,
// so extending T changes earlier values too. This batch form always
// computes the full series; the Accountant refreshes incrementally,
// recomputing backward from the new tail only until it reproduces a
// cached value.
func FPLSeries(qf *Quantifier, eps []float64) ([]float64, error) {
	if err := validateBudgets(eps); err != nil {
		return nil, err
	}
	T := len(eps)
	out := make([]float64, T)
	out[T-1] = eps[T-1]
	for t := T - 2; t >= 0; t-- {
		out[t] = qf.LossValue(out[t+1]) + eps[t]
	}
	return out, nil
}

// TPLSeries computes the total temporal privacy leakage at every time
// point per Eq. (10)/(11): TPL(t) = BPL(t) + FPL(t) - eps_t (the
// per-step loss PL0 is counted in both BPL and FPL and subtracted once).
func TPLSeries(qb, qf *Quantifier, eps []float64) ([]float64, error) {
	bpl, err := BPLSeries(qb, eps)
	if err != nil {
		return nil, err
	}
	fpl, err := FPLSeries(qf, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eps))
	for t := range out {
		out[t] = bpl[t] + fpl[t] - eps[t]
	}
	return out, nil
}

// MaxTPL returns the maximum of TPLSeries, i.e. the smallest alpha such
// that the mechanism sequence satisfies alpha-DP_T at every time point.
func MaxTPL(qb, qf *Quantifier, eps []float64) (float64, error) {
	tpl, err := TPLSeries(qb, qf, eps)
	if err != nil {
		return 0, err
	}
	worst := math.Inf(-1)
	for _, v := range tpl {
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

// UniformBudgets returns a length-T slice filled with eps, the common
// "same mechanism at every time point" workload of the paper's
// experiments.
func UniformBudgets(eps float64, T int) []float64 {
	out := make([]float64, T)
	for i := range out {
		out[i] = eps
	}
	return out
}
