package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lfp"
	"repro/internal/markov"
	"repro/internal/matrix"
)

func TestNilQuantifier(t *testing.T) {
	var qt *Quantifier
	if qt.N() != 0 {
		t.Error("nil quantifier N should be 0")
	}
	if got := qt.LossValue(5); got != 0 {
		t.Errorf("nil quantifier loss = %v, want 0", got)
	}
	if qt.IsIdentityLike() {
		t.Error("nil quantifier must not be identity-like")
	}
	if NewQuantifier(nil) != nil {
		t.Error("NewQuantifier(nil) should be nil")
	}
}

func TestQuantifierN(t *testing.T) {
	qt := NewQuantifier(markov.Fig2Forward())
	if qt.N() != 3 {
		t.Errorf("N = %d", qt.N())
	}
}

func TestLossZeroAlpha(t *testing.T) {
	qt := NewQuantifier(markov.Fig2Forward())
	res := qt.Loss(0)
	if res.Log != 0 || res.RowQ != -1 {
		t.Errorf("alpha=0 loss = %+v", res)
	}
}

func TestLossUniformChainIsZero(t *testing.T) {
	uni, _ := markov.UniformChain(5)
	qt := NewQuantifier(uni)
	for _, a := range []float64{0.1, 1, 10} {
		if got := qt.LossValue(a); got != 0 {
			t.Errorf("uniform chain loss(%v) = %v, want 0", a, got)
		}
	}
}

func TestLossIdentityChainIsIdentity(t *testing.T) {
	id, _ := markov.IdentityChain(3)
	qt := NewQuantifier(id)
	for _, a := range []float64{0.1, 1, 7} {
		if got := qt.LossValue(a); math.Abs(got-a) > 1e-12 {
			t.Errorf("identity chain loss(%v) = %v, want %v", a, got, a)
		}
	}
	if !qt.IsIdentityLike() {
		t.Error("identity chain should be identity-like")
	}
}

func TestLossStrongestPermutationIsIdentityLike(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := markov.Strongest(rng, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !NewQuantifier(c).IsIdentityLike() {
		t.Error("permutation chain should be identity-like")
	}
}

func TestLossModerateNotIdentityLike(t *testing.T) {
	if NewQuantifier(markov.ModerateExample()).IsIdentityLike() {
		t.Error("moderate chain should not be identity-like")
	}
}

func TestLossMatchesMaxOverPairsBruteForce(t *testing.T) {
	// The chain-level loss must equal the max over ordered row pairs of
	// the brute-force LFP optimum.
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		alpha := 0.05 + rng.Float64()*3
		qt := NewQuantifier(c)
		got := qt.LossValue(alpha)
		want := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				lg, err := (&lfp.Problem{Q: c.Row(i), D: c.Row(j), Alpha: alpha}).LogBruteForce()
				if err != nil {
					t.Fatal(err)
				}
				if lg > want {
					want = lg
				}
			}
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("trial %d: Loss=%v, brute max=%v", trial, got, want)
		}
	}
}

func TestLossReportsMaximizingPair(t *testing.T) {
	qt := NewQuantifier(markov.ModerateExample())
	res := qt.Loss(0.5)
	if res.RowQ < 0 || res.RowD < 0 {
		t.Fatal("no maximizing pair reported")
	}
	// Recompute the pair loss for the reported rows and compare.
	c := markov.ModerateExample()
	pr := PairLoss(c.Row(res.RowQ), c.Row(res.RowD), 0.5)
	if math.Abs(pr.Log-res.Log) > 1e-12 {
		t.Errorf("pair recompute %v != loss %v", pr.Log, res.Log)
	}
	if math.Abs(pr.QSum-res.QSum) > 1e-12 || math.Abs(pr.DSum-res.DSum) > 1e-12 {
		t.Errorf("pair sums mismatch")
	}
}

func TestLossSingleStateChain(t *testing.T) {
	one := markov.MustNew(matrix.Identity(1))
	qt := NewQuantifier(one)
	if got := qt.LossValue(3); got != 0 {
		t.Errorf("1-state loss = %v, want 0 (no distinct pairs)", got)
	}
}
