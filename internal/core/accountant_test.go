package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

func TestAccountantMatchesBatchSeries(t *testing.T) {
	pb := markov.Fig7Backward()
	pf := markov.Fig7Forward()
	acc := NewAccountant(pb, pf)
	eps := []float64{0.1, 0.3, 0.2, 0.25, 0.15}
	for i, e := range eps {
		n, err := acc.Observe(e)
		if err != nil {
			t.Fatal(err)
		}
		if n != i+1 {
			t.Errorf("Observe returned %d, want %d", n, i+1)
		}
	}
	qb := NewQuantifier(pb)
	qf := NewQuantifier(pf)
	bpl, _ := BPLSeries(qb, eps)
	fpl, _ := FPLSeries(qf, eps)
	tpl, _ := TPLSeries(qb, qf, eps)
	for tm := 1; tm <= len(eps); tm++ {
		b, err := acc.BPL(tm)
		if err != nil {
			t.Fatal(err)
		}
		f, err := acc.FPL(tm)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := acc.TPL(tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b-bpl[tm-1]) > 1e-12 || math.Abs(f-fpl[tm-1]) > 1e-12 || math.Abs(tp-tpl[tm-1]) > 1e-12 {
			t.Errorf("t=%d: accountant (%v,%v,%v) vs batch (%v,%v,%v)",
				tm, b, f, tp, bpl[tm-1], fpl[tm-1], tpl[tm-1])
		}
	}
}

func TestAccountantFPLGrowsWithNewReleases(t *testing.T) {
	// Example 3: when a new release happens, FPL at earlier time points
	// is updated upward.
	acc := NewAccountant(nil, markov.ModerateExample())
	if _, err := acc.Observe(0.1); err != nil {
		t.Fatal(err)
	}
	f1, err := acc.FPL(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	f1later, err := acc.FPL(1)
	if err != nil {
		t.Fatal(err)
	}
	if f1later <= f1 {
		t.Errorf("FPL(1) did not grow: %v -> %v", f1, f1later)
	}
}

func TestAccountantBPLStableUnderNewReleases(t *testing.T) {
	// BPL at a past time point depends only on the past: new releases
	// must not change it.
	acc := NewAccountant(markov.ModerateExample(), nil)
	for i := 0; i < 3; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	b2, err := acc.BPL(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := acc.Observe(0.1); err != nil {
			t.Fatal(err)
		}
	}
	b2later, err := acc.BPL(2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b2later {
		t.Errorf("BPL(2) changed: %v -> %v", b2, b2later)
	}
}

func TestAccountantMaxTPLAndUserLevel(t *testing.T) {
	acc := NewAccountant(markov.ModerateExample(), markov.ModerateExample())
	eps := UniformBudgets(0.1, 10)
	for _, e := range eps {
		if _, err := acc.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := acc.MaxTPL()
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantifier(markov.ModerateExample())
	want, _ := MaxTPL(q, q, eps)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxTPL = %v, want %v", got, want)
	}
	if ul := acc.UserLevel(); math.Abs(ul-1.0) > 1e-12 {
		t.Errorf("UserLevel = %v, want 1.0", ul)
	}
}

func TestAccountantEmpty(t *testing.T) {
	acc := NewAccountant(nil, nil)
	if acc.T() != 0 {
		t.Error("fresh accountant should have T=0")
	}
	v, err := acc.MaxTPL()
	if err != nil || v != 0 {
		t.Errorf("empty MaxTPL = %v/%v", v, err)
	}
	if _, err := acc.TPL(1); err == nil {
		t.Error("TPL on empty accountant should fail")
	}
}

func TestAccountantValidation(t *testing.T) {
	acc := NewAccountant(nil, nil)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := acc.Observe(bad); err == nil {
			t.Errorf("Observe(%v) should fail", bad)
		}
	}
	if _, err := acc.Observe(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.BPL(0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := acc.FPL(2); err == nil {
		t.Error("t beyond T should fail")
	}
}

func TestAccountantWEvent(t *testing.T) {
	acc := NewAccountant(markov.ModerateExample(), markov.ModerateExample())
	eps := UniformBudgets(0.1, 5)
	for _, e := range eps {
		if _, err := acc.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := acc.WEvent(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 { // full window == user level == sum
		t.Errorf("WEvent(5) = %v, want 0.5", got)
	}
}

func TestAccountantWindowTPL(t *testing.T) {
	acc := NewAccountant(markov.ModerateExample(), markov.ModerateExample())
	eps := []float64{0.1, 0.2, 0.3, 0.4}
	for _, e := range eps {
		if _, err := acc.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	// Single-point window equals event-level TPL.
	one, err := acc.WindowTPL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := acc.TPL(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-want) > 1e-12 {
		t.Errorf("WindowTPL(2,2) = %v, want TPL(2) = %v", one, want)
	}
	// Full window equals user-level (Corollary 1).
	full, err := acc.WindowTPL(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-1.0) > 1e-12 {
		t.Errorf("WindowTPL(1,4) = %v, want sum 1.0", full)
	}
	// The max over all w-windows matches WEvent.
	for w := 1; w <= 4; w++ {
		worst := 0.0
		for from := 1; from+w-1 <= 4; from++ {
			v, err := acc.WindowTPL(from, from+w-1)
			if err != nil {
				t.Fatal(err)
			}
			worst = math.Max(worst, v)
		}
		we, err := acc.WEvent(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(worst-we) > 1e-12 {
			t.Errorf("w=%d: scan %v vs WEvent %v", w, worst, we)
		}
	}
	// Validation.
	if _, err := acc.WindowTPL(3, 2); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := acc.WindowTPL(0, 2); err == nil {
		t.Error("from=0 should fail")
	}
	if _, err := acc.WindowTPL(1, 9); err == nil {
		t.Error("to beyond T should fail")
	}
}

func TestAccountantBudgetsCopy(t *testing.T) {
	acc := NewAccountant(nil, nil)
	if _, err := acc.Observe(0.1); err != nil {
		t.Fatal(err)
	}
	b := acc.Budgets()
	b[0] = 99
	if got := acc.Budgets()[0]; got != 0.1 {
		t.Error("Budgets exposes internal state")
	}
}

func TestAccountantFromQuantifiers(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	acc := NewAccountantFromQuantifiers(q, q)
	if _, err := acc.Observe(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Observe(0.1); err != nil {
		t.Fatal(err)
	}
	tp, err := acc.TPL(1)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0.1 {
		t.Errorf("TPL(1) = %v, should exceed eps under correlation", tp)
	}
}
