package core

import "fmt"

// This file extends the paper's recurrences to time-inhomogeneous
// correlations: a different transition matrix per step. The paper
// assumes a time-homogeneous chain (Section III-A) and mentions richer
// correlation models as future work; the recurrences themselves only
// ever evaluate the loss function of the transition between two
// adjacent steps, so they generalize directly:
//
//	BPL(t) = L^B_t(BPL(t-1)) + eps_t
//
// where L^B_t is built from the backward transition matrix governing
// the (t-1, t) step. The same Theorem-4 machinery applies per step.

// BPLSeriesVarying computes backward privacy leakage when the backward
// correlation differs per transition: qbs[t-1] quantifies the transition
// into step t+1 (so len(qbs) = len(eps)-1; the first step has no
// incoming transition). Nil entries mean no correlation is known for
// that transition.
func BPLSeriesVarying(qbs []*Quantifier, eps []float64) ([]float64, error) {
	if err := validateBudgets(eps); err != nil {
		return nil, err
	}
	if len(qbs) != len(eps)-1 {
		return nil, fmt.Errorf("core: need %d transition quantifiers for %d steps, got %d",
			len(eps)-1, len(eps), len(qbs))
	}
	out := make([]float64, len(eps))
	out[0] = eps[0]
	for t := 1; t < len(eps); t++ {
		out[t] = qbs[t-1].LossValue(out[t-1]) + eps[t]
	}
	return out, nil
}

// FPLSeriesVarying mirrors BPLSeriesVarying for forward leakage:
// qfs[t-1] quantifies the forward correlation of the (t, t+1)
// transition (len(qfs) = len(eps)-1).
func FPLSeriesVarying(qfs []*Quantifier, eps []float64) ([]float64, error) {
	if err := validateBudgets(eps); err != nil {
		return nil, err
	}
	if len(qfs) != len(eps)-1 {
		return nil, fmt.Errorf("core: need %d transition quantifiers for %d steps, got %d",
			len(eps)-1, len(eps), len(qfs))
	}
	T := len(eps)
	out := make([]float64, T)
	out[T-1] = eps[T-1]
	for t := T - 2; t >= 0; t-- {
		out[t] = qfs[t].LossValue(out[t+1]) + eps[t]
	}
	return out, nil
}

// TPLSeriesVarying combines the inhomogeneous backward and forward
// series per Eq. (10)/(11).
func TPLSeriesVarying(qbs, qfs []*Quantifier, eps []float64) ([]float64, error) {
	bpl, err := BPLSeriesVarying(qbs, eps)
	if err != nil {
		return nil, err
	}
	fpl, err := FPLSeriesVarying(qfs, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eps))
	for t := range out {
		out[t] = bpl[t] + fpl[t] - eps[t]
	}
	return out, nil
}
