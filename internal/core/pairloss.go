// Package core implements the paper's primary contribution: quantifying
// and bounding the temporal privacy leakage (TPL) of differentially
// private mechanisms released continuously over temporally correlated
// data (Cao et al., "Quantifying Differential Privacy under Temporal
// Correlations", ICDE 2017).
//
// The package provides
//
//   - PairLoss: the polynomial-time solution of the privacy-leakage
//     linear-fractional program for one ordered pair of transition-matrix
//     rows (Theorem 4, the inner loop of Algorithm 1);
//   - Loss: the temporal privacy loss functions L^B and L^F of
//     Eqs. (23) and (24) — the maximum of PairLoss over all row pairs
//     (the outer loop of Algorithm 1);
//   - BPLSeries, FPLSeries, TPLSeries: the recurrences of Eqs. (13),
//     (15) and (10)/(11) producing backward, forward and total leakage at
//     every time point;
//   - Accountant: an online tracker of the same quantities for a
//     continuous-release server;
//   - Theorem5 / Supremum / BudgetForSupremum: the supremum of leakage
//     over infinite time and its inverse (Section V);
//   - composition helpers for Theorem 2 and Corollary 1.
//
// All leakages are natural-log based, matching the epsilon of standard
// differential privacy.
package core

import (
	"fmt"
	"math"
)

// PairResult is the outcome of solving the leakage linear-fractional
// program for one ordered pair of rows (q, d) at prior leakage alpha.
type PairResult struct {
	// Log is the optimal log-ratio: the loss increment contributed by
	// this pair, log( (Q(e^a-1)+1) / (D(e^a-1)+1) ). Always >= 0.
	Log float64
	// QSum and DSum are the sums over the final selected subset
	// (q = sum q+, d = sum d+ in the paper's notation). They are the
	// inputs to Theorem 5.
	QSum, DSum float64
	// Subset is the final selected index set (the paper's q+/d+
	// candidate positions), in increasing order. Nil when empty.
	Subset []int
}

// PairLoss solves the linear-fractional program (18)-(20) for the ordered
// row pair (q, d) and prior leakage alpha >= 0, following Algorithm 1
// lines 3-11: start from the candidate set {j : q_j > d_j} (Corollary 2)
// and repeatedly remove indices violating Inequality (21) until the
// remaining set satisfies Theorem 4.
//
// The computation is performed in log space, so it remains exact-ish and
// overflow-free for arbitrarily large alpha (the paper's Fig. 5(b) probes
// alpha up to 20; divergent BPL probes push far beyond).
//
// The rows need not be normalized, but all entries must be non-negative.
// PairLoss panics on negative entries or mismatched lengths: callers
// always pass rows of validated stochastic matrices.
func PairLoss(q, d []float64, alpha float64) PairResult {
	res := pairLoss(q, d, alpha, nil)
	// The scratch buffer was freshly allocated, but copy anyway so the
	// exported result never aliases internal state.
	if res.Subset != nil {
		res.Subset = append([]int(nil), res.Subset...)
	}
	return res
}

// pairLoss is PairLoss with an optional reusable scratch buffer for the
// candidate subset; the returned PairResult.Subset aliases that buffer
// and is only valid until the next call with the same scratch. The
// Quantifier's full-matrix scans use this to stay allocation-free per
// pair.
func pairLoss(q, d []float64, alpha float64, scratch []int) PairResult {
	if len(q) != len(d) {
		panic(fmt.Sprintf("core: PairLoss length mismatch %d vs %d", len(q), len(d)))
	}
	if alpha < 0 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("core: PairLoss alpha must be >= 0, got %v", alpha))
	}
	if alpha == 0 {
		// e^0 - 1 = 0: the ratio is 1 for every subset; no increment.
		return PairResult{}
	}

	// Candidate subset per Corollary 2, plus the row totals (1 for
	// stochastic rows; kept general so the ratio objective stays exact
	// for unnormalized inputs).
	subset := scratch[:0]
	if cap(subset) < len(q) {
		subset = make([]int, 0, len(q))
	}
	var sumQ, sumD float64
	for j := range q {
		if q[j] < 0 || d[j] < 0 {
			panic(fmt.Sprintf("core: PairLoss negative coefficient at %d (q=%v, d=%v)", j, q[j], d[j]))
		}
		sumQ += q[j]
		sumD += d[j]
		if q[j] > d[j] {
			subset = append(subset, j)
		}
	}
	if len(subset) == 0 || sumD == 0 {
		// No improving coordinate, or a zero-mass denominator row (the
		// ratio is then vacuous); either way no finite increment.
		return PairResult{}
	}

	var qs, ds float64
	var logNum, logDen float64
	for {
		qs, ds = 0, 0
		for _, j := range subset {
			qs += q[j]
			ds += d[j]
		}
		logNum = logAffineExp(qs, sumQ, alpha)
		logDen = logAffineExp(ds, sumD, alpha)
		// Remove every index violating Inequality (21): keep j iff
		// q_j * den > d_j * num. With num = Q*e^a + (1-Q) and
		// den = D*e^a + (1-D) this is e^a * A > B where
		// A = q_j*D - d_j*Q and B = d_j*(1-Q) - q_j*(1-D), a form that
		// neither overflows for huge alpha nor cancels catastrophically
		// (naive log-space comparison loses the strict inequality once
		// the e^a terms dominate).
		kept := subset[:0]
		removed := false
		for _, j := range subset {
			if keepIndex(q[j], d[j], qs, ds, sumQ, sumD, alpha) {
				kept = append(kept, j)
			} else {
				removed = true
			}
		}
		subset = kept
		if !removed {
			break
		}
		if len(subset) == 0 {
			return PairResult{}
		}
	}
	return PairResult{
		Log:    logNum - logDen,
		QSum:   qs,
		DSum:   ds,
		Subset: subset,
	}
}

// keepIndex reports whether index j with coefficients (qj, dj) satisfies
// the strict Inequality (21) against the subset sums (qs, ds) at prior
// leakage alpha: qj * den > dj * num, evaluated as e^alpha * A > B with
// A = qj*ds - dj*qs and B = dj*(sumQ-qs) - qj*(sumD-ds) (sums are 1 for
// stochastic rows). Comparing alpha with log(B/A) keeps the test exact
// for any alpha without computing e^alpha.
func keepIndex(qj, dj, qs, ds, sumQ, sumD, alpha float64) bool {
	a := qj*ds - dj*qs
	b := dj*(sumQ-qs) - qj*(sumD-ds)
	// Snap catastrophic-cancellation noise to exact zero: when the two
	// products agree to ~1e-14 relative, the difference is rounding
	// residue, and treating it as a genuine tiny slope would put the
	// decision threshold log(B/A) at ~30+, flipping the verdict for
	// large alpha (found by FuzzPairLossOracle: equal coefficients in
	// the subset make A exactly zero analytically but +-1 ulp in
	// floats).
	if math.Abs(a) <= 1e-14*(qj*ds+dj*qs) {
		a = 0
	}
	if math.Abs(b) <= 1e-14*(dj*(sumQ-qs)+qj*(sumD-ds)) {
		b = 0
	}
	switch {
	case a > 0:
		return b <= 0 || alpha > math.Log(b/a)
	case a == 0:
		return b < 0
	default: // a < 0: need e^alpha < B/A with both negative.
		return b < 0 && alpha < math.Log(b/a)
	}
}

// logAffineExp returns log( c*e^a + (total-c) ) computed stably for any
// a >= 0 and 0 <= c <= total (total is the row sum, 1 for stochastic
// rows). For c marginally above total from accumulated rounding it
// clamps to total.
func logAffineExp(c, total, a float64) float64 {
	if c <= 0 {
		return math.Log(total)
	}
	if c >= total {
		return a + math.Log(total)
	}
	// logsumexp( a + log c, log(total-c) )
	x := a + math.Log(c)
	y := math.Log(total - c)
	if x < y {
		x, y = y, x
	}
	return x + math.Log1p(math.Exp(y-x))
}
