package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
)

// diffMarshalLoss asserts that an engine surviving a marshal/unmarshal
// round trip evaluates bit-identically — not merely close — to the
// original across the alpha grid. Exact equality is the contract the
// on-disk cache rests on: a loaded engine must be indistinguishable
// from the compile it replaces.
func diffMarshalLoss(t *testing.T, c *markov.Chain, label string) {
	t.Helper()
	fresh := NewQuantifier(c)
	data, err := fresh.Engine().MarshalBinary()
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	loaded, err := UnmarshalEngine(data)
	if err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	adopted := NewQuantifier(c)
	if !adopted.AdoptEngine(loaded) {
		t.Fatalf("%s: adoption refused", label)
	}
	if got, want := adopted.Engine(), loaded; got != want {
		t.Fatalf("%s: adopted engine is not the loaded one", label)
	}
	for _, alpha := range engineAlphas {
		want := fresh.Loss(alpha)
		got := adopted.Loss(alpha)
		if got != want {
			t.Fatalf("%s alpha=%g: loaded engine %+v, fresh %+v", label, alpha, got, want)
		}
	}
	if fresh.Engine().Stats() != loaded.Stats() {
		t.Fatalf("%s: stats %+v round-tripped to %+v", label, fresh.Engine().Stats(), loaded.Stats())
	}
}

func TestEngineMarshalRoundTripCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(24)
		c, err := markov.UniformRandom(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		diffMarshalLoss(t, c, "dense")
	}
	for trial := 0; trial < 10; trial++ {
		diffMarshalLoss(t, sparseChain(t, rng, 4+rng.Intn(30), 3), "sparse")
	}
	id, err := markov.IdentityChain(5)
	if err != nil {
		t.Fatal(err)
	}
	zeroCol, err := markov.FromRows([][]float64{
		{0.5, 0.5, 0},
		{0.3, 0.7, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pointMass, err := markov.FromRows([][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := markov.UniformChain(5)
	if err != nil {
		t.Fatal(err)
	}
	diffMarshalLoss(t, id, "identity")
	diffMarshalLoss(t, zeroCol, "zero-column")
	diffMarshalLoss(t, pointMass, "point-mass")
	diffMarshalLoss(t, uni, "uniform")
	diffMarshalLoss(t, markov.Fig2Forward(), "fig2")
	diffMarshalLoss(t, markov.ModerateExample(), "moderate")
}

func TestUnmarshalEngineRejectsCorruption(t *testing.T) {
	c := markov.Fig2Forward()
	data, err := NewQuantifier(c).Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalEngine(data); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}

	// Truncations at every boundary-ish length must error, never panic.
	for _, cut := range []int{0, 1, engineHeaderSize - 1, engineHeaderSize, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := UnmarshalEngine(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}

	// Version skew.
	skew := append([]byte(nil), data...)
	skew[0] = engineWireVersion + 1
	if _, err := UnmarshalEngine(skew); err == nil {
		t.Fatal("version skew accepted")
	}

	// Inconsistent n vs stats.N.
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[1:], binary.LittleEndian.Uint64(bad[1:])+1)
	if _, err := UnmarshalEngine(bad); err == nil {
		t.Fatal("n / stats.N mismatch accepted")
	}

	// Segment count that disagrees with the byte length.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[1+8*6:], binary.LittleEndian.Uint64(bad[1+8*6:])+1)
	if _, err := UnmarshalEngine(bad); err == nil {
		t.Fatal("segment count mismatch accepted")
	}

	// NaN scalar inside a segment.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[engineHeaderSize:], math.Float64bits(math.NaN()))
	if _, err := UnmarshalEngine(bad); err == nil {
		t.Fatal("NaN segment scalar accepted")
	}

	// Out-of-range row index.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[engineHeaderSize+8*5:], 1<<20)
	if _, err := UnmarshalEngine(bad); err == nil {
		t.Fatal("out-of-range row index accepted")
	}
}

func TestAdoptEngineRefusals(t *testing.T) {
	c := markov.Fig2Forward()
	e := NewQuantifier(c).Engine()

	var nilQ *Quantifier
	if nilQ.AdoptEngine(e) {
		t.Fatal("nil quantifier adopted an engine")
	}
	if NewQuantifier(c).AdoptEngine(nil) {
		t.Fatal("nil engine adopted")
	}

	bigger, err := markov.UniformChain(e.N() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if NewQuantifier(bigger).AdoptEngine(e) {
		t.Fatal("state-space mismatch adopted")
	}

	q := NewQuantifier(c)
	own := q.Engine() // compiles
	if q.AdoptEngine(e) {
		t.Fatal("already-compiled quantifier adopted a replacement")
	}
	if q.Engine() != own {
		t.Fatal("adoption after compile replaced the engine")
	}
}
