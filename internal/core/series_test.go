package core

import (
	"math"
	"testing"

	"repro/internal/markov"
)

// paperFig3BPL is the BPL series printed in Fig. 3(a)(ii) of the paper:
// Lap(1/0.1) at t = 1..10 under P^B = (0.8 0.2; 0 1).
var paperFig3BPL = []float64{0.10, 0.18, 0.25, 0.30, 0.35, 0.39, 0.42, 0.45, 0.48, 0.50}

// paperFig3TPL is the TPL series printed in Fig. 3(c)(ii).
var paperFig3TPL = []float64{0.50, 0.56, 0.60, 0.62, 0.64, 0.64, 0.62, 0.60, 0.56, 0.50}

func TestBPLSeriesReproducesPaperFig3(t *testing.T) {
	qb := NewQuantifier(markov.ModerateExample())
	bpl, err := BPLSeries(qb, UniformBudgets(0.1, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range paperFig3BPL {
		if math.Abs(bpl[i]-want) > 0.005 { // paper prints 2 decimals
			t.Errorf("BPL[%d] = %v, paper prints %v", i+1, bpl[i], want)
		}
	}
}

func TestFPLSeriesIsMirroredBPL(t *testing.T) {
	// With the same chain as both backward and forward correlation and a
	// uniform budget, FPL is BPL reversed in time (Fig. 3(a) vs (b)).
	q := NewQuantifier(markov.ModerateExample())
	eps := UniformBudgets(0.1, 10)
	bpl, err := BPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	fpl, err := FPLSeries(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bpl {
		if math.Abs(bpl[i]-fpl[len(fpl)-1-i]) > 1e-12 {
			t.Errorf("FPL not mirrored at %d: %v vs %v", i, fpl[len(fpl)-1-i], bpl[i])
		}
	}
}

func TestTPLSeriesReproducesPaperFig3(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	tpl, err := TPLSeries(q, q, UniformBudgets(0.1, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range paperFig3TPL {
		if math.Abs(tpl[i]-want) > 0.005 {
			t.Errorf("TPL[%d] = %v, paper prints %v", i+1, tpl[i], want)
		}
	}
}

func TestTPLSymmetricUnderSameChains(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	tpl, err := TPLSeries(q, q, UniformBudgets(0.1, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tpl {
		j := len(tpl) - 1 - i
		if math.Abs(tpl[i]-tpl[j]) > 1e-12 {
			t.Errorf("TPL not symmetric: tpl[%d]=%v tpl[%d]=%v", i, tpl[i], j, tpl[j])
		}
	}
}

func TestSeriesNoCorrelationReducesToPL0(t *testing.T) {
	eps := []float64{0.1, 0.2, 0.3}
	bpl, err := BPLSeries(nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	fpl, err := FPLSeries(nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := TPLSeries(nil, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range eps {
		if bpl[i] != e || fpl[i] != e || tpl[i] != e {
			t.Errorf("t=%d: bpl=%v fpl=%v tpl=%v, want all %v", i, bpl[i], fpl[i], tpl[i], e)
		}
	}
}

func TestSeriesIdentityChainLinearGrowth(t *testing.T) {
	// Example 2: strongest correlation accumulates linearly; BPL(t) = t*eps.
	id, _ := markov.IdentityChain(2)
	qb := NewQuantifier(id)
	eps := UniformBudgets(0.1, 10)
	bpl, err := BPLSeries(qb, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bpl {
		want := 0.1 * float64(i+1)
		if math.Abs(bpl[i]-want) > 1e-12 {
			t.Errorf("BPL[%d] = %v, want %v", i+1, bpl[i], want)
		}
	}
	// And event-level TPL at time t under both correlations equals T*eps
	// at every t (Table II extreme case: event-level == user-level).
	tpl, err := TPLSeries(qb, qb, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tpl {
		if math.Abs(tpl[i]-1.0) > 1e-12 {
			t.Errorf("TPL[%d] = %v, want 1.0 (= T*eps)", i+1, tpl[i])
		}
	}
}

func TestSeriesValidation(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	for _, eps := range [][]float64{nil, {}, {0.1, 0}, {0.1, -1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := BPLSeries(q, eps); err == nil {
			t.Errorf("BPLSeries(%v) should fail", eps)
		}
		if _, err := FPLSeries(q, eps); err == nil {
			t.Errorf("FPLSeries(%v) should fail", eps)
		}
		if _, err := TPLSeries(q, q, eps); err == nil {
			t.Errorf("TPLSeries(%v) should fail", eps)
		}
	}
}

func TestBPLMonotoneUnderUniformBudget(t *testing.T) {
	// With a uniform budget BPL is non-decreasing in t (leakage only
	// accumulates).
	qb := NewQuantifier(markov.Fig4aExample())
	bpl, err := BPLSeries(qb, UniformBudgets(0.23, 50))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bpl); i++ {
		if bpl[i] < bpl[i-1]-1e-12 {
			t.Errorf("BPL decreased at %d: %v < %v", i, bpl[i], bpl[i-1])
		}
	}
}

func TestTPLAtLeastEps(t *testing.T) {
	// TPL(t) >= eps_t always: temporal correlations cannot reduce the
	// per-step leakage below PL0 (alpha >= eps in Table II).
	qb := NewQuantifier(markov.Fig7Backward())
	qf := NewQuantifier(markov.Fig7Forward())
	eps := []float64{0.3, 0.1, 0.5, 0.2, 0.4}
	tpl, err := TPLSeries(qb, qf, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range eps {
		if tpl[i] < e-1e-12 {
			t.Errorf("TPL[%d] = %v below eps %v", i, tpl[i], e)
		}
	}
}

func TestMaxTPL(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	eps := UniformBudgets(0.1, 10)
	m, err := MaxTPL(q, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	tpl, _ := TPLSeries(q, q, eps)
	want := math.Inf(-1)
	for _, v := range tpl {
		want = math.Max(want, v)
	}
	if m != want {
		t.Errorf("MaxTPL = %v, want %v", m, want)
	}
	if _, err := MaxTPL(q, q, nil); err == nil {
		t.Error("empty budgets should fail")
	}
}

func TestUniformBudgets(t *testing.T) {
	b := UniformBudgets(0.5, 3)
	if len(b) != 3 || b[0] != 0.5 || b[2] != 0.5 {
		t.Errorf("UniformBudgets = %v", b)
	}
}

func TestSingleStepSeries(t *testing.T) {
	q := NewQuantifier(markov.ModerateExample())
	eps := []float64{0.7}
	tpl, err := TPLSeries(q, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tpl[0]-0.7) > 1e-12 {
		t.Errorf("single-release TPL = %v, want eps", tpl[0])
	}
}
