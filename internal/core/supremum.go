package core

import (
	"fmt"
	"math"
)

// DivergenceCap is the leakage value beyond which the supremum search
// declares the sequence unbounded. Any realistic privacy target is far
// below it, and capping keeps the search clear of floating-point
// overflow in e^alpha.
const DivergenceCap = 500.0

// Theorem5 evaluates the closed-form supremum of BPL (or FPL) over
// infinite time from the paper's Theorem 5, given the scalars q and d of
// the maximizing row pair (q = sum q+, d = sum d+) and the per-step
// budget eps of an eps-DP mechanism applied at every time point.
//
// The four cases:
//
//	d != 0                          -> log of the positive root of
//	                                   d*u^2 + (1-d-q*e^eps)*u - e^eps*(1-q) = 0
//	d == 0, q*e^eps < 1             -> log( e^eps*(1-q) / (1-q*e^eps) )
//	d == 0, q != 1, q*e^eps >= 1    -> no supremum
//	d == 0, q == 1                  -> no supremum (strongest correlation)
//
// The returned bool reports whether the supremum exists. q == d (zero
// loss increment) yields eps, consistent with both branches.
func Theorem5(q, d, eps float64) (float64, bool) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("core: Theorem5 eps must be finite and positive, got %v", eps))
	}
	if q < 0 || d < 0 || q > 1+1e-9 || d > 1+1e-9 {
		panic(fmt.Sprintf("core: Theorem5 q, d must be in [0,1], got q=%v d=%v", q, d))
	}
	ee := math.Exp(eps)
	if d == 0 {
		if q == 0 {
			// Zero-loss pair: the recurrence is alpha = eps.
			return eps, true
		}
		if q*ee >= 1 {
			return 0, false
		}
		return eps + math.Log((1-q)/(1-q*ee)), true
	}
	// Positive root of d*u^2 + (1-d-q*ee)*u - ee*(1-q) = 0.
	b := d + q*ee - 1 // note: u = (b + sqrt(b^2 + 4*d*ee*(1-q))) / (2d)
	disc := b*b + 4*d*ee*(1-q)
	u := (b + math.Sqrt(disc)) / (2 * d)
	if u <= 0 || math.IsNaN(u) {
		return 0, false
	}
	return math.Log(u), true
}

// BudgetForSupremum inverts Theorem 5: it returns the per-step budget
// eps that makes the infinite-time supremum of BPL (or FPL) equal
// exactly alpha, for the maximizing pair scalars q and d. From the
// fixed-point equation alpha = L(alpha) + eps with u = e^alpha:
//
//	eps = log( u * (d*(u-1)+1) / (q*(u-1)+1) ).
//
// For the strongest correlation (q = 1, d = 0) the only solution is
// eps = 0, which is not a usable budget; an error is returned.
func BudgetForSupremum(q, d, alpha float64) (float64, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return 0, fmt.Errorf("core: target supremum must be finite and positive, got %v", alpha)
	}
	if q < 0 || d < 0 || q > 1+1e-9 || d > 1+1e-9 {
		return 0, fmt.Errorf("core: q, d must be in [0,1], got q=%v d=%v", q, d)
	}
	u := math.Exp(alpha)
	eps := math.Log(u * (d*(u-1) + 1) / (q*(u-1) + 1))
	if eps <= 0 {
		return 0, fmt.Errorf("core: no positive budget achieves supremum %v under correlation q=%v d=%v", alpha, q, d)
	}
	return eps, nil
}

// Supremum searches for the supremum of the leakage recurrence
// alpha_{t+1} = L(alpha_t) + eps over infinite time for the given
// quantifier (Algorithm-1 based loss) and per-step budget eps.
//
// It iterates the recurrence, and at every step also tries the
// closed-form Theorem 5 using the currently maximizing pair; once the
// closed-form candidate is a verified fixed point the search returns it
// directly, which converges in a handful of iterations in practice. The
// returned bool is false when the leakage grows past DivergenceCap or
// the increments fail to shrink, matching the "not exist" cases of
// Theorem 5.
//
// A nil quantifier (no correlation) returns (eps, true).
func Supremum(qt *Quantifier, eps float64) (float64, bool) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("core: Supremum eps must be finite and positive, got %v", eps))
	}
	if qt == nil {
		return eps, true
	}
	const maxIter = 100000
	const tol = 1e-12
	alpha := eps
	for iter := 0; iter < maxIter; iter++ {
		res := qt.Loss(alpha)
		// Closed-form attempt with the current maximizing pair.
		if res.RowQ >= 0 {
			if cand, ok := Theorem5(res.QSum, res.DSum, eps); ok && cand >= alpha-1e-9 && cand < DivergenceCap {
				// Verify cand is a fixed point of the full loss function
				// (the maximizing pair may differ at cand).
				if resAt := qt.Loss(cand); math.Abs(resAt.Log+eps-cand) <= 1e-9*math.Max(1, cand) {
					return cand, true
				}
			}
		}
		next := res.Log + eps
		if next > DivergenceCap {
			return 0, false
		}
		if next-alpha <= tol {
			return next, true
		}
		alpha = next
	}
	// The recurrence is still creeping after maxIter steps: it is either
	// converging extremely slowly or diverging sublinearly. Distinguish
	// by probing whether a fixed point exists above the current value.
	res := qt.Loss(alpha)
	if cand, ok := Theorem5(res.QSum, res.DSum, eps); ok && cand < DivergenceCap && cand >= alpha-1e-6 {
		return cand, true
	}
	return 0, false
}
