// Package adversary grounds the paper's leakage definitions in an
// executable attacker. It computes, by exact enumeration, the true
// backward privacy leakage (Definition 6) of a *concrete* discrete
// mechanism sequence against adversary_T(P^B): the supremum over output
// sequences r^1..r^t and value pairs (l, l') of
//
//	log Pr(r^1..r^t | l_t = l) / Pr(r^1..r^t | l_t = l')
//
// with the conditional sequence probabilities propagated through the
// backward correlation exactly as in Eq. (12).
//
// This is the semantic cross-check for the analytical machinery in
// package core: Algorithm 1's BPL is the supremum over *all* mechanisms
// with the given per-step budget, so for any concrete mechanism the
// exact leakage computed here must never exceed it — and must meet it
// in the extremal cases (identity correlation, no correlation).
//
// Enumeration is exponential in t (outputs^t sequences), so this is a
// verification tool for small instances, not a production path.
package adversary

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/matrix"
)

// DiscreteMechanism is a memoryless randomized mechanism over a finite
// output alphabet: Response.At(l, r) = Pr(output = r | true value = l).
type DiscreteMechanism struct {
	Response *matrix.Matrix // values x outputs, row-stochastic
}

// NewDiscreteMechanism validates the response matrix.
func NewDiscreteMechanism(response *matrix.Matrix) (*DiscreteMechanism, error) {
	if response == nil {
		return nil, errors.New("adversary: nil response matrix")
	}
	if !response.IsRowStochastic(1e-9) {
		return nil, errors.New("adversary: response matrix is not row-stochastic")
	}
	return &DiscreteMechanism{Response: response.Clone()}, nil
}

// Values returns the size of the input domain.
func (m *DiscreteMechanism) Values() int { return m.Response.Rows() }

// Outputs returns the size of the output alphabet.
func (m *DiscreteMechanism) Outputs() int { return m.Response.Cols() }

// PL0 returns the mechanism's standalone privacy leakage in the sense
// of Definition 2: sup over outputs r and value pairs (l, l') of
// log Pr(r|l)/Pr(r|l'). It is +Inf when some output is possible under
// one value and impossible under another.
func (m *DiscreteMechanism) PL0() float64 {
	worst := 0.0
	for r := 0; r < m.Outputs(); r++ {
		for l := 0; l < m.Values(); l++ {
			for lp := 0; lp < m.Values(); lp++ {
				if l == lp {
					continue
				}
				p, pp := m.Response.At(l, r), m.Response.At(lp, r)
				if p == 0 {
					continue
				}
				if pp == 0 {
					return math.Inf(1)
				}
				if v := math.Log(p / pp); v > worst {
					worst = v
				}
			}
		}
	}
	return worst
}

// RandomizedResponse builds the n-ary randomized-response mechanism with
// privacy budget eps: the true value is reported with probability
// e^eps / (e^eps + n - 1) and each other value with probability
// 1 / (e^eps + n - 1). Its PL0 is exactly eps.
func RandomizedResponse(eps float64, n int) (*DiscreteMechanism, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("adversary: eps must be finite and positive, got %v", eps)
	}
	if n < 2 {
		return nil, fmt.Errorf("adversary: need at least two values, got %d", n)
	}
	den := math.Exp(eps) + float64(n) - 1
	m := matrix.New(n, n)
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			if l == r {
				m.Set(l, r, math.Exp(eps)/den)
			} else {
				m.Set(l, r, 1/den)
			}
		}
	}
	return NewDiscreteMechanism(m)
}

// ExactBPL computes the exact backward privacy leakage at time t of
// releasing with the given per-step mechanisms (mechs[k] used at step
// k+1; len(mechs) = t) against an adversary with backward correlation
// pb. pb == nil means no correlation is known.
//
// The likelihood recursion follows Eq. (12):
//
//	f_1(l)  = Pr(r^1 | l)
//	f_k(l)  = Pr(r^k | l) * sum_{l'} Pr(l_{k-1} = l' | l_k = l) f_{k-1}(l')
//
// and the leakage is max over output sequences and value pairs of the
// log ratio of f_t.
func ExactBPL(pb *markov.Chain, mechs []*DiscreteMechanism) (float64, error) {
	if len(mechs) == 0 {
		return 0, errors.New("adversary: need at least one mechanism")
	}
	n := mechs[0].Values()
	for i, m := range mechs {
		if m.Values() != n {
			return 0, fmt.Errorf("adversary: mechanism %d has %d values, want %d", i, m.Values(), n)
		}
	}
	if pb != nil && pb.N() != n {
		return 0, fmt.Errorf("adversary: chain has %d states for %d values", pb.N(), n)
	}
	worst := 0.0
	// Depth-first over output sequences, carrying the likelihood vector.
	var rec func(step int, f matrix.Vector)
	rec = func(step int, f matrix.Vector) {
		if step == len(mechs) {
			for l := 0; l < n; l++ {
				for lp := 0; lp < n; lp++ {
					if l == lp || f[l] == 0 || f[lp] == 0 {
						continue
					}
					if v := math.Log(f[l] / f[lp]); v > worst {
						worst = v
					}
				}
			}
			return
		}
		mech := mechs[step]
		// Propagate through the backward correlation before applying
		// the step's response likelihood (no propagation at step 0).
		base := f
		if step > 0 {
			base = matrix.NewVector(n)
			if pb == nil {
				// Without correlation knowledge the previous outputs
				// carry no information about l_t: the prior resets.
				for l := 0; l < n; l++ {
					base[l] = 1
				}
			} else {
				for l := 0; l < n; l++ {
					s := 0.0
					for lprev := 0; lprev < n; lprev++ {
						s += pb.Prob(l, lprev) * f[lprev]
					}
					base[l] = s
				}
			}
		}
		for r := 0; r < mech.Outputs(); r++ {
			next := matrix.NewVector(n)
			for l := 0; l < n; l++ {
				next[l] = base[l] * mech.Response.At(l, r)
			}
			rec(step+1, next)
		}
	}
	init := matrix.NewVector(n)
	for l := 0; l < n; l++ {
		init[l] = 1
	}
	rec(0, init)
	return worst, nil
}

// ExactFPL computes the exact forward privacy leakage (Definition 7) at
// the FIRST time step of releasing with the given mechanisms: the
// supremum over output sequences r^1..r^T and value pairs (l, l') of
//
//	log Pr(r^1..r^T | l_1 = l) / Pr(r^1..r^T | l_1 = l')
//
// with likelihoods propagated through the forward correlation pf
// (mirror of Eq. (14)): the value at time 1 constrains future values,
// so future releases leak about it. pf == nil means no correlation.
//
// By the time-symmetry of the framework, ExactFPL with chain P equals
// ExactBPL with the same P — both recursions evaluate identical sums —
// which the tests assert; it exists as a separate entry point so the
// forward semantics are independently exercised.
func ExactFPL(pf *markov.Chain, mechs []*DiscreteMechanism) (float64, error) {
	if len(mechs) == 0 {
		return 0, errors.New("adversary: need at least one mechanism")
	}
	n := mechs[0].Values()
	for i, m := range mechs {
		if m.Values() != n {
			return 0, fmt.Errorf("adversary: mechanism %d has %d values, want %d", i, m.Values(), n)
		}
	}
	if pf != nil && pf.N() != n {
		return 0, fmt.Errorf("adversary: chain has %d states for %d values", pf.N(), n)
	}
	worst := 0.0
	// g_t(l) = Pr(r^t..r^T | l_t = l), evaluated by backward recursion
	// over the suffix; enumeration is over suffixes, depth-first from
	// the last step toward the first.
	var rec func(step int, g func(l int) float64)
	rec = func(step int, g func(l int) float64) {
		if step < 0 {
			for l := 0; l < n; l++ {
				for lp := 0; lp < n; lp++ {
					gl, glp := g(l), g(lp)
					if l == lp || gl == 0 || glp == 0 {
						continue
					}
					if v := math.Log(gl / glp); v > worst {
						worst = v
					}
				}
			}
			return
		}
		mech := mechs[step]
		for r := 0; r < mech.Outputs(); r++ {
			next := make([]float64, n)
			for l := 0; l < n; l++ {
				// Pr(r^step..r^T | l_step = l) =
				// Pr(r | l) * sum_{l'} Pr(l_{step+1} = l' | l) g(l').
				prop := 1.0
				if step < len(mechs)-1 {
					prop = 0
					if pf == nil {
						// No forward correlation: the future says nothing;
						// marginalize to the (constant) total suffix mass.
						// With no information the suffix factor is equal
						// for all l; use 1 after checking g is defined.
						prop = 1
					} else {
						for lnext := 0; lnext < n; lnext++ {
							prop += pf.Prob(l, lnext) * g(lnext)
						}
					}
				}
				next[l] = mech.Response.At(l, r) * prop
			}
			snapshot := next
			rec(step-1, func(l int) float64 { return snapshot[l] })
		}
	}
	rec(len(mechs)-1, func(int) float64 { return 1 })
	return worst, nil
}

// SequenceCount returns outputs^steps, the number of output sequences
// ExactBPL enumerates, so callers can bound the work before running.
func SequenceCount(outputs, steps int) float64 {
	return math.Pow(float64(outputs), float64(steps))
}

// AttackHMM assembles the adversary's generative model of the noisy
// release as a hidden Markov model: hidden states evolve by the
// victim's forward chain, and each state emits a mechanism output with
// the mechanism's response probabilities. Viterbi decoding on the model
// is the trajectory-reconstruction attack — the MAP estimate of the
// victim's whole path from the published noisy values. initial may be
// nil for a uniform prior.
func AttackHMM(forward *markov.Chain, mech *DiscreteMechanism, initial matrix.Vector) (*markov.HMM, error) {
	if forward == nil || mech == nil {
		return nil, errors.New("adversary: nil chain or mechanism")
	}
	if forward.N() != mech.Values() {
		return nil, fmt.Errorf("adversary: chain has %d states, mechanism expects %d values", forward.N(), mech.Values())
	}
	if initial == nil {
		initial = matrix.Uniform(forward.N())
	}
	return markov.NewHMM(forward.P(), mech.Response, initial)
}

// Posterior computes the adversary's Bayesian posterior over the
// victim's value at time t after observing the given output sequence,
// starting from a uniform prior — the inference attack of Example 1
// made executable. outputs[k] is the observed output at step k+1.
func Posterior(pb *markov.Chain, mechs []*DiscreteMechanism, outputs []int) (matrix.Vector, error) {
	if len(outputs) != len(mechs) {
		return nil, fmt.Errorf("adversary: %d outputs for %d mechanisms", len(outputs), len(mechs))
	}
	if len(mechs) == 0 {
		return nil, errors.New("adversary: need at least one step")
	}
	n := mechs[0].Values()
	f := matrix.NewVector(n)
	for l := 0; l < n; l++ {
		f[l] = 1
	}
	for step, m := range mechs {
		if outputs[step] < 0 || outputs[step] >= m.Outputs() {
			return nil, fmt.Errorf("adversary: output %d at step %d outside [0,%d)", outputs[step], step, m.Outputs())
		}
		if step > 0 {
			prev := f
			f = matrix.NewVector(n)
			if pb == nil {
				for l := 0; l < n; l++ {
					f[l] = 1
				}
			} else {
				for l := 0; l < n; l++ {
					s := 0.0
					for lprev := 0; lprev < n; lprev++ {
						s += pb.Prob(l, lprev) * prev[lprev]
					}
					f[l] = s
				}
			}
		}
		for l := 0; l < n; l++ {
			f[l] *= m.Response.At(l, outputs[step])
		}
	}
	return f.Normalize()
}
