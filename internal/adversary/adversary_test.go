package adversary

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/matrix"
)

func rr(t *testing.T, eps float64, n int) *DiscreteMechanism {
	t.Helper()
	m, err := RandomizedResponse(eps, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func repeat(m *DiscreteMechanism, k int) []*DiscreteMechanism {
	out := make([]*DiscreteMechanism, k)
	for i := range out {
		out[i] = m
	}
	return out
}

func TestRandomizedResponsePL0(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1, 2} {
		for _, n := range []int{2, 3, 5} {
			m := rr(t, eps, n)
			if got := m.PL0(); math.Abs(got-eps) > 1e-12 {
				t.Errorf("eps=%v n=%d: PL0 = %v", eps, n, got)
			}
		}
	}
	if _, err := RandomizedResponse(0, 2); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := RandomizedResponse(1, 1); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestNewDiscreteMechanismValidation(t *testing.T) {
	if _, err := NewDiscreteMechanism(nil); err == nil {
		t.Error("nil should fail")
	}
	bad := matrix.MustFromRows([][]float64{{0.5, 0.6}})
	if _, err := NewDiscreteMechanism(bad); err == nil {
		t.Error("non-stochastic should fail")
	}
}

func TestPL0InfiniteForDeterministic(t *testing.T) {
	det, err := NewDiscreteMechanism(matrix.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(det.PL0(), 1) {
		t.Error("deterministic mechanism should have infinite PL0")
	}
}

func TestExactBPLSingleStepEqualsPL0(t *testing.T) {
	m := rr(t, 0.3, 2)
	got, err := ExactBPL(markov.ModerateExample(), repeat(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("1-step BPL = %v, want PL0 = 0.3", got)
	}
}

func TestExactBPLNoCorrelationStaysPL0(t *testing.T) {
	// Without correlation knowledge, past outputs say nothing about the
	// current value: BPL(t) = PL0 for every t (Fig. 3(a)(iii)).
	m := rr(t, 0.4, 2)
	for steps := 1; steps <= 5; steps++ {
		got, err := ExactBPL(nil, repeat(m, steps))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-0.4) > 1e-12 {
			t.Errorf("steps=%d: BPL = %v, want 0.4", steps, got)
		}
	}
}

func TestExactBPLIdentityChainComposesLinearly(t *testing.T) {
	// Example 2: under the strongest correlation, releasing t times is
	// releasing the same value t times: exact BPL = t * eps, meeting the
	// analytical bound with equality.
	id, err := markov.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.25
	m := rr(t, eps, 2)
	for steps := 1; steps <= 6; steps++ {
		got, err := ExactBPL(id, repeat(m, steps))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(steps) * eps
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("steps=%d: BPL = %v, want %v", steps, got, want)
		}
	}
}

func TestExactBPLNeverExceedsAlgorithm1Bound(t *testing.T) {
	// The semantic soundness of the whole framework: Algorithm 1's BPL
	// is the supremum over all mechanisms with the per-step budget, so
	// the exact leakage of randomized response must stay within it —
	// for several correlations and budgets.
	chains := map[string]*markov.Chain{
		"moderate": markov.ModerateExample(),
		"fig4a":    markov.Fig4aExample(),
		"fig2fwd":  markov.Fig2Backward(),
	}
	for name, chain := range chains {
		n := chain.N()
		for _, eps := range []float64{0.2, 0.7} {
			m := rr(t, eps, n)
			steps := 5
			exact, err := ExactBPL(chain, repeat(m, steps))
			if err != nil {
				t.Fatal(err)
			}
			bound, err := core.BPLSeries(core.NewQuantifier(chain), core.UniformBudgets(eps, steps))
			if err != nil {
				t.Fatal(err)
			}
			if exact > bound[steps-1]+1e-9 {
				t.Errorf("%s eps=%v: exact leakage %v exceeds Algorithm-1 bound %v",
					name, eps, exact, bound[steps-1])
			}
			// Correlation must amplify the concrete mechanism too.
			if exact <= eps-1e-9 {
				t.Errorf("%s eps=%v: exact leakage %v below single-step PL0", name, eps, exact)
			}
		}
	}
}

func TestExactBPLMonotoneInSteps(t *testing.T) {
	chain := markov.ModerateExample()
	m := rr(t, 0.3, 2)
	prev := 0.0
	for steps := 1; steps <= 6; steps++ {
		got, err := ExactBPL(chain, repeat(m, steps))
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Errorf("steps=%d: BPL decreased: %v < %v", steps, got, prev)
		}
		prev = got
	}
}

func TestExactBPLValidation(t *testing.T) {
	if _, err := ExactBPL(nil, nil); err == nil {
		t.Error("no mechanisms should fail")
	}
	m2 := rr(t, 0.5, 2)
	m3 := rr(t, 0.5, 3)
	if _, err := ExactBPL(nil, []*DiscreteMechanism{m2, m3}); err == nil {
		t.Error("mismatched domains should fail")
	}
	three := markov.Fig2Forward()
	if _, err := ExactBPL(three, repeat(m2, 2)); err == nil {
		t.Error("chain/domain mismatch should fail")
	}
}

func TestExactFPLMirrorsExactBPL(t *testing.T) {
	// The forward and backward recursions are structurally identical, so
	// the two exact leakages coincide for the same chain and mechanisms.
	chains := []*markov.Chain{
		markov.ModerateExample(),
		markov.Fig4aExample(),
		nil,
	}
	m := rr(t, 0.35, 2)
	for i, chain := range chains {
		for steps := 1; steps <= 5; steps++ {
			b, err := ExactBPL(chain, repeat(m, steps))
			if err != nil {
				t.Fatal(err)
			}
			f, err := ExactFPL(chain, repeat(m, steps))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(b-f) > 1e-9 {
				t.Errorf("chain %d steps %d: BPL %v vs FPL %v", i, steps, b, f)
			}
		}
	}
}

func TestExactFPLNeverExceedsAlgorithm1Bound(t *testing.T) {
	chain := markov.Fig7Forward()
	eps := 0.4
	m := rr(t, eps, 2)
	steps := 5
	exact, err := ExactFPL(chain, repeat(m, steps))
	if err != nil {
		t.Fatal(err)
	}
	// FPL at the first time point equals the last entry of the reversed
	// series: FPLSeries counts from the release end.
	fpl, err := core.FPLSeries(core.NewQuantifier(chain), core.UniformBudgets(eps, steps))
	if err != nil {
		t.Fatal(err)
	}
	if exact > fpl[0]+1e-9 {
		t.Errorf("exact FPL %v exceeds analytical %v", exact, fpl[0])
	}
	if exact <= eps-1e-9 {
		t.Errorf("exact FPL %v below single-step PL0", exact)
	}
}

func TestExactFPLValidation(t *testing.T) {
	if _, err := ExactFPL(nil, nil); err == nil {
		t.Error("no mechanisms should fail")
	}
	m2 := rr(t, 0.5, 2)
	m3 := rr(t, 0.5, 3)
	if _, err := ExactFPL(nil, []*DiscreteMechanism{m2, m3}); err == nil {
		t.Error("mismatched domains should fail")
	}
	three := markov.Fig2Forward()
	if _, err := ExactFPL(three, repeat(m2, 2)); err == nil {
		t.Error("chain/domain mismatch should fail")
	}
}

func TestPosteriorSharpensUnderCorrelation(t *testing.T) {
	// Observing consistent outputs under a sticky chain concentrates the
	// posterior far beyond a single-observation posterior.
	id, err := markov.IdentityChain(2)
	if err != nil {
		t.Fatal(err)
	}
	m := rr(t, 0.5, 2)
	one, err := Posterior(id, repeat(m, 1), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	six, err := Posterior(id, repeat(m, 6), []int{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if six[0] <= one[0] {
		t.Errorf("posterior should sharpen: %v -> %v", one[0], six[0])
	}
	if six[0] < 0.94 {
		t.Errorf("six consistent observations under identity chain should be near-certain, got %v", six[0])
	}
	// Without correlation the posterior after many steps equals the
	// single-step posterior (only the last output matters).
	flat, err := Posterior(nil, repeat(m, 6), []int{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat[0]-one[0]) > 1e-12 {
		t.Errorf("uncorrelated posterior %v should equal single-step %v", flat[0], one[0])
	}
}

func TestPosteriorValidation(t *testing.T) {
	m := rr(t, 0.5, 2)
	if _, err := Posterior(nil, repeat(m, 2), []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Posterior(nil, nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Posterior(nil, repeat(m, 1), []int{5}); err == nil {
		t.Error("out-of-range output should fail")
	}
}

func TestSequenceCount(t *testing.T) {
	if got := SequenceCount(2, 10); got != 1024 {
		t.Errorf("SequenceCount = %v", got)
	}
}

func TestRRExtremalityIsBinarySpecific(t *testing.T) {
	// Companion to expt's TestSoundnessBinaryRRIsExtremal: the bound is
	// TIGHT for binary randomized response but strictly LOOSE for n >= 3
	// — n-ary RR has a single free parameter and cannot realize the
	// likelihood-ratio vector the worst-case mechanism needs, so the gap
	// to the Algorithm-1 supremum opens and grows with the horizon.
	chain := markov.Fig2Backward() // 3-state
	eps := 0.3
	m := rr(t, eps, 3)
	var prevGap float64
	for steps := 2; steps <= 5; steps++ {
		exact, err := ExactBPL(chain, repeat(m, steps))
		if err != nil {
			t.Fatal(err)
		}
		bound, err := core.BPLSeries(core.NewQuantifier(chain), core.UniformBudgets(eps, steps))
		if err != nil {
			t.Fatal(err)
		}
		gap := bound[steps-1] - exact
		if gap <= 1e-6 {
			t.Errorf("steps=%d: expected a strict gap for 3-state RR, got %v", steps, gap)
		}
		if gap < prevGap {
			t.Errorf("steps=%d: gap should grow with the horizon: %v -> %v", steps, prevGap, gap)
		}
		prevGap = gap
	}
}

func TestAttackHMMReconstructsTrajectory(t *testing.T) {
	// A sticky victim released through randomized response: Viterbi on
	// the attack HMM must reconstruct the hidden trajectory better than
	// taking each noisy output at face value.
	sticky := markov.MustNew(matrix.MustFromRows([][]float64{
		{0.97, 0.03},
		{0.03, 0.97},
	}))
	mech := rr(t, 0.7, 2)
	hmm, err := AttackHMM(sticky, mech, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	const T, trials = 60, 50
	var viterbiHits, naiveHits, total int
	for trial := 0; trial < trials; trial++ {
		states, obs, err := hmm.Sample(rng, T)
		if err != nil {
			t.Fatal(err)
		}
		path, _, err := hmm.Viterbi(obs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range states {
			total++
			if path[i] == states[i] {
				viterbiHits++
			}
			if obs[i] == states[i] {
				naiveHits++
			}
		}
	}
	vAcc := float64(viterbiHits) / float64(total)
	nAcc := float64(naiveHits) / float64(total)
	if vAcc <= nAcc {
		t.Errorf("Viterbi accuracy %.3f should beat naive %.3f (the whole point of the attack)", vAcc, nAcc)
	}
	if vAcc < 0.85 {
		t.Errorf("Viterbi accuracy %.3f implausibly low for a 0.97-sticky chain", vAcc)
	}
}

func TestAttackHMMValidation(t *testing.T) {
	m := rr(t, 0.5, 2)
	if _, err := AttackHMM(nil, m, nil); err == nil {
		t.Error("nil chain should fail")
	}
	if _, err := AttackHMM(markov.ModerateExample(), nil, nil); err == nil {
		t.Error("nil mechanism should fail")
	}
	three := markov.Fig2Forward()
	if _, err := AttackHMM(three, m, nil); err == nil {
		t.Error("domain mismatch should fail")
	}
	if _, err := AttackHMM(markov.ModerateExample(), m, matrix.Vector{0.9, 0.2}); err == nil {
		t.Error("invalid initial distribution should fail")
	}
}
