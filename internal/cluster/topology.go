// Package cluster implements the horizontal sharding plane for tplserved:
// a consistent-hash topology that maps session names to shards, and an HTTP
// router that proxies v1/v2 traffic to the owning shard.
//
// Sessions — not users — are the placement unit: every write endpoint is
// scoped to a session, a session's engine state is a self-contained portable
// value (snapshot/restore), and the per-session stepMu already serializes its
// hot path, so a session never needs cross-shard coordination. Placing whole
// sessions keeps the ingest fast path exactly as cheap as single-node.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// DefaultRingSize is the number of hash-ring slots when none is configured.
// It only bounds placement granularity (sessions hash onto slots, slots map
// onto shards); 1024 slots keep the per-shard load imbalance small for any
// realistic shard count while the topology document stays tiny.
const DefaultRingSize = 1024

// Shard is one tplserved ingest process in the cluster.
type Shard struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Topology is the versioned cluster placement document served at
// GET /v2/topology. Placement is deterministic given the document: a session
// hashes onto a fixed-size ring slot (FNV-1a 64), and each slot is owned by
// the shard winning rendezvous hashing over (slot, shard ID). Overrides pin
// individual sessions to a shard regardless of the ring — the router records
// one after a migration. Version increases on every observable change so
// clients can cheaply detect staleness.
//
//tplvet:wire v1 schema=0104c280bcd7
type Topology struct {
	Version   int               `json:"version"`
	RingSize  int               `json:"ring_size"`
	Shards    []Shard           `json:"shards"`
	Overrides map[string]string `json:"overrides,omitempty"`
}

// fnv64 is FNV-1a 64 over s, matching the registry's stripe hash idiom.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ParseShards splits a comma-separated shard list. Entries are either
// bare addresses ("http://a:1,http://b:1"), with IDs assigned
// positionally ("shard-0", "shard-1", ...) so the same -shards flag
// always yields the same placement, or explicit "id=addr" pairs
// ("a=http://a:1,b=http://b:1") — rendezvous hashing keys on the ID,
// so a named shard can change address without re-homing a single
// slot. The two forms must not be mixed: positional IDs shift when
// entries are inserted, which would silently re-place sessions.
func ParseShards(list string) ([]Shard, error) {
	var entries []string
	for _, raw := range strings.Split(list, ",") {
		if e := strings.TrimSpace(raw); e != "" {
			entries = append(entries, e)
		}
	}
	return ParseShardList(entries)
}

// ParseShardList is ParseShards over entries already split apart —
// the shape a config file's JSON array provides.
func ParseShardList(entries []string) ([]Shard, error) {
	var shards []Shard
	named := 0
	for _, raw := range entries {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		id, addr := fmt.Sprintf("shard-%d", len(shards)), entry
		// "id=addr" — but an unnamed URL can carry '=' in a query
		// string, so only split when the left side has no scheme
		// separator.
		if name, rest, ok := strings.Cut(entry, "="); ok && !strings.Contains(name, "/") {
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("cluster: shard entry %q: empty id", entry)
			}
			id, addr = name, strings.TrimSpace(rest)
			named++
		}
		if err := checkAddr(addr); err != nil {
			return nil, err
		}
		shards = append(shards, Shard{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses")
	}
	if named != 0 && named != len(shards) {
		return nil, fmt.Errorf("cluster: mixed named and positional shard entries (%d of %d named)", named, len(shards))
	}
	return shards, nil
}

func checkAddr(addr string) error {
	u, err := url.Parse(addr)
	if err != nil {
		return fmt.Errorf("cluster: shard address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("cluster: shard address %q: scheme must be http or https", addr)
	}
	if u.Host == "" {
		return fmt.Errorf("cluster: shard address %q: missing host", addr)
	}
	return nil
}

// New builds a version-1 topology over the given shards. ringSize <= 0
// selects DefaultRingSize.
func New(shards []Shard, ringSize int) (*Topology, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: topology needs at least one shard")
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s.ID == "" {
			return nil, fmt.Errorf("cluster: shard with empty id")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		if err := checkAddr(s.Addr); err != nil {
			return nil, err
		}
	}
	return &Topology{Version: 1, RingSize: ringSize, Shards: shards}, nil
}

// Validate checks a topology received over the wire.
func (t *Topology) Validate() error {
	if t.RingSize <= 0 {
		return fmt.Errorf("cluster: ring_size must be positive")
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("cluster: topology has no shards")
	}
	seen := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.ID == "" || s.Addr == "" {
			return fmt.Errorf("cluster: shard with empty id or addr")
		}
		if seen[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
	}
	for name, id := range t.Overrides {
		if _, ok := t.ShardByID(id); !ok {
			return fmt.Errorf("cluster: override for %q names unknown shard %q", name, id)
		}
	}
	return nil
}

// Slot returns the ring slot a session name hashes to.
func (t *Topology) Slot(session string) int {
	return int(fnv64(session) % uint64(t.RingSize))
}

// slotOwner picks the shard owning a slot by rendezvous (highest-random-
// weight) hashing: each shard scores hash(slot ":" id) and the highest score
// wins. Adding or removing one shard therefore only moves the slots that
// shard wins or loses — the consistent-hashing property — without any state
// beyond the shard list itself.
func (t *Topology) slotOwner(slot int) Shard {
	var (
		best      Shard
		bestScore uint64
		have      bool
	)
	key := fmt.Sprintf("%d:", slot)
	for _, s := range t.Shards {
		score := fnv64(key + s.ID)
		if !have || score > bestScore || (score == bestScore && s.ID < best.ID) {
			best, bestScore, have = s, score, true
		}
	}
	return best
}

// Owner resolves the shard owning a session: an explicit override wins,
// otherwise ring placement decides.
func (t *Topology) Owner(session string) (Shard, error) {
	if id, ok := t.Overrides[session]; ok {
		if s, ok := t.ShardByID(id); ok {
			return s, nil
		}
		return Shard{}, fmt.Errorf("cluster: override for %q names unknown shard %q", session, id)
	}
	if len(t.Shards) == 0 {
		return Shard{}, fmt.Errorf("cluster: topology has no shards")
	}
	return t.slotOwner(t.Slot(session)), nil
}

// OwnerAddr is Owner reduced to the shard base URL; empty when unresolvable.
func (t *Topology) OwnerAddr(session string) string {
	s, err := t.Owner(session)
	if err != nil {
		return ""
	}
	return s.Addr
}

// ShardByID looks a shard up by its ID.
func (t *Topology) ShardByID(id string) (Shard, bool) {
	for _, s := range t.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return Shard{}, false
}

// ShardByAddr looks a shard up by its base URL (trailing slashes ignored).
func (t *Topology) ShardByAddr(addr string) (Shard, bool) {
	addr = strings.TrimRight(addr, "/")
	for _, s := range t.Shards {
		if strings.TrimRight(s.Addr, "/") == addr {
			return s, true
		}
	}
	return Shard{}, false
}

// Clone deep-copies the topology so snapshots can be mutated independently.
func (t *Topology) Clone() *Topology {
	c := &Topology{Version: t.Version, RingSize: t.RingSize}
	c.Shards = append([]Shard(nil), t.Shards...)
	if len(t.Overrides) > 0 {
		c.Overrides = make(map[string]string, len(t.Overrides))
		for k, v := range t.Overrides {
			c.Overrides[k] = v
		}
	}
	return c
}

// SetOverride pins session -> shard id, bumping the version when the pin
// actually changes. Reports whether anything changed.
func (t *Topology) SetOverride(session, shardID string) bool {
	if _, ok := t.ShardByID(shardID); !ok {
		return false
	}
	if t.Overrides != nil && t.Overrides[session] == shardID {
		return false
	}
	// Pinning the session to its natural ring owner is equivalent to
	// removing the pin; keep the document minimal either way.
	if nat := t.slotOwner(t.Slot(session)); nat.ID == shardID {
		if t.Overrides == nil {
			return false
		}
		if _, ok := t.Overrides[session]; !ok {
			return false
		}
		delete(t.Overrides, session)
		t.Version++
		return true
	}
	if t.Overrides == nil {
		t.Overrides = make(map[string]string)
	}
	t.Overrides[session] = shardID
	t.Version++
	return true
}

// SlotCounts returns, per shard ID, how many ring slots it owns — a cheap
// balance diagnostic used by tests and the router's health payload.
func (t *Topology) SlotCounts() map[string]int {
	counts := make(map[string]int, len(t.Shards))
	for slot := 0; slot < t.RingSize; slot++ {
		counts[t.slotOwner(slot).ID]++
	}
	return counts
}

// ShardIDs returns the shard IDs in stable (sorted) order.
func (t *Topology) ShardIDs() []string {
	ids := make([]string, 0, len(t.Shards))
	for _, s := range t.Shards {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}
