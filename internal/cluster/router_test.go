package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// twoShardCluster boots two real in-process shards and a router over
// them, returning the router's test server and the topology.
func twoShardCluster(t *testing.T) (*httptest.Server, []*httptest.Server, *Router) {
	t.Helper()
	var shards []*httptest.Server
	var specs []Shard
	for i := 0; i < 2; i++ {
		s := httptest.NewServer(service.NewAPI().Handler())
		t.Cleanup(s.Close)
		shards = append(shards, s)
		specs = append(specs, Shard{ID: fmt.Sprintf("shard-%d", i), Addr: s.URL})
	}
	topo, err := New(specs, 64)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(topo)
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)
	return router, shards, rt
}

// nameOwnedBy finds a session name the topology places on the given
// shard address.
func nameOwnedBy(t *testing.T, topo *Topology, addr string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("sess-%d", i)
		if topo.OwnerAddr(name) == addr {
			return name
		}
	}
	t.Fatal("no name hashes to shard")
	return ""
}

func createVia(t *testing.T, base, name string) {
	t.Helper()
	body := fmt.Sprintf(`{"name": %q, "domain": 2, "users": 1}`, name)
	resp, err := http.Post(base+"/v2/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create %s: status %d: %s", name, resp.StatusCode, b)
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestRouterRoutesCreatesToOwner(t *testing.T) {
	router, shards, rt := twoShardCluster(t)
	topo := rt.Topology()
	for _, shard := range shards {
		name := nameOwnedBy(t, topo, shard.URL)
		createVia(t, router.URL, name)
		// The session must live on exactly the shard the ring names.
		if code := getJSON(t, shard.URL+"/v2/sessions/"+name, nil); code != http.StatusOK {
			t.Fatalf("session %s not on its ring owner (status %d)", name, code)
		}
	}
	// Fan-out list via the router sees both, sorted by name.
	var list struct {
		Sessions []struct {
			Name string `json:"name"`
		} `json:"sessions"`
	}
	if code := getJSON(t, router.URL+"/v2/sessions", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Sessions) != 2 {
		t.Fatalf("list merged %d sessions, want 2", len(list.Sessions))
	}
	if list.Sessions[0].Name > list.Sessions[1].Name {
		t.Fatalf("list not sorted: %+v", list.Sessions)
	}
}

func TestRouterTopologyEndpoint(t *testing.T) {
	router, _, rt := twoShardCluster(t)
	var topo Topology
	if code := getJSON(t, router.URL+"/v2/topology", &topo); code != http.StatusOK {
		t.Fatalf("topology status %d", code)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Version != rt.Topology().Version || len(topo.Shards) != 2 {
		t.Fatalf("topology %+v", topo)
	}
}

func TestRouterLearnsFromWrongShard(t *testing.T) {
	router, shards, rt := twoShardCluster(t)
	topo := rt.Topology()
	name := nameOwnedBy(t, topo, shards[0].URL)
	createVia(t, router.URL, name)

	// Migrate shard-direct, behind the router's back.
	mig := fmt.Sprintf(`{"target": %q}`, shards[1].URL)
	resp, err := http.Post(shards[0].URL+"/v2/sessions/"+name+"/migrate", "application/json", strings.NewReader(mig))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d", resp.StatusCode)
	}

	// The router's document is now stale; a routed request must still
	// succeed (421 from the old owner teaches the new placement, retry).
	if code := getJSON(t, router.URL+"/v2/sessions/"+name, nil); code != http.StatusOK {
		t.Fatalf("routed request after migration: status %d", code)
	}
	after := rt.Topology()
	if after.Version <= topo.Version {
		t.Fatalf("router did not learn: version %d -> %d", topo.Version, after.Version)
	}
	if got, _ := after.Owner(name); got.Addr != shards[1].URL {
		t.Fatalf("router learned owner %s, want %s", got.Addr, shards[1].URL)
	}

	// Replayable POST bodies are retried too: a batch via the router
	// lands on the new owner in one request.
	batch := `[{"counts": [1, 0], "eps": 0.1}]`
	req, _ := http.NewRequest(http.MethodPost, router.URL+"/v2/sessions/"+name+"/steps", strings.NewReader(batch))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "k1")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("routed batch status %d: %s", bresp.StatusCode, b)
	}
	if !bytes.Contains(b, []byte(`"count": 1`)) && !bytes.Contains(b, []byte(`"count":1`)) {
		t.Fatalf("batch result %s", b)
	}
}

func TestRouterProxiedMigrateLearns(t *testing.T) {
	router, shards, rt := twoShardCluster(t)
	topo := rt.Topology()
	name := nameOwnedBy(t, topo, shards[0].URL)
	createVia(t, router.URL, name)

	mig := fmt.Sprintf(`{"target": %q}`, shards[1].URL)
	resp, err := http.Post(router.URL+"/v2/sessions/"+name+"/migrate", "application/json", strings.NewReader(mig))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied migrate status %d", resp.StatusCode)
	}
	// The router watched the migrate succeed and recorded the override
	// itself — no 421 round trip needed for the next request.
	if got, _ := rt.Topology().Owner(name); got.Addr != shards[1].URL {
		t.Fatalf("owner after proxied migrate %s, want %s", got.Addr, shards[1].URL)
	}
}

func TestRouterDeadShard(t *testing.T) {
	live := httptest.NewServer(service.NewAPI().Handler())
	defer live.Close()
	// A dead address: bind a port, then close it so nothing listens.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + ln.Addr().String()
	ln.Close()

	topo, err := New([]Shard{{ID: "live", Addr: live.URL}, {ID: "dead", Addr: deadAddr}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(topo)
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	deadName := nameOwnedBy(t, topo, deadAddr)
	liveName := nameOwnedBy(t, topo, live.URL)
	createVia(t, router.URL, liveName)

	resp, err := http.Get(router.URL + "/v2/sessions/" + deadName)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead shard answered %d: %s", resp.StatusCode, body)
	}
	var p struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &p) != nil || p.Code != service.CodeShardUnavailable {
		t.Fatalf("problem %s", body)
	}
	// The healthy shard keeps serving through the same router.
	if code := getJSON(t, router.URL+"/v2/sessions/"+liveName, nil); code != http.StatusOK {
		t.Fatalf("live shard status %d", code)
	}
}
