package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/version"
)

// Router is the stateless front door of a tplserved cluster: it owns a
// topology document, proxies every session-scoped v1/v2 request to the
// owning shard (streaming NDJSON and SSE bodies through unbuffered),
// fans list requests out across shards, and serves GET /v2/topology so
// SDK clients can skip the extra hop and dial shards directly.
//
// The router carries no session state, so it self-heals from topology
// drift instead of authoritatively preventing it: a shard answering 421
// wrong_shard teaches it the session's new home (recorded as a topology
// override, bumping the version), and the request is retried once when
// its body is replayable.
type Router struct {
	mu        sync.RWMutex
	topo      *Topology
	transport http.RoundTripper
}

// routerBufferLimit bounds request bodies the router buffers so it can
// retry them after a 421. Larger (or unknown-length) bodies stream
// straight through and rely on the client to follow the redirect.
const routerBufferLimit = 1 << 20

// createBufferLimit bounds a create body: the router must read it to
// learn the session name before it can pick a shard.
const createBufferLimit = 8 << 20

// NewRouter builds a router over a topology document.
func NewRouter(topo *Topology) *Router {
	return &Router{topo: topo, transport: http.DefaultTransport}
}

// Topology returns a snapshot of the current document.
func (rt *Router) Topology() *Topology {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.topo.Clone()
}

// owner resolves the shard currently owning a session.
func (rt *Router) owner(session string) (Shard, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.topo.Owner(session)
}

// learnOverride records that session now lives at addr (a 421 location
// or a migrate target). Only addresses inside the shard set become
// overrides — the document cannot describe strangers — but the caller
// may still retry at a foreign addr directly.
func (rt *Router) learnOverride(session, addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s, ok := rt.topo.ShardByAddr(addr); ok {
		rt.topo.SetOverride(session, s.ID)
	}
}

// Handler builds the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.health)
	mux.HandleFunc("GET /v2/topology", rt.getTopology)
	for _, v := range []string{"v1", "v2"} {
		mux.HandleFunc("GET /"+v+"/sessions", rt.listSessions)
		mux.HandleFunc("POST /"+v+"/sessions", rt.createSession)
		mux.HandleFunc("/"+v+"/sessions/{name}", rt.bySession)
		mux.HandleFunc("/"+v+"/sessions/{name}/{rest...}", rt.bySession)
	}
	// Import is the shard-to-shard leg of a migration; routing it by the
	// {name} pattern would misread "import" as a session name.
	mux.HandleFunc("POST /v2/sessions/import", func(w http.ResponseWriter, r *http.Request) {
		service.WriteProblem(w, service.NewProblem(http.StatusBadRequest, service.CodeInvalidRequest,
			"cluster: POST /v2/sessions/import is shard-direct; the router does not accept migration pushes"))
	})
	return mux
}

func (rt *Router) getTopology(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(rt.Topology())
}

func (rt *Router) health(w http.ResponseWriter, r *http.Request) {
	t := rt.Topology()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]any{
		"status":           "ok",
		"role":             "router",
		"version":          version.String(),
		"topology_version": t.Version,
		"ring_size":        t.RingSize,
		"shards":           t.Shards,
	})
}

// hopHeaders are the hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, k := range hopHeaders {
		dst.Del(k)
	}
}

// shardUnavailable answers for a shard the router could not reach.
func shardUnavailable(w http.ResponseWriter, shard Shard, err error) {
	service.WriteProblem(w, service.NewProblem(http.StatusServiceUnavailable, service.CodeShardUnavailable,
		fmt.Sprintf("cluster: shard %s (%s) unreachable: %v", shard.ID, shard.Addr, err)))
}

// roundTrip forwards the request to addr, preserving path and query.
// body non-nil replaces the original request body (the buffered copy).
func (rt *Router) roundTrip(r *http.Request, addr string, body []byte, buffered bool) (*http.Response, error) {
	u := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rdr io.Reader
	if buffered {
		rdr = bytes.NewReader(body)
	} else if r.Body != nil {
		rdr = r.Body
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, u, rdr)
	if err != nil {
		return nil, err
	}
	copyHeaders(out.Header, r.Header)
	if buffered {
		out.ContentLength = int64(len(body))
	} else {
		out.ContentLength = r.ContentLength
	}
	return rt.transport.RoundTrip(out)
}

// relay copies a shard response to the client, flushing after every
// chunk so streamed NDJSON tables and SSE watch frames pass through
// with no added latency.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// problemLocation extracts the code and location members of a (small)
// problem+json body, returning the body for re-emission.
func problemLocation(resp *http.Response) (code, location string, body []byte) {
	body, _ = io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
	var p struct {
		Code     string `json:"code"`
		Location string `json:"location"`
	}
	_ = json.Unmarshal(body, &p)
	return p.Code, p.Location, body
}

// bySession proxies one session-scoped request to the owning shard. A
// wrong_shard answer teaches the router the new placement; requests
// whose body the router holds (or that have none) are then retried once
// at the session's new home.
func (rt *Router) bySession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	shard, err := rt.owner(name)
	if err != nil {
		service.WriteProblem(w, service.NewProblem(http.StatusInternalServerError, service.CodeInternal, err.Error()))
		return
	}

	// Buffer small bodies so a 421 can be retried (and so a successful
	// migrate can teach the router its own override, below).
	var body []byte
	buffered := r.Body == nil || r.ContentLength == 0
	if !buffered && r.ContentLength > 0 && r.ContentLength <= routerBufferLimit {
		body, err = io.ReadAll(io.LimitReader(r.Body, routerBufferLimit+1))
		if err != nil {
			service.WriteProblem(w, service.NewProblem(http.StatusBadRequest, service.CodeInvalidRequest,
				fmt.Sprintf("cluster: reading request body: %v", err)))
			return
		}
		buffered = true
	}

	addr := shard.Addr
	for attempt := 0; ; attempt++ {
		resp, err := rt.roundTrip(r, addr, body, buffered)
		if err != nil {
			shardUnavailable(w, shard, err)
			return
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			code, location, pbody := problemLocation(resp)
			if code == service.CodeWrongShard && location != "" {
				rt.learnOverride(name, location)
				if buffered && attempt == 0 {
					addr = strings.TrimRight(location, "/")
					continue
				}
			}
			// Unreplayable body (or second miss): hand the redirect to the
			// client, which follows the location itself.
			w.Header().Set("Content-Type", "application/problem+json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			w.Write(pbody)
			return
		}
		if r.Method == http.MethodPost && resp.StatusCode/100 == 2 && strings.HasSuffix(r.URL.Path, "/migrate") && buffered {
			// The router just proxied a successful migrate: record the new
			// placement so the next request skips the 421 round trip.
			var req struct {
				Target string `json:"target"`
			}
			if json.Unmarshal(body, &req) == nil && req.Target != "" {
				rt.learnOverride(name, strings.TrimRight(req.Target, "/"))
			}
		}
		relay(w, resp)
		return
	}
}

// createSession reads the body to learn the session name, then routes
// the create to the shard the ring places that name on.
func (rt *Router) createSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, createBufferLimit+1))
	if err != nil {
		service.WriteProblem(w, service.NewProblem(http.StatusBadRequest, service.CodeInvalidRequest,
			fmt.Sprintf("cluster: reading create body: %v", err)))
		return
	}
	if len(body) > createBufferLimit {
		service.WriteProblem(w, service.NewProblem(http.StatusRequestEntityTooLarge, service.CodePayloadTooLarge,
			fmt.Sprintf("cluster: create body larger than the router's %d-byte ceiling; create directly on the owning shard", createBufferLimit)))
		return
	}
	var peek struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || peek.Name == "" {
		// Let a shard produce the canonical validation problem.
		peek.Name = ""
	}
	shard, err := rt.owner(peek.Name)
	if err != nil {
		service.WriteProblem(w, service.NewProblem(http.StatusInternalServerError, service.CodeInternal, err.Error()))
		return
	}
	resp, err := rt.roundTrip(r, shard.Addr, body, true)
	if err != nil {
		shardUnavailable(w, shard, err)
		return
	}
	relay(w, resp)
}

// listSessions fans a session list out to every shard and merges the
// results sorted by name, preserving each shard's own summary bodies.
func (rt *Router) listSessions(w http.ResponseWriter, r *http.Request) {
	t := rt.Topology()
	type entry struct {
		name string
		raw  json.RawMessage
	}
	var merged []entry
	for _, shard := range t.Shards {
		resp, err := rt.roundTrip(r, shard.Addr, nil, true)
		if err != nil {
			shardUnavailable(w, shard, err)
			return
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			shardUnavailable(w, shard, fmt.Errorf("list answered status %d", resp.StatusCode))
			return
		}
		var page struct {
			Sessions []json.RawMessage `json:"sessions"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			shardUnavailable(w, shard, fmt.Errorf("decoding list: %w", err))
			return
		}
		for _, raw := range page.Sessions {
			var s struct {
				Name string `json:"name"`
			}
			_ = json.Unmarshal(raw, &s)
			merged = append(merged, entry{name: s.Name, raw: raw})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].name < merged[j].name })
	out := make([]json.RawMessage, len(merged))
	for i, e := range merged {
		out[i] = e.raw
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]any{"sessions": out})
}
