package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testShards(n int) []Shard {
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{ID: fmt.Sprintf("shard-%d", i), Addr: fmt.Sprintf("http://10.0.0.%d:8344", i+1)}
	}
	return shards
}

func TestParseShards(t *testing.T) {
	shards, err := ParseShards(" http://a:1 ,http://b:2/, ")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[0].ID != "shard-0" || shards[1].ID != "shard-1" {
		t.Fatalf("shards %+v", shards)
	}
	if shards[1].Addr != "http://b:2" {
		t.Fatalf("trailing slash kept: %q", shards[1].Addr)
	}
	for _, bad := range []string{"", "   ", "ftp://a:1", "http://", "a:1,b:2"} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}

	// Explicit id=addr pairs: the ID keys the rendezvous hash, so it
	// must survive exactly as written.
	named, err := ParseShards("a = http://a:1 ,b=http://b:2/")
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 2 || named[0].ID != "a" || named[1].ID != "b" || named[1].Addr != "http://b:2" {
		t.Fatalf("named shards %+v", named)
	}
	// A query string's '=' does not make a bare URL a named entry.
	q, err := ParseShards("http://a:1/x?k=v")
	if err != nil {
		t.Fatal(err)
	}
	if q[0].ID != "shard-0" || q[0].Addr != "http://a:1/x?k=v" {
		t.Fatalf("query-string shard %+v", q[0])
	}
	for _, bad := range []string{"a=", "=http://a:1", "a=ftp://x:1", "a=http://a:1,http://b:2"} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}

func TestOwnerDeterministicAndComplete(t *testing.T) {
	topo, err := New(testShards(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if topo.RingSize != DefaultRingSize || topo.Version != 1 {
		t.Fatalf("defaults %+v", topo)
	}
	// Same name, same shard, every time — and every name resolves.
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("session-%d", i)
		a, err := topo.Owner(name)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := topo.Owner(name)
		if a != b {
			t.Fatalf("owner of %q flapped: %v vs %v", name, a, b)
		}
	}
}

func TestRingBalance(t *testing.T) {
	topo, _ := New(testShards(4), 0)
	counts := topo.SlotCounts()
	if len(counts) != 4 {
		t.Fatalf("slot counts %v: a shard owns nothing", counts)
	}
	// Rendezvous over 1024 slots should keep every shard within 2x of
	// the fair share — loose, but catches a broken hash outright.
	fair := DefaultRingSize / 4
	for id, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("shard %s owns %d slots, fair share %d", id, n, fair)
		}
	}
}

func TestConsistency(t *testing.T) {
	// Removing one shard of 4 must only move sessions that shard owned.
	big, _ := New(testShards(4), 0)
	small, _ := New(testShards(3), 0) // drops shard-3
	moved, total := 0, 500
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("s-%d", i)
		was, _ := big.Owner(name)
		now, _ := small.Owner(name)
		if was.ID == "shard-3" {
			continue // had to move
		}
		if was.ID != now.ID {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d sessions moved that were not on the removed shard", moved, total)
	}
}

func TestOverrides(t *testing.T) {
	topo, _ := New(testShards(2), 8)
	name := "pinned"
	nat, _ := topo.Owner(name)
	other := "shard-0"
	if nat.ID == other {
		other = "shard-1"
	}
	v := topo.Version
	if !topo.SetOverride(name, other) {
		t.Fatal("override rejected")
	}
	if topo.Version != v+1 {
		t.Fatalf("version %d, want %d", topo.Version, v+1)
	}
	if got, _ := topo.Owner(name); got.ID != other {
		t.Fatalf("override ignored: owner %s", got.ID)
	}
	// Repeating the same pin changes nothing.
	if topo.SetOverride(name, other) {
		t.Fatal("idempotent override bumped the version")
	}
	// Pinning back to the natural owner removes the pin entirely.
	if !topo.SetOverride(name, nat.ID) {
		t.Fatal("pin-back rejected")
	}
	if len(topo.Overrides) != 0 {
		t.Fatalf("pin-back left overrides %v", topo.Overrides)
	}
	if got, _ := topo.Owner(name); got.ID != nat.ID {
		t.Fatalf("owner after pin-back %s, want %s", got.ID, nat.ID)
	}
	// Unknown shard IDs are refused.
	if topo.SetOverride(name, "shard-99") {
		t.Fatal("override to unknown shard accepted")
	}
}

func TestValidateAndJSONRoundTrip(t *testing.T) {
	topo, _ := New(testShards(3), 64)
	topo.SetOverride("moved", "shard-2")
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("s-%d", i)
		if topo.OwnerAddr(name) != back.OwnerAddr(name) {
			t.Fatalf("placement of %q changed across the wire", name)
		}
	}

	bad := []Topology{
		{RingSize: 0, Shards: testShards(1)},
		{RingSize: 8},
		{RingSize: 8, Shards: []Shard{{ID: "", Addr: "http://x"}}},
		{RingSize: 8, Shards: append(testShards(1), testShards(1)...)},
		{RingSize: 8, Shards: testShards(1), Overrides: map[string]string{"s": "ghost"}},
	}
	for i := range bad {
		if bad[i].Validate() == nil {
			t.Errorf("bad topology %d validated", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	topo, _ := New(testShards(2), 8)
	topo.SetOverride("a", "shard-0")
	c := topo.Clone()
	c.SetOverride("b", "shard-1")
	if _, ok := topo.Overrides["b"]; ok {
		t.Fatal("clone shares the override map")
	}
}
