package version

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestResolveFallbackChain(t *testing.T) {
	withInfo := func(info *debug.BuildInfo, ok bool) func() (*debug.BuildInfo, bool) {
		return func() (*debug.BuildInfo, bool) { return info, ok }
	}

	t.Run("ldflags stamp wins", func(t *testing.T) {
		old := Version
		Version = "v9.9.9"
		defer func() { Version = old }()
		if got := resolve(withInfo(nil, false)); got != "v9.9.9" {
			t.Fatalf("got %q", got)
		}
	})
	t.Run("no build info", func(t *testing.T) {
		if got := resolve(withInfo(nil, false)); got != "devel" {
			t.Fatalf("got %q", got)
		}
	})
	t.Run("module version", func(t *testing.T) {
		info := &debug.BuildInfo{}
		info.Main.Version = "v1.2.3"
		if got := resolve(withInfo(info, true)); got != "v1.2.3" {
			t.Fatalf("got %q", got)
		}
	})
	t.Run("vcs revision", func(t *testing.T) {
		info := &debug.BuildInfo{}
		info.Main.Version = "(devel)"
		info.Settings = []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		}
		if got := resolve(withInfo(info, true)); got != "devel+0123456789ab-dirty" {
			t.Fatalf("got %q", got)
		}
	})
	t.Run("devel fallback", func(t *testing.T) {
		info := &debug.BuildInfo{}
		info.Main.Version = "(devel)"
		if got := resolve(withInfo(info, true)); got != "devel" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestStringNonEmpty(t *testing.T) {
	if s := String(); s == "" || strings.ContainsAny(s, " \n") {
		t.Fatalf("String() = %q", s)
	}
}
