// Package version is the single source of the build's version string,
// reported by every CLI's -version flag and the service's /healthz.
//
// Release builds stamp it at link time:
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3" ./...
//
// Unstamped builds fall back to the build metadata the Go toolchain
// embeds (module version or VCS revision via debug.ReadBuildInfo), and
// to "devel" when even that is absent (e.g. test binaries).
package version

import (
	"runtime/debug"
	"sync"
)

// Version is the link-time override; empty in unstamped builds.
var Version string

var (
	once     sync.Once
	resolved string
)

// String returns the effective version: the -ldflags stamp if present,
// else the module version, else "devel+<short revision>" from VCS build
// settings, else "devel".
func String() string {
	once.Do(func() { resolved = resolve(debug.ReadBuildInfo) })
	return resolved
}

// resolve computes the fallback chain; split out (with the reader
// injected) so tests can exercise every branch.
func resolve(read func() (*debug.BuildInfo, bool)) string {
	if Version != "" {
		return Version
	}
	info, ok := read()
	if !ok || info == nil {
		return "devel"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return "devel+" + rev + dirty
	}
	return "devel"
}
