package analysis

import (
	"strings"
	"testing"
)

func TestAllowHygiene(t *testing.T) {
	pkg := loadFixture(t, "allowhygiene", "repro/internal/service/fixture")
	diags := Run([]*Package{pkg}, All())
	expected := []string{
		"tplvet:allow needs an analyzer name and a reason",
		`tplvet:allow names unknown analyzer "nosuchanalyzer"`,
		"tplvet:allow locksafe needs a written reason",
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(expected), diags)
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if d.Analyzer == "allow" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no [allow] finding containing %q in %v", want, diags)
		}
	}
}
