package analysis

import "testing"

func TestLocksafeFindings(t *testing.T) {
	runFixture(t, "locksafe", "repro/internal/stream/fixture", []*Analyzer{Locksafe})
}

func TestLocksafeAllowPlacements(t *testing.T) {
	expectClean(t, "locksafeallow", "repro/internal/stream/fixture", []*Analyzer{Locksafe})
}

func TestLocksafeOutOfScope(t *testing.T) {
	// The same violating fixture, loaded under a path outside the
	// accounting core, must produce nothing.
	expectClean(t, "locksafe", "repro/tools/fixture", []*Analyzer{Locksafe})
}
