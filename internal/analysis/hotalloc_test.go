package analysis

import "testing"

func TestHotallocFindings(t *testing.T) {
	// hotalloc is not path-scoped: the //tplvet:hotpath marker opts in.
	runFixture(t, "hotalloc", "repro/tools/fixture", []*Analyzer{Hotalloc})
}
